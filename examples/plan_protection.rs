//! Protection planning with DelayAVF: place a limited budget of Razor-style
//! shadow latches where they detect the most program-visible delay faults.
//!
//! This is the designer workflow the paper motivates ("identify structures
//! which are particularly vulnerable to SDFs, helping to guide targeted
//! protections", §I): run a campaign once, then use its per-injection
//! records to choose detection points and quantify the coverage of each
//! budget.
//!
//! Usage: `cargo run --release --example plan_protection [kernel] [d%]`
//! (defaults: `md5` at d = 80%).

use std::collections::HashSet;

use delayavf::razor::{detection_coverage, greedy_protection};
use delayavf::{delay_avf_campaign_records, prepare_golden, sample_edges, ReplayOptions};
use delayavf_netlist::Topology;
use delayavf_rvcore::{build_core, Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

fn main() {
    let kernel_name = std::env::args().nth(1).unwrap_or_else(|| "md5".into());
    let d_pct: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80.0);
    let Some(kernel) = Kernel::parse(&kernel_name) else {
        eprintln!("unknown kernel `{kernel_name}`");
        std::process::exit(2);
    };

    let core = build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let workload = kernel.build(Scale::Paper);
    let program = workload.assemble().expect("assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &program);
    eprintln!("recording golden run of {kernel} ...");
    let golden = prepare_golden(&core.circuit, &topo, &env, workload.max_cycles, 24);

    // Campaign over every structure's edges at the chosen delay.
    eprintln!("running the injection campaign (d = {d_pct:.0}%) ...");
    let mut records = Vec::new();
    let mut visible_total = 0usize;
    for structure in Core::structure_names() {
        let edges = sample_edges(
            &topo
                .structure_edges(&core.circuit, structure)
                .expect("tagged"),
            200,
            1,
        );
        let (row, recs) = delay_avf_campaign_records(
            &core.circuit,
            &topo,
            &timing,
            &golden,
            &edges,
            d_pct / 100.0,
            ReplayOptions::new(2_000, 0),
        );
        visible_total += row.delay_ace_hits;
        records.extend(recs);
    }
    if visible_total == 0 {
        println!("no program-visible faults at this sampling; raise d or the sampling density");
        return;
    }
    println!(
        "\n{} injections, {} program-visible delay faults",
        records.len(),
        visible_total
    );

    // Greedy shadow-latch placement at several budgets.
    println!(
        "\n{:<8} {:>10} {:<}",
        "budget", "coverage", "latched flip-flops (newly added)"
    );
    let plan = greedy_protection(&records, 12);
    for budget in [1usize, 2, 4, 8, 12] {
        let chosen: Vec<_> = plan.iter().take(budget).copied().collect();
        let protected: HashSet<_> = chosen.iter().copied().collect();
        let cov = detection_coverage(&records, &protected);
        let newly: Vec<String> = plan
            .iter()
            .take(budget)
            .skip(budget.saturating_sub(4))
            .map(|d| core.circuit.dff(*d).name().to_owned())
            .collect();
        println!(
            "{budget:<8} {:>9.1}% ... {}",
            100.0 * cov.fraction(),
            newly.join(", ")
        );
    }
    println!(
        "\nA handful of well-chosen Razor latches detects a large share of\n\
         DelayACE faults — the targeted-protection payoff DelayAVF enables."
    );
}
