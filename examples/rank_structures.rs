//! A designer's workflow: rank the core's microarchitectural structures by
//! their vulnerability to small delay faults to decide where protection
//! pays off (the use case motivating the paper's Observation 4).
//!
//! Usage: `cargo run --release --example rank_structures [kernel] [d%]`
//! (defaults: `libstrstr` at d = 60% of the clock period).

use delayavf::{delay_avf_campaign, prepare_golden, sample_edges, CampaignConfig};
use delayavf_netlist::Topology;
use delayavf_rvcore::{build_core, Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

fn main() {
    let kernel_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "libstrstr".into());
    let d_pct: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60.0);
    let Some(kernel) = Kernel::parse(&kernel_name) else {
        eprintln!("unknown kernel `{kernel_name}`");
        std::process::exit(2);
    };

    let core = build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());

    let workload = kernel.build(Scale::Paper);
    let program = workload.assemble().expect("assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &program);
    eprintln!("recording golden run of {kernel} ...");
    let golden = prepare_golden(&core.circuit, &topo, &env, workload.max_cycles, 16);

    let config = CampaignConfig::single_delay(d_pct / 100.0);
    println!(
        "\nDelayAVF ranking for {kernel} at d = {d_pct:.0}% of the clock ({} ps):\n",
        timing.clock_period()
    );
    let mut rows = Vec::new();
    for structure in Core::structure_names() {
        let all = topo
            .structure_edges(&core.circuit, structure)
            .expect("tagged structure");
        let edges = sample_edges(&all, 200, 1);
        let r = &delay_avf_campaign(&core.circuit, &topo, &timing, &golden, &edges, &config)[0];
        rows.push((
            structure,
            r.delay_avf(),
            r.static_fraction(),
            r.dynamic_fraction(),
        ));
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "{:<10} {:>10} {:>14} {:>15}",
        "structure", "DelayAVF", "static reach", "dynamic reach"
    );
    for (name, davf, stat, dynr) in rows {
        println!(
            "{name:<10} {davf:>10.5} {:>13.1}% {:>14.2}%",
            100.0 * stat,
            100.0 * dynr
        );
    }
    println!("\nHigher DelayAVF = better candidate for targeted delay-fault protection.");
}
