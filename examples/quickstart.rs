//! Quickstart: compute the DelayAVF of a small hand-built circuit.
//!
//! Builds the paper's Figure 2 circuit (an AND gate feeding register A,
//! with one input also feeding register B directly), wires it to a simple
//! stimulus environment, and sweeps the small-delay-fault duration from 10%
//! to 90% of the clock period.
//!
//! Run with: `cargo run --release --example quickstart`

use delayavf::{delay_avf_campaign, prepare_golden, sample_edges, CampaignConfig};
use delayavf_netlist::{CircuitBuilder, Topology};
use delayavf_sim::Environment;
use delayavf_timing::{TechLibrary, TimingModel};

/// Drives `x`/`y` with a fixed pattern and records every output it sees, so
/// state corruption becomes program-visible.
#[derive(Clone)]
struct Stimulus {
    ticks: u64,
    log: Vec<u8>,
    fp: u64,
}

impl Environment for Stimulus {
    fn step(&mut self, cycle: u64, prev_outputs: &[u64], inputs: &mut [u64]) {
        for &o in prev_outputs {
            self.fp = (self.fp ^ o).wrapping_mul(0x100_0000_01b3);
            self.log.push(o as u8);
        }
        // x toggles every cycle, y every other cycle.
        inputs[0] = cycle & 1;
        inputs[1] = (cycle >> 1) & 1;
        self.ticks += 1;
    }
    fn halted(&self) -> bool {
        self.ticks > 40
    }
    fn fingerprint(&self) -> u64 {
        self.fp
    }
    fn program_output(&self) -> Vec<u8> {
        self.log.clone()
    }
}

fn main() {
    // 1. Describe the circuit (Figure 2 of the paper).
    let mut b = CircuitBuilder::new();
    let x = b.input("x");
    let y = b.input("y");
    let (ra, rb) = b.in_structure("divider", |b| {
        let z = b.and(x, y);
        let ra = b.reg("A", false);
        b.drive(ra, z);
        let rb = b.reg("B", false);
        b.drive(rb, x);
        (ra, rb)
    });
    b.output("a", ra.q());
    b.output("b", rb.q());
    let circuit = b.finish().expect("valid circuit");

    // 2. Analyze structure and timing.
    let topo = Topology::new(&circuit);
    let timing = TimingModel::analyze(&circuit, &topo, &TechLibrary::nangate45_like());
    println!("clock period: {} ps", timing.clock_period());

    // 3. Record the fault-free reference execution with checkpoints.
    let env = Stimulus {
        ticks: 0,
        log: Vec::new(),
        fp: 0,
    };
    let golden = prepare_golden(&circuit, &topo, &env, 100, 12);
    println!(
        "golden run: {} cycles, {} injection cycles sampled",
        golden.trace.num_cycles(),
        golden.sampled_cycles.len()
    );

    // 4. Sweep the small-delay-fault duration over the structure's wires.
    let edges = sample_edges(
        &topo.structure_edges(&circuit, "divider").expect("tagged"),
        usize::MAX,
        0,
    );
    let rows = delay_avf_campaign(
        &circuit,
        &topo,
        &timing,
        &golden,
        &edges,
        &CampaignConfig::default(),
    );
    println!(
        "\n{:<6} {:>12} {:>14} {:>10}",
        "d", "static reach", "dynamic reach", "DelayAVF"
    );
    for r in &rows {
        println!(
            "{:<6} {:>11.1}% {:>13.1}% {:>10.4}",
            format!("{:.0}%", 100.0 * r.delay_fraction),
            100.0 * r.static_fraction(),
            100.0 * r.dynamic_fraction(),
            r.delay_avf()
        );
    }
}
