//! Run a Beebs-like benchmark on the gate-level core and report
//! architectural statistics — the substrate the DelayAVF campaigns stand
//! on.
//!
//! Usage: `cargo run --release --example run_benchmark [kernel]`
//! where `kernel` is one of `md5`, `bubblesort`, `libstrstr`, `libfibcall`,
//! `matmult` (default: `bubblesort`).

use delayavf_isa::{Iss, StopCause};
use delayavf_netlist::{CircuitStats, Topology};
use delayavf_rvcore::{build_core, CoreConfig, CoreState, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::{CycleSim, Environment};
use delayavf_workloads::{Kernel, Scale};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bubblesort".into());
    let Some(kernel) = Kernel::parse(&name) else {
        eprintln!("unknown kernel `{name}`; expected one of md5, bubblesort, libstrstr, libfibcall, matmult");
        std::process::exit(2);
    };
    let workload = kernel.build(Scale::Paper);
    let program = workload.assemble().expect("workload assembles");
    println!(
        "kernel {kernel}: {} bytes of code+data, expected exit {:#x}",
        program.len(),
        workload.expected_exit
    );

    // Golden reference on the instruction-set simulator.
    let mut iss = Iss::new(DEFAULT_RAM_BYTES);
    iss.load(&program);
    let cause = iss.run(workload.max_cycles);
    assert_eq!(cause, StopCause::Exit(workload.expected_exit));
    println!("ISS: {} instructions retired", iss.retired());

    // The same program on the gate-level core.
    let core = build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    println!("core: {}", CircuitStats::collect(&core.circuit, &topo));
    let mut env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &program);
    let mut sim = CycleSim::new(&core.circuit, &topo);
    let mut state_histogram = [0u64; 6];
    while sim.cycle() < workload.max_cycles && !env.halted() {
        sim.step(&mut env);
        let s = core.handle.read_state(sim.state());
        state_histogram[s as usize] += 1;
    }
    assert_eq!(env.exit_code(), Some(workload.expected_exit));
    println!(
        "gate-level core: {} cycles ({:.2} cycles/instruction)",
        sim.cycle(),
        sim.cycle() as f64 / iss.retired() as f64
    );
    for (i, label) in [
        CoreState::Boot,
        CoreState::FetchWait,
        CoreState::Execute,
        CoreState::MemWait,
        CoreState::LoadWait,
        CoreState::Halted,
    ]
    .iter()
    .enumerate()
    {
        println!("  {:>10?}: {:>6} cycles", label, state_histogram[i]);
    }
    if !env.console().is_empty() {
        println!("console: {}", String::from_utf8_lossy(env.console()));
    }
    println!("exit code: {:#x}", env.exit_code().expect("halted"));
}
