//! Developer tooling tour: disassemble a workload and dump a VCD waveform
//! of its first cycles on the gate-level core.
//!
//! Usage: `cargo run --release --example inspect_workload [kernel] [cycles]`
//! (defaults: `libfibcall`, 200 cycles). The waveform lands in
//! `<kernel>.vcd`, viewable with GTKWave.

use delayavf_netlist::Topology;
use delayavf_rvcore::{build_core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::{CycleSim, Environment, VcdWriter};
use delayavf_workloads::{Kernel, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "libfibcall".into());
    let cycles: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let Some(kernel) = Kernel::parse(&name) else {
        eprintln!("unknown kernel `{name}`");
        std::process::exit(2);
    };
    let workload = kernel.build(Scale::Tiny);
    let program = workload.assemble()?;

    println!("== disassembly of {kernel} (tiny) ==");
    print!("{}", program.listing());

    let core = build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let mut env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &program);
    let mut sim = CycleSim::new(&core.circuit, &topo);

    let path = format!("{kernel}.vcd");
    let file = std::fs::File::create(&path)?;
    let mut vcd = VcdWriter::new(std::io::BufWriter::new(file), &core.circuit)?;
    while sim.cycle() < cycles && !env.halted() {
        sim.step(&mut env);
        vcd.sample(&sim)?;
    }
    vcd.finish()?;
    println!(
        "\nwrote {} cycles of waveform to {path} (halted: {}, exit: {:?})",
        sim.cycle(),
        env.halted(),
        env.exit_code()
    );
    Ok(())
}
