//! Timing report for the studied core: clock period across technology
//! corners, the critical path, and per-structure path distributions — the
//! static-timing inputs that Figure 6 and the statically-reachable-set
//! computation build on.
//!
//! Run with: `cargo run --release --example timing_report`

use delayavf_netlist::Topology;
use delayavf_rvcore::{build_core, Core, CoreConfig};
use delayavf_timing::{PathHistogram, TechLibrary, TimingModel};

fn main() {
    let core = build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);

    // Clock period per process corner.
    let typical = TechLibrary::nangate45_like();
    println!("clock period by corner:");
    for (label, lib) in [
        ("fast (0.75x)", typical.scaled(3, 4)),
        ("typical", typical.clone()),
        ("slow (1.3x)", typical.scaled(13, 10)),
    ] {
        let tm = TimingModel::analyze(&core.circuit, &topo, &lib);
        println!("  {label:<12} {:>6} ps", tm.clock_period());
    }

    // The critical path at the typical corner, with net names where known.
    let tm = TimingModel::analyze(&core.circuit, &topo, &typical);
    let path = tm.critical_path(&core.circuit, &topo);
    println!(
        "\ncritical path ({} nets, {} ps clock):",
        path.len(),
        tm.clock_period()
    );
    for (net, arrival) in path.iter().take(3) {
        describe(&core.circuit, *net, *arrival);
    }
    if path.len() > 6 {
        println!("    ... {} intermediate nets ...", path.len() - 6);
    }
    for (net, arrival) in path.iter().rev().take(3).rev() {
        describe(&core.circuit, *net, *arrival);
    }

    // Per-structure path profiles (Figure 6's data).
    println!("\npath-length distribution (fraction of edges ≥ 75% of clock):");
    for s in Core::structure_names() {
        let edges = topo.structure_edges(&core.circuit, s).expect("tagged");
        let hist = PathHistogram::from_edges(&core.circuit, &topo, &tm, &edges, 20);
        println!("  {s:<10} {:>5.1}%", 100.0 * hist.fraction_at_least(0.75));
    }
}

fn describe(c: &delayavf_netlist::Circuit, net: delayavf_netlist::NetId, arrival: u64) {
    match c.net(net).name() {
        Some(name) => println!("  {arrival:>5} ps  {name}"),
        None => println!("  {arrival:>5} ps  {net} (internal)"),
    }
}
