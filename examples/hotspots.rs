//! Vulnerability hotspots: which individual flip-flops of a structure are
//! most likely to turn a particle strike into a program-visible failure —
//! the per-bit view a designer uses to place selective hardening (parity,
//! DICE cells, duplication) where it pays.
//!
//! Usage: `cargo run --release --example hotspots [structure] [kernel]`
//! (defaults: `lsu`, `libstrstr`).

use delayavf::{prepare_golden, savf_per_bit_campaign, ReplayOptions};
use delayavf_netlist::Topology;
use delayavf_rvcore::{build_core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

fn main() {
    let structure = std::env::args().nth(1).unwrap_or_else(|| "lsu".into());
    let kernel_name = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "libstrstr".into());
    let Some(kernel) = Kernel::parse(&kernel_name) else {
        eprintln!("unknown kernel `{kernel_name}`");
        std::process::exit(2);
    };

    let core = build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let Some(s) = core.circuit.structure(&structure) else {
        eprintln!(
            "unknown structure `{structure}`; available: {}",
            core.circuit
                .structure_names()
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    if s.dffs().is_empty() {
        eprintln!("`{structure}` holds no state (try lsu, prefetch, control, regfile)");
        std::process::exit(2);
    }

    let workload = kernel.build(Scale::Paper);
    let program = workload.assemble().expect("assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &program);
    eprintln!("recording golden run of {kernel} ...");
    let golden = prepare_golden(&core.circuit, &topo, &env, workload.max_cycles, 20);

    eprintln!("striking {} bits of `{structure}` ...", s.dffs().len());
    let mut per_bit = savf_per_bit_campaign(
        &core.circuit,
        &topo,
        &timing,
        &golden,
        s.dffs(),
        ReplayOptions::new(2_000, 0),
    );
    per_bit.sort_by(|a, b| b.1.savf().total_cmp(&a.1.savf()));

    println!("\ntop vulnerability hotspots in `{structure}` under {kernel}:");
    println!("{:<28} {:>8} {:>12}", "flip-flop", "sAVF", "95% CI");
    for (dff, r) in per_bit.iter().take(12) {
        let (lo, hi) = r.savf_interval();
        println!(
            "{:<28} {:>8.3} [{lo:.2}, {hi:.2}]",
            core.circuit.dff(*dff).name(),
            r.savf()
        );
    }
    let dead = per_bit.iter().filter(|(_, r)| r.ace_hits == 0).count();
    println!(
        "\n{dead}/{} bits showed no ACE strike at this sampling — selective\n\
         hardening of the top bits covers most of the structure's exposure.",
        per_bit.len()
    );
}
