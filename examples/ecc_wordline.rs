//! Observation 5 / Figure 11 walk-through: protections that defeat particle
//! strikes may not defeat small delay faults.
//!
//! The example builds the studied core twice — with and without the
//! Hamming(38,32) single-error-correcting register file — and contrasts:
//!
//! 1. **Particle strikes** into the register-file storage: the ECC variant
//!    corrects every single-bit flip on read, driving its sAVF to zero.
//! 2. **A small delay fault** on the register write-enable path: one fault
//!    delays the enable of all 38 codeword bits at once, producing a
//!    multi-bit error that SEC ECC miscorrects — a program-visible failure
//!    that no individual bit flip would cause (ACE compounding).
//!
//! Run with: `cargo run --release --example ecc_wordline`

use delayavf::{GoldenRun, Injector};
use delayavf_isa::assemble;
use delayavf_netlist::{Driver, Topology};
use delayavf_rvcore::{build_core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::GoldenTrace;
use delayavf_timing::{TechLibrary, TimingModel};

fn main() {
    let program = assemble(
        r#"
        li   a0, 0x5a5
        li   a1, 0x2da
        add  a2, a0, a1      # the observed write
        xor  a3, a2, a0
        li   t0, 0x10004
        sw   a3, 0(t0)
        ebreak
        "#,
    )
    .expect("assembles");

    for ecc in [false, true] {
        let core = build_core(CoreConfig {
            ecc_regfile: ecc,
            ..CoreConfig::default()
        });
        let c = &core.circuit;
        let topo = Topology::new(c);
        let timing = TimingModel::analyze(c, &topo, &TechLibrary::nangate45_like());
        let env = MemEnv::new(c, DEFAULT_RAM_BYTES, &program);

        // Find the cycle writing a2 (x12) and checkpoint it.
        let mut probe = env.clone();
        let (trace, _) = GoldenTrace::record(c, &topo, &mut probe, 200, &[]);
        let x12 = core.handle.regfile.storage(12);
        let nd = c.num_dffs();
        let write_cycle = (1..trace.num_cycles())
            .find(|&cy| {
                let a = trace.state_bits_at(cy, nd);
                let b = trace.state_bits_at(cy + 1, nd);
                x12.iter().any(|d| a[d.index()] != b[d.index()])
            })
            .expect("x12 written");
        let mut env2 = env.clone();
        let (trace, cps) = GoldenTrace::record(c, &topo, &mut env2, 200, &[write_cycle]);
        let golden = GoldenRun {
            trace,
            checkpoints: cps.into_iter().map(|cp| (cp.cycle, cp)).collect(),
            sampled_cycles: vec![write_cycle],
        };
        let mut inj = Injector::new(c, &topo, &timing, &golden, 200);

        println!(
            "\n== register file {} ==",
            if ecc { "WITH SEC ECC" } else { "without ECC" }
        );

        // 1. Particle strikes into x12's storage bits at the write boundary.
        let struck_ace = x12
            .iter()
            .filter(|&&d| inj.bit_ace(write_cycle + 1, d))
            .count();
        println!(
            "particle strikes: {}/{} storage bit flips are ACE",
            struck_ace,
            x12.len()
        );

        // 2. A small delay fault on the write-enable AND gate's inputs.
        let mux_gate = match c.net(c.dff(x12[0]).d()).driver() {
            Driver::Gate(g) => g,
            _ => unreachable!("hold mux"),
        };
        let sel_net = c.gate(mux_gate).inputs()[0];
        let and_gate = match c.net(sel_net).driver() {
            Driver::Gate(g) => g,
            _ => unreachable!("enable AND"),
        };
        for e in topo.gate_in_edges(and_gate) {
            let out = inj.inject(write_cycle, e, timing.clock_period());
            if out.dynamic_set.is_empty() {
                continue;
            }
            println!(
                "delay fault on enable edge {e}: {} simultaneous state-element errors, program-visible: {}",
                out.dynamic_set.len(),
                out.visible
            );
        }
    }
    println!(
        "\nTakeaway: ECC zeroes the particle-strike AVF but the delay fault\n\
         still defeats it through a multi-bit codeword error (Observation 5)."
    );
}
