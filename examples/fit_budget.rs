//! From DelayAVF to a failure-rate budget: derate a raw per-wire
//! small-delay-fault rate by each structure's measured DelayAVF and sum to
//! a design-level FIT estimate — the final multiplication the paper assigns
//! to DelayAVF ("to estimate the failure rate of a structure, DelayAVF can
//! be multiplied with the rate at which a given structure experiences a
//! small delay fault", §III-B).
//!
//! Usage: `cargo run --release --example fit_budget [kernel] [d%] [raw_fit_per_wire]`
//! (defaults: `md5`, 80%, 1e-4 FIT/wire).

use delayavf::fit::{structure_fit, total_fit};
use delayavf::{delay_avf_campaign, prepare_golden, sample_edges, CampaignConfig};
use delayavf_netlist::Topology;
use delayavf_rvcore::{build_core, Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

fn main() {
    let kernel_name = std::env::args().nth(1).unwrap_or_else(|| "md5".into());
    let d_pct: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80.0);
    let raw: f64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1e-4);
    let Some(kernel) = Kernel::parse(&kernel_name) else {
        eprintln!("unknown kernel `{kernel_name}`");
        std::process::exit(2);
    };

    let core = build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let workload = kernel.build(Scale::Paper);
    let program = workload.assemble().expect("assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &program);
    eprintln!("recording golden run of {kernel} ...");
    let golden = prepare_golden(&core.circuit, &topo, &env, workload.max_cycles, 20);
    let config = CampaignConfig::single_delay(d_pct / 100.0);

    println!("\nFIT budget under {kernel} at d = {d_pct:.0}% (raw rate {raw:.1e} FIT/wire):\n");
    println!(
        "{:<10} {:>8} {:>10} {:>12}",
        "structure", "wires", "DelayAVF", "FIT"
    );
    let mut rows = Vec::new();
    for structure in Core::structure_names() {
        let all = topo
            .structure_edges(&core.circuit, structure)
            .expect("tagged");
        let edges = sample_edges(&all, 200, 1);
        let davf = delay_avf_campaign(&core.circuit, &topo, &timing, &golden, &edges, &config)[0]
            .delay_avf();
        let row = structure_fit(structure, all.len(), davf, raw);
        println!(
            "{:<10} {:>8} {:>10.5} {:>12}",
            row.structure,
            row.wires,
            row.delay_avf,
            row.fit.to_string()
        );
        rows.push(row);
    }
    println!("{:-<44}", "");
    println!("{:<10} {:>32}", "total", total_fit(&rows).to_string());
    println!(
        "\nThe budget identifies where hardening buys the most FIT reduction\n\
         — typically not where raw wire counts alone would point."
    );
}
