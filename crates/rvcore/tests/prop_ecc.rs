//! Property tests for the Hamming(38,32) code.

use delayavf_rvcore::ecc;
use proptest::prelude::*;

proptest! {
    #[test]
    fn encode_decode_round_trips(data: u32) {
        let code = ecc::encode(data);
        prop_assert_eq!(ecc::decode(code), data);
        prop_assert_eq!(ecc::data_of(code), data);
    }

    #[test]
    fn any_single_flip_is_corrected(data: u32, pos in 0usize..ecc::CODE_BITS) {
        let code = ecc::encode(data);
        prop_assert_eq!(ecc::decode(code ^ (1 << pos)), data);
    }

    #[test]
    fn codewords_differ_in_at_least_three_bits(a: u32, b: u32) {
        // Hamming distance ≥ 3 between distinct codewords — the property
        // single-error correction rests on.
        prop_assume!(a != b);
        let dist = (ecc::encode(a) ^ ecc::encode(b)).count_ones();
        prop_assert!(dist >= 3, "distance {dist} between {a:#x} and {b:#x}");
    }

    #[test]
    fn double_flips_touching_data_always_miscorrect(
        data: u32,
        p1 in 0usize..ecc::CODE_BITS,
        p2 in 0usize..ecc::CODE_BITS,
    ) {
        // SEC without DED: when at least one of the two flips lands on a
        // data position, the decoder mis-corrects — the mechanism behind
        // the paper's regfile-ECC ACE compounding. (Two flips confined to
        // parity positions can leave the data intact: the syndrome then
        // points at a third position or out of range.)
        prop_assume!(p1 != p2);
        let is_parity = |p: usize| (p + 1).is_power_of_two();
        prop_assume!(!is_parity(p1) || !is_parity(p2));
        let code = ecc::encode(data) ^ (1 << p1) ^ (1 << p2);
        prop_assert_ne!(ecc::decode(code), data);
    }
}
