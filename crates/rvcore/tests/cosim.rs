//! Co-simulation: the gate-level core against the golden ISS.
//!
//! Every program runs on both models; program output (console + termination
//! tag) and the final architectural register file must agree. Programs end
//! with an `ebreak` after the exit store so the core cannot retire anything
//! past the ISS's stopping point.

use delayavf_isa::{assemble, Iss, Reg, StopCause};
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::{CycleSim, Environment, StopReason};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct CosimResult {
    cause: StopCause,
    cycles: u64,
}

fn cosim_with_config(src: &str, max_cycles: u64, config: CoreConfig) -> CosimResult {
    let program = assemble(src).expect("program assembles");

    let mut iss = Iss::new(DEFAULT_RAM_BYTES);
    iss.load(&program);
    let cause = iss.run(max_cycles);
    let iss_output = iss.program_output(cause);

    let (core, topo) = Core::with_topology(config);
    let mut env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &program);
    let mut sim = CycleSim::new(&core.circuit, &topo);
    let summary = sim.run(&mut env, max_cycles);

    assert_eq!(
        summary.reason,
        StopReason::Halted,
        "core halts within {max_cycles} cycles (ISS: {cause:?})"
    );
    assert_eq!(
        env.program_output(),
        iss_output,
        "program output matches ISS (console={:?}, termination={:?})",
        String::from_utf8_lossy(env.console()),
        env.termination()
    );
    for i in 1..16 {
        assert_eq!(
            core.handle.read_reg(sim.state(), i),
            iss.reg(Reg::new(i as u8)),
            "x{i} matches after halt"
        );
    }
    CosimResult {
        cause,
        cycles: summary.end_cycle,
    }
}

fn cosim(src: &str, max_cycles: u64) -> CosimResult {
    cosim_with_config(src, max_cycles, CoreConfig::default())
}

#[test]
fn exit_with_alu_arithmetic() {
    let r = cosim(
        r#"
        li   a0, 100
        li   a1, -30
        add  a2, a0, a1
        sub  a3, a2, a1       # 100
        xor  a4, a3, a2       # 100 ^ 70
        li   t0, 0x10004
        sw   a4, 0(t0)
        ebreak
        "#,
        200,
    );
    assert_eq!(r.cause, StopCause::Exit(100 ^ 70));
}

#[test]
fn every_alu_op_once() {
    let r = cosim(
        r#"
        li   a0, 0x1234
        li   a1, 9
        add  s0, a0, a1
        sub  s0, s0, a1
        sll  s1, a0, a1
        srl  t0, s1, a1
        sra  t1, s1, a1
        and  t2, a0, a1
        or   a2, a0, a1
        xor  a3, a0, a1
        slt  a4, a1, a0
        sltu a5, a0, a1
        slti  gp, a0, -5
        sltiu tp, a0, 0x7ff
        andi  ra, a0, 0xff
        ori   sp, a0, 0x700
        xori  a1, a0, -1
        li   t0, 0x10004
        sw   s0, 0(t0)
        ebreak
        "#,
        300,
    );
    assert_eq!(r.cause, StopCause::Exit(0x1234));
}

#[test]
fn branches_in_both_directions() {
    let r = cosim(
        r#"
            li   a0, 0
            li   a1, 10
        loop:
            add  a0, a0, a1
            addi a1, a1, -1
            bnez a1, loop
            blt  a0, zero, bad
            bge  a0, zero, good
        bad:
            li   a0, 999
        good:
            li   t0, 0x10004
            sw   a0, 0(t0)
            ebreak
        "#,
        500,
    );
    assert_eq!(r.cause, StopCause::Exit(55));
}

#[test]
fn all_branch_kinds() {
    let r = cosim(
        r#"
            li   s0, 0          # score
            li   a0, -3
            li   a1, 5
            beq  a0, a0, c1
            j    done
        c1: addi s0, s0, 1
            bne  a0, a1, c2
            j    done
        c2: addi s0, s0, 1
            blt  a0, a1, c3     # -3 < 5 signed
            j    done
        c3: addi s0, s0, 1
            bge  a1, a0, c4
            j    done
        c4: addi s0, s0, 1
            bltu a1, a0, c5     # 5 < 0xfffffffd unsigned
            j    done
        c5: addi s0, s0, 1
            bgeu a0, a1, c6
            j    done
        c6: addi s0, s0, 1
        done:
            li   t0, 0x10004
            sw   s0, 0(t0)
            ebreak
        "#,
        300,
    );
    assert_eq!(r.cause, StopCause::Exit(6));
}

#[test]
fn loads_and_stores_all_widths() {
    let r = cosim(
        r#"
            li   t0, 0x2000
            li   a0, 0xdeadbeef
            sw   a0, 0(t0)
            lw   a1, 0(t0)
            lb   a2, 0(t0)       # 0xffffffef
            lbu  a3, 1(t0)       # 0xbe
            lh   a4, 2(t0)       # 0xffffdead
            lhu  a5, 2(t0)       # 0xdead
            sb   a3, 4(t0)
            sh   a5, 6(t0)
            lw   s0, 4(t0)       # 0xdead00be
            add  s1, a1, a2
            li   t0, 0x10004
            sw   s0, 0(t0)
            ebreak
        "#,
        300,
    );
    assert_eq!(r.cause, StopCause::Exit(0xdead_00be));
}

#[test]
fn function_calls_and_memory_stack() {
    let r = cosim(
        r#"
            li   sp, 0x8000
            li   a0, 10
            call fib
            li   t0, 0x10004
            sw   a0, 0(t0)
            ebreak
        # iterative fibonacci
        fib:
            li   t0, 0
            li   t1, 1
        fib_loop:
            beqz a0, fib_done
            add  t2, t0, t1
            mv   t0, t1
            mv   t1, t2
            addi a0, a0, -1
            j    fib_loop
        fib_done:
            mv   a0, t0
            ret
        "#,
        2000,
    );
    assert_eq!(r.cause, StopCause::Exit(55));
}

#[test]
fn console_output_matches() {
    let r = cosim(
        r#"
            la   a1, msg
            li   t0, 0x10000
        put:
            lbu  a0, 0(a1)
            beqz a0, fin
            sw   a0, 0(t0)
            addi a1, a1, 1
            j    put
        fin:
            li   t0, 0x10004
            sw   zero, 0(t0)
            ebreak
        msg:
            .asciz "hello, gates"
        "#,
        2000,
    );
    assert_eq!(r.cause, StopCause::Exit(0));
}

#[test]
fn lui_auipc_jalr() {
    let r = cosim(
        r#"
            lui   a0, 0xabcde
            srli  a0, a0, 12     # 0xabcde
            auipc a1, 0          # pc of this instruction (8)
            la    a2, target
            jalr  ra, 0(a2)
        after:
            li    t0, 0x10004
            sw    s0, 0(t0)
            ebreak
        target:
            add   s0, a0, a1
            ret
        "#,
        300,
    );
    assert_eq!(r.cause, StopCause::Exit(0xabcde + 8));
}

#[test]
fn ebreak_terminates_without_exit() {
    let r = cosim("li a0, 1\nebreak\n", 100);
    assert_eq!(r.cause, StopCause::Break);
}

#[test]
fn cycle_count_is_reasonable() {
    // 1 boot cycle + ~1 cycle per ALU instruction + 2 per load.
    let r = cosim(
        r#"
        li   t0, 0x2000
        sw   t0, 0(t0)
        lw   a0, 0(t0)
        lw   a1, 0(t0)
        li   t1, 0x10004
        sw   a0, 0(t1)
        ebreak
        "#,
        100,
    );
    // boot+wait (2) + 2 cycles per ALU/store instruction (li 0x2000 and
    // li 0x10004 are two instructions each), 3 per load, plus the two-cycle
    // lag until the environment observes the exit write: 2 + 2*(2+1+2+1)
    // + 3*2 + lag = 21.
    assert_eq!(r.cycles, 21, "cycles = {}", r.cycles);
}

#[test]
fn ecc_core_runs_identically() {
    let src = r#"
        li   a0, 0
        li   a1, 20
    loop:
        add  a0, a0, a1
        addi a1, a1, -1
        bnez a1, loop
        li   t0, 0x10004
        sw   a0, 0(t0)
        ebreak
    "#;
    let plain = cosim_with_config(
        src,
        500,
        CoreConfig {
            ecc_regfile: false,
            ..CoreConfig::default()
        },
    );
    let ecc = cosim_with_config(
        src,
        500,
        CoreConfig {
            ecc_regfile: true,
            ..CoreConfig::default()
        },
    );
    assert_eq!(plain.cause, StopCause::Exit(210));
    assert_eq!(ecc.cause, StopCause::Exit(210));
    assert_eq!(plain.cycles, ecc.cycles, "ECC is timing-transparent");
}

#[test]
fn fast_adder_core_runs_identically() {
    let src = r#"
        li   a0, 0x7fffffff
        li   a1, 1
        add  a2, a0, a1      # overflow wrap
        sltu a3, a2, a0
        sub  a4, a2, a0
        li   t0, 0x10004
        sw   a4, 0(t0)
        ebreak
    "#;
    let plain = cosim_with_config(src, 200, CoreConfig::default());
    let fast = cosim_with_config(
        src,
        200,
        CoreConfig {
            fast_adder: true,
            ..CoreConfig::default()
        },
    );
    assert_eq!(plain.cause, fast.cause);
    assert_eq!(
        plain.cycles, fast.cycles,
        "adder choice is timing-transparent at the ISA level"
    );
}

#[test]
fn random_alu_programs_agree_with_iss() {
    let mut rng = StdRng::seed_from_u64(0xc0de);
    for trial in 0..10 {
        let mut src = String::new();
        // Seed registers with random values.
        for i in 1..16 {
            src.push_str(&format!("li x{i}, {}\n", rng.gen::<i32>()));
        }
        // Random straight-line ALU ops (avoid x0 as destination half the
        // time to keep values flowing).
        let ops3 = [
            "add", "sub", "sll", "srl", "sra", "and", "or", "xor", "slt", "sltu",
        ];
        let opsi = ["addi", "andi", "ori", "xori", "slti", "sltiu"];
        for _ in 0..60 {
            if rng.gen_bool(0.7) {
                let op = ops3[rng.gen_range(0..ops3.len())];
                src.push_str(&format!(
                    "{op} x{}, x{}, x{}\n",
                    rng.gen_range(1..16),
                    rng.gen_range(0..16),
                    rng.gen_range(0..16)
                ));
            } else if rng.gen_bool(0.5) {
                let op = opsi[rng.gen_range(0..opsi.len())];
                src.push_str(&format!(
                    "{op} x{}, x{}, {}\n",
                    rng.gen_range(1..16),
                    rng.gen_range(0..16),
                    rng.gen_range(-2048i32..2048)
                ));
            } else {
                let op = ["slli", "srli", "srai"][rng.gen_range(0..3)];
                src.push_str(&format!(
                    "{op} x{}, x{}, {}\n",
                    rng.gen_range(1..16),
                    rng.gen_range(0..16),
                    rng.gen_range(0..32)
                ));
            }
        }
        // Fold everything into an exit code.
        src.push_str("xor x5, x5, x6\nxor x5, x5, x7\n");
        src.push_str("li x6, 0x10004\nsw x5, 0(x6)\nebreak\n");
        let r = cosim(&src, 1000);
        assert!(matches!(r.cause, StopCause::Exit(_)), "trial {trial}");
    }
}

#[test]
fn random_memory_programs_agree_with_iss() {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for _trial in 0..6 {
        let mut src = String::new();
        src.push_str("li s0, 0x3000\n"); // scratch base
        for i in 1..8 {
            src.push_str(&format!("li x{i}, {}\n", rng.gen::<i32>()));
        }
        for _ in 0..40 {
            let offset = rng.gen_range(0..32) * 4;
            match rng.gen_range(0..6) {
                0 => src.push_str(&format!("sw x{}, {offset}(s0)\n", rng.gen_range(1..8))),
                1 => src.push_str(&format!(
                    "sh x{}, {}(s0)\n",
                    rng.gen_range(1..8),
                    offset + 2 * rng.gen_range(0..2)
                )),
                2 => src.push_str(&format!(
                    "sb x{}, {}(s0)\n",
                    rng.gen_range(1..8),
                    offset + rng.gen_range(0..4)
                )),
                3 => src.push_str(&format!("lw x{}, {offset}(s0)\n", rng.gen_range(1..8))),
                4 => src.push_str(&format!(
                    "lh x{}, {}(s0)\n",
                    rng.gen_range(1..8),
                    offset + 2 * rng.gen_range(0..2)
                )),
                _ => src.push_str(&format!(
                    "lbu x{}, {}(s0)\n",
                    rng.gen_range(1..8),
                    offset + rng.gen_range(0..4)
                )),
            }
        }
        src.push_str("xor a0, x1, x2\nxor a0, a0, x3\n");
        src.push_str("li t0, 0x10004\nsw a0, 0(t0)\nebreak\n");
        let r = cosim(&src, 2000);
        assert!(matches!(r.cause, StopCause::Exit(_)));
    }
}
