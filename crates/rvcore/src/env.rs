//! The core's execution environment: RAM, MMIO console/exit, and trap
//! accounting. Implements [`delayavf_sim::Environment`].

use delayavf_isa::{mmio, Program, StopCause, Trap};
use delayavf_netlist::Circuit;
use delayavf_sim::Environment;

/// Index positions of the core's ports, resolved once by name.
#[derive(Clone, Copy, Debug)]
struct PortMap {
    // Inputs.
    imem_rdata: usize,
    dmem_rdata: usize,
    // Outputs.
    imem_req: usize,
    imem_addr: usize,
    dmem_req: usize,
    dmem_we: usize,
    dmem_addr: usize,
    dmem_wdata: usize,
    dmem_be: usize,
    halt: usize,
    trap: usize,
}

impl PortMap {
    fn resolve(circuit: &Circuit) -> PortMap {
        let in_idx = |name: &str| {
            circuit
                .input_ports()
                .iter()
                .position(|p| p.name() == name)
                .unwrap_or_else(|| panic!("core has input port `{name}`"))
        };
        let out_idx = |name: &str| {
            circuit
                .output_ports()
                .iter()
                .position(|p| p.name() == name)
                .unwrap_or_else(|| panic!("core has output port `{name}`"))
        };
        PortMap {
            imem_rdata: in_idx("imem_rdata"),
            dmem_rdata: in_idx("dmem_rdata"),
            imem_req: out_idx("imem_req"),
            imem_addr: out_idx("imem_addr"),
            dmem_req: out_idx("dmem_req"),
            dmem_we: out_idx("dmem_we"),
            dmem_addr: out_idx("dmem_addr"),
            dmem_wdata: out_idx("dmem_wdata"),
            dmem_be: out_idx("dmem_be"),
            halt: out_idx("halt"),
            trap: out_idx("trap"),
        }
    }
}

/// RAM + MMIO environment for the gate-level core.
///
/// The memory interface is word-based with byte enables and one cycle of
/// latency (requests sampled at a clock edge are answered during the next
/// cycle). Write side effects fold into an order-sensitive
/// [`Environment::fingerprint`] used by fault campaigns for convergence
/// detection.
///
/// Program-visible termination mirrors the ISS conventions: a store to
/// [`mmio::EXIT`] ends the program with an exit code, the core's `halt`
/// output (ECALL/EBREAK) maps to [`StopCause::Break`], and the core's `trap`
/// output or an invalid memory request maps to a trap.
#[derive(Clone, Debug)]
pub struct MemEnv {
    mem: Vec<u8>,
    console: Vec<u8>,
    exit: Option<u32>,
    break_hit: bool,
    trapped: bool,
    fp: u64,
    ports: PortMap,
}

impl MemEnv {
    /// Creates an environment with `mem_size` bytes of RAM (must not reach
    /// into the MMIO window at [`mmio::CONSOLE`]) and the program image
    /// loaded at address 0.
    ///
    /// # Panics
    ///
    /// Panics if the circuit lacks the core's ports, if RAM overlaps MMIO,
    /// or if the program does not fit.
    pub fn new(circuit: &Circuit, mem_size: usize, program: &Program) -> MemEnv {
        assert!(
            mem_size as u64 <= u64::from(mmio::CONSOLE),
            "RAM would overlap the MMIO window"
        );
        assert!(program.len() <= mem_size, "program does not fit in RAM");
        let mut mem = vec![0u8; mem_size.next_multiple_of(4)];
        mem[..program.len()].copy_from_slice(program.bytes());
        MemEnv {
            mem,
            console: Vec::new(),
            exit: None,
            break_hit: false,
            trapped: false,
            fp: 0xcbf2_9ce4_8422_2325, // FNV offset basis
            ports: PortMap::resolve(circuit),
        }
    }

    /// Console bytes written so far.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Exit code, once the program wrote one.
    pub fn exit_code(&self) -> Option<u32> {
        self.exit
    }

    /// How the program terminated so far; [`StopCause::OutOfTime`] while it
    /// is still running.
    pub fn termination(&self) -> StopCause {
        if let Some(code) = self.exit {
            StopCause::Exit(code)
        } else if self.trapped {
            // The environment has no architectural trap details; any trap
            // value carries the same program-visible tag.
            StopCause::Trap(Trap::Illegal { word: 0, pc: 0 })
        } else if self.break_hit {
            StopCause::Break
        } else {
            StopCause::OutOfTime
        }
    }

    /// Reads a word of RAM (test/debug helper).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is misaligned or out of range.
    pub fn peek_word(&self, addr: u32) -> u32 {
        assert_eq!(addr % 4, 0);
        let a = addr as usize;
        u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("in range"))
    }

    fn mix(&mut self, value: u64) {
        self.fp = (self.fp ^ value).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl Environment for MemEnv {
    fn step(&mut self, _cycle: u64, prev_outputs: &[u64], inputs: &mut [u64]) {
        let p = self.ports;
        if prev_outputs.is_empty() {
            return; // first call before any outputs exist is a no-op
        }
        if prev_outputs[p.halt] != 0 && !self.break_hit {
            self.break_hit = true;
            self.mix(0xb0);
        }
        if prev_outputs[p.trap] != 0 && !self.trapped {
            self.trapped = true;
            self.mix(0x7a);
        }

        // Data memory first, so an EXIT write is honored before any
        // fetch-side trap from the same cycle.
        if prev_outputs[p.dmem_req] != 0 {
            let addr = prev_outputs[p.dmem_addr] as u32;
            if prev_outputs[p.dmem_we] != 0 {
                let wdata = prev_outputs[p.dmem_wdata] as u32;
                let be = prev_outputs[p.dmem_be] as u32 & 0xf;
                self.mix(0xd0 ^ (u64::from(addr) << 8) ^ (u64::from(wdata) << 16) ^ u64::from(be));
                if addr == mmio::CONSOLE {
                    self.console.push(wdata as u8);
                } else if addr == mmio::EXIT {
                    self.exit = Some(wdata);
                } else if (addr as usize) + 4 <= self.mem.len() {
                    for lane in 0..4 {
                        if be & (1 << lane) != 0 {
                            self.mem[addr as usize + lane] = (wdata >> (8 * lane)) as u8;
                        }
                    }
                } else if !self.halted() {
                    self.trapped = true;
                    self.mix(0x7b);
                }
            } else {
                let rdata = if addr == mmio::CONSOLE || addr == mmio::EXIT {
                    0
                } else if (addr as usize) + 4 <= self.mem.len() {
                    u32::from_le_bytes(
                        self.mem[addr as usize..addr as usize + 4]
                            .try_into()
                            .expect("in range"),
                    )
                } else {
                    if !self.halted() {
                        self.trapped = true;
                        self.mix(0x7c);
                    }
                    0
                };
                inputs[p.dmem_rdata] = u64::from(rdata);
            }
        }

        // Instruction fetch.
        if prev_outputs[p.imem_req] != 0 {
            let addr = prev_outputs[p.imem_addr] as u32;
            if addr.is_multiple_of(4) && (addr as usize) + 4 <= self.mem.len() {
                inputs[p.imem_rdata] = u64::from(u32::from_le_bytes(
                    self.mem[addr as usize..addr as usize + 4]
                        .try_into()
                        .expect("in range"),
                ));
            } else {
                if !self.halted() {
                    self.trapped = true;
                    self.mix(0x7d);
                }
                inputs[p.imem_rdata] = 0;
            }
        }
    }

    fn halted(&self) -> bool {
        self.exit.is_some() || self.trapped || self.break_hit
    }

    fn failed_abnormally(&self) -> bool {
        self.exit.is_none() && (self.trapped || self.break_hit)
    }

    fn fingerprint(&self) -> u64 {
        self.fp
    }

    fn program_output(&self) -> Vec<u8> {
        self.termination().encode_output(&self.console)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{build_core, CoreConfig};
    use delayavf_isa::assemble;

    #[test]
    fn port_map_resolves_on_the_real_core() {
        let core = build_core(CoreConfig::default());
        let p = assemble("nop\n").unwrap();
        let env = MemEnv::new(&core.circuit, 4096, &p);
        assert!(!env.halted());
        assert_eq!(env.termination(), StopCause::OutOfTime);
        assert_eq!(env.peek_word(0), p.words()[0]);
    }

    #[test]
    fn ram_overlapping_mmio_is_rejected() {
        let core = build_core(CoreConfig::default());
        let p = assemble("nop\n").unwrap();
        let result = std::panic::catch_unwind(|| {
            MemEnv::new(&core.circuit, (mmio::CONSOLE as usize) + 4, &p)
        });
        assert!(result.is_err());
    }
}
