//! The studied design: a gate-level RV32E core ("Ibexa") standing in for
//! the paper's Ibex case study, plus its memory environment.
//!
//! Unlike an RTL core that would need synthesis, this core is *constructed
//! directly as a gate-level netlist* using `delayavf-netlist`'s builder, so
//! the DelayAVF analyses (static timing, timing-aware fault injection,
//! architectural correctness checks) can consume it without any EDA
//! tooling. See [`core`] for the microarchitecture and
//! [`build_core`] for entry.
//!
//! The five analysis structures from the paper's Ibex study are tagged on
//! the netlist: `alu`, `decoder`, `regfile` (optionally ECC-protected),
//! `lsu` and `prefetch` (plus the `control` FSM). Use
//! [`Core::structure_names`] to enumerate them.
//!
//! # Example
//!
//! Run a program to completion on the gate-level core:
//!
//! ```
//! use delayavf_rvcore::{build_core, CoreConfig, MemEnv};
//! use delayavf_isa::assemble;
//! use delayavf_netlist::Topology;
//! use delayavf_sim::{CycleSim, Environment};
//!
//! let program = assemble("li a0, 7\nli t0, 0x10004\nsw a0, 0(t0)\nebreak\n")?;
//! let core = build_core(CoreConfig::default());
//! let topo = Topology::new(&core.circuit);
//! let mut env = MemEnv::new(&core.circuit, 4096, &program);
//! let mut sim = CycleSim::new(&core.circuit, &topo);
//! sim.run(&mut env, 100);
//! assert_eq!(env.exit_code(), Some(7));
//! # Ok::<(), delayavf_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod core;
pub mod decoder;
pub mod ecc;
mod env;
pub mod lsu;
pub mod regfile;

pub use crate::core::{build_core, Core, CoreConfig, CoreHandle, CoreState};
pub use env::MemEnv;

/// Default RAM size used by examples, tests and campaigns: the full 64 KiB
/// below the MMIO window.
pub const DEFAULT_RAM_BYTES: usize = 0x1_0000;
