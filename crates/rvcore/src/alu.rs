//! The arithmetic/logic unit: one shared adder/subtractor, a shared barrel
//! shifter, bitwise logic, comparators and the result select tree.

use delayavf_netlist::{CircuitBuilder, NetId, Word};

/// ALU outputs.
#[derive(Clone, Debug)]
pub struct AluOut {
    /// The selected result (respects `force_add`).
    pub result: Word,
    /// The raw adder output (address generation, JALR target).
    pub add_result: Word,
    /// `op_a == op_b` (valid when the adder subtracts).
    pub eq: NetId,
    /// Signed `op_a < op_b` (valid when the adder subtracts).
    pub lt_s: NetId,
    /// Unsigned `op_a < op_b` (valid when the adder subtracts).
    pub lt_u: NetId,
}

/// Builds the ALU. The caller wraps this in `in_structure("alu", ..)`.
///
/// * `op_a`/`op_b` — 32-bit operands (already selected: rs1/PC/zero and
///   rs2/immediate),
/// * `funct3` — operation select in standard RV32 encoding,
/// * `adder_sub` — subtract instead of add (SUB, branches, SLT/SLTU),
/// * `shift_arith` — right shifts replicate the sign bit,
/// * `force_add` — bypass the funct3 mux and output the adder result,
/// * `fast_adder` — use a Kogge–Stone parallel-prefix adder instead of the
///   ripple-carry chain (shallower paths, more gates; shifts the
///   structure's path-length distribution and therefore its DelayAVF
///   profile).
#[allow(clippy::too_many_arguments)] // hardware port lists are naturally wide
pub fn build_alu(
    b: &mut CircuitBuilder,
    op_a: &Word,
    op_b: &Word,
    funct3: &Word,
    adder_sub: NetId,
    shift_arith: NetId,
    force_add: NetId,
    fast_adder: bool,
) -> AluOut {
    assert_eq!(op_a.width(), 32);
    assert_eq!(op_b.width(), 32);
    assert_eq!(funct3.width(), 3);

    // Shared adder: a + (b ^ sub) + sub.
    let sub_mask = b.repeat(adder_sub, 32);
    let b_eff = b.w_xor(op_b, &sub_mask);
    let (sum, carry) = if fast_adder {
        b.add_fast_with_carry(op_a, &b_eff, adder_sub)
    } else {
        b.add_with_carry(op_a, &b_eff, adder_sub)
    };

    // Comparisons from the subtraction.
    let eq = b.is_zero(&sum);
    let lt_u = b.not(carry);
    let sign_diff = b.xor(op_a.msb(), op_b.msb());
    let lt_s = b.mux(sign_diff, sum.msb(), op_a.msb());

    // Shifter: shared right-shift barrel with selectable fill; separate
    // left barrel.
    let amount = op_b.slice(0, 5);
    let sll = b.shl(op_a, &amount);
    let fill = b.and(shift_arith, op_a.msb());
    let srx = b.shr_with_fill(op_a, &amount, fill);

    // Bitwise logic.
    let xor_w = b.w_xor(op_a, op_b);
    let or_w = b.w_or(op_a, op_b);
    let and_w = b.w_and(op_a, op_b);

    // Flag results.
    let slt_w = {
        let w = Word::from_bits(vec![lt_s]);
        b.zext(&w, 32)
    };
    let sltu_w = {
        let w = Word::from_bits(vec![lt_u]);
        b.zext(&w, 32)
    };

    let selected = b.mux_tree(
        funct3,
        &[sum.clone(), sll, slt_w, sltu_w, xor_w, srx, or_w, and_w],
    );
    let result = b.mux_word(force_add, &selected, &sum);

    AluOut {
        result,
        add_result: sum,
        eq,
        lt_s,
        lt_u,
    }
}

/// Builds the branch-taken signal from the comparator outputs and funct3.
pub fn build_branch_taken(
    b: &mut CircuitBuilder,
    funct3: &Word,
    eq: NetId,
    lt_s: NetId,
    lt_u: NetId,
) -> NetId {
    let ne = b.not(eq);
    let ge_s = b.not(lt_s);
    let ge_u = b.not(lt_u);
    let zero = b.const0();
    let items: Vec<Word> = [eq, ne, zero, zero, lt_s, ge_s, lt_u, ge_u]
        .into_iter()
        .map(|n| Word::from_bits(vec![n]))
        .collect();
    b.mux_tree(funct3, &items).bit(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_isa::AluOp;
    use delayavf_netlist::{Circuit, Topology};
    use delayavf_sim::settle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct Harness {
        c: Circuit,
        topo: Topology,
    }

    fn harness() -> Harness {
        let mut b = CircuitBuilder::new();
        let a = b.input_word("a", 32);
        let bb = b.input_word("b", 32);
        let f3 = b.input_word("f3", 3);
        let sub = b.input("sub");
        let arith = b.input("arith");
        let force = b.input("force");
        let alu = b.in_structure("alu", |b| {
            build_alu(b, &a, &bb, &f3, sub, arith, force, false)
        });
        let taken = build_branch_taken(&mut b, &f3, alu.eq, alu.lt_s, alu.lt_u);
        b.output_word("result", &alu.result);
        b.output_word("add", &alu.add_result);
        b.output("eq", alu.eq);
        b.output("lt_s", alu.lt_s);
        b.output("lt_u", alu.lt_u);
        b.output("taken", taken);
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        Harness { c, topo }
    }

    fn eval(h: &Harness, a: u32, b: u32, f3: u64, sub: u64, arith: u64, force: u64) -> Vec<u64> {
        let v = settle(
            &h.c,
            &h.topo,
            &[],
            &[u64::from(a), u64::from(b), f3, sub, arith, force],
        );
        h.c.output_ports()
            .iter()
            .map(|p| {
                p.nets()
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &n)| acc | (u64::from(v[n.index()]) << i))
            })
            .collect()
    }

    /// (f3, sub, arith) control encoding for each RV32 ALU op.
    fn controls(op: AluOp) -> (u64, u64, u64) {
        match op {
            AluOp::Add => (0, 0, 0),
            AluOp::Sub => (0, 1, 0),
            AluOp::Sll => (1, 0, 0),
            AluOp::Slt => (2, 1, 0),
            AluOp::Sltu => (3, 1, 0),
            AluOp::Xor => (4, 0, 0),
            AluOp::Srl => (5, 0, 0),
            AluOp::Sra => (5, 0, 1),
            AluOp::Or => (6, 0, 0),
            AluOp::And => (7, 0, 0),
        }
    }

    fn reference(op: AluOp, a: u32, b: u32) -> u32 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }

    #[test]
    fn all_operations_match_reference_on_corpus() {
        let h = harness();
        let mut rng = StdRng::seed_from_u64(11);
        let mut corpus: Vec<(u32, u32)> = vec![
            (0, 0),
            (1, 1),
            (0xffff_ffff, 1),
            (0x8000_0000, 0xffff_ffff),
            (0x7fff_ffff, 1),
            (5, 31),
        ];
        for _ in 0..40 {
            corpus.push((rng.gen(), rng.gen()));
        }
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
        ] {
            let (f3, sub, arith) = controls(op);
            for &(a, b) in &corpus {
                let out = eval(&h, a, b, f3, sub, arith, 0);
                assert_eq!(out[0] as u32, reference(op, a, b), "{op:?} {a:#x} {b:#x}");
            }
        }
    }

    #[test]
    fn comparator_flags_and_branch_taken() {
        let h = harness();
        let cases = [
            (5u32, 5u32),
            (3, 9),
            (9, 3),
            (0xffff_fff6, 10),
            (10, 0xffff_fff6),
            (0x8000_0000, 0x7fff_ffff),
        ];
        for (a, b) in cases {
            // Branch comparisons subtract.
            for (f3, expect) in [
                (0u64, a == b),
                (1, a != b),
                (4, (a as i32) < (b as i32)),
                (5, (a as i32) >= (b as i32)),
                (6, a < b),
                (7, a >= b),
            ] {
                let out = eval(&h, a, b, f3, 1, 0, 0);
                assert_eq!(out[5] == 1, expect, "f3={f3} a={a:#x} b={b:#x}");
            }
            let out = eval(&h, a, b, 0, 1, 0, 0);
            assert_eq!(out[2] == 1, a == b);
            assert_eq!(out[3] == 1, (a as i32) < (b as i32));
            assert_eq!(out[4] == 1, a < b);
        }
    }

    #[test]
    fn force_add_bypasses_funct3() {
        let h = harness();
        // f3 = 7 (AND) but force=1: result must be the sum.
        let out = eval(&h, 100, 23, 7, 0, 0, 1);
        assert_eq!(out[0], 123);
        assert_eq!(out[1], 123, "add_result matches");
    }
}
