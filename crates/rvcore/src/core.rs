//! Top-level assembly of the gate-level RV32E core ("Ibexa").
//!
//! Microarchitecture: an in-order core with a one-cycle registered memory
//! interface.
//!
//! * **BOOT** (one cycle) issues the first instruction fetch at PC 0.
//! * **EX** decodes and executes the instruction presented on `imem_rdata`
//!   (or held in the prefetch buffer), writes the register file, resolves
//!   the next PC and issues the next instruction fetch — 1 cycle per
//!   ALU/branch/store instruction.
//! * **LDW** (loads only) waits one cycle for `dmem_rdata`, writes the
//!   loaded value and executes the *prefetched* next instruction out of the
//!   prefetch buffer on the following cycle.
//! * **HALT** is entered on ECALL/EBREAK (`halt` output) or on an illegal
//!   instruction / misaligned access (`trap` output) and is never left.
//!
//! Every primary output is registered, so a timing fault inside a cycle can
//! only propagate into the future through flip-flop state — the property
//! that makes the paper's two-step DelayACE computation exact.
//!
//! Five microarchitectural structures are tagged for vulnerability analysis,
//! mirroring the paper's Ibex case study: `alu`, `decoder`, `regfile`,
//! `lsu`, `prefetch` (plus the `control` state machine).

use delayavf_netlist::{Circuit, CircuitBuilder, DffId, NetId, Topology, Word};

use crate::alu::{build_alu, build_branch_taken};
use crate::decoder::build_decoder;
use crate::lsu::{build_load_extract, build_misaligned, build_size_flags, build_store_align};
use crate::regfile::{build_regfile_reads, Regfile};

/// Machine states of the core's control FSM.
///
/// Because every output (including the fetch request) is registered and the
/// memory answers with one cycle of latency, a fetch round trip takes two
/// cycles: the issue cycle latches the request, a wait cycle exposes it to
/// the memory, and the data arrives in the following cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CoreState {
    /// Reset: issuing the first fetch.
    Boot = 0,
    /// Fetch in flight.
    FetchWait = 1,
    /// Executing an instruction (and issuing the next fetch).
    Execute = 2,
    /// Load request in flight (next fetch also in flight).
    MemWait = 3,
    /// Load data arriving: write it back and buffer the prefetched
    /// instruction.
    LoadWait = 4,
    /// Stopped (halt or trap).
    Halted = 5,
}

/// Configuration of the studied core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreConfig {
    /// Protect the register file with Hamming(38,32) single-error
    /// correction.
    pub ecc_regfile: bool,
    /// Use a Kogge–Stone parallel-prefix adder in the ALU instead of the
    /// ripple-carry chain (an ablation of the core's path-length profile).
    pub fast_adder: bool,
}

/// Introspection handles into the built core (flip-flop ids for the PC,
/// FSM state and register file).
#[derive(Clone, Debug)]
pub struct CoreHandle {
    /// The register file (read architectural registers through it).
    pub regfile: Regfile,
    /// PC register flip-flops, LSB first.
    pub pc: Vec<DffId>,
    /// FSM state flip-flops, LSB first.
    pub state: Vec<DffId>,
}

impl CoreHandle {
    /// Reads the PC out of a flip-flop state slice.
    pub fn read_pc(&self, state: &[bool]) -> u32 {
        self.pc
            .iter()
            .enumerate()
            .fold(0u32, |acc, (i, d)| acc | (u32::from(state[d.index()]) << i))
    }

    /// Reads the FSM state out of a flip-flop state slice.
    pub fn read_state(&self, state: &[bool]) -> CoreState {
        let v = self
            .state
            .iter()
            .enumerate()
            .fold(0u8, |acc, (i, d)| acc | (u8::from(state[d.index()]) << i));
        match v {
            0 => CoreState::Boot,
            1 => CoreState::FetchWait,
            2 => CoreState::Execute,
            3 => CoreState::MemWait,
            4 => CoreState::LoadWait,
            _ => CoreState::Halted,
        }
    }

    /// Reads architectural register `i` (x0 reads zero).
    pub fn read_reg(&self, state: &[bool], i: usize) -> u32 {
        if i == 0 {
            0
        } else {
            self.regfile.read_arch_reg(state, i)
        }
    }
}

/// A built core: the gate-level circuit plus introspection handles.
#[derive(Clone, Debug)]
pub struct Core {
    /// The gate-level netlist.
    pub circuit: Circuit,
    /// Handles for architectural inspection.
    pub handle: CoreHandle,
}

impl Core {
    /// Builds the core and its [`Topology`] in one call (convenience for
    /// tests and campaigns).
    pub fn with_topology(config: CoreConfig) -> (Core, Topology) {
        let core = build_core(config);
        let topo = Topology::new(&core.circuit);
        (core, topo)
    }

    /// The five analysis structure names tagged in every built core, in the
    /// paper's order, plus `control`.
    pub fn structure_names() -> [&'static str; 6] {
        ["alu", "decoder", "regfile", "lsu", "prefetch", "control"]
    }
}

/// Builds the gate-level core.
pub fn build_core(config: CoreConfig) -> Core {
    let mut b = CircuitBuilder::new();

    // Primary inputs (port order matters: the environment indexes by it).
    let imem_rdata = b.input_word("imem_rdata", 32);
    let dmem_rdata = b.input_word("dmem_rdata", 32);

    // --- control (state register) -------------------------------------
    let (state, in_boot, in_wait, in_ex, in_memw, in_ldw, _in_halt) =
        b.in_structure("control", |b| {
            let state = b.reg_word("state", 3, CoreState::Boot as u64);
            let q = state.q();
            let in_boot = b.eq_const(&q, CoreState::Boot as u64);
            let in_wait = b.eq_const(&q, CoreState::FetchWait as u64);
            let in_ex = b.eq_const(&q, CoreState::Execute as u64);
            let in_memw = b.eq_const(&q, CoreState::MemWait as u64);
            let in_ldw = b.eq_const(&q, CoreState::LoadWait as u64);
            let in_halt = b.eq_const(&q, CoreState::Halted as u64);
            (state, in_boot, in_wait, in_ex, in_memw, in_ldw, in_halt)
        });

    // --- prefetch (registers + instruction select) ---------------------
    let (pc, pbuf_instr, pbuf_valid, imem_req_r, imem_addr_r, instr) =
        b.in_structure("prefetch", |b| {
            let pc = b.reg_word("pc", 32, 0);
            let pbuf_instr = b.reg_word("pbuf_instr", 32, 0);
            let pbuf_valid = b.reg("pbuf_valid", false);
            let imem_req_r = b.reg("imem_req", false);
            let imem_addr_r = b.reg_word("imem_addr", 32, 0);
            let instr = b.mux_word(pbuf_valid.q(), &imem_rdata, &pbuf_instr.q());
            (pc, pbuf_instr, pbuf_valid, imem_req_r, imem_addr_r, instr)
        });

    // --- decoder --------------------------------------------------------
    let dec = b.in_structure("decoder", |b| build_decoder(b, &instr));

    // --- register file (reads) ------------------------------------------
    let rf = b.in_structure("regfile", |b| {
        build_regfile_reads(b, &dec.rs1, &dec.rs2, config.ecc_regfile)
    });

    // --- ALU (operand selection, datapath, branch decision) --------------
    let (alu, taken) = b.in_structure("alu", |b| {
        let zero32 = b.const_word(0, 32);
        let op_a = {
            let t = b.mux_word(dec.is_auipc, &rf.rdata1, &pc.q());
            b.mux_word(dec.is_lui, &t, &zero32)
        };
        let use_rs2 = b.or(dec.is_op, dec.is_branch);
        let op_b = b.mux_word(use_rs2, &dec.imm, &rf.rdata2);
        let alu = build_alu(
            b,
            &op_a,
            &op_b,
            &dec.funct3,
            dec.adder_sub,
            dec.shift_arith,
            dec.force_add,
            config.fast_adder,
        );
        let taken = build_branch_taken(b, &dec.funct3, alu.eq, alu.lt_s, alu.lt_u);
        (alu, taken)
    });

    // --- LSU (alignment datapath + memory-side registers) ----------------
    let lsu = b.in_structure("lsu", |b| {
        let size = build_size_flags(b, &dec.funct3);
        let addr_lo = alu.add_result.slice(0, 2);
        let store = build_store_align(b, &rf.rdata2, &addr_lo, size);
        let misaligned_raw = build_misaligned(b, size, &addr_lo);
        let is_mem = b.or(dec.is_load, dec.is_store);
        let misaligned = b.and(misaligned_raw, is_mem);

        let dmem_req_r = b.reg("dmem_req", false);
        let dmem_we_r = b.reg("dmem_we", false);
        let dmem_addr_r = b.reg_word("dmem_addr", 32, 0);
        let dmem_wdata_r = b.reg_word("dmem_wdata", 32, 0);
        let dmem_be_r = b.reg_word("dmem_be", 4, 0);
        let ld_rd_r = b.reg_word("ld_rd", 4, 0);
        let ld_funct3_r = b.reg_word("ld_funct3", 3, 0);
        let ld_addr_lo_r = b.reg_word("ld_addr_lo", 2, 0);

        // Load extraction for the LOAD-WAIT cycle.
        let ld_f3 = ld_funct3_r.q();
        let ld_size = build_size_flags(b, &ld_f3);
        let ld_lo = ld_addr_lo_r.q();
        let load_value = build_load_extract(b, &dmem_rdata, &ld_lo, &ld_f3, ld_size);

        LsuParts {
            store_wdata: store.wdata,
            store_be: store.be,
            addr_lo,
            misaligned,
            dmem_req_r,
            dmem_we_r,
            dmem_addr_r,
            dmem_wdata_r,
            dmem_be_r,
            ld_rd_r,
            ld_funct3_r,
            ld_addr_lo_r,
            load_value,
        }
    });

    // --- control (decision logic) -----------------------------------------
    let ctl = b.in_structure("control", |b| {
        // The next PC is misaligned when either low bit is set (JALR clears
        // bit 0 itself; branches/JAL can only set bit 1).
        let trap_now_pre = {
            let t = b.or(dec.illegal, lsu.misaligned);
            b.and(in_ex, t)
        };
        let halt_now = b.and(in_ex, dec.halt);
        let ok_pre = {
            let bad = b.or(trap_now_pre, halt_now);
            let nbad = b.not(bad);
            b.and(in_ex, nbad)
        };
        ControlPre {
            trap_now_pre,
            halt_now,
            ok_pre,
        }
    });

    // --- prefetch (next-PC computation) -----------------------------------
    let pf = b.in_structure("prefetch", |b| {
        let four = b.const_word(4, 32);
        let pc_plus_4 = b.add(&pc.q(), &four);
        let pc_plus_imm = b.add(&pc.q(), &dec.imm);
        let jalr_target = {
            let mut bits = alu.add_result.bits().to_vec();
            bits[0] = b.const0();
            Word::from_bits(bits)
        };
        let take_branch = b.and(dec.is_branch, taken);
        let redirect = b.or(dec.is_jal, take_branch);
        let t = b.mux_word(redirect, &pc_plus_4, &pc_plus_imm);
        let next_pc = b.mux_word(dec.is_jalr, &t, &jalr_target);
        let next_pc_misaligned = b.or(next_pc.bit(0), next_pc.bit(1));
        PrefetchParts {
            pc_plus_4,
            next_pc,
            next_pc_misaligned,
        }
    });

    // --- control (commit decisions, FSM update) ----------------------------
    let commit = b.in_structure("control", |b| {
        let fetch_trap = b.and(ctl.ok_pre, pf.next_pc_misaligned);
        let trap_now = b.or(ctl.trap_now_pre, fetch_trap);
        let nft = b.not(pf.next_pc_misaligned);
        let ex_ok = b.and(ctl.ok_pre, nft);
        let go_load = b.and(ex_ok, dec.is_load);
        let go_store = b.and(ex_ok, dec.is_store);

        // FSM: BOOT -> WAIT -> EX -> {WAIT | MEMW -> LDW -> EX | HALT}.
        let halting = b.or(trap_now, ctl.halt_now);
        let wait_c = b.const_word(CoreState::FetchWait as u64, 3);
        let ex_c = b.const_word(CoreState::Execute as u64, 3);
        let memw_c = b.const_word(CoreState::MemWait as u64, 3);
        let ldw_c = b.const_word(CoreState::LoadWait as u64, 3);
        let halt_c = b.const_word(CoreState::Halted as u64, 3);
        let ex_next = {
            let t = b.mux_word(go_load, &wait_c, &memw_c);
            b.mux_word(halting, &t, &halt_c)
        };
        // Non-EX states: BOOT -> WAIT, WAIT -> EX, MEMW -> LDW, LDW -> EX,
        // HALT -> HALT.
        let mut others = halt_c.clone();
        others = b.mux_word(in_boot, &others, &wait_c);
        others = b.mux_word(in_wait, &others, &ex_c);
        others = b.mux_word(in_memw, &others, &ldw_c);
        others = b.mux_word(in_ldw, &others, &ex_c);
        let next_state = b.mux_word(in_ex, &others, &ex_next);
        b.drive_word(&state, &next_state);

        // Sticky halt/trap flags (registered outputs).
        let halt_r = b.reg("halt_flag", false);
        let halt_set = b.or(halt_r.q(), ctl.halt_now);
        b.drive(halt_r, halt_set);
        let trap_r = b.reg("trap_flag", false);
        let trap_set = b.or(trap_r.q(), trap_now);
        b.drive(trap_r, trap_set);

        // Retire pulse: an EX that completed, or a finishing load.
        let retire_r = b.reg("retire", false);
        let nload = b.not(dec.is_load);
        let ex_retire = b.and(ex_ok, nload);
        let retire = b.or(ex_retire, in_ldw);
        b.drive(retire_r, retire);

        // Register-file write port selection.
        let rf_we = {
            let ex_w = b.and(ex_ok, dec.reg_write);
            b.or(ex_w, in_ldw)
        };
        let rf_waddr = b.mux_word(in_ldw, &dec.rd, &lsu.ld_rd_r.q());
        let ex_wb = b.mux_word(dec.is_jump, &alu.result, &pf.pc_plus_4);
        let rf_wdata = b.mux_word(in_ldw, &ex_wb, &lsu.load_value);

        Commit {
            ex_ok,
            go_load,
            go_store,
            rf_we,
            rf_waddr,
            rf_wdata,
            halt_q: halt_r.q(),
            trap_q: trap_r.q(),
            retire_q: retire_r.q(),
        }
    });

    // --- register file (write port) -----------------------------------------
    b.in_structure("regfile", |b| {
        rf.connect_write(b, &commit.rf_waddr, &commit.rf_wdata, commit.rf_we);
    });

    // --- LSU (memory request registers) --------------------------------------
    b.in_structure("lsu", |b| {
        let dmem_go = b.or(commit.go_load, commit.go_store);
        b.drive(lsu.dmem_req_r, dmem_go);
        b.drive(lsu.dmem_we_r, commit.go_store);
        let aligned_addr = {
            let zero = b.const0();
            let mut bits = alu.add_result.bits().to_vec();
            bits[0] = zero;
            bits[1] = zero;
            Word::from_bits(bits)
        };
        b.drive_word_en(&lsu.dmem_addr_r, dmem_go, &aligned_addr);
        b.drive_word_en(&lsu.dmem_wdata_r, commit.go_store, &lsu.store_wdata);
        b.drive_word_en(&lsu.dmem_be_r, commit.go_store, &lsu.store_be);
        b.drive_word_en(&lsu.ld_rd_r, commit.go_load, &dec.rd);
        b.drive_word_en(&lsu.ld_funct3_r, commit.go_load, &dec.funct3);
        b.drive_word_en(&lsu.ld_addr_lo_r, commit.go_load, &lsu.addr_lo);
    });

    // --- prefetch (fetch issue + PC/prefetch-buffer update) -------------------
    b.in_structure("prefetch", |b| {
        let fetch = b.or(in_boot, commit.ex_ok);
        b.drive(imem_req_r, fetch);
        let fetch_addr = b.mux_word(in_boot, &pf.next_pc, &pc.q());
        b.drive_word_en(&imem_addr_r, fetch, &fetch_addr);
        b.drive_word_en(&pc, commit.ex_ok, &pf.next_pc);
        b.drive(pbuf_valid, in_ldw);
        // The buffer captures every arriving fetch word (EX and LDW cycles
        // both receive instruction data), like a real prefetch FIFO slot;
        // it is only *consumed* after a load (pbuf_valid gates the mux), so
        // architectural behaviour is unchanged while the buffer carries the
        // realistic per-fetch toggle activity of the paper's prefetcher.
        let capture = b.or(in_ex, in_ldw);
        b.drive_word_en(&pbuf_instr, capture, &imem_rdata);
    });

    // --- primary outputs (all registered) --------------------------------------
    b.output("imem_req", imem_req_r.q());
    b.output_word("imem_addr", &imem_addr_r.q());
    b.output("dmem_req", lsu.dmem_req_r.q());
    b.output("dmem_we", lsu.dmem_we_r.q());
    b.output_word("dmem_addr", &lsu.dmem_addr_r.q());
    b.output_word("dmem_wdata", &lsu.dmem_wdata_r.q());
    b.output_word("dmem_be", &lsu.dmem_be_r.q());
    b.output("halt", commit.halt_q);
    b.output("trap", commit.trap_q);
    b.output("retire", commit.retire_q);

    let handle = CoreHandle {
        regfile: rf,
        pc: pc.regs().iter().map(|r| r.dff()).collect(),
        state: state.regs().iter().map(|r| r.dff()).collect(),
    };
    let circuit = b.finish().expect("core netlist is well-formed");
    Core { circuit, handle }
}

/// Intermediate LSU build products.
struct LsuParts {
    store_wdata: Word,
    store_be: Word,
    addr_lo: Word,
    misaligned: NetId,
    dmem_req_r: delayavf_netlist::Reg,
    dmem_we_r: delayavf_netlist::Reg,
    dmem_addr_r: delayavf_netlist::RegWord,
    dmem_wdata_r: delayavf_netlist::RegWord,
    dmem_be_r: delayavf_netlist::RegWord,
    ld_rd_r: delayavf_netlist::RegWord,
    ld_funct3_r: delayavf_netlist::RegWord,
    ld_addr_lo_r: delayavf_netlist::RegWord,
    load_value: Word,
}

/// Early control decisions (before next-PC is known).
struct ControlPre {
    trap_now_pre: NetId,
    halt_now: NetId,
    ok_pre: NetId,
}

/// Next-PC products from the prefetch stage.
struct PrefetchParts {
    pc_plus_4: Word,
    next_pc: Word,
    next_pc_misaligned: NetId,
}

/// Commit-stage decisions.
struct Commit {
    ex_ok: NetId,
    go_load: NetId,
    go_store: NetId,
    rf_we: NetId,
    rf_waddr: Word,
    rf_wdata: Word,
    halt_q: NetId,
    trap_q: NetId,
    retire_q: NetId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_builds_and_tags_structures() {
        let (core, topo) = Core::with_topology(CoreConfig::default());
        let c = &core.circuit;
        for name in Core::structure_names() {
            let s = c.structure(name).unwrap_or_else(|| panic!("{name} tagged"));
            assert!(!s.is_empty(), "{name} is non-empty");
            let edges = topo.structure_edges(c, name).unwrap();
            assert!(!edges.is_empty(), "{name} has injectable edges");
        }
        // Sanity: realistic relative sizes (regfile storage dominates DFFs,
        // ALU and decoder are logic-only except none, LSU has its request
        // registers).
        let rf = c.structure("regfile").unwrap();
        assert_eq!(rf.dffs().len(), 15 * 32);
        let alu = c.structure("alu").unwrap();
        assert_eq!(alu.dffs().len(), 0, "the ALU is purely combinational");
        let dec = c.structure("decoder").unwrap();
        assert_eq!(dec.dffs().len(), 0, "the decoder is purely combinational");
        assert!(c.num_gates() > 3000, "got {} gates", c.num_gates());
    }

    #[test]
    fn ecc_core_is_larger() {
        let plain = build_core(CoreConfig {
            ecc_regfile: false,
            ..CoreConfig::default()
        });
        let ecc = build_core(CoreConfig {
            ecc_regfile: true,
            ..CoreConfig::default()
        });
        assert!(ecc.circuit.num_dffs() > plain.circuit.num_dffs());
        let rf = ecc.circuit.structure("regfile").unwrap();
        assert_eq!(rf.dffs().len(), 15 * 38);
    }

    #[test]
    fn initial_state_is_boot() {
        let core = build_core(CoreConfig::default());
        let state = core.circuit.initial_state();
        assert_eq!(core.handle.read_state(&state), CoreState::Boot);
        assert_eq!(core.handle.read_pc(&state), 0);
        for i in 0..16 {
            assert_eq!(core.handle.read_reg(&state, i), 0);
        }
    }
}
