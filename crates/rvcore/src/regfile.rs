//! The register file: 15 stored registers (x1..x15; x0 is hard-wired to
//! zero), two combinational read ports and one write port, with optional
//! Hamming(38,32) single-error-correcting storage.
//!
//! Construction is two-phase to break the build-time cycle between the read
//! ports (which feed the ALU) and the write port (which is fed by the ALU):
//! [`build_regfile_reads`] creates the storage and read paths, and
//! [`Regfile::connect_write`] wires the write port afterwards.

use delayavf_netlist::{CircuitBuilder, DffId, NetId, RegWord, Word};

use crate::ecc;

/// The register file: read data, storage handles, and the pending write
/// port.
#[derive(Clone, Debug)]
pub struct Regfile {
    /// Read port 1 data (corrected when ECC is enabled).
    pub rdata1: Word,
    /// Read port 2 data (corrected when ECC is enabled).
    pub rdata2: Word,
    /// Whether storage is ECC-encoded.
    pub ecc: bool,
    regs: Vec<RegWord>,
}

/// Builds the register file storage and read ports. The caller wraps this in
/// `in_structure("regfile", ..)` and must later call
/// [`Regfile::connect_write`] exactly once (also inside the structure).
pub fn build_regfile_reads(
    b: &mut CircuitBuilder,
    raddr1: &Word,
    raddr2: &Word,
    ecc: bool,
) -> Regfile {
    assert_eq!(raddr1.width(), 4);
    assert_eq!(raddr2.width(), 4);
    let stored_width = if ecc { ecc::CODE_BITS } else { 32 };

    let mut regs = Vec::with_capacity(15);
    let mut words: Vec<Word> = Vec::with_capacity(16);
    // x0 reads as the all-zero codeword (the Hamming encoding of 0 is 0).
    let zero_word = b.const_word(0, stored_width);
    words.push(zero_word);
    for i in 1..16usize {
        let reg = b.reg_word(&format!("x{i}"), stored_width, 0);
        words.push(reg.q());
        regs.push(reg);
    }

    let raw1 = b.mux_tree(raddr1, &words);
    let raw2 = b.mux_tree(raddr2, &words);
    let (rdata1, rdata2) = if ecc {
        (
            ecc::build_corrector(b, &raw1),
            ecc::build_corrector(b, &raw2),
        )
    } else {
        (raw1, raw2)
    };

    Regfile {
        rdata1,
        rdata2,
        ecc,
        regs,
    }
}

impl Regfile {
    /// Connects the write port: `wdata` is stored into register `waddr` when
    /// `we` is high (writes to x0 are suppressed internally).
    ///
    /// # Panics
    ///
    /// Panics if called twice (registers would be doubly driven) or on width
    /// mismatches.
    pub fn connect_write(&self, b: &mut CircuitBuilder, waddr: &Word, wdata: &Word, we: NetId) {
        assert_eq!(waddr.width(), 4);
        assert_eq!(wdata.width(), 32);
        let stored_wdata = if self.ecc {
            ecc::build_encoder(b, wdata)
        } else {
            wdata.clone()
        };
        let onehot = b.decode_onehot(waddr);
        for (i, reg) in self.regs.iter().enumerate() {
            let en = b.and(onehot.bit(i + 1), we);
            b.drive_word_en(reg, en, &stored_wdata);
        }
    }

    /// Storage flip-flops of register `i` (1..=15), raw codeword bits when
    /// ECC is on.
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or larger than 15.
    pub fn storage(&self, i: usize) -> Vec<DffId> {
        assert!((1..16).contains(&i), "x{i} is not stored");
        self.regs[i - 1].regs().iter().map(|r| r.dff()).collect()
    }

    /// Reads architectural register `i` (1..=15) out of a flip-flop state
    /// slice, decoding (and correcting) the codeword when ECC is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or larger than 15.
    pub fn read_arch_reg(&self, state: &[bool], i: usize) -> u32 {
        let dffs = self.storage(i);
        let mut raw: u64 = 0;
        for (bit, d) in dffs.iter().enumerate() {
            if state[d.index()] {
                raw |= 1 << bit;
            }
        }
        if self.ecc {
            ecc::decode(raw)
        } else {
            raw as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_netlist::{Circuit, Topology};
    use delayavf_sim::{CycleSim, Environment};

    /// Test harness: write port driven by inputs, two read ports to outputs.
    fn harness(ecc: bool) -> (Circuit, Regfile) {
        let mut b = CircuitBuilder::new();
        let ra1 = b.input_word("ra1", 4);
        let ra2 = b.input_word("ra2", 4);
        let wa = b.input_word("wa", 4);
        let wd = b.input_word("wd", 32);
        let we = b.input("we");
        let rf = b.in_structure("regfile", |b| {
            let rf = build_regfile_reads(b, &ra1, &ra2, ecc);
            rf.connect_write(b, &wa, &wd, we);
            rf
        });
        b.output_word("rd1", &rf.rdata1);
        b.output_word("rd2", &rf.rdata2);
        (b.finish().unwrap(), rf)
    }

    #[derive(Clone, Default)]
    struct Script {
        /// (ra1, ra2, wa, wd, we) per cycle.
        rows: Vec<(u64, u64, u64, u64, u64)>,
    }
    impl Environment for Script {
        fn step(&mut self, cycle: u64, _o: &[u64], inputs: &mut [u64]) {
            if let Some(&(ra1, ra2, wa, wd, we)) = self.rows.get(cycle as usize) {
                inputs.copy_from_slice(&[ra1, ra2, wa, wd, we]);
            }
        }
    }

    fn run_script(ecc: bool) {
        let (c, rf) = harness(ecc);
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = Script {
            rows: vec![
                // Write x5 = 0xdeadbeef, read back on both ports next cycle.
                (5, 5, 5, 0xdead_beef, 1),
                (5, 7, 7, 0x1234_5678, 1),
                (5, 7, 0, 0xffff_ffff, 1), // write to x0 must be ignored
                (0, 7, 5, 0, 0),           // we=0 must not write
                (5, 0, 0, 0, 0),
            ],
        };
        // Cycle 0 performs the write; reads are combinational, so the write
        // becomes visible in cycle 1.
        sim.step(&mut env);
        sim.step(&mut env);
        assert_eq!(sim.last_outputs(), &[0xdead_beef, 0]);
        sim.step(&mut env);
        assert_eq!(sim.last_outputs(), &[0xdead_beef, 0x1234_5678]);
        sim.step(&mut env);
        assert_eq!(sim.last_outputs()[1], 0x1234_5678, "x0 write ignored");
        sim.step(&mut env);
        assert_eq!(
            sim.last_outputs(),
            &[0xdead_beef, 0],
            "we=0 left x5 intact; x0 reads zero"
        );
        // Architectural readback through the handle.
        assert_eq!(rf.read_arch_reg(sim.state(), 5), 0xdead_beef);
        assert_eq!(rf.read_arch_reg(sim.state(), 7), 0x1234_5678);
        assert_eq!(rf.read_arch_reg(sim.state(), 3), 0);
    }

    #[test]
    fn plain_regfile_reads_writes() {
        run_script(false);
    }

    #[test]
    fn ecc_regfile_reads_writes() {
        run_script(true);
    }

    #[test]
    fn ecc_corrects_single_storage_flip() {
        let (c, rf) = harness(true);
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = Script {
            rows: vec![(9, 0, 9, 0xcafe_f00d, 1), (9, 0, 0, 0, 0), (9, 0, 0, 0, 0)],
        };
        sim.step(&mut env);
        sim.step(&mut env);
        assert_eq!(sim.last_outputs()[0], 0xcafe_f00d);
        // Flip one stored codeword bit of x9: the read port still delivers
        // the correct value (this is what drives the ECC regfile's sAVF to
        // zero in Fig. 10).
        let victim = rf.storage(9)[13];
        sim.flip_dff(victim);
        sim.step(&mut env);
        assert_eq!(sim.last_outputs()[0], 0xcafe_f00d, "corrected on read");
        assert_eq!(rf.read_arch_reg(sim.state(), 9), 0xcafe_f00d);
    }

    #[test]
    fn ecc_double_flip_is_visible() {
        let (c, rf) = harness(true);
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = Script {
            rows: vec![(9, 0, 9, 0xcafe_f00d, 1), (9, 0, 0, 0, 0), (9, 0, 0, 0, 0)],
        };
        sim.step(&mut env);
        sim.step(&mut env);
        // SEC without DED: a double flip mis-corrects (Table III's regfile
        // ECC ACE-compounding mechanism).
        sim.flip_dff(rf.storage(9)[13]);
        sim.flip_dff(rf.storage(9)[14]);
        sim.step(&mut env);
        assert_ne!(sim.last_outputs()[0], 0xcafe_f00d);
    }

    #[test]
    fn plain_regfile_exposes_storage_flips() {
        let (c, rf) = harness(false);
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = Script {
            rows: vec![(9, 0, 9, 0xcafe_f00d, 1), (9, 0, 0, 0, 0), (9, 0, 0, 0, 0)],
        };
        sim.step(&mut env);
        sim.step(&mut env);
        let victim = rf.storage(9)[13];
        sim.flip_dff(victim);
        sim.step(&mut env);
        assert_eq!(
            sim.last_outputs()[0],
            0xcafe_f00d ^ (1 << 13),
            "no ECC: the flip is architecturally visible"
        );
    }

    #[test]
    fn structure_tagging_counts_storage() {
        let (c, _) = harness(true);
        let s = c.structure("regfile").unwrap();
        assert_eq!(s.dffs().len(), 15 * ecc::CODE_BITS);
        assert!(s.gates().len() > 1000, "read muxes and correctors");
    }
}
