//! The instruction decoder: a purely combinational structure producing
//! control signals, register indices and the selected immediate.

use delayavf_netlist::{CircuitBuilder, NetId, Word};

/// Decoded control signals for one instruction word.
#[derive(Clone, Debug)]
pub struct Decode {
    /// Destination register index (4 bits, RV32E).
    pub rd: Word,
    /// Source register 1 index.
    pub rs1: Word,
    /// Source register 2 index.
    pub rs2: Word,
    /// funct3 field.
    pub funct3: Word,
    /// The immediate selected by the instruction format, sign-extended to 32
    /// bits.
    pub imm: Word,
    /// Opcode class flags.
    pub is_lui: NetId,
    /// AUIPC.
    pub is_auipc: NetId,
    /// JAL.
    pub is_jal: NetId,
    /// JALR.
    pub is_jalr: NetId,
    /// Conditional branch.
    pub is_branch: NetId,
    /// Memory load.
    pub is_load: NetId,
    /// Memory store.
    pub is_store: NetId,
    /// ALU with immediate.
    pub is_opimm: NetId,
    /// ALU register-register.
    pub is_op: NetId,
    /// JAL or JALR (writes the link value).
    pub is_jump: NetId,
    /// Instruction writes `rd` during execute (everything but loads,
    /// branches and stores).
    pub reg_write: NetId,
    /// The ALU adder must subtract (SUB, branches, SLT/SLTU).
    pub adder_sub: NetId,
    /// Right shifts are arithmetic (instr bit 30).
    pub shift_arith: NetId,
    /// The ALU result is forced to the adder output regardless of funct3
    /// (address generation, LUI/AUIPC/JALR).
    pub force_add: NetId,
    /// The instruction is a (legal) ECALL/EBREAK: halt the core.
    pub halt: NetId,
    /// The word does not decode to a supported RV32E instruction.
    pub illegal: NetId,
}

/// Builds the decoder for `instr` (32 bits). The caller wraps this in
/// `in_structure("decoder", ..)`.
pub fn build_decoder(b: &mut CircuitBuilder, instr: &Word) -> Decode {
    assert_eq!(instr.width(), 32);
    let opcode = instr.slice(0, 7);
    let rd = instr.slice(7, 11);
    let funct3 = instr.slice(12, 15);
    let rs1 = instr.slice(15, 19);
    let rs2 = instr.slice(20, 24);
    let bit30 = instr.bit(30);

    // Opcode classes.
    let is_lui = b.eq_const(&opcode, 0b0110111);
    let is_auipc = b.eq_const(&opcode, 0b0010111);
    let is_jal = b.eq_const(&opcode, 0b1101111);
    let is_jalr = b.eq_const(&opcode, 0b1100111);
    let is_branch = b.eq_const(&opcode, 0b1100011);
    let is_load = b.eq_const(&opcode, 0b0000011);
    let is_store = b.eq_const(&opcode, 0b0100011);
    let is_opimm = b.eq_const(&opcode, 0b0010011);
    let is_op = b.eq_const(&opcode, 0b0110011);
    let is_system = b.eq_const(&opcode, 0b1110011);

    // Immediates per format.
    let sign = instr.bit(31);
    let imm_i = b.sext(&instr.slice(20, 32), 32);
    let imm_s = {
        let lo = instr.slice(7, 12);
        let hi = instr.slice(25, 32);
        b.sext(&lo.concat(&hi), 32)
    };
    let imm_b = {
        let zero = b.const0();
        let mut bits = vec![zero];
        bits.extend_from_slice(instr.slice(8, 12).bits()); // imm[4:1]
        bits.extend_from_slice(instr.slice(25, 31).bits()); // imm[10:5]
        bits.push(instr.bit(7)); // imm[11]
        bits.push(sign); // imm[12]
        b.sext(&Word::from_bits(bits), 32)
    };
    let imm_u = {
        let zeros = b.const_word(0, 12);
        zeros.concat(&instr.slice(12, 32))
    };
    let imm_j = {
        let zero = b.const0();
        let mut bits = vec![zero];
        bits.extend_from_slice(instr.slice(21, 31).bits()); // imm[10:1]
        bits.push(instr.bit(20)); // imm[11]
        bits.extend_from_slice(instr.slice(12, 20).bits()); // imm[19:12]
        bits.push(sign); // imm[20]
        b.sext(&Word::from_bits(bits), 32)
    };
    // Format-driven selection, defaulting to the I immediate.
    let is_u = b.or(is_lui, is_auipc);
    let mut imm = imm_i;
    imm = b.mux_word(is_store, &imm, &imm_s);
    imm = b.mux_word(is_branch, &imm, &imm_b);
    imm = b.mux_word(is_u, &imm, &imm_u);
    imm = b.mux_word(is_jal, &imm, &imm_j);

    // ALU control.
    let is_jump = b.or(is_jal, is_jalr);
    let anyop = b.or(is_op, is_opimm);
    let f3_is_0 = b.eq_const(&funct3, 0);
    let f3_is_1 = b.eq_const(&funct3, 1);
    let f3_is_2 = b.eq_const(&funct3, 2);
    let f3_is_3 = b.eq_const(&funct3, 3);
    let f3_is_5 = b.eq_const(&funct3, 5);
    let is_slt_family = {
        let t = b.or(f3_is_2, f3_is_3);
        b.and(anyop, t)
    };
    let is_sub = {
        let t = b.and(is_op, bit30);
        b.and(t, f3_is_0)
    };
    let adder_sub = {
        let t = b.or(is_sub, is_branch);
        b.or(t, is_slt_family)
    };
    let force_add = {
        let mem = b.or(is_load, is_store);
        let upper = b.or(is_lui, is_auipc);
        let t = b.or(mem, upper);
        b.or(t, is_jalr)
    };

    // Writes rd during execute: LUI/AUIPC/JAL/JALR/OP-IMM/OP.
    let reg_write = {
        let upper = b.or(is_lui, is_auipc);
        let t = b.or(upper, is_jump);
        b.or(t, anyop)
    };

    // Legality checks.
    let funct7 = instr.slice(25, 32);
    let f7_zero = b.eq_const(&funct7, 0);
    let f7_alt = b.eq_const(&funct7, 0b0100000);
    let f7_shift_ok = b.or(f7_zero, f7_alt);
    let legal_branch = {
        let bad = b.or(f3_is_2, f3_is_3);
        b.not(bad)
    };
    let legal_load = {
        // f3 in {0,1,2,4,5}: exclude 3, 6, 7.
        let b3 = b.eq_const(&funct3, 3);
        let b6 = b.eq_const(&funct3, 6);
        let b7 = b.eq_const(&funct3, 7);
        let t = b.or(b3, b6);
        let bad = b.or(t, b7);
        b.not(bad)
    };
    let legal_store = {
        // f3 in {0,1,2}.
        let le1 = b.eq_const(&funct3.slice(1, 3), 0); // f3 < 2
        let is2 = b.eq_const(&funct3, 2);
        b.or(le1, is2)
    };
    let legal_opimm = {
        // Shifts constrain funct7.
        let sll_bad = {
            let nz = b.not(f7_zero);
            b.and(f3_is_1, nz)
        };
        let sr_bad = {
            let nok = b.not(f7_shift_ok);
            b.and(f3_is_5, nok)
        };
        let bad = b.or(sll_bad, sr_bad);
        b.not(bad)
    };
    let legal_op = {
        // funct7 zero everywhere; 0b0100000 only for ADD->SUB and SRL->SRA.
        let alt_ok = {
            let t = b.or(f3_is_0, f3_is_5);
            b.and(f7_alt, t)
        };
        b.or(f7_zero, alt_ok)
    };
    // ECALL (0x00000073) / EBREAK (0x00100073): all of instr[31:21] and
    // instr[19:7] must be zero (bit 20 selects EBREAK).
    let legal_system = {
        let hi = instr.slice(21, 32);
        let mid = instr.slice(7, 20);
        let hi_z = b.is_zero(&hi);
        let mid_z = b.is_zero(&mid);
        b.and(hi_z, mid_z)
    };

    let known = [
        is_lui, is_auipc, is_jal, is_jalr, is_branch, is_load, is_store, is_opimm, is_op, is_system,
    ]
    .into_iter()
    .fold(b.const0(), |acc, x| b.or(acc, x));

    let jalr_f3_bad = {
        let nz = b.not(f3_is_0);
        b.and(is_jalr, nz)
    };
    let mut format_bad = jalr_f3_bad;
    for (flag, legal) in [
        (is_branch, legal_branch),
        (is_load, legal_load),
        (is_store, legal_store),
        (is_opimm, legal_opimm),
        (is_op, legal_op),
        (is_system, legal_system),
    ] {
        let nl = b.not(legal);
        let bad = b.and(flag, nl);
        format_bad = b.or(format_bad, bad);
    }

    // RV32E: bit 4 of any *used* register field must be zero.
    let uses_rs1 = {
        let t = b.or(is_branch, is_load);
        let t = b.or(t, is_store);
        let t = b.or(t, anyop);
        b.or(t, is_jalr)
    };
    let uses_rs2 = {
        let t = b.or(is_branch, is_store);
        b.or(t, is_op)
    };
    let uses_rd = { b.or(reg_write, is_load) };
    let rv32e_bad = {
        let rd_bad = b.and(uses_rd, instr.bit(11));
        let rs1_bad = b.and(uses_rs1, instr.bit(19));
        let rs2_bad = b.and(uses_rs2, instr.bit(24));
        let t = b.or(rd_bad, rs1_bad);
        b.or(t, rs2_bad)
    };

    let illegal = {
        let unknown = b.not(known);
        let t = b.or(unknown, format_bad);
        b.or(t, rv32e_bad)
    };
    let halt = {
        let ok = b.not(illegal);
        b.and(is_system, ok)
    };

    Decode {
        rd,
        rs1,
        rs2,
        funct3,
        imm,
        is_lui,
        is_auipc,
        is_jal,
        is_jalr,
        is_branch,
        is_load,
        is_store,
        is_opimm,
        is_op,
        is_jump,
        reg_write,
        adder_sub,
        shift_arith: bit30,
        force_add,
        halt,
        illegal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_isa::{AluOp, BranchKind, Inst, LoadKind, Reg, StoreKind};
    use delayavf_netlist::{Circuit, Topology};
    use delayavf_sim::settle;

    struct Harness {
        c: Circuit,
        topo: Topology,
    }

    fn harness() -> Harness {
        let mut b = CircuitBuilder::new();
        let instr = b.input_word("instr", 32);
        let d = b.in_structure("decoder", |b| build_decoder(b, &instr));
        b.output_word("rd", &d.rd);
        b.output_word("rs1", &d.rs1);
        b.output_word("rs2", &d.rs2);
        b.output_word("imm", &d.imm);
        for (name, net) in [
            ("is_lui", d.is_lui),
            ("is_auipc", d.is_auipc),
            ("is_jal", d.is_jal),
            ("is_jalr", d.is_jalr),
            ("is_branch", d.is_branch),
            ("is_load", d.is_load),
            ("is_store", d.is_store),
            ("is_opimm", d.is_opimm),
            ("is_op", d.is_op),
            ("reg_write", d.reg_write),
            ("halt", d.halt),
            ("illegal", d.illegal),
        ] {
            b.output(name, net);
        }
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        Harness { c, topo }
    }

    fn decode(h: &Harness, word: u32) -> std::collections::HashMap<&'static str, u64> {
        let v = settle(&h.c, &h.topo, &[], &[u64::from(word)]);
        let mut out = std::collections::HashMap::new();
        for (name, port) in [
            "rd",
            "rs1",
            "rs2",
            "imm",
            "is_lui",
            "is_auipc",
            "is_jal",
            "is_jalr",
            "is_branch",
            "is_load",
            "is_store",
            "is_opimm",
            "is_op",
            "reg_write",
            "halt",
            "illegal",
        ]
        .iter()
        .map(|&n| (n, h.c.output_port(n).unwrap()))
        {
            let val = port
                .nets()
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &n)| acc | (u64::from(v[n.index()]) << i));
            out.insert(name, val);
        }
        out
    }

    #[test]
    fn decodes_every_instruction_class() {
        let h = harness();
        let r = Reg::new;

        let cases: Vec<(Inst, &str, u64)> = vec![
            (
                Inst::Lui {
                    rd: r(5),
                    imm: 0xabcd_e000,
                },
                "is_lui",
                0xabcd_e000,
            ),
            (
                Inst::Auipc {
                    rd: r(3),
                    imm: 0x1000,
                },
                "is_auipc",
                0x1000,
            ),
            (
                Inst::Jal {
                    rd: r(1),
                    offset: -16,
                },
                "is_jal",
                (-16i64) as u64 & 0xffff_ffff,
            ),
            (
                Inst::Jalr {
                    rd: r(1),
                    rs1: r(2),
                    offset: 12,
                },
                "is_jalr",
                12,
            ),
            (
                Inst::Branch {
                    kind: BranchKind::Ltu,
                    rs1: r(4),
                    rs2: r(9),
                    offset: -64,
                },
                "is_branch",
                (-64i64) as u64 & 0xffff_ffff,
            ),
            (
                Inst::Load {
                    kind: LoadKind::Lhu,
                    rd: r(6),
                    rs1: r(7),
                    offset: -3,
                },
                "is_load",
                (-3i64) as u64 & 0xffff_ffff,
            ),
            (
                Inst::Store {
                    kind: StoreKind::Sh,
                    rs2: r(8),
                    rs1: r(9),
                    offset: 2047,
                },
                "is_store",
                2047,
            ),
            (
                Inst::OpImm {
                    kind: AluOp::Xor,
                    rd: r(10),
                    rs1: r(11),
                    imm: -1,
                },
                "is_opimm",
                0xffff_ffff,
            ),
        ];
        for (inst, flag, imm) in cases {
            let out = decode(&h, inst.encode());
            assert_eq!(out[flag], 1, "{inst}");
            assert_eq!(out["illegal"], 0, "{inst}");
            assert_eq!(out["imm"], imm, "imm of {inst}");
            // Exactly one class flag fires.
            let ones: u64 = [
                "is_lui",
                "is_auipc",
                "is_jal",
                "is_jalr",
                "is_branch",
                "is_load",
                "is_store",
                "is_opimm",
                "is_op",
            ]
            .iter()
            .map(|f| out[f])
            .sum();
            assert_eq!(ones, 1, "{inst}");
        }

        let out = decode(
            &h,
            Inst::Op {
                kind: AluOp::Sub,
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            }
            .encode(),
        );
        assert_eq!(out["is_op"], 1);
        assert_eq!((out["rd"], out["rs1"], out["rs2"]), (1, 2, 3));
        assert_eq!(out["reg_write"], 1);
    }

    #[test]
    fn system_instructions_halt() {
        let h = harness();
        for inst in [Inst::Ecall, Inst::Ebreak] {
            let out = decode(&h, inst.encode());
            assert_eq!(out["halt"], 1, "{inst}");
            assert_eq!(out["illegal"], 0, "{inst}");
        }
        // A system word with junk in rs1 is illegal, not a halt.
        let out = decode(&h, (1 << 15) | 0b1110011);
        assert_eq!(out["halt"], 0);
        assert_eq!(out["illegal"], 1);
    }

    #[test]
    fn gate_decoder_agrees_with_software_decoder() {
        // Sweep a structured corpus of words: every word the software
        // decoder accepts must decode cleanly, every word it rejects must
        // raise `illegal`.
        let h = harness();
        let mut checked_legal = 0u32;
        let mut checked_illegal = 0u32;
        let mut probe = |word: u32| {
            let out = decode(&h, word);
            match Inst::decode(word) {
                Ok(_) => {
                    assert_eq!(out["illegal"], 0, "{word:#010x} should be legal");
                    checked_legal += 1;
                }
                Err(_) => {
                    assert_eq!(out["illegal"], 1, "{word:#010x} should be illegal");
                    checked_illegal += 1;
                }
            }
        };
        // All opcodes x funct3 x two funct7 values, registers in range.
        for opcode in 0..128u32 {
            for f3 in 0..8u32 {
                for f7 in [0u32, 0b0100000, 0b1000000] {
                    let word = (f7 << 25) | (3 << 20) | (2 << 15) | (f3 << 12) | (1 << 7) | opcode;
                    probe(word);
                }
            }
        }
        // RV32E violations.
        for shift in [7u32, 15, 20] {
            let base = Inst::Op {
                kind: AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::new(2),
                rs2: Reg::new(3),
            }
            .encode();
            probe(base | (0x10 << shift));
        }
        assert!(checked_legal > 100, "corpus covers many legal words");
        assert!(checked_illegal > 1000);
    }
}
