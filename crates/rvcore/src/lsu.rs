//! Load/store unit data paths: store-data lane alignment, byte-enable
//! generation, load-data extraction/extension and misalignment detection.
//!
//! The memory interface is word-based: the core sends a word-aligned address
//! plus byte enables; for loads the environment returns the full word at the
//! aligned address and the LSU extracts the addressed byte/halfword.

use delayavf_netlist::{CircuitBuilder, NetId, Word};

/// Outputs of the store-alignment path.
#[derive(Clone, Debug)]
pub struct StoreAlign {
    /// Write data shifted into its byte lane.
    pub wdata: Word,
    /// Byte enables (bit *i* covers byte *i* of the word).
    pub be: Word,
}

/// Decoded access size flags from funct3.
#[derive(Clone, Copy, Debug)]
pub struct SizeFlags {
    /// Byte access.
    pub is_byte: NetId,
    /// Halfword access.
    pub is_half: NetId,
    /// Word access.
    pub is_word: NetId,
}

/// Decodes funct3's size field (low two bits).
pub fn build_size_flags(b: &mut CircuitBuilder, funct3: &Word) -> SizeFlags {
    let size = funct3.slice(0, 2);
    SizeFlags {
        is_byte: b.eq_const(&size, 0),
        is_half: b.eq_const(&size, 1),
        is_word: b.eq_const(&size, 2),
    }
}

/// Misalignment check: word accesses need `addr_lo == 0`, halfword accesses
/// need `addr_lo[0] == 0`.
pub fn build_misaligned(b: &mut CircuitBuilder, size: SizeFlags, addr_lo: &Word) -> NetId {
    assert_eq!(addr_lo.width(), 2);
    let any_lo = b.or(addr_lo.bit(0), addr_lo.bit(1));
    let w_bad = b.and(size.is_word, any_lo);
    let h_bad = b.and(size.is_half, addr_lo.bit(0));
    b.or(w_bad, h_bad)
}

/// Builds the store-data alignment path.
pub fn build_store_align(
    b: &mut CircuitBuilder,
    value: &Word,
    addr_lo: &Word,
    size: SizeFlags,
) -> StoreAlign {
    assert_eq!(value.width(), 32);
    assert_eq!(addr_lo.width(), 2);

    // Shift the value into its lane: by 8 if addr_lo[0], by 16 if addr_lo[1].
    let zero = b.const0();
    let by8: Word = (0..32)
        .map(|i| if i >= 8 { value.bit(i - 8) } else { zero })
        .collect();
    let s1 = b.mux_word(addr_lo.bit(0), value, &by8);
    let by16: Word = (0..32)
        .map(|i| if i >= 16 { s1.bit(i - 16) } else { zero })
        .collect();
    let wdata = b.mux_word(addr_lo.bit(1), &s1, &by16);

    // Byte enables.
    let byte_oh = b.decode_onehot(addr_lo); // one-hot over the 4 lanes
    let half_be = {
        let lo = b.not(addr_lo.bit(1));
        let hi = addr_lo.bit(1);
        Word::from_bits(vec![lo, lo, hi, hi])
    };
    let word_be = b.const_word(0xf, 4);
    let mut be = b.w_gate(&byte_oh, size.is_byte);
    let half_sel = b.w_gate(&half_be, size.is_half);
    let word_sel = b.w_gate(&word_be, size.is_word);
    be = b.w_or(&be, &half_sel);
    be = b.w_or(&be, &word_sel);

    StoreAlign { wdata, be }
}

/// Builds the load-data extraction/extension path.
///
/// `funct3` is the load's full funct3 (bit 2 selects zero extension).
pub fn build_load_extract(
    b: &mut CircuitBuilder,
    rdata: &Word,
    addr_lo: &Word,
    funct3: &Word,
    size: SizeFlags,
) -> Word {
    assert_eq!(rdata.width(), 32);
    assert_eq!(addr_lo.width(), 2);

    // Shift the addressed lane down to bit 0.
    let zero = b.const0();
    let by8: Word = (0..32)
        .map(|i| if i + 8 < 32 { rdata.bit(i + 8) } else { zero })
        .collect();
    let s1 = b.mux_word(addr_lo.bit(0), rdata, &by8);
    let by16: Word = (0..32)
        .map(|i| if i + 16 < 32 { s1.bit(i + 16) } else { zero })
        .collect();
    let shifted = b.mux_word(addr_lo.bit(1), &s1, &by16);

    let unsigned = funct3.bit(2);
    let signed = b.not(unsigned);

    let byte_sign = b.and(signed, shifted.bit(7));
    let byte_v = {
        let lo = shifted.slice(0, 8);
        let ext = b.repeat(byte_sign, 24);
        lo.concat(&ext)
    };
    let half_sign = b.and(signed, shifted.bit(15));
    let half_v = {
        let lo = shifted.slice(0, 16);
        let ext = b.repeat(half_sign, 16);
        lo.concat(&ext)
    };

    let mut value = b.w_gate(&byte_v, size.is_byte);
    let half_sel = b.w_gate(&half_v, size.is_half);
    let word_sel = b.w_gate(rdata, size.is_word);
    value = b.w_or(&value, &half_sel);
    b.w_or(&value, &word_sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_netlist::{Circuit, Topology};
    use delayavf_sim::settle;

    fn harness() -> (Circuit, Topology) {
        let mut b = CircuitBuilder::new();
        let value = b.input_word("value", 32);
        let rdata = b.input_word("rdata", 32);
        let addr_lo = b.input_word("addr_lo", 2);
        let funct3 = b.input_word("funct3", 3);
        let (store, load, mis) = b.in_structure("lsu", |b| {
            let size = build_size_flags(b, &funct3);
            let store = build_store_align(b, &value, &addr_lo, size);
            let load = build_load_extract(b, &rdata, &addr_lo, &funct3, size);
            let mis = build_misaligned(b, size, &addr_lo);
            (store, load, mis)
        });
        b.output_word("wdata", &store.wdata);
        b.output_word("be", &store.be);
        b.output_word("load", &load);
        b.output("mis", mis);
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        (c, topo)
    }

    fn eval(c: &Circuit, topo: &Topology, inputs: &[u64; 4]) -> (u64, u64, u64, u64) {
        let v = settle(c, topo, &[], inputs);
        let read = |name: &str| {
            c.output_port(name)
                .unwrap()
                .nets()
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &n)| acc | (u64::from(v[n.index()]) << i))
        };
        (read("wdata"), read("be"), read("load"), read("mis"))
    }

    #[test]
    fn store_alignment_places_lanes() {
        let (c, topo) = harness();
        // sb to lane 3: value byte replicated into bits 24..32, be = 1000.
        let (wdata, be, _, mis) = eval(&c, &topo, &[0xab, 0, 3, 0b000]);
        assert_eq!(wdata, 0xab00_0000);
        assert_eq!(be, 0b1000);
        assert_eq!(mis, 0);
        // sh to upper half.
        let (wdata, be, _, mis) = eval(&c, &topo, &[0xbeef, 0, 2, 0b001]);
        assert_eq!(wdata, 0xbeef_0000);
        assert_eq!(be, 0b1100);
        assert_eq!(mis, 0);
        // sw aligned.
        let (wdata, be, _, mis) = eval(&c, &topo, &[0x1234_5678, 0, 0, 0b010]);
        assert_eq!(wdata, 0x1234_5678);
        assert_eq!(be, 0b1111);
        assert_eq!(mis, 0);
    }

    #[test]
    fn misalignment_is_flagged() {
        let (c, topo) = harness();
        for (lo, f3, bad) in [
            (1u64, 0b010u64, true), // sw at +1
            (2, 0b010, true),       // sw at +2
            (1, 0b001, true),       // sh at +1
            (2, 0b001, false),      // sh at +2 is fine
            (3, 0b000, false),      // sb anywhere is fine
        ] {
            let (_, _, _, mis) = eval(&c, &topo, &[0, 0, lo, f3]);
            assert_eq!(mis == 1, bad, "lo={lo} f3={f3:#b}");
        }
    }

    #[test]
    fn load_extraction_matches_iss_semantics() {
        let (c, topo) = harness();
        let word: u64 = 0x8182_0384;
        // lb lane 0: 0x84 sign-extends.
        let (_, _, v, _) = eval(&c, &topo, &[0, word, 0, 0b000]);
        assert_eq!(v, 0xffff_ff84);
        // lbu lane 3: 0x81 zero-extends.
        let (_, _, v, _) = eval(&c, &topo, &[0, word, 3, 0b100]);
        assert_eq!(v, 0x81);
        // lh lane 2: 0x8182 sign-extends.
        let (_, _, v, _) = eval(&c, &topo, &[0, word, 2, 0b001]);
        assert_eq!(v, 0xffff_8182);
        // lhu lane 0.
        let (_, _, v, _) = eval(&c, &topo, &[0, word, 0, 0b101]);
        assert_eq!(v, 0x0384);
        // lw.
        let (_, _, v, _) = eval(&c, &topo, &[0, word, 0, 0b010]);
        assert_eq!(v, word);
    }
}
