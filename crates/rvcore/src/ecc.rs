//! Hamming(38,32) single-error-correcting code, in software and at gate
//! level.
//!
//! The register file optionally stores each 32-bit word as a 38-bit Hamming
//! codeword (six parity bits, no additional double-error-detection bit —
//! matching the paper's "single-error correction ECC without any double-error
//! detection capabilities", §VI-A). Correction happens after the read mux,
//! one corrector per read port, exactly like a hardened SRAM macro.
//!
//! Codeword layout follows the classic Hamming construction: positions are
//! numbered 1..=38, parity bits sit at the power-of-two positions (1, 2, 4,
//! 8, 16, 32) and data bits fill the remaining positions in increasing
//! order. Position `p` participates in parity `j` iff bit `j` of `p` is set.

use delayavf_netlist::{CircuitBuilder, Word};

/// Number of data bits per codeword.
pub const DATA_BITS: usize = 32;
/// Number of parity bits per codeword.
pub const PARITY_BITS: usize = 6;
/// Total codeword width.
pub const CODE_BITS: usize = DATA_BITS + PARITY_BITS;

/// Codeword position (1-based) of each data bit, in data-bit order.
fn data_positions() -> [usize; DATA_BITS] {
    let mut out = [0usize; DATA_BITS];
    let mut k = 0;
    for pos in 1..=CODE_BITS {
        if !pos.is_power_of_two() {
            out[k] = pos;
            k += 1;
        }
    }
    debug_assert_eq!(k, DATA_BITS);
    out
}

/// Encodes 32 data bits into a 38-bit codeword (software reference).
pub fn encode(data: u32) -> u64 {
    let positions = data_positions();
    let mut code: u64 = 0;
    for (i, &pos) in positions.iter().enumerate() {
        if (data >> i) & 1 == 1 {
            code |= 1 << (pos - 1);
        }
    }
    for j in 0..PARITY_BITS {
        let mut parity = false;
        for pos in 1..=CODE_BITS {
            if pos & (1 << j) != 0 && (code >> (pos - 1)) & 1 == 1 {
                parity ^= true;
            }
        }
        if parity {
            code |= 1 << ((1usize << j) - 1);
        }
    }
    code
}

/// Decodes a 38-bit codeword, correcting up to one flipped bit (software
/// reference). Returns the corrected data.
pub fn decode(code: u64) -> u32 {
    let mut syndrome = 0usize;
    for j in 0..PARITY_BITS {
        let mut parity = false;
        for pos in 1..=CODE_BITS {
            if pos & (1 << j) != 0 && (code >> (pos - 1)) & 1 == 1 {
                parity ^= true;
            }
        }
        if parity {
            syndrome |= 1 << j;
        }
    }
    // A double flip can produce a syndrome pointing past the 38 real code
    // bits (e.g. flipping the two parity bits at positions 8 and 32 yields
    // syndrome 40). Such syndromes must not "correct" anything: the guard
    // below leaves the word alone, and here that is the right answer too —
    // two flipped parity bits leave every data bit intact.
    let corrected = if syndrome != 0 && syndrome <= CODE_BITS {
        code ^ (1 << (syndrome - 1))
    } else {
        code
    };
    let positions = data_positions();
    let mut data = 0u32;
    for (i, &pos) in positions.iter().enumerate() {
        if (corrected >> (pos - 1)) & 1 == 1 {
            data |= 1 << i;
        }
    }
    data
}

/// Extracts the data bits of a codeword **without** correction (software
/// helper for inspecting raw register-file state).
pub fn data_of(code: u64) -> u32 {
    let positions = data_positions();
    let mut data = 0u32;
    for (i, &pos) in positions.iter().enumerate() {
        if (code >> (pos - 1)) & 1 == 1 {
            data |= 1 << i;
        }
    }
    data
}

/// Builds a gate-level encoder: 32-bit data word to 38-bit codeword.
pub fn build_encoder(b: &mut CircuitBuilder, data: &Word) -> Word {
    assert_eq!(data.width(), DATA_BITS, "encoder takes 32 data bits");
    let positions = data_positions();
    // Place data bits.
    let zero = b.const0();
    let mut code: Vec<delayavf_netlist::NetId> = vec![zero; CODE_BITS];
    for (i, &pos) in positions.iter().enumerate() {
        code[pos - 1] = data.bit(i);
    }
    // Parity over data members of each group (parity positions are still
    // zero here, so including them is harmless).
    for j in 0..PARITY_BITS {
        let members: Word = (1..=CODE_BITS)
            .filter(|pos| pos & (1 << j) != 0 && !pos.is_power_of_two())
            .map(|pos| code[pos - 1])
            .collect();
        code[(1 << j) - 1] = b.reduce_xor(&members);
    }
    Word::from_bits(code)
}

/// Builds a gate-level single-error corrector: 38-bit codeword to corrected
/// 32-bit data word.
pub fn build_corrector(b: &mut CircuitBuilder, code: &Word) -> Word {
    assert_eq!(code.width(), CODE_BITS, "corrector takes 38 code bits");
    // Recompute the syndrome.
    let syndrome: Word = (0..PARITY_BITS)
        .map(|j| {
            let members: Word = (1..=CODE_BITS)
                .filter(|pos| pos & (1 << j) != 0)
                .map(|pos| code.bit(pos - 1))
                .collect();
            b.reduce_xor(&members)
        })
        .collect();
    // Correct and extract each data bit: flip when the syndrome names its
    // position.
    let positions = data_positions();
    positions
        .iter()
        .map(|&pos| {
            let hit = b.eq_const(&syndrome, pos as u64);
            b.xor(code.bit(pos - 1), hit)
        })
        .collect::<Vec<_>>()
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_netlist::{CircuitBuilder, Topology};
    use delayavf_sim::settle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn software_roundtrip_and_correction() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let data: u32 = rng.gen();
            let code = encode(data);
            assert_eq!(decode(code), data);
            assert_eq!(data_of(code), data);
            // Any single flipped bit is corrected.
            let flip = rng.gen_range(0..CODE_BITS);
            assert_eq!(decode(code ^ (1 << flip)), data, "flip at {flip}");
        }
    }

    #[test]
    fn double_errors_are_miscorrected() {
        // SEC without DED: two flips produce a wrong "correction" — the
        // property the paper exploits to show ECC failing under multi-bit
        // SDF errors (Table III, regfile ECC compounding).
        let data = 0xdead_beef;
        let code = encode(data);
        let bad = code ^ 0b11; // flip positions 1 and 2
        assert_ne!(decode(bad), data);
    }

    #[test]
    fn double_parity_flips_with_out_of_range_syndrome_leave_data_intact() {
        // Regression pin for the proptest case (data = 0, flips at 0-based
        // positions 7 and 31). Both are parity bits (1-based positions 8
        // and 32), so the syndrome is 8 ^ 32 = 40 — past the last real
        // code-bit position (38). The decoder must not attempt a
        // "correction" with it (`1 << 39` would corrupt nothing real here,
        // but a syndrome like 33..=38 reached via other double flips would
        // hit storage); since only parity bits were hit, the data must come
        // back untouched. The vendored proptest stand-in has no
        // regression-file replay, hence this explicit pin.
        for data in [0u32, 0xdead_beef, u32::MAX] {
            let code = encode(data);
            let bad = code ^ (1 << 7) ^ (1 << 31);
            assert_eq!(decode(bad), data, "data {data:#x}");
        }
        // The same case through the gate-level corrector.
        let mut b = CircuitBuilder::new();
        let data = b.input_word("data", 32);
        let noise = b.input_word("noise", 38);
        let enc = build_encoder(&mut b, &data);
        let received = b.w_xor(&enc, &noise);
        let dec = build_corrector(&mut b, &received);
        b.output_word("dec", &dec);
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let v = settle(&c, &topo, &[], &[0, (1u64 << 7) | (1u64 << 31)]);
        let p = c.output_port("dec").unwrap();
        let dec = p
            .nets()
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &n)| acc | (u64::from(v[n.index()]) << i));
        assert_eq!(dec as u32, 0, "gate-level corrector agrees");
    }

    #[test]
    fn gate_level_matches_software() {
        let mut b = CircuitBuilder::new();
        let data = b.input_word("data", 32);
        let noise = b.input_word("noise", 38);
        let enc = build_encoder(&mut b, &data);
        let received = b.w_xor(&enc, &noise);
        let dec = build_corrector(&mut b, &received);
        b.output_word("enc_lo", &enc.slice(0, 32));
        b.output_word("enc_hi", &enc.slice(32, 38));
        b.output_word("dec", &dec);
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);

        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let value: u32 = rng.gen();
            // No noise: decode returns the data and encode matches software.
            let v = settle(&c, &topo, &[], &[u64::from(value), 0]);
            let read = |port: &str| -> u64 {
                let p = c.output_port(port).unwrap();
                p.nets()
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &n)| acc | (u64::from(v[n.index()]) << i))
            };
            let code = read("enc_lo") | (read("enc_hi") << 32);
            assert_eq!(code, encode(value));
            assert_eq!(read("dec") as u32, value);
            // Single-bit noise: still decodes to the data.
            let flip = rng.gen_range(0..CODE_BITS);
            let v = settle(&c, &topo, &[], &[u64::from(value), 1u64 << flip]);
            let dec = {
                let p = c.output_port("dec").unwrap();
                p.nets()
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &n)| acc | (u64::from(v[n.index()]) << i))
            };
            assert_eq!(dec as u32, value, "flip at {flip}");
        }
    }
}
