//! Topological views of a circuit: evaluation order, fanout edges, and
//! fan-in/fan-out cones.
//!
//! The [`Topology`] is computed once per circuit and shared by the timing
//! analysis, both simulators, and the fault-injection campaign code. Its most
//! important product is the list of [`Edge`]s — individual driver-to-sink
//! connections — which are the injection sites for small delay faults.

use std::collections::{HashSet, VecDeque};

use crate::circuit::{Circuit, Driver};
use crate::error::NetlistError;
use crate::ids::{DffId, EdgeId, GateId, NetId};
use crate::plan::EvalPlan;

/// A sink consuming a net's value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Consumer {
    /// Input pin `pin` of gate `gate`.
    GatePin {
        /// The consuming gate.
        gate: GateId,
        /// The pin index within [`crate::Gate::inputs`].
        pin: u8,
    },
    /// The D input of a flip-flop.
    DffD(DffId),
    /// A primary-output bit (`port` indexes [`Circuit::output_ports`]).
    OutputBit {
        /// Index of the output port.
        port: u16,
        /// Bit within the port (LSB first).
        bit: u16,
    },
}

/// One fanout edge: the connection from a source net to a single sink.
///
/// Edges are the unit of small-delay-fault injection (paper §IV-A): an SDF on
/// an edge delays the value seen by exactly that sink. The set of edges whose
/// source element belongs to a structure *H* is the paper's wire set *E*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// The driving net.
    pub source: NetId,
    /// The consuming sink.
    pub consumer: Consumer,
}

/// Precomputed topological data for a [`Circuit`].
#[derive(Clone, Debug)]
pub struct Topology {
    eval_order: Vec<GateId>,
    edges: Vec<Edge>,
    /// CSR offsets into `edges`, indexed by raw net id (length `nets + 1`).
    edge_start: Vec<u32>,
    /// Per gate: the edge feeding each input pin (`u32::MAX` for unused pins).
    gate_in_edges: Vec<[u32; 3]>,
    /// Per flip-flop: the edge feeding its D pin.
    dff_in_edge: Vec<u32>,
    /// Per gate: its combinational level — 0 for gates fed only by
    /// flip-flops, primary inputs and constants, otherwise one more than the
    /// deepest gate-driven input. Powers the levelized divergence-cone
    /// scheduling of the incremental replay engine.
    gate_level: Vec<u32>,
    /// Number of distinct levels (`max gate level + 1`, 0 for gateless
    /// circuits).
    num_levels: u32,
    /// Constant-driven nets and their values, in net-id order.
    const_nets: Vec<(NetId, bool)>,
    /// The struct-of-arrays gate program every simulator evaluates through.
    plan: EvalPlan,
}

impl Topology {
    /// Builds the topology of a circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's combinational graph is cyclic, which
    /// [`crate::CircuitBuilder::finish`] rules out.
    pub fn new(c: &Circuit) -> Self {
        let edges = collect_edges(c);
        let mut edge_start = vec![0u32; c.num_nets() + 1];
        for e in &edges {
            edge_start[e.source.index() + 1] += 1;
        }
        for i in 0..c.num_nets() {
            edge_start[i + 1] += edge_start[i];
        }
        let eval_order = topo_order(c, &edges, &edge_start);
        let mut gate_in_edges = vec![[u32::MAX; 3]; c.num_gates()];
        let mut dff_in_edge = vec![u32::MAX; c.num_dffs()];
        for (i, e) in edges.iter().enumerate() {
            let i = u32::try_from(i).expect("edge count fits u32");
            match e.consumer {
                Consumer::GatePin { gate, pin } => {
                    gate_in_edges[gate.index()][usize::from(pin)] = i;
                }
                Consumer::DffD(d) => dff_in_edge[d.index()] = i,
                Consumer::OutputBit { .. } => {}
            }
        }
        let mut gate_level = vec![0u32; c.num_gates()];
        let mut num_levels = 0u32;
        for &g in &eval_order {
            let mut lvl = 0u32;
            for &inp in c.gate(g).inputs() {
                if let Driver::Gate(src) = c.net(inp).driver() {
                    lvl = lvl.max(gate_level[src.index()] + 1);
                }
            }
            gate_level[g.index()] = lvl;
            num_levels = num_levels.max(lvl + 1);
        }
        let const_nets = c
            .nets()
            .filter_map(|(id, net)| match net.driver() {
                Driver::Const(v) => Some((id, v)),
                _ => None,
            })
            .collect();
        let plan = EvalPlan::new(c, &eval_order, &gate_level, num_levels);
        Topology {
            eval_order,
            edges,
            edge_start,
            gate_in_edges,
            dff_in_edge,
            gate_level,
            num_levels,
            const_nets,
            plan,
        }
    }

    /// The struct-of-arrays [`EvalPlan`] compiled for this circuit: the
    /// packed, levelized gate program the dense simulator sweeps walk
    /// instead of per-gate [`crate::Gate`] records.
    #[inline]
    pub fn plan(&self) -> &EvalPlan {
        &self.plan
    }

    /// The combinational level of `gate`: 0 when every input is driven by a
    /// flip-flop, primary input or constant, otherwise one more than the
    /// deepest gate-driven input.
    ///
    /// Levels give a schedule for cone-restricted re-evaluation: processing
    /// dirty gates in increasing level order guarantees each gate is
    /// evaluated at most once per cycle, after all of its dirty fan-in.
    #[inline]
    pub fn gate_level(&self, gate: GateId) -> u32 {
        self.gate_level[gate.index()]
    }

    /// Constant-driven nets and their values, in net-id order.
    ///
    /// Every simulator needs the constant nets seeded before evaluating
    /// gates; precomputing the list once here keeps the scalar, incremental
    /// and batch engines from each re-scanning every net's driver per
    /// settle. Most callers want [`Topology::seed_consts`].
    #[inline]
    pub fn const_nets(&self) -> &[(NetId, bool)] {
        &self.const_nets
    }

    /// Writes the constant-net values into a full per-net value buffer,
    /// leaving every other entry untouched.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the circuit's net count.
    pub fn seed_consts(&self, values: &mut [bool]) {
        for &(net, v) in &self.const_nets {
            values[net.index()] = v;
        }
    }

    /// Number of distinct combinational levels (0 for a gateless circuit).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.num_levels as usize
    }

    /// The edges feeding each input pin of `gate`, in pin order.
    pub fn gate_in_edges(&self, gate: GateId) -> impl Iterator<Item = EdgeId> + '_ {
        self.gate_in_edges[gate.index()]
            .iter()
            .take_while(|&&e| e != u32::MAX)
            .map(|&e| EdgeId::from_index(e as usize))
    }

    /// The edge feeding the D pin of `dff`.
    pub fn dff_in_edge(&self, dff: DffId) -> EdgeId {
        EdgeId::from_index(self.dff_in_edge[dff.index()] as usize)
    }

    /// Gates in a valid topological evaluation order.
    pub fn eval_order(&self) -> &[GateId] {
        &self.eval_order
    }

    /// All fanout edges, grouped by source net.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Looks up an edge.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// The fanout edges of a net.
    pub fn fanouts(&self, net: NetId) -> &[Edge] {
        let lo = self.edge_start[net.index()] as usize;
        let hi = self.edge_start[net.index() + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Ids of the fanout edges of a net.
    pub fn fanout_ids(&self, net: NetId) -> impl Iterator<Item = EdgeId> {
        let lo = self.edge_start[net.index()] as usize;
        let hi = self.edge_start[net.index() + 1] as usize;
        (lo..hi).map(EdgeId::from_index)
    }

    /// The injectable edges of a named structure: all edges whose source net
    /// is driven by a gate or flip-flop tagged into that structure.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownStructure`] for unknown names.
    pub fn structure_edges(
        &self,
        c: &Circuit,
        structure: &str,
    ) -> Result<Vec<EdgeId>, NetlistError> {
        let s = c.require_structure(structure)?;
        let gate_set: HashSet<GateId> = s.gates().iter().copied().collect();
        let dff_set: HashSet<DffId> = s.dffs().iter().copied().collect();
        let mut out = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            let in_structure = match c.net(e.source).driver() {
                Driver::Gate(g) => gate_set.contains(&g),
                Driver::Dff(d) => dff_set.contains(&d),
                Driver::Input(_) | Driver::Const(_) => false,
            };
            if in_structure {
                out.push(EdgeId::from_index(i));
            }
        }
        Ok(out)
    }

    /// The flip-flops whose D input is topologically reachable from `net`
    /// through combinational logic (ignoring timing).
    pub fn downstream_dffs(&self, c: &Circuit, net: NetId) -> Vec<DffId> {
        let mut seen_nets = HashSet::new();
        let mut dffs = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(net);
        seen_nets.insert(net);
        while let Some(n) = queue.pop_front() {
            for e in self.fanouts(n) {
                match e.consumer {
                    Consumer::GatePin { gate, .. } => {
                        let out = c.gate(gate).output();
                        if seen_nets.insert(out) {
                            queue.push_back(out);
                        }
                    }
                    Consumer::DffD(d) => {
                        dffs.insert(d);
                    }
                    Consumer::OutputBit { .. } => {}
                }
            }
        }
        let mut v: Vec<DffId> = dffs.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// The set of source elements (flip-flop Q outputs and primary-input
    /// bits) whose value can combinationally influence any net in `nets`.
    ///
    /// Returns `(dff_sources, input_net_sources)`, both sorted.
    pub fn fanin_sources(&self, c: &Circuit, nets: &[NetId]) -> (Vec<DffId>, Vec<NetId>) {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<NetId> = VecDeque::new();
        for &n in nets {
            if seen.insert(n) {
                queue.push_back(n);
            }
        }
        let mut dffs = HashSet::new();
        let mut inputs = HashSet::new();
        while let Some(n) = queue.pop_front() {
            match c.net(n).driver() {
                Driver::Gate(g) => {
                    for &i in c.gate(g).inputs() {
                        if seen.insert(i) {
                            queue.push_back(i);
                        }
                    }
                }
                Driver::Dff(d) => {
                    dffs.insert(d);
                }
                Driver::Input(_) => {
                    inputs.insert(n);
                }
                Driver::Const(_) => {}
            }
        }
        let mut dv: Vec<DffId> = dffs.into_iter().collect();
        dv.sort_unstable();
        let mut iv: Vec<NetId> = inputs.into_iter().collect();
        iv.sort_unstable();
        (dv, iv)
    }

    /// The immediate post-dominator of every net in the combinational
    /// fan-out graph.
    ///
    /// The graph has one node per net plus a virtual EXIT node; each fanout
    /// edge contributes a successor — the consuming gate's output net for a
    /// [`Consumer::GatePin`] sink, EXIT for [`Consumer::DffD`] and
    /// [`Consumer::OutputBit`] sinks (sequential elements end the
    /// combinational cycle) — and a net with no fanout also flows to EXIT.
    /// `result[n]` is the net every value change on `n` must pass through
    /// before reaching any latch or output, or `None` when only the virtual
    /// EXIT post-dominates `n` (its cone re-converges nowhere short of the
    /// sequential boundary).
    ///
    /// Fault collapsing uses this: a delay fault on an edge whose sink cone
    /// is funneled through a post-dominating net is observationally
    /// equivalent to a fault delayed at that funnel, which is what licenses
    /// replaying one representative per equivalence class.
    ///
    /// Computed with the Cooper–Harvey–Kennedy iterative-intersection scheme
    /// on the reversed graph; the graph is a DAG (guaranteed by
    /// [`crate::CircuitBuilder::finish`]), so one pass in reverse
    /// topological order reaches the fixpoint.
    pub fn post_dominators(&self, c: &Circuit) -> Vec<Option<NetId>> {
        let n_nets = c.num_nets();
        let exit = n_nets;
        // A topological order of nets: source nets (inputs, flip-flop Qs,
        // constants) first, then gate outputs in evaluation order. `ord`
        // ranks every net by that order, EXIT above all.
        let mut order: Vec<usize> = Vec::with_capacity(n_nets);
        for (id, net) in c.nets() {
            if !matches!(net.driver(), Driver::Gate(_)) {
                order.push(id.index());
            }
        }
        for &g in &self.eval_order {
            order.push(c.gate(g).output().index());
        }
        debug_assert_eq!(order.len(), n_nets);
        let mut ord = vec![0usize; n_nets + 1];
        for (pos, &net) in order.iter().enumerate() {
            ord[net] = pos;
        }
        ord[exit] = n_nets;

        let mut ipdom = vec![usize::MAX; n_nets + 1];
        ipdom[exit] = exit;
        let intersect = |ipdom: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while ord[a] < ord[b] {
                    a = ipdom[a];
                }
                while ord[b] < ord[a] {
                    b = ipdom[b];
                }
            }
            a
        };
        // Process sinks before sources: every successor's immediate
        // post-dominator is final by the time a net is visited.
        for &net in order.iter().rev() {
            let mut new_ipdom = usize::MAX;
            let mut successor = |s: usize, ipdom: &[usize]| {
                debug_assert_ne!(ipdom[s], usize::MAX, "successors visited first");
                new_ipdom = if new_ipdom == usize::MAX {
                    s
                } else {
                    intersect(ipdom, new_ipdom, s)
                };
            };
            let fanouts = self.fanouts(NetId::from_index(net));
            if fanouts.is_empty() {
                successor(exit, &ipdom);
            }
            for e in fanouts {
                match e.consumer {
                    Consumer::GatePin { gate, .. } => {
                        successor(c.gate(gate).output().index(), &ipdom);
                    }
                    Consumer::DffD(_) | Consumer::OutputBit { .. } => successor(exit, &ipdom),
                }
            }
            ipdom[net] = new_ipdom;
        }
        (0..n_nets)
            .map(|n| {
                let d = ipdom[n];
                (d != exit).then(|| NetId::from_index(d))
            })
            .collect()
    }
}

fn collect_edges(c: &Circuit) -> Vec<Edge> {
    let mut edges = Vec::new();
    for (gid, g) in c.gates() {
        for (pin, &src) in g.inputs().iter().enumerate() {
            edges.push(Edge {
                source: src,
                consumer: Consumer::GatePin {
                    gate: gid,
                    pin: u8::try_from(pin).expect("pin fits u8"),
                },
            });
        }
    }
    for (did, d) in c.dffs() {
        edges.push(Edge {
            source: d.d(),
            consumer: Consumer::DffD(did),
        });
    }
    for (pi, port) in c.output_ports().iter().enumerate() {
        for (bi, &src) in port.nets().iter().enumerate() {
            edges.push(Edge {
                source: src,
                consumer: Consumer::OutputBit {
                    port: u16::try_from(pi).expect("port index fits u16"),
                    bit: u16::try_from(bi).expect("bit index fits u16"),
                },
            });
        }
    }
    edges.sort_by_key(|e| e.source);
    edges
}

fn topo_order(c: &Circuit, edges: &[Edge], edge_start: &[u32]) -> Vec<GateId> {
    let mut indeg = vec![0u32; c.num_gates()];
    for (i, g) in c.gates() {
        let mut n = 0;
        for &inp in g.inputs() {
            if matches!(c.net(inp).driver(), Driver::Gate(_)) {
                n += 1;
            }
        }
        indeg[i.index()] = n;
    }
    let mut ready: VecDeque<GateId> = indeg
        .iter()
        .enumerate()
        .filter(|&(_i, &d)| d == 0)
        .map(|(i, &_d)| GateId::from_index(i))
        .collect();
    let mut order = Vec::with_capacity(c.num_gates());
    while let Some(g) = ready.pop_front() {
        order.push(g);
        let out = c.gate(g).output();
        let lo = edge_start[out.index()] as usize;
        let hi = edge_start[out.index() + 1] as usize;
        for e in &edges[lo..hi] {
            if let Consumer::GatePin { gate, .. } = e.consumer {
                indeg[gate.index()] -= 1;
                if indeg[gate.index()] == 0 {
                    ready.push_back(gate);
                }
            }
        }
    }
    assert_eq!(
        order.len(),
        c.num_gates(),
        "circuit contains a combinational loop; CircuitBuilder::finish should have rejected it"
    );
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    /// a --AND--> x --NOT--> y -> DFF -> q (feedback to AND)
    fn loop_through_dff() -> (Circuit, NetId) {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let r = b.reg("state", false);
        let x = b.and(a, r.q());
        let y = b.not(x);
        b.drive(r, y);
        b.output("q", r.q());
        let x_net = x;
        (b.finish().unwrap(), x_net)
    }

    #[test]
    fn edges_cover_all_pins() {
        let (c, _) = loop_through_dff();
        let t = Topology::new(&c);
        // AND has 2 pins, NOT 1 pin, DFF d 1, output bit 1 = 5 edges.
        assert_eq!(t.edges().len(), 5);
        // Every edge is retrievable through its source's fanout list.
        for (i, e) in t.edges().iter().enumerate() {
            let id = EdgeId::from_index(i);
            assert_eq!(t.edge(id), *e);
            assert!(t.fanouts(e.source).contains(e));
        }
    }

    #[test]
    fn eval_order_is_topological() {
        let (c, _) = loop_through_dff();
        let t = Topology::new(&c);
        assert_eq!(t.eval_order().len(), c.num_gates());
        let mut pos = vec![usize::MAX; c.num_gates()];
        for (i, &g) in t.eval_order().iter().enumerate() {
            pos[g.index()] = i;
        }
        for (gid, g) in c.gates() {
            for &inp in g.inputs() {
                if let Driver::Gate(src) = c.net(inp).driver() {
                    assert!(pos[src.index()] < pos[gid.index()]);
                }
            }
        }
    }

    #[test]
    fn gate_levels_are_consistent_with_dependencies() {
        let (c, _) = loop_through_dff();
        let t = Topology::new(&c);
        // AND is fed by an input and a DFF (level 0); NOT is fed by AND.
        for (gid, g) in c.gates() {
            let mut expect = 0u32;
            for &inp in g.inputs() {
                if let Driver::Gate(src) = c.net(inp).driver() {
                    expect = expect.max(t.gate_level(src) + 1);
                }
            }
            assert_eq!(t.gate_level(gid), expect);
            assert!((t.gate_level(gid) as usize) < t.num_levels());
        }
        assert_eq!(t.num_levels(), 2, "AND at level 0, NOT at level 1");
    }

    #[test]
    fn downstream_dffs_follow_combinational_paths() {
        let (c, x) = loop_through_dff();
        let t = Topology::new(&c);
        let dffs = t.downstream_dffs(&c, x);
        assert_eq!(dffs.len(), 1, "the AND output reaches the state DFF");
        // The DFF's own Q net also reaches the DFF (through AND and NOT).
        let q = c.dff(dffs[0]).q();
        assert_eq!(t.downstream_dffs(&c, q), dffs);
    }

    #[test]
    fn fanin_sources_find_dffs_and_inputs() {
        let (c, x) = loop_through_dff();
        let t = Topology::new(&c);
        let (dffs, inputs) = t.fanin_sources(&c, &[x]);
        assert_eq!(dffs.len(), 1);
        assert_eq!(inputs.len(), 1);
    }

    #[test]
    fn pin_edge_indices_are_inverse_of_edges() {
        let (c, _) = loop_through_dff();
        let t = Topology::new(&c);
        for (gid, g) in c.gates() {
            let pins: Vec<EdgeId> = t.gate_in_edges(gid).collect();
            assert_eq!(pins.len(), g.kind().arity());
            for (pin, &e) in pins.iter().enumerate() {
                assert_eq!(
                    t.edge(e).consumer,
                    Consumer::GatePin {
                        gate: gid,
                        pin: pin as u8
                    }
                );
                assert_eq!(t.edge(e).source, g.inputs()[pin]);
            }
        }
        for (did, d) in c.dffs() {
            let e = t.dff_in_edge(did);
            assert_eq!(t.edge(e).consumer, Consumer::DffD(did));
            assert_eq!(t.edge(e).source, d.d());
        }
    }

    #[test]
    fn post_dominators_follow_single_paths_and_stop_at_latches() {
        let (c, x) = loop_through_dff();
        let t = Topology::new(&c);
        let pdom = t.post_dominators(&c);
        // a feeds only the AND, so every change on a funnels through x.
        let a = c.input_nets()[0];
        assert_eq!(pdom[a.index()], Some(x));
        // x feeds only the NOT, whose output y ends at the DFF D pin:
        // y's sole successor is the sequential EXIT.
        let y = c.dff(c.dffs().next().unwrap().0).d();
        assert_eq!(pdom[x.index()], Some(y));
        assert_eq!(pdom[y.index()], None);
        // q fans out to both the AND and a primary output, so nothing
        // short of EXIT post-dominates it.
        let q = c.dffs().next().unwrap().1.q();
        assert_eq!(pdom[q.index()], None);
    }

    #[test]
    fn post_dominators_reconverge_across_a_diamond() {
        // a splits into two NOTs whose outputs re-converge in an AND: the
        // AND output post-dominates a even though no single path shows it.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let l = b.not(a);
        let r = b.not(a);
        let m = b.and(l, r);
        b.output("o", m);
        let c = b.finish().unwrap();
        let t = Topology::new(&c);
        let pdom = t.post_dominators(&c);
        assert_eq!(pdom[a.index()], Some(m));
        assert_eq!(pdom[l.index()], Some(m));
        assert_eq!(pdom[r.index()], Some(m));
        assert_eq!(pdom[m.index()], None, "m ends at the output port");
    }

    #[test]
    fn post_dominators_handle_dangling_nets() {
        // A gate output nobody consumes flows straight to EXIT.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let unused = b.not(a);
        let used = b.not(a);
        b.output("o", used);
        let c = b.finish().unwrap();
        let t = Topology::new(&c);
        let pdom = t.post_dominators(&c);
        assert_eq!(pdom[unused.index()], None);
        // a reaches EXIT along both branches without re-converging.
        assert_eq!(pdom[a.index()], None);
    }

    #[test]
    fn structure_edges_select_by_source_membership() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let inner = b.in_structure("blk", |b| b.not(a));
        let outer = b.not(inner);
        b.output("o", outer);
        let c = b.finish().unwrap();
        let t = Topology::new(&c);
        let edges = t.structure_edges(&c, "blk").unwrap();
        // Only the edge sourced at the tagged NOT's output qualifies; the
        // input-to-NOT edge is sourced outside the structure.
        assert_eq!(edges.len(), 1);
        assert_eq!(t.edge(edges[0]).source, inner);
        assert!(t.structure_edges(&c, "nope").is_err());
    }
}
