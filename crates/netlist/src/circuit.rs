//! The flat circuit graph: nets, gates, flip-flops, ports and structures.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::{Gate, GateKind};
use crate::ids::{DffId, GateId, NetId};

/// What drives a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Driver {
    /// Driven by the environment each cycle; the payload is the index into
    /// the flattened primary-input list ([`Circuit::input_nets`]).
    Input(u32),
    /// Constant logic value.
    Const(bool),
    /// Output of a logic gate.
    Gate(GateId),
    /// Q output of a flip-flop.
    Dff(DffId),
}

/// A net: a single-driver signal carrier.
#[derive(Clone, Debug)]
pub struct Net {
    pub(crate) driver: Driver,
    pub(crate) name: Option<Box<str>>,
}

impl Net {
    /// The element driving this net.
    #[inline]
    pub fn driver(&self) -> Driver {
        self.driver
    }

    /// Hierarchical debug name, when one was recorded.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// A positive-edge D flip-flop.
///
/// All flip-flops share one implicit clock. Enables and synchronous resets
/// are lowered to multiplexers in front of the D pin by the builder.
#[derive(Clone, Debug)]
pub struct Dff {
    pub(crate) d: NetId,
    pub(crate) q: NetId,
    pub(crate) init: bool,
    pub(crate) name: Box<str>,
}

impl Dff {
    /// The net sampled at the clock edge.
    #[inline]
    pub fn d(&self) -> NetId {
        self.d
    }

    /// The net carrying the stored value.
    #[inline]
    pub fn q(&self) -> NetId {
        self.q
    }

    /// Power-on value of the flip-flop.
    #[inline]
    pub fn init(&self) -> bool {
        self.init
    }

    /// Hierarchical instance name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A named multi-bit primary input or output port (LSB first).
#[derive(Clone, Debug)]
pub struct Port {
    pub(crate) name: Box<str>,
    pub(crate) nets: Vec<NetId>,
}

impl Port {
    /// Port name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port's nets, least-significant bit first.
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// Number of bits in the port.
    pub fn width(&self) -> usize {
        self.nets.len()
    }
}

/// The gates and flip-flops associated with one named microarchitectural
/// structure (the set *H* of the paper).
#[derive(Clone, Debug, Default)]
pub struct Structure {
    pub(crate) gates: Vec<GateId>,
    pub(crate) dffs: Vec<DffId>,
}

impl Structure {
    /// Gates tagged into this structure.
    pub fn gates(&self) -> &[GateId] {
        &self.gates
    }

    /// Flip-flops tagged into this structure (the structure's "bits" for
    /// particle-strike AVF).
    pub fn dffs(&self) -> &[DffId] {
        &self.dffs
    }

    /// True when the structure contains no gates and no flip-flops.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty() && self.dffs.is_empty()
    }
}

/// An immutable gate-level circuit.
///
/// Produced by [`crate::CircuitBuilder::finish`], which guarantees the
/// invariants the analyses rely on: every net has exactly one driver, every
/// flip-flop D pin is connected, and the combinational graph is acyclic.
#[derive(Clone)]
pub struct Circuit {
    pub(crate) nets: Vec<Net>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) dffs: Vec<Dff>,
    pub(crate) input_ports: Vec<Port>,
    pub(crate) output_ports: Vec<Port>,
    /// Flattened primary-input nets; `Driver::Input(i)` indexes this list.
    pub(crate) input_nets: Vec<NetId>,
    pub(crate) structures: BTreeMap<String, Structure>,
}

impl Circuit {
    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of logic gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    #[inline]
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of primary-input bits.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.input_nets.len()
    }

    /// Looks up a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Looks up a flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[inline]
    pub fn dff(&self, id: DffId) -> &Dff {
        &self.dffs[id.index()]
    }

    /// Iterates over all gates with their ids.
    pub fn gates(&self) -> impl ExactSizeIterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::from_index(i), g))
    }

    /// Iterates over all flip-flops with their ids.
    pub fn dffs(&self) -> impl ExactSizeIterator<Item = (DffId, &Dff)> {
        self.dffs
            .iter()
            .enumerate()
            .map(|(i, d)| (DffId::from_index(i), d))
    }

    /// Iterates over all nets with their ids.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::from_index(i), n))
    }

    /// Flattened primary-input nets, in `Driver::Input` index order.
    pub fn input_nets(&self) -> &[NetId] {
        &self.input_nets
    }

    /// Primary-input ports in declaration order.
    pub fn input_ports(&self) -> &[Port] {
        &self.input_ports
    }

    /// Primary-output ports in declaration order.
    pub fn output_ports(&self) -> &[Port] {
        &self.output_ports
    }

    /// Finds an input port by name.
    pub fn input_port(&self, name: &str) -> Option<&Port> {
        self.input_ports.iter().find(|p| &*p.name == name)
    }

    /// Finds an output port by name.
    pub fn output_port(&self, name: &str) -> Option<&Port> {
        self.output_ports.iter().find(|p| &*p.name == name)
    }

    /// Names of all tagged structures, in sorted order.
    pub fn structure_names(&self) -> impl Iterator<Item = &str> {
        self.structures.keys().map(String::as_str)
    }

    /// Looks up a structure by name.
    pub fn structure(&self, name: &str) -> Option<&Structure> {
        self.structures.get(name)
    }

    /// Returns the structure by name or an error suitable for user-facing
    /// configuration validation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownStructure`] when no structure with this
    /// name was tagged during construction.
    pub fn require_structure(&self, name: &str) -> Result<&Structure, NetlistError> {
        self.structure(name)
            .ok_or_else(|| NetlistError::UnknownStructure {
                name: name.to_owned(),
                available: self.structure_names().map(str::to_owned).collect(),
            })
    }

    /// The power-on state of all flip-flops, indexed by raw [`DffId`].
    pub fn initial_state(&self) -> Vec<bool> {
        self.dffs.iter().map(|d| d.init).collect()
    }

    /// Counts gates of each kind, in [`GateKind::ALL`] order.
    pub fn gate_kind_histogram(&self) -> [(GateKind, usize); 9] {
        let mut hist = GateKind::ALL.map(|k| (k, 0usize));
        for g in &self.gates {
            let slot = GateKind::ALL
                .iter()
                .position(|k| *k == g.kind)
                .expect("kind in ALL");
            hist[slot].1 += 1;
        }
        hist
    }
}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Circuit")
            .field("nets", &self.nets.len())
            .field("gates", &self.gates.len())
            .field("dffs", &self.dffs.len())
            .field("inputs", &self.input_nets.len())
            .field(
                "outputs",
                &self.output_ports.iter().map(|p| p.width()).sum::<usize>(),
            )
            .field("structures", &self.structures.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;
    use crate::gate::GateKind;

    fn tiny() -> crate::Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let o = b.gate(GateKind::And2, &[a, bb]);
        b.output("o", o);
        b.finish().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let c = tiny();
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_dffs(), 0);
        let (gid, gate) = c.gates().next().unwrap();
        assert_eq!(c.gate(gid).output(), gate.output());
        assert_eq!(gate.kind(), GateKind::And2);
    }

    #[test]
    fn ports_are_discoverable_by_name() {
        let c = tiny();
        assert_eq!(c.input_port("a").unwrap().width(), 1);
        assert_eq!(c.output_port("o").unwrap().width(), 1);
        assert!(c.input_port("missing").is_none());
    }

    #[test]
    fn unknown_structure_error_lists_alternatives() {
        let c = tiny();
        let err = c.require_structure("alu").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("alu"), "{msg}");
    }

    #[test]
    fn debug_is_nonempty() {
        let c = tiny();
        assert!(!format!("{c:?}").is_empty());
    }

    #[test]
    fn gate_histogram_counts() {
        let c = tiny();
        let hist = c.gate_kind_histogram();
        let and2 = hist.iter().find(|(k, _)| *k == GateKind::And2).unwrap();
        assert_eq!(and2.1, 1);
    }
}
