//! Graphviz (DOT) export for circuit inspection.

use std::fmt::Write as _;

use crate::circuit::{Circuit, Driver};
use crate::ids::{DffId, GateId};

/// Maximum number of elements [`to_dot`] will render before refusing;
/// beyond this Graphviz output stops being useful.
pub const DOT_ELEMENT_LIMIT: usize = 4_000;

/// Renders the circuit as a Graphviz `digraph`.
///
/// Gates become ellipses labeled with their cell name, flip-flops become
/// boxes labeled with their instance name, primary inputs/outputs become
/// diamonds. Elements belonging to the named structure (if any) are
/// highlighted.
///
/// # Errors
///
/// Returns `Err` with a message when the circuit exceeds
/// [`DOT_ELEMENT_LIMIT`] elements (render a sub-structure instead).
pub fn to_dot(c: &Circuit, highlight: Option<&str>) -> Result<String, String> {
    let elements = c.num_gates() + c.num_dffs() + c.num_inputs();
    if elements > DOT_ELEMENT_LIMIT {
        return Err(format!(
            "circuit has {elements} elements; DOT export is capped at {DOT_ELEMENT_LIMIT}"
        ));
    }
    let (hl_gates, hl_dffs): (Vec<GateId>, Vec<DffId>) = match highlight {
        Some(name) => {
            let s = c
                .structure(name)
                .ok_or_else(|| format!("unknown structure `{name}`"))?;
            (s.gates().to_vec(), s.dffs().to_vec())
        }
        None => (Vec::new(), Vec::new()),
    };

    let mut out = String::from("digraph circuit {\n  rankdir=LR;\n");
    for (pi, port) in c.input_ports().iter().enumerate() {
        let _ = writeln!(out, "  in{pi} [shape=diamond, label=\"{}\"];", port.name());
    }
    for (po, port) in c.output_ports().iter().enumerate() {
        let _ = writeln!(out, "  out{po} [shape=diamond, label=\"{}\"];", port.name());
    }
    for (gid, g) in c.gates() {
        let style = if hl_gates.contains(&gid) {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  g{} [shape=ellipse, label=\"{}\"{style}];",
            gid.index(),
            g.kind()
        );
    }
    for (did, d) in c.dffs() {
        let style = if hl_dffs.contains(&did) {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  ff{} [shape=box, label=\"{}\"{}];",
            did.index(),
            d.name(),
            style
        );
    }

    // One arrow per consumed net, from its driver.
    let src_of = |net| match c.net(net).driver() {
        Driver::Gate(g) => format!("g{}", g.index()),
        Driver::Dff(d) => format!("ff{}", d.index()),
        Driver::Input(i) => {
            // Map the flat input index back to its port.
            let mut idx = i as usize;
            let mut port = 0usize;
            for (pi, p) in c.input_ports().iter().enumerate() {
                if idx < p.width() {
                    port = pi;
                    break;
                }
                idx -= p.width();
            }
            format!("in{port}")
        }
        Driver::Const(v) => format!("const{}", u8::from(v)),
    };
    let mut used_consts = [false; 2];
    for (_, g) in c.gates() {
        for &inp in g.inputs() {
            if let Driver::Const(v) = c.net(inp).driver() {
                used_consts[usize::from(v)] = true;
            }
            let _ = writeln!(
                out,
                "  {} -> g{};",
                src_of(inp),
                match c.net(g.output()).driver() {
                    Driver::Gate(id) => id.index(),
                    _ => unreachable!("gate outputs are gate-driven"),
                }
            );
        }
    }
    for (did, d) in c.dffs() {
        if let Driver::Const(v) = c.net(d.d()).driver() {
            used_consts[usize::from(v)] = true;
        }
        let _ = writeln!(out, "  {} -> ff{};", src_of(d.d()), did.index());
    }
    for (po, port) in c.output_ports().iter().enumerate() {
        for &net in port.nets() {
            if let Driver::Const(v) = c.net(net).driver() {
                used_consts[usize::from(v)] = true;
            }
            let _ = writeln!(out, "  {} -> out{po};", src_of(net));
        }
    }
    for (v, used) in used_consts.iter().enumerate() {
        if *used {
            let _ = writeln!(out, "  const{v} [shape=plaintext, label=\"{v}\"];");
        }
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    fn tiny() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.in_structure("blk", |b| {
            let n = b.not(a);
            let r = b.reg("state", false);
            let d = b.xor(n, r.q());
            b.drive(r, d);
            r.q()
        });
        b.output("o", x);
        b.finish().unwrap()
    }

    #[test]
    fn dot_contains_all_elements_and_arrows() {
        let c = tiny();
        let dot = to_dot(&c, None).unwrap();
        assert!(dot.starts_with("digraph circuit {"));
        assert!(dot.contains("INV"));
        assert!(dot.contains("XOR2"));
        assert!(dot.contains("blk/state"));
        // Arrows: in->INV, INV->XOR, ff->XOR, XOR->ff, ff->out = 5.
        assert_eq!(dot.matches(" -> ").count(), 5, "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlight_requires_known_structure() {
        let c = tiny();
        let dot = to_dot(&c, Some("blk")).unwrap();
        assert!(dot.contains("lightblue"));
        assert!(to_dot(&c, Some("nope")).is_err());
    }

    #[test]
    fn oversized_circuits_are_refused() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let mut x = a;
        for _ in 0..DOT_ELEMENT_LIMIT + 1 {
            x = b.not(x);
        }
        b.output("o", x);
        let c = b.finish().unwrap();
        assert!(to_dot(&c, None).is_err());
    }
}
