//! Size statistics for circuits and structures (source of the paper's
//! Table I).

use std::fmt;

use crate::circuit::Circuit;
use crate::error::NetlistError;
use crate::topo::Topology;

/// Whole-circuit size statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total nets.
    pub nets: usize,
    /// Total logic gates.
    pub gates: usize,
    /// Total flip-flops.
    pub dffs: usize,
    /// Primary-input bits.
    pub inputs: usize,
    /// Primary-output bits.
    pub outputs: usize,
    /// Fanout edges (SDF injection sites).
    pub edges: usize,
}

impl CircuitStats {
    /// Gathers statistics for a circuit.
    pub fn collect(c: &Circuit, topo: &Topology) -> Self {
        CircuitStats {
            nets: c.num_nets(),
            gates: c.num_gates(),
            dffs: c.num_dffs(),
            inputs: c.num_inputs(),
            outputs: c.output_ports().iter().map(|p| p.width()).sum(),
            edges: topo.edges().len(),
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {} dffs, {} nets, {} edges, {} in / {} out bits",
            self.gates, self.dffs, self.nets, self.edges, self.inputs, self.outputs
        )
    }
}

/// Size statistics for one tagged structure (one row of Table I).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructureStats {
    /// Structure name.
    pub name: String,
    /// Gates tagged into the structure.
    pub gates: usize,
    /// Flip-flops tagged into the structure (its particle-strike "bits").
    pub dffs: usize,
    /// Injectable fanout edges sourced within the structure — the paper's
    /// "# injected wires (E)".
    pub edges: usize,
}

impl StructureStats {
    /// Gathers statistics for a named structure.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownStructure`] for unknown names.
    pub fn collect(c: &Circuit, topo: &Topology, name: &str) -> Result<Self, NetlistError> {
        let s = c.require_structure(name)?;
        let edges = topo.structure_edges(c, name)?;
        Ok(StructureStats {
            name: name.to_owned(),
            gates: s.gates().len(),
            dffs: s.dffs().len(),
            edges: edges.len(),
        })
    }
}

impl fmt::Display for StructureStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates, {} dffs, {} injectable edges",
            self.name, self.gates, self.dffs, self.edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn stats_reflect_structure_contents() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        b.in_structure("alu", |b| {
            let n = b.not(a);
            let r = b.reg("acc", false);
            let d = b.xor(n, r.q());
            b.drive(r, d);
            b.output("o", r.q());
        });
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let cs = CircuitStats::collect(&c, &topo);
        assert_eq!(cs.gates, 2);
        assert_eq!(cs.dffs, 1);
        assert_eq!(cs.edges, topo.edges().len());
        assert!(!cs.to_string().is_empty());

        let ss = StructureStats::collect(&c, &topo, "alu").unwrap();
        assert_eq!(ss.gates, 2);
        assert_eq!(ss.dffs, 1);
        // Edges sourced in the structure: NOT output -> XOR pin, XOR output
        // -> DFF d, DFF q -> XOR pin, DFF q -> output bit.
        assert_eq!(ss.edges, 4);
        assert!(ss.to_string().contains("alu"));
        assert!(StructureStats::collect(&c, &topo, "nope").is_err());
    }
}
