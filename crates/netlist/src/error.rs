//! Error type for netlist construction and validation.

use std::error::Error;
use std::fmt;

/// Errors reported while building or validating a circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A register created with [`crate::CircuitBuilder::reg`] was never
    /// driven before [`crate::CircuitBuilder::finish`].
    UndrivenRegister {
        /// Hierarchical name of the register bit.
        name: String,
    },
    /// A register was driven more than once.
    DoublyDrivenRegister {
        /// Hierarchical name of the register bit.
        name: String,
    },
    /// The combinational part of the circuit contains a cycle.
    CombinationalLoop {
        /// Debug name (or id rendering) of one net on the loop.
        net: String,
    },
    /// Two ports of the same direction share a name.
    DuplicatePort {
        /// The conflicting port name.
        name: String,
    },
    /// A structure name was requested that was never tagged.
    UnknownStructure {
        /// The requested name.
        name: String,
        /// The names that do exist.
        available: Vec<String>,
    },
    /// Word operands of mismatched widths were combined.
    WidthMismatch {
        /// Operation that was attempted.
        op: &'static str,
        /// Width of the left operand.
        lhs: usize,
        /// Width of the right operand.
        rhs: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndrivenRegister { name } => {
                write!(f, "register `{name}` was never driven")
            }
            NetlistError::DoublyDrivenRegister { name } => {
                write!(f, "register `{name}` was driven more than once")
            }
            NetlistError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net `{net}`")
            }
            NetlistError::DuplicatePort { name } => {
                write!(f, "duplicate port name `{name}`")
            }
            NetlistError::UnknownStructure { name, available } => write!(
                f,
                "unknown structure `{name}` (available: {})",
                available.join(", ")
            ),
            NetlistError::WidthMismatch { op, lhs, rhs } => {
                write!(f, "width mismatch in `{op}`: {lhs} vs {rhs} bits")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = NetlistError::WidthMismatch {
            op: "add",
            lhs: 32,
            rhs: 16,
        };
        assert_eq!(e.to_string(), "width mismatch in `add`: 32 vs 16 bits");
        let e = NetlistError::UnknownStructure {
            name: "alu".into(),
            available: vec!["decoder".into(), "lsu".into()],
        };
        assert!(e.to_string().contains("decoder, lsu"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<NetlistError>();
    }
}
