//! Logic-gate primitives.

use std::fmt;

use crate::ids::NetId;

/// The primitive cell set out of which every circuit in this workspace is
/// built.
///
/// The set intentionally mirrors a small standard-cell library: two-input
/// gates, an inverter/buffer pair, and a two-way multiplexer. Wider operators
/// are lowered to trees of these primitives by [`crate::CircuitBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Identity buffer: `out = a`.
    Buf,
    /// Inverter: `out = !a`.
    Not,
    /// Two-input AND: `out = a & b`.
    And2,
    /// Two-input OR: `out = a | b`.
    Or2,
    /// Two-input NAND: `out = !(a & b)`.
    Nand2,
    /// Two-input NOR: `out = !(a | b)`.
    Nor2,
    /// Two-input XOR: `out = a ^ b`.
    Xor2,
    /// Two-input XNOR: `out = !(a ^ b)`.
    Xnor2,
    /// Two-way multiplexer with inputs `[s, a, b]`: `out = if s { b } else { a }`.
    Mux2,
}

impl GateKind {
    /// All gate kinds, in a stable order.
    pub const ALL: [GateKind; 9] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xor2,
        GateKind::Xnor2,
        GateKind::Mux2,
    ];

    /// Number of input pins this gate kind has.
    #[inline]
    pub fn arity(self) -> usize {
        match self {
            GateKind::Buf | GateKind::Not => 1,
            GateKind::Mux2 => 3,
            _ => 2,
        }
    }

    /// Evaluates the boolean function of this gate kind.
    ///
    /// `ins` must hold at least [`GateKind::arity`] values; extra entries are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics if `ins` is shorter than the gate's arity.
    #[inline]
    pub fn eval(self, ins: &[bool]) -> bool {
        match self {
            GateKind::Buf => ins[0],
            GateKind::Not => !ins[0],
            GateKind::And2 => ins[0] & ins[1],
            GateKind::Or2 => ins[0] | ins[1],
            GateKind::Nand2 => !(ins[0] & ins[1]),
            GateKind::Nor2 => !(ins[0] | ins[1]),
            GateKind::Xor2 => ins[0] ^ ins[1],
            GateKind::Xnor2 => !(ins[0] ^ ins[1]),
            GateKind::Mux2 => {
                if ins[0] {
                    ins[2]
                } else {
                    ins[1]
                }
            }
        }
    }

    /// Evaluates the boolean function over a fixed input triple, as the
    /// [`crate::EvalPlan`] stores one: pins beyond this kind's
    /// [`GateKind::arity`] are ignored, so lower-arity kinds may pass any
    /// value (the plan repeats pin 0) without changing the result.
    #[inline]
    pub fn eval3(self, a: bool, b: bool, c: bool) -> bool {
        match self {
            GateKind::Buf => a,
            GateKind::Not => !a,
            GateKind::And2 => a & b,
            GateKind::Or2 => a | b,
            GateKind::Nand2 => !(a & b),
            GateKind::Nor2 => !(a | b),
            GateKind::Xor2 => a ^ b,
            GateKind::Xnor2 => !(a ^ b),
            GateKind::Mux2 => {
                if a {
                    c
                } else {
                    b
                }
            }
        }
    }

    /// Short standard-cell-style name (e.g. `NAND2`).
    pub fn cell_name(self) -> &'static str {
        match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "INV",
            GateKind::And2 => "AND2",
            GateKind::Or2 => "OR2",
            GateKind::Nand2 => "NAND2",
            GateKind::Nor2 => "NOR2",
            GateKind::Xor2 => "XOR2",
            GateKind::Xnor2 => "XNOR2",
            GateKind::Mux2 => "MUX2",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cell_name())
    }
}

/// A logic gate instance: a [`GateKind`] applied to input nets, driving one
/// output net.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Gate {
    pub(crate) kind: GateKind,
    /// Input pins; only the first `kind.arity()` entries are meaningful.
    pub(crate) inputs: [NetId; 3],
    pub(crate) output: NetId,
}

impl Gate {
    /// The logic function of this gate.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The input nets, in pin order (`[s, a, b]` for `Mux2`).
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs[..self.kind.arity()]
    }

    /// The net driven by this gate.
    #[inline]
    pub fn output(&self) -> NetId {
        self.output
    }

    /// Evaluates the gate given a full net-value table indexed by raw net id.
    #[inline]
    pub fn eval_in(&self, values: &[bool]) -> bool {
        let ins = self.inputs();
        match self.kind {
            GateKind::Buf => values[ins[0].index()],
            GateKind::Not => !values[ins[0].index()],
            GateKind::And2 => values[ins[0].index()] & values[ins[1].index()],
            GateKind::Or2 => values[ins[0].index()] | values[ins[1].index()],
            GateKind::Nand2 => !(values[ins[0].index()] & values[ins[1].index()]),
            GateKind::Nor2 => !(values[ins[0].index()] | values[ins[1].index()]),
            GateKind::Xor2 => values[ins[0].index()] ^ values[ins[1].index()],
            GateKind::Xnor2 => !(values[ins[0].index()] ^ values[ins[1].index()]),
            GateKind::Mux2 => {
                if values[ins[0].index()] {
                    values[ins[2].index()]
                } else {
                    values[ins[1].index()]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_function() {
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::And2.arity(), 2);
        assert_eq!(GateKind::Mux2.arity(), 3);
    }

    #[test]
    fn truth_tables() {
        let t = true;
        let f = false;
        assert_eq!(GateKind::Buf.eval(&[t]), t);
        assert_eq!(GateKind::Not.eval(&[t]), f);
        for (a, b) in [(f, f), (f, t), (t, f), (t, t)] {
            assert_eq!(GateKind::And2.eval(&[a, b]), a & b);
            assert_eq!(GateKind::Or2.eval(&[a, b]), a | b);
            assert_eq!(GateKind::Nand2.eval(&[a, b]), !(a & b));
            assert_eq!(GateKind::Nor2.eval(&[a, b]), !(a | b));
            assert_eq!(GateKind::Xor2.eval(&[a, b]), a ^ b);
            assert_eq!(GateKind::Xnor2.eval(&[a, b]), !(a ^ b));
        }
        // Mux2: out = s ? b : a with pin order [s, a, b].
        assert_eq!(GateKind::Mux2.eval(&[f, t, f]), t);
        assert_eq!(GateKind::Mux2.eval(&[t, t, f]), f);
    }

    #[test]
    fn display_uses_cell_names() {
        assert_eq!(GateKind::Nand2.to_string(), "NAND2");
        assert_eq!(GateKind::Mux2.to_string(), "MUX2");
    }

    #[test]
    fn all_kinds_listed_once() {
        let mut names: Vec<_> = GateKind::ALL.iter().map(|k| k.cell_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GateKind::ALL.len());
    }
}
