//! Gate-level netlist substrate for the DelayAVF reproduction.
//!
//! This crate provides the circuit representation that every other layer of the
//! workspace operates on: the timing analyses of `delayavf-timing`, the
//! timing-aware and timing-agnostic simulators of `delayavf-sim`, and the
//! DelayAVF/sAVF computations of `delayavf` all consume a [`Circuit`].
//!
//! A [`Circuit`] is a flat graph of:
//!
//! * **nets** ([`NetId`]) — single-driver signal carriers,
//! * **gates** ([`Gate`]) — two-input logic primitives plus `BUF`/`NOT`/`MUX2`,
//! * **state elements** ([`Dff`]) — positive-edge D flip-flops on one implicit clock,
//! * **ports** — primary inputs driven by the environment each cycle and primary
//!   outputs sampled by the environment at the end of each cycle.
//!
//! Circuits are constructed through [`CircuitBuilder`], which adds hierarchical
//! naming scopes, multi-bit [`Word`] operators (adders, barrel shifters,
//! comparators, muxes) and **structure tagging**: the association of gates and
//! flip-flops with a named microarchitectural structure (ALU, decoder, register
//! file, ...). Structures are the unit at which the DelayAVF paper defines
//! vulnerability (the set of wires *E* of a structure *H*).
//!
//! Fault-injection sites are **fanout edges** ([`Edge`]): individual
//! driver-to-sink connections, enumerated by [`Topology`]. A small delay fault
//! on an edge delays the signal seen by exactly one sink, which generalizes the
//! paper's wire- and gate-output-level delay faults (§IV-A of the paper).
//!
//! # Example
//!
//! Build a 1-bit full adder and inspect it:
//!
//! ```
//! use delayavf_netlist::{CircuitBuilder, GateKind};
//!
//! let mut b = CircuitBuilder::new();
//! let a = b.input("a");
//! let c = b.input("b");
//! let cin = b.input("cin");
//! let (sum, cout) = b.in_scope("fa", |b| {
//!     let axb = b.gate(GateKind::Xor2, &[a, c]);
//!     let sum = b.gate(GateKind::Xor2, &[axb, cin]);
//!     let g = b.gate(GateKind::And2, &[a, c]);
//!     let p = b.gate(GateKind::And2, &[axb, cin]);
//!     let cout = b.gate(GateKind::Or2, &[g, p]);
//!     (sum, cout)
//! });
//! b.output("sum", sum);
//! b.output("cout", cout);
//! let circuit = b.finish().expect("valid circuit");
//! assert_eq!(circuit.num_gates(), 5);
//! assert_eq!(circuit.num_inputs(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod circuit;
mod error;
pub mod export;
mod gate;
mod ids;
mod plan;
mod stats;
mod topo;
mod word;

pub use builder::{CircuitBuilder, Reg, RegWord};
pub use circuit::{Circuit, Dff, Driver, Net, Port};
pub use error::NetlistError;
pub use gate::{Gate, GateKind};
pub use ids::{DffId, EdgeId, GateId, NetId};
pub use plan::EvalPlan;
pub use stats::{CircuitStats, StructureStats};
pub use topo::{Consumer, Edge, Topology};
pub use word::Word;
