//! A struct-of-arrays compilation of the combinational logic: the
//! [`EvalPlan`].
//!
//! Every simulator in the workspace repeatedly walks the circuit's gates in
//! a dependency-respecting order. Doing that over [`crate::Gate`] records
//! means chasing one heap-allocated `inputs` slice per gate per cycle —
//! fine for a one-off settle, but it dominates the dense inner loops of the
//! bit-parallel replay engines, where a single pass touches every gate of
//! the netlist for up to 512 packed fault scenarios at once.
//!
//! The plan flattens that walk into contiguous parallel arrays compiled
//! once per [`crate::Topology`]:
//!
//! * an **opcode table** ([`EvalPlan::kinds`]) — one [`GateKind`] per
//!   compiled op;
//! * **flattened input-index triples** ([`EvalPlan::ins`]) — three `u32`
//!   net slots per op (unused pins of lower-arity kinds repeat slot 0 and
//!   are ignored by evaluation);
//! * **output slots** ([`EvalPlan::outs`]) — one `u32` net slot per op;
//! * **level offsets** ([`EvalPlan::level_offsets`]) — ops are emitted
//!   sorted by combinational level (a valid topological order, since a
//!   gate's level strictly exceeds every gate-driven input's level), and
//!   `level_offsets[l]..level_offsets[l + 1]` is level `l`'s op range;
//! * **flip-flop remaps** ([`EvalPlan::dff_q`] / [`EvalPlan::dff_d`]) —
//!   the Q and D net slot of every flip-flop, in [`crate::DffId`] order.
//!
//! A dense sweep is then a straight-line walk over packed slices — no
//! per-gate struct loads, no bounds-determined branches beyond the opcode
//! dispatch — and a levelized cone sweep indexes single ops through
//! [`EvalPlan::op_of_gate`]. The plan encodes exactly the same evaluation
//! the [`crate::Gate`] records describe; `crate::Topology` tests pin the
//! equivalence.

use crate::circuit::Circuit;
use crate::gate::GateKind;
use crate::ids::{GateId, NetId};

/// A levelized struct-of-arrays gate program for one circuit, compiled once
/// by [`crate::Topology::new`] and shared by every simulator.
///
/// Ops appear sorted by combinational level (ties broken by the original
/// topological order), which is itself a valid topological order: walking
/// `0..len()` evaluates every gate after all of its inputs.
#[derive(Clone, Debug)]
pub struct EvalPlan {
    /// Opcode of each compiled op.
    kinds: Vec<GateKind>,
    /// Input net slots of each op; unused pins repeat slot 0.
    ins: Vec<[u32; 3]>,
    /// Output net slot of each op.
    outs: Vec<u32>,
    /// Op index of each gate (indexed by raw [`GateId`]).
    op_of_gate: Vec<u32>,
    /// `level_offsets[l]..level_offsets[l + 1]` is the op range of
    /// combinational level `l`; length `num_levels + 1`.
    level_offsets: Vec<u32>,
    /// Q net slot of each flip-flop, in [`crate::DffId`] order.
    dff_q: Vec<u32>,
    /// D net slot of each flip-flop, in [`crate::DffId`] order.
    dff_d: Vec<u32>,
}

impl EvalPlan {
    /// Compiles the plan from a circuit and its topological products.
    pub(crate) fn new(
        c: &Circuit,
        eval_order: &[GateId],
        gate_level: &[u32],
        num_levels: u32,
    ) -> Self {
        let slot = |n: NetId| u32::try_from(n.index()).expect("net fits u32");
        // Counting sort by level keeps the compile linear and the tie-break
        // stable on the original topological order.
        let mut level_counts = vec![0u32; num_levels as usize + 1];
        for &g in eval_order {
            level_counts[gate_level[g.index()] as usize + 1] += 1;
        }
        for l in 0..num_levels as usize {
            level_counts[l + 1] += level_counts[l];
        }
        let level_offsets = level_counts.clone();
        let n = eval_order.len();
        let mut kinds = vec![GateKind::Buf; n];
        let mut ins = vec![[0u32; 3]; n];
        let mut outs = vec![0u32; n];
        let mut op_of_gate = vec![u32::MAX; c.num_gates()];
        let mut cursor = level_counts;
        for &g in eval_order {
            let gate = c.gate(g);
            let at = cursor[gate_level[g.index()] as usize];
            cursor[gate_level[g.index()] as usize] += 1;
            let i = at as usize;
            kinds[i] = gate.kind();
            let pins = gate.inputs();
            let a = slot(pins[0]);
            ins[i] = [
                a,
                pins.get(1).map_or(a, |&p| slot(p)),
                pins.get(2).map_or(a, |&p| slot(p)),
            ];
            outs[i] = slot(gate.output());
            op_of_gate[g.index()] = at;
        }
        let mut dff_q = Vec::with_capacity(c.num_dffs());
        let mut dff_d = Vec::with_capacity(c.num_dffs());
        for (_, dff) in c.dffs() {
            dff_q.push(slot(dff.q()));
            dff_d.push(slot(dff.d()));
        }
        EvalPlan {
            kinds,
            ins,
            outs,
            op_of_gate,
            level_offsets,
            dff_q,
            dff_d,
        }
    }

    /// Number of compiled ops (= number of gates).
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True for a gateless circuit.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The opcode table, in plan order.
    #[inline]
    pub fn kinds(&self) -> &[GateKind] {
        &self.kinds
    }

    /// The flattened input-index triples, in plan order. Unused pins of
    /// lower-arity kinds repeat pin 0's slot and are ignored by evaluation.
    #[inline]
    pub fn ins(&self) -> &[[u32; 3]] {
        &self.ins
    }

    /// The output net slots, in plan order.
    #[inline]
    pub fn outs(&self) -> &[u32] {
        &self.outs
    }

    /// The op index compiled for `gate`.
    #[inline]
    pub fn op_of_gate(&self, gate: GateId) -> u32 {
        self.op_of_gate[gate.index()]
    }

    /// One op's `(kind, input slots, output slot)`.
    #[inline]
    pub fn op(&self, i: u32) -> (GateKind, [u32; 3], u32) {
        let i = i as usize;
        (self.kinds[i], self.ins[i], self.outs[i])
    }

    /// Per-level op ranges: `level_offsets()[l]..level_offsets()[l + 1]` is
    /// the contiguous run of level-`l` ops; length `num_levels + 1`.
    #[inline]
    pub fn level_offsets(&self) -> &[u32] {
        &self.level_offsets
    }

    /// The Q net slot of each flip-flop, in [`crate::DffId`] order.
    #[inline]
    pub fn dff_q(&self) -> &[u32] {
        &self.dff_q
    }

    /// The D net slot of each flip-flop, in [`crate::DffId`] order.
    #[inline]
    pub fn dff_d(&self) -> &[u32] {
        &self.dff_d
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;
    use crate::circuit::Circuit;
    use crate::gate::GateKind;
    use crate::topo::Topology;

    /// A small but representative circuit: every gate arity, a constant, a
    /// flip-flop, multi-level word logic.
    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.input_word("a", 8);
        let c = b.input_word("c", 8);
        let sel = b.input("sel");
        let one = b.const_bit(true);
        let sum = b.add(&a, &c);
        let pick = b.mux_word(sel, &sum, &c);
        let r = b.reg_word("r", 8, 0);
        let fb = b.w_xor(&pick, &r.q());
        let gated = b.gate(GateKind::Nand2, &[fb.bit(0), one]);
        let red = b.gate(GateKind::Nor2, &[fb.bit(1), gated]);
        let flip = b.gate(GateKind::Xnor2, &[red, sel]);
        b.drive_word(&r, &fb);
        b.output("flip", flip);
        b.output_word("fb", &fb);
        b.finish().expect("valid circuit")
    }

    /// Settles the circuit two ways — the per-gate `eval_order` walk and the
    /// plan walk — and checks every net agrees.
    #[test]
    fn plan_walk_matches_gate_walk() {
        let c = sample();
        let topo = Topology::new(&c);
        let plan = topo.plan();
        assert_eq!(plan.len(), c.num_gates());
        for seed in 0..8u64 {
            let mut vals = vec![false; c.num_nets()];
            for (i, (id, _)) in c.nets().enumerate() {
                vals[id.index()] = (seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64)) & 1 == 1;
            }
            topo.seed_consts(&mut vals);
            let mut by_gate = vals.clone();
            for &g in topo.eval_order() {
                let gate = c.gate(g);
                by_gate[gate.output().index()] = gate.eval_in(&by_gate);
            }
            let mut by_plan = vals;
            for i in 0..plan.len() {
                let (kind, [pa, pb, pc], out) = plan.op(i as u32);
                by_plan[out as usize] = kind.eval3(
                    by_plan[pa as usize],
                    by_plan[pb as usize],
                    by_plan[pc as usize],
                );
            }
            assert_eq!(by_plan, by_gate, "plan walk diverged at seed {seed}");
        }
    }

    /// Plan order is level-ascending, `level_offsets` brackets each level,
    /// and `op_of_gate` round-trips to the gate's own output slot.
    #[test]
    fn plan_is_levelized_and_indexed() {
        let c = sample();
        let topo = Topology::new(&c);
        let plan = topo.plan();
        let offs = plan.level_offsets();
        assert_eq!(offs.len(), topo.num_levels() + 1);
        assert_eq!(offs[0], 0);
        assert_eq!(*offs.last().unwrap() as usize, plan.len());
        assert!(topo.num_levels() > 1, "sample circuit is multi-level");
        for &g in topo.eval_order() {
            let op = plan.op_of_gate(g);
            let lvl = topo.gate_level(g) as usize;
            assert!(offs[lvl] <= op && op < offs[lvl + 1]);
            let gate = c.gate(g);
            let (kind, ins, out) = plan.op(op);
            assert_eq!(kind, gate.kind());
            assert_eq!(out as usize, gate.output().index());
            for (pin, &net) in gate.inputs().iter().enumerate() {
                assert_eq!(ins[pin] as usize, net.index());
            }
        }
        for (i, (_, dff)) in c.dffs().enumerate() {
            assert_eq!(plan.dff_q()[i] as usize, dff.q().index());
            assert_eq!(plan.dff_d()[i] as usize, dff.d().index());
        }
    }

    /// `eval3` ignores the unused pins the plan fills with pin 0's slot.
    #[test]
    fn eval3_matches_eval_for_all_kinds() {
        for kind in GateKind::ALL {
            for bits in 0..8u8 {
                let a = bits & 1 != 0;
                let b = bits & 2 != 0;
                let c = bits & 4 != 0;
                let ins = [a, b, c];
                assert_eq!(
                    kind.eval3(a, b, c),
                    kind.eval(&ins[..kind.arity()]),
                    "{kind} on {ins:?}"
                );
            }
        }
    }
}
