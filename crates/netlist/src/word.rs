//! Multi-bit words and word-level combinational operators.
//!
//! A [`Word`] is an ordered list of nets, least-significant bit first. The
//! operators on [`crate::CircuitBuilder`] lower word arithmetic to the gate
//! primitives of [`crate::GateKind`]: ripple-carry adders, barrel shifters,
//! balanced reduction trees and mux trees. The resulting path-depth profile
//! (long carry chains in arithmetic, shallow muxes in selection logic) is what
//! gives the studied core a realistic path-length distribution (paper Fig. 6).

use crate::builder::CircuitBuilder;
use crate::error::NetlistError;
use crate::ids::NetId;

/// A multi-bit signal: nets ordered least-significant bit first.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Word {
    bits: Vec<NetId>,
}

impl Word {
    /// Builds a word from nets (LSB first).
    pub fn from_bits(bits: Vec<NetId>) -> Self {
        Word { bits }
    }

    /// The nets of this word, LSB first.
    pub fn bits(&self) -> &[NetId] {
        &self.bits
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The net for bit `i` (bit 0 is least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> NetId {
        self.bits[i]
    }

    /// The most significant bit.
    ///
    /// # Panics
    ///
    /// Panics if the word is empty.
    pub fn msb(&self) -> NetId {
        *self.bits.last().expect("msb of empty word")
    }

    /// A sub-word `[lo, hi)` of this word.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, lo: usize, hi: usize) -> Word {
        Word::from_bits(self.bits[lo..hi].to_vec())
    }

    /// Concatenates `self` (low part) with `high`.
    pub fn concat(&self, high: &Word) -> Word {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        Word::from_bits(bits)
    }
}

impl FromIterator<NetId> for Word {
    fn from_iter<T: IntoIterator<Item = NetId>>(iter: T) -> Self {
        Word::from_bits(iter.into_iter().collect())
    }
}

fn check_widths(op: &'static str, a: &Word, b: &Word) {
    if a.width() != b.width() {
        panic!(
            "{}",
            NetlistError::WidthMismatch {
                op,
                lhs: a.width(),
                rhs: b.width(),
            }
        );
    }
}

impl CircuitBuilder {
    /// A constant word of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn const_word(&mut self, value: u64, width: usize) -> Word {
        assert!(width <= 64, "const_word supports at most 64 bits");
        (0..width)
            .map(|i| self.const_bit((value >> i) & 1 == 1))
            .collect()
    }

    /// Bitwise NOT of a word.
    pub fn w_not(&mut self, a: &Word) -> Word {
        a.bits()
            .iter()
            .map(|&b| self.not(b))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    /// Bitwise AND of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn w_and(&mut self, a: &Word, b: &Word) -> Word {
        check_widths("w_and", a, b);
        a.bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| self.and(x, y))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    /// Bitwise OR of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn w_or(&mut self, a: &Word, b: &Word) -> Word {
        check_widths("w_or", a, b);
        a.bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| self.or(x, y))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    /// Bitwise XOR of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn w_xor(&mut self, a: &Word, b: &Word) -> Word {
        check_widths("w_xor", a, b);
        a.bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| self.xor(x, y))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    /// ANDs every bit of `a` with the single control bit `en` (gating).
    pub fn w_gate(&mut self, a: &Word, en: NetId) -> Word {
        a.bits()
            .iter()
            .map(|&x| self.and(x, en))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    /// Word-level two-way mux: `if s { b } else { a }`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux_word(&mut self, s: NetId, a: &Word, b: &Word) -> Word {
        check_widths("mux_word", a, b);
        a.bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| self.mux(s, x, y))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    /// Selects `items[sel]` with a balanced mux tree.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != 2^sel.width()`, if `items` is empty, or if
    /// item widths differ.
    pub fn mux_tree(&mut self, sel: &Word, items: &[Word]) -> Word {
        assert!(!items.is_empty(), "mux_tree requires at least one item");
        assert_eq!(
            items.len(),
            1usize << sel.width(),
            "mux_tree: {} items need a {}-bit selector, got {} bits",
            items.len(),
            items.len().trailing_zeros(),
            sel.width()
        );
        let mut layer: Vec<Word> = items.to_vec();
        for i in 0..sel.width() {
            let s = sel.bit(i);
            layer = layer
                .chunks(2)
                .map(|pair| self.mux_word(s, &pair[0], &pair[1]))
                .collect();
        }
        layer.pop().expect("mux_tree reduces to one word")
    }

    /// Ripple-carry addition with explicit carry-in; returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_with_carry(&mut self, a: &Word, b: &Word, cin: NetId) -> (Word, NetId) {
        check_widths("add", a, b);
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits().iter().zip(b.bits()) {
            let p = self.xor(x, y);
            let s = self.xor(p, carry);
            let g = self.and(x, y);
            let t = self.and(p, carry);
            carry = self.or(g, t);
            sum.push(s);
        }
        (Word::from_bits(sum), carry)
    }

    /// Ripple-carry addition, discarding the carry-out.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        let zero = self.const0();
        self.add_with_carry(a, b, zero).0
    }

    /// Kogge–Stone parallel-prefix addition with explicit carry-in; returns
    /// `(sum, carry_out)`.
    ///
    /// Functionally identical to [`CircuitBuilder::add_with_carry`] but with
    /// `O(log n)` logic depth instead of `O(n)` — at the cost of roughly
    /// `n·log n` gates. Used to study how a core's path-length distribution
    /// (and hence its DelayAVF profile) shifts when the carry chain stops
    /// dominating the critical path.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_fast_with_carry(&mut self, a: &Word, b: &Word, cin: NetId) -> (Word, NetId) {
        check_widths("add_fast", a, b);
        let w = a.width();
        if w == 0 {
            return (Word::from_bits(Vec::new()), cin);
        }
        // Bitwise generate/propagate.
        let p: Vec<NetId> = a
            .bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| self.xor(x, y))
            .collect();
        let g: Vec<NetId> = a
            .bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| self.and(x, y))
            .collect();
        // Parallel-prefix combine: after the scan, gk[i]/pk[i] describe the
        // group (0..=i).
        let mut gk = g;
        let mut pk = p.clone();
        let mut dist = 1;
        while dist < w {
            let mut next_g = gk.clone();
            let mut next_p = pk.clone();
            for i in dist..w {
                let t = self.and(pk[i], gk[i - dist]);
                next_g[i] = self.or(gk[i], t);
                next_p[i] = self.and(pk[i], pk[i - dist]);
            }
            gk = next_g;
            pk = next_p;
            dist *= 2;
        }
        // carry into bit i = G(0..=i-1) | P(0..=i-1) & cin.
        let mut sum = Vec::with_capacity(w);
        sum.push(self.xor(p[0], cin));
        for i in 1..w {
            let pc = self.and(pk[i - 1], cin);
            let carry = self.or(gk[i - 1], pc);
            sum.push(self.xor(p[i], carry));
        }
        let pc = self.and(pk[w - 1], cin);
        let cout = self.or(gk[w - 1], pc);
        (Word::from_bits(sum), cout)
    }

    /// Kogge–Stone addition, discarding the carry-out.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_fast(&mut self, a: &Word, b: &Word) -> Word {
        let zero = self.const0();
        self.add_fast_with_carry(a, b, zero).0
    }

    /// Subtraction `a - b` (two's complement); returns `(difference, carry_out)`.
    ///
    /// The carry-out is 1 exactly when no borrow occurred, i.e. `a >= b`
    /// unsigned.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn sub_with_carry(&mut self, a: &Word, b: &Word) -> (Word, NetId) {
        check_widths("sub", a, b);
        let nb = self.w_not(b);
        let one = self.const1();
        self.add_with_carry(a, &nb, one)
    }

    /// Subtraction `a - b`, discarding the carry-out.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        self.sub_with_carry(a, b).0
    }

    /// Equality comparison: 1 when `a == b`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn eq_word(&mut self, a: &Word, b: &Word) -> NetId {
        check_widths("eq", a, b);
        let xnors: Word = a
            .bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| self.xnor(x, y))
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        self.reduce_and(&xnors)
    }

    /// Compares a word against a constant: 1 when `a == value`.
    pub fn eq_const(&mut self, a: &Word, value: u64) -> NetId {
        let lits: Word = a
            .bits()
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                if (value >> i) & 1 == 1 {
                    x
                } else {
                    self.not(x)
                }
            })
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        self.reduce_and(&lits)
    }

    /// Unsigned less-than: 1 when `a < b`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn lt_u(&mut self, a: &Word, b: &Word) -> NetId {
        let (_, carry) = self.sub_with_carry(a, b);
        self.not(carry)
    }

    /// Signed less-than: 1 when `a < b` interpreted as two's complement.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn lt_s(&mut self, a: &Word, b: &Word) -> NetId {
        let ltu = self.lt_u(a, b);
        let sign_differs = self.xor(a.msb(), b.msb());
        // If signs differ, a < b iff a is the negative one.
        self.mux(sign_differs, ltu, a.msb())
    }

    /// Zero-extends (or truncates) `a` to `width` bits.
    pub fn zext(&mut self, a: &Word, width: usize) -> Word {
        let mut bits = a.bits().to_vec();
        bits.truncate(width);
        while bits.len() < width {
            bits.push(self.const0());
        }
        Word::from_bits(bits)
    }

    /// Sign-extends (or truncates) `a` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty.
    pub fn sext(&mut self, a: &Word, width: usize) -> Word {
        let msb = a.msb();
        let mut bits = a.bits().to_vec();
        bits.truncate(width);
        while bits.len() < width {
            bits.push(msb);
        }
        Word::from_bits(bits)
    }

    /// Logical left shift by a variable amount (barrel shifter).
    ///
    /// Shift amounts at or above the word width produce zero.
    pub fn shl(&mut self, a: &Word, amount: &Word) -> Word {
        let mut cur = a.clone();
        for stage in 0..amount.width() {
            let dist = 1usize << stage;
            let s = amount.bit(stage);
            let shifted: Word = (0..cur.width())
                .map(|i| {
                    if i >= dist {
                        cur.bit(i - dist)
                    } else {
                        self.const0()
                    }
                })
                .collect::<Vec<_>>()
                .into_iter()
                .collect();
            cur = self.mux_word(s, &cur, &shifted);
        }
        cur
    }

    /// Logical right shift by a variable amount (barrel shifter, zero fill).
    pub fn shr_l(&mut self, a: &Word, amount: &Word) -> Word {
        let zero = self.const0();
        self.shr_fill(a, amount, zero)
    }

    /// Arithmetic right shift by a variable amount (sign fill).
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty.
    pub fn shr_a(&mut self, a: &Word, amount: &Word) -> Word {
        self.shr_fill(a, amount, a.msb())
    }

    /// Right shift by a variable amount with an explicit fill bit (used to
    /// share one barrel shifter between logical and arithmetic shifts: pass
    /// `fill = arith & msb`).
    pub fn shr_with_fill(&mut self, a: &Word, amount: &Word, fill: NetId) -> Word {
        self.shr_fill(a, amount, fill)
    }

    fn shr_fill(&mut self, a: &Word, amount: &Word, fill: NetId) -> Word {
        let width = a.width();
        let mut cur = a.clone();
        for stage in 0..amount.width() {
            let dist = 1usize << stage;
            let s = amount.bit(stage);
            let shifted: Word = (0..width)
                .map(|i| {
                    if i + dist < width {
                        cur.bit(i + dist)
                    } else {
                        fill
                    }
                })
                .collect::<Vec<_>>()
                .into_iter()
                .collect();
            cur = self.mux_word(s, &cur, &shifted);
        }
        cur
    }

    /// OR of all bits (balanced tree). An empty word reduces to constant 0.
    pub fn reduce_or(&mut self, a: &Word) -> NetId {
        self.reduce(a, |b, x, y| b.or(x, y), false)
    }

    /// AND of all bits (balanced tree). An empty word reduces to constant 1.
    pub fn reduce_and(&mut self, a: &Word) -> NetId {
        self.reduce(a, |b, x, y| b.and(x, y), true)
    }

    /// XOR of all bits (balanced tree). An empty word reduces to constant 0.
    pub fn reduce_xor(&mut self, a: &Word) -> NetId {
        self.reduce(a, |b, x, y| b.xor(x, y), false)
    }

    fn reduce(
        &mut self,
        a: &Word,
        op: impl Fn(&mut Self, NetId, NetId) -> NetId,
        empty: bool,
    ) -> NetId {
        if a.width() == 0 {
            return self.const_bit(empty);
        }
        let mut layer: Vec<NetId> = a.bits().to_vec();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        op(self, pair[0], pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
        }
        layer[0]
    }

    /// 1 when every bit of `a` is zero.
    pub fn is_zero(&mut self, a: &Word) -> NetId {
        let any = self.reduce_or(a);
        self.not(any)
    }

    /// Decodes an `n`-bit selector into a one-hot word of width `2^n`
    /// (`out[i] == 1` iff `sel == i`).
    pub fn decode_onehot(&mut self, sel: &Word) -> Word {
        let mut layer: Vec<NetId> = vec![self.const1()];
        for i in (0..sel.width()).rev() {
            let b = sel.bit(i);
            let nb = self.not(b);
            let mut next = Vec::with_capacity(layer.len() * 2);
            for &prefix in &layer {
                next.push(self.and(prefix, nb));
                next.push(self.and(prefix, b));
            }
            layer = next;
        }
        // `layer` is indexed MSB-first across decode levels: after processing
        // bits from MSB down to LSB, entry k corresponds to sel == k.
        Word::from_bits(layer)
    }

    /// Replicates a single bit into a word.
    pub fn repeat(&mut self, bit: NetId, width: usize) -> Word {
        Word::from_bits(vec![bit; width])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, Driver};

    /// Evaluates a register-free circuit on the given input assignment.
    ///
    /// Gate creation order is a valid topological order for circuits built
    /// through the public API, so a single in-order pass suffices.
    fn eval(c: &Circuit, inputs: &[(&str, u64)]) -> Vec<u64> {
        let mut values = vec![false; c.num_nets()];
        for (id, net) in c.nets() {
            if let Driver::Const(v) = net.driver() {
                values[id.index()] = v;
            }
        }
        for (name, val) in inputs {
            let port = c.input_port(name).expect("input port");
            for (i, &n) in port.nets().iter().enumerate() {
                values[n.index()] = (val >> i) & 1 == 1;
            }
        }
        for (_, g) in c.gates() {
            let v = g.eval_in(&values);
            values[g.output().index()] = v;
        }
        c.output_ports()
            .iter()
            .map(|p| {
                p.nets().iter().enumerate().fold(0u64, |acc, (i, &n)| {
                    acc | (u64::from(values[n.index()]) << i)
                })
            })
            .collect()
    }

    fn build2(width: usize, f: impl FnOnce(&mut CircuitBuilder, &Word, &Word) -> Word) -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.input_word("a", width);
        let bb = b.input_word("b", width);
        let out = f(&mut b, &a, &bb);
        b.output_word("out", &out);
        b.finish().unwrap()
    }

    fn build2_bit(
        width: usize,
        f: impl FnOnce(&mut CircuitBuilder, &Word, &Word) -> NetId,
    ) -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.input_word("a", width);
        let bb = b.input_word("b", width);
        let out = f(&mut b, &a, &bb);
        b.output("out", out);
        b.finish().unwrap()
    }

    const SAMPLES: [u64; 8] = [
        0,
        1,
        2,
        0x7fff_ffff,
        0x8000_0000,
        0xffff_ffff,
        0xdead_beef,
        42,
    ];

    #[test]
    fn adder_matches_wrapping_add() {
        let c = build2(32, |b, a, x| b.add(a, x));
        for &a in &SAMPLES {
            for &x in &SAMPLES {
                let got = eval(&c, &[("a", a), ("b", x)])[0];
                assert_eq!(got, (a as u32).wrapping_add(x as u32) as u64, "{a}+{x}");
            }
        }
    }

    #[test]
    fn fast_adder_matches_ripple_adder() {
        let cfast = build2(32, |b, a, x| b.add_fast(a, x));
        for &a in &SAMPLES {
            for &x in &SAMPLES {
                let got = eval(&cfast, &[("a", a), ("b", x)])[0];
                assert_eq!(got, (a as u32).wrapping_add(x as u32) as u64, "{a}+{x}");
            }
        }
        // Carry-in and carry-out agree with the ripple implementation.
        let mk = |fast: bool| {
            let mut b = CircuitBuilder::new();
            let a = b.input_word("a", 16);
            let x = b.input_word("b", 16);
            let cin = b.input("cin");
            let (sum, cout) = if fast {
                b.add_fast_with_carry(&a, &x, cin)
            } else {
                b.add_with_carry(&a, &x, cin)
            };
            b.output_word("sum", &sum);
            b.output("cout", cout);
            b.finish().unwrap()
        };
        let (cf, cr) = (mk(true), mk(false));
        for &a in &SAMPLES {
            for &x in &SAMPLES {
                for cin in 0..2u64 {
                    let ins = [("a", a & 0xffff), ("b", x & 0xffff), ("cin", cin)];
                    assert_eq!(eval(&cf, &ins), eval(&cr, &ins));
                }
            }
        }
    }

    #[test]
    fn fast_adder_is_shallower_but_larger() {
        let ripple = build2(32, |b, a, x| b.add(a, x));
        let fast = build2(32, |b, a, x| b.add_fast(a, x));
        assert!(
            fast.num_gates() > ripple.num_gates(),
            "prefix tree costs area"
        );
        // Depth comparison via longest gate chain (creation order is
        // topological; compute per-net depth).
        let depth = |c: &Circuit| -> usize {
            let mut d = vec![0usize; c.num_nets()];
            let mut max = 0;
            for (_, g) in c.gates() {
                let dd = 1 + g.inputs().iter().map(|i| d[i.index()]).max().unwrap();
                d[g.output().index()] = dd;
                max = max.max(dd);
            }
            max
        };
        assert!(
            depth(&fast) * 3 < depth(&ripple),
            "log-depth {} vs linear-depth {}",
            depth(&fast),
            depth(&ripple)
        );
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        let c = build2(32, |b, a, x| b.sub(a, x));
        for &a in &SAMPLES {
            for &x in &SAMPLES {
                let got = eval(&c, &[("a", a), ("b", x)])[0];
                assert_eq!(got, (a as u32).wrapping_sub(x as u32) as u64, "{a}-{x}");
            }
        }
    }

    #[test]
    fn comparisons_match_reference() {
        let ceq = build2_bit(32, |b, a, x| b.eq_word(a, x));
        let cltu = build2_bit(32, |b, a, x| b.lt_u(a, x));
        let clts = build2_bit(32, |b, a, x| b.lt_s(a, x));
        for &a in &SAMPLES {
            for &x in &SAMPLES {
                let ins = [("a", a), ("b", x)];
                assert_eq!(eval(&ceq, &ins)[0] == 1, a as u32 == x as u32);
                assert_eq!(eval(&cltu, &ins)[0] == 1, (a as u32) < (x as u32));
                assert_eq!(
                    eval(&clts, &ins)[0] == 1,
                    (a as u32 as i32) < (x as u32 as i32)
                );
            }
        }
    }

    #[test]
    fn shifts_match_reference() {
        // 5-bit shift amount over 32-bit data, as in RV32.
        let mk = |which: u8| {
            let mut b = CircuitBuilder::new();
            let a = b.input_word("a", 32);
            let amt = b.input_word("b", 5);
            let out = match which {
                0 => b.shl(&a, &amt),
                1 => b.shr_l(&a, &amt),
                _ => b.shr_a(&a, &amt),
            };
            b.output_word("out", &out);
            b.finish().unwrap()
        };
        let (cl, crl, cra) = (mk(0), mk(1), mk(2));
        for &a in &SAMPLES {
            for sh in [0u64, 1, 5, 16, 31] {
                let ins = [("a", a), ("b", sh)];
                assert_eq!(eval(&cl, &ins)[0], ((a as u32) << sh) as u64);
                assert_eq!(eval(&crl, &ins)[0], ((a as u32) >> sh) as u64);
                assert_eq!(eval(&cra, &ins)[0], ((a as u32 as i32) >> sh) as u32 as u64);
            }
        }
    }

    #[test]
    fn bitwise_ops_match_reference() {
        let cand = build2(16, |b, a, x| b.w_and(a, x));
        let cor = build2(16, |b, a, x| b.w_or(a, x));
        let cxor = build2(16, |b, a, x| b.w_xor(a, x));
        for &a in &SAMPLES {
            for &x in &SAMPLES {
                let (a16, x16) = (a & 0xffff, x & 0xffff);
                let ins = [("a", a16), ("b", x16)];
                assert_eq!(eval(&cand, &ins)[0], a16 & x16);
                assert_eq!(eval(&cor, &ins)[0], a16 | x16);
                assert_eq!(eval(&cxor, &ins)[0], a16 ^ x16);
            }
        }
    }

    #[test]
    fn onehot_decoder_is_exact() {
        let mut b = CircuitBuilder::new();
        let sel = b.input_word("a", 4);
        let out = b.decode_onehot(&sel);
        b.output_word("out", &out);
        let c = b.finish().unwrap();
        for v in 0..16u64 {
            assert_eq!(eval(&c, &[("a", v)])[0], 1 << v, "sel={v}");
        }
    }

    #[test]
    fn mux_tree_selects_items() {
        let mut b = CircuitBuilder::new();
        let sel = b.input_word("a", 2);
        let items: Vec<Word> = (0..4).map(|i| b.const_word(10 + i, 8)).collect();
        let out = b.mux_tree(&sel, &items);
        b.output_word("out", &out);
        let c = b.finish().unwrap();
        for v in 0..4u64 {
            assert_eq!(eval(&c, &[("a", v)])[0], 10 + v);
        }
    }

    #[test]
    fn reductions_and_eq_const() {
        let mut b = CircuitBuilder::new();
        let a = b.input_word("a", 8);
        let ro = b.reduce_or(&a);
        let ra = b.reduce_and(&a);
        let rx = b.reduce_xor(&a);
        let zz = b.is_zero(&a);
        let ec = b.eq_const(&a, 0xa5);
        b.output("or", ro);
        b.output("and", ra);
        b.output("xor", rx);
        b.output("zero", zz);
        b.output("eq", ec);
        let c = b.finish().unwrap();
        for v in [0u64, 1, 0xa5, 0xff, 0x80] {
            let out = eval(&c, &[("a", v)]);
            assert_eq!(out[0] == 1, v != 0);
            assert_eq!(out[1] == 1, v == 0xff);
            assert_eq!(out[2] == 1, (v.count_ones() % 2) == 1);
            assert_eq!(out[3] == 1, v == 0);
            assert_eq!(out[4] == 1, v == 0xa5);
        }
    }

    #[test]
    fn extension_and_slicing() {
        let mut b = CircuitBuilder::new();
        let a = b.input_word("a", 8);
        let z = b.zext(&a, 12);
        let s = b.sext(&a, 12);
        let lo = a.slice(0, 4);
        b.output_word("z", &z);
        b.output_word("s", &s);
        b.output_word("lo", &lo);
        let c = b.finish().unwrap();
        let out = eval(&c, &[("a", 0x80)]);
        assert_eq!(out[0], 0x080);
        assert_eq!(out[1], 0xf80);
        assert_eq!(out[2], 0x0);
        let out = eval(&c, &[("a", 0x7e)]);
        assert_eq!(out[0], 0x7e);
        assert_eq!(out[1], 0x7e);
        assert_eq!(out[2], 0xe);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut b = CircuitBuilder::new();
        let a = b.input_word("a", 8);
        let x = b.input_word("b", 4);
        let _ = b.add(&a, &x);
    }
}
