//! Incremental construction of [`Circuit`]s with hierarchical naming and
//! structure tagging.

use std::collections::BTreeMap;

use crate::circuit::{Circuit, Dff, Driver, Net, Port, Structure};
use crate::error::NetlistError;
use crate::gate::{Gate, GateKind};
use crate::ids::{DffId, GateId, NetId};
use crate::word::Word;

/// Handle to a single-bit register created by [`CircuitBuilder::reg`].
///
/// The register's Q output is available immediately (so feedback paths can be
/// described naturally); its D input must be driven exactly once with
/// [`CircuitBuilder::drive`] before [`CircuitBuilder::finish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg {
    pub(crate) dff: DffId,
    pub(crate) q: NetId,
}

impl Reg {
    /// The flip-flop backing this register.
    #[inline]
    pub fn dff(self) -> DffId {
        self.dff
    }

    /// The register's Q output net.
    #[inline]
    pub fn q(self) -> NetId {
        self.q
    }
}

/// Handle to a multi-bit register created by [`CircuitBuilder::reg_word`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RegWord {
    pub(crate) regs: Vec<Reg>,
}

impl RegWord {
    /// The register's Q outputs as a word (LSB first).
    pub fn q(&self) -> Word {
        Word::from_bits(self.regs.iter().map(|r| r.q).collect())
    }

    /// Per-bit register handles, LSB first.
    pub fn regs(&self) -> &[Reg] {
        &self.regs
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.regs.len()
    }
}

/// Builder for [`Circuit`]s.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    nets: Vec<Net>,
    gates: Vec<Gate>,
    dffs: Vec<DffBuild>,
    input_ports: Vec<Port>,
    output_ports: Vec<Port>,
    input_nets: Vec<NetId>,
    structures: BTreeMap<String, Structure>,
    scope: Vec<String>,
    /// Stack of (structure name, gate watermark, dff watermark).
    struct_stack: Vec<(String, usize, usize)>,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

#[derive(Debug)]
struct DffBuild {
    d: Option<NetId>,
    q: NetId,
    init: bool,
    name: Box<str>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_net(&mut self, driver: Driver) -> NetId {
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Net { driver, name: None });
        id
    }

    fn scoped_name(&self, leaf: &str) -> String {
        if self.scope.is_empty() {
            leaf.to_owned()
        } else {
            let mut s = self.scope.join("/");
            s.push('/');
            s.push_str(leaf);
            s
        }
    }

    /// Attaches a debug name to a net (scoped by the current hierarchy).
    pub fn name_net(&mut self, net: NetId, name: &str) {
        let full = self.scoped_name(name);
        self.nets[net.index()].name = Some(full.into_boxed_str());
    }

    /// Runs `f` inside a hierarchical naming scope called `name`.
    pub fn in_scope<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.scope.push(name.to_owned());
        let out = f(self);
        self.scope.pop();
        out
    }

    /// Runs `f` while tagging every gate and flip-flop created inside into
    /// the structure `name` (also opens a naming scope of the same name).
    ///
    /// Nested calls tag into every active structure, so a sub-block can be
    /// both part of its own structure and of an enclosing one.
    pub fn in_structure<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let gate_mark = self.gates.len();
        let dff_mark = self.dffs.len();
        self.struct_stack
            .push((name.to_owned(), gate_mark, dff_mark));
        let out = self.in_scope(name, f);
        let (name, gate_mark, dff_mark) = self.struct_stack.pop().expect("pushed above");
        let entry = self.structures.entry(name).or_default();
        entry
            .gates
            .extend((gate_mark..self.gates.len()).map(GateId::from_index));
        entry
            .dffs
            .extend((dff_mark..self.dffs.len()).map(DffId::from_index));
        out
    }

    /// Declares a 1-bit primary input.
    pub fn input(&mut self, name: &str) -> NetId {
        self.input_word(name, 1).bit(0)
    }

    /// Declares a multi-bit primary input port (LSB first).
    pub fn input_word(&mut self, name: &str, width: usize) -> Word {
        let mut nets = Vec::with_capacity(width);
        for i in 0..width {
            let idx = u32::try_from(self.input_nets.len()).expect("too many inputs");
            let net = self.fresh_net(Driver::Input(idx));
            self.nets[net.index()].name =
                Some(self.scoped_name(&format!("{name}[{i}]")).into_boxed_str());
            self.input_nets.push(net);
            nets.push(net);
        }
        self.input_ports.push(Port {
            name: self.scoped_name(name).into_boxed_str(),
            nets: nets.clone(),
        });
        Word::from_bits(nets)
    }

    /// Declares a 1-bit primary output driven by `net`.
    pub fn output(&mut self, name: &str, net: NetId) {
        self.output_ports.push(Port {
            name: self.scoped_name(name).into_boxed_str(),
            nets: vec![net],
        });
    }

    /// Declares a multi-bit primary output port.
    pub fn output_word(&mut self, name: &str, word: &Word) {
        self.output_ports.push(Port {
            name: self.scoped_name(name).into_boxed_str(),
            nets: word.bits().to_vec(),
        });
    }

    /// The constant-0 net (created on first use).
    pub fn const0(&mut self) -> NetId {
        match self.const0 {
            Some(n) => n,
            None => {
                let n = self.fresh_net(Driver::Const(false));
                self.const0 = Some(n);
                n
            }
        }
    }

    /// The constant-1 net (created on first use).
    pub fn const1(&mut self) -> NetId {
        match self.const1 {
            Some(n) => n,
            None => {
                let n = self.fresh_net(Driver::Const(true));
                self.const1 = Some(n);
                n
            }
        }
    }

    /// The constant net for `value`.
    pub fn const_bit(&mut self, value: bool) -> NetId {
        if value {
            self.const1()
        } else {
            self.const0()
        }
    }

    /// Instantiates a gate and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match `kind.arity()`.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "gate {kind} expects {} inputs, got {}",
            kind.arity(),
            inputs.len()
        );
        let gate_id = GateId::from_index(self.gates.len());
        let output = self.fresh_net(Driver::Gate(gate_id));
        let mut ins = [NetId(u32::MAX); 3];
        ins[..inputs.len()].copy_from_slice(inputs);
        self.gates.push(Gate {
            kind,
            inputs: ins,
            output,
        });
        output
    }

    /// `!a`
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Not, &[a])
    }

    /// `a & b`
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::And2, &[a, b])
    }

    /// `a | b`
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Or2, &[a, b])
    }

    /// `a ^ b`
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xor2, &[a, b])
    }

    /// `!(a & b)`
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nand2, &[a, b])
    }

    /// `!(a | b)`
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nor2, &[a, b])
    }

    /// `!(a ^ b)`
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xnor2, &[a, b])
    }

    /// `a & !b`
    pub fn and_not(&mut self, a: NetId, b: NetId) -> NetId {
        let nb = self.not(b);
        self.and(a, nb)
    }

    /// Two-way mux: `if s { b } else { a }`.
    pub fn mux(&mut self, s: NetId, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Mux2, &[s, a, b])
    }

    /// Creates a 1-bit register with power-on value `init`.
    ///
    /// The D input must later be driven exactly once with
    /// [`CircuitBuilder::drive`].
    pub fn reg(&mut self, name: &str, init: bool) -> Reg {
        let dff_id = DffId::from_index(self.dffs.len());
        let q = self.fresh_net(Driver::Dff(dff_id));
        let full = self.scoped_name(name);
        self.nets[q.index()].name = Some(format!("{full}.q").into_boxed_str());
        self.dffs.push(DffBuild {
            d: None,
            q,
            init,
            name: full.into_boxed_str(),
        });
        Reg { dff: dff_id, q }
    }

    /// Creates a multi-bit register with power-on value `init` (LSB first).
    pub fn reg_word(&mut self, name: &str, width: usize, init: u64) -> RegWord {
        let regs = (0..width)
            .map(|i| self.reg(&format!("{name}[{i}]"), (init >> i) & 1 == 1))
            .collect();
        RegWord { regs }
    }

    /// Drives the D input of `reg` with `d`.
    ///
    /// # Panics
    ///
    /// Panics if the register is already driven (the condition is also
    /// re-checked fallibly in [`CircuitBuilder::finish`]).
    pub fn drive(&mut self, reg: Reg, d: NetId) {
        let slot = &mut self.dffs[reg.dff.index()];
        assert!(
            slot.d.is_none(),
            "register `{}` driven more than once",
            slot.name
        );
        slot.d = Some(d);
    }

    /// Drives a multi-bit register with `d`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or if any bit is already driven.
    pub fn drive_word(&mut self, reg: &RegWord, d: &Word) {
        assert_eq!(
            reg.width(),
            d.width(),
            "drive_word: register is {} bits, value is {} bits",
            reg.width(),
            d.width()
        );
        for (r, bit) in reg.regs.iter().zip(d.bits()) {
            self.drive(*r, *bit);
        }
    }

    /// Drives a multi-bit register that only updates when `en` is high
    /// (lowered to a per-bit hold mux).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or if any bit is already driven.
    pub fn drive_word_en(&mut self, reg: &RegWord, en: NetId, d: &Word) {
        let held = self.mux_word(en, &reg.q(), d);
        self.drive_word(reg, &held);
    }

    /// Drives a 1-bit register that only updates when `en` is high.
    pub fn drive_en(&mut self, reg: Reg, en: NetId, d: NetId) {
        let held = self.mux(en, reg.q(), d);
        self.drive(reg, held);
    }

    /// Number of gates created so far (useful for size accounting in tests).
    pub fn gates_so_far(&self) -> usize {
        self.gates.len()
    }

    /// Validates the construction and produces an immutable [`Circuit`].
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UndrivenRegister`] if a register's D pin was never
    ///   driven.
    /// * [`NetlistError::DuplicatePort`] if two ports of the same direction
    ///   share a name.
    /// * [`NetlistError::CombinationalLoop`] if the gate graph is cyclic.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        let mut dffs = Vec::with_capacity(self.dffs.len());
        for d in &self.dffs {
            let Some(din) = d.d else {
                return Err(NetlistError::UndrivenRegister {
                    name: d.name.to_string(),
                });
            };
            dffs.push(Dff {
                d: din,
                q: d.q,
                init: d.init,
                name: d.name.clone(),
            });
        }
        for ports in [&self.input_ports, &self.output_ports] {
            let mut names: Vec<&str> = ports.iter().map(|p| p.name()).collect();
            names.sort_unstable();
            if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
                return Err(NetlistError::DuplicatePort {
                    name: w[0].to_owned(),
                });
            }
        }
        let circuit = Circuit {
            nets: self.nets,
            gates: self.gates,
            dffs,
            input_ports: self.input_ports,
            output_ports: self.output_ports,
            input_nets: self.input_nets,
            structures: self.structures,
        };
        check_acyclic(&circuit)?;
        Ok(circuit)
    }
}

/// Kahn's algorithm over the gate graph; errors with a representative net if
/// a combinational cycle exists.
fn check_acyclic(c: &Circuit) -> Result<(), NetlistError> {
    let mut indeg = vec![0u32; c.gates.len()];
    for (i, g) in c.gates.iter().enumerate() {
        let mut n = 0;
        for &inp in g.inputs() {
            if matches!(c.net(inp).driver(), Driver::Gate(_)) {
                n += 1;
            }
        }
        indeg[i] = n;
    }
    // net -> consuming gates adjacency restricted to gate-driven nets.
    let mut ready: Vec<usize> = indeg
        .iter()
        .enumerate()
        .filter_map(|(i, &d)| (d == 0).then_some(i))
        .collect();
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); c.nets.len()];
    for (i, g) in c.gates.iter().enumerate() {
        for &inp in g.inputs() {
            if matches!(c.net(inp).driver(), Driver::Gate(_)) {
                consumers[inp.index()].push(u32::try_from(i).expect("gate count fits u32"));
            }
        }
    }
    let mut processed = 0usize;
    while let Some(g) = ready.pop() {
        processed += 1;
        let out = c.gates[g].output();
        for &cons in &consumers[out.index()] {
            let cons = cons as usize;
            indeg[cons] -= 1;
            if indeg[cons] == 0 {
                ready.push(cons);
            }
        }
    }
    if processed != c.gates.len() {
        let stuck = indeg.iter().position(|&d| d > 0).expect("some gate stuck");
        let net = c.gates[stuck].output();
        let label = c
            .net(net)
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| net.to_string());
        return Err(NetlistError::CombinationalLoop { net: label });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_names_join_with_slash() {
        let mut b = CircuitBuilder::new();
        let r = b.in_scope("top", |b| b.in_scope("alu", |b| b.reg("acc", false)));
        b.drive(r, r.q());
        let c = b.finish().unwrap();
        assert_eq!(c.dff(r.dff()).name(), "top/alu/acc");
    }

    #[test]
    fn undriven_register_is_rejected() {
        let mut b = CircuitBuilder::new();
        let _ = b.reg("lonely", false);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::UndrivenRegister { .. }));
    }

    #[test]
    #[should_panic(expected = "driven more than once")]
    fn double_drive_panics() {
        let mut b = CircuitBuilder::new();
        let r = b.reg("r", false);
        let q = r.q();
        b.drive(r, q);
        b.drive(r, q);
    }

    #[test]
    fn combinational_loop_is_rejected() {
        // The safe builder API always drives gates from existing nets, so a
        // cycle is assembled by patching a gate input after the fact.
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let tmp = b.and(x, x);
        let fed = b.or(tmp, x);
        b.gates[0].inputs[1] = fed; // make the AND read the OR: a 2-gate cycle
        b.output("y", fed);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn duplicate_output_port_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        b.output("o", a);
        b.output("o", a);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DuplicatePort { .. })
        ));
    }

    #[test]
    fn consts_are_memoized() {
        let mut b = CircuitBuilder::new();
        assert_eq!(b.const0(), b.const0());
        assert_eq!(b.const1(), b.const1());
        assert_ne!(b.const0(), b.const1());
    }

    #[test]
    fn structure_tagging_captures_nested_elements() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        b.in_structure("alu", |b| {
            let n = b.not(a);
            b.in_structure("alu_adder", |b| {
                let r = b.reg("acc", false);
                let d = b.xor(n, r.q());
                b.drive(r, d);
            });
        });
        let c = b.finish().unwrap();
        let alu = c.structure("alu").unwrap();
        let adder = c.structure("alu_adder").unwrap();
        assert_eq!(alu.gates().len(), 2, "outer structure sees nested gates");
        assert_eq!(alu.dffs().len(), 1);
        assert_eq!(adder.gates().len(), 1);
        assert_eq!(adder.dffs().len(), 1);
    }

    #[test]
    fn enable_registers_hold_value() {
        let mut b = CircuitBuilder::new();
        let en = b.input("en");
        let d = b.input_word("d", 4);
        let r = b.reg_word("r", 4, 0b1010);
        b.drive_word_en(&r, en, &d);
        let c = b.finish().unwrap();
        // One hold mux per bit.
        assert_eq!(c.num_gates(), 4);
        assert_eq!(
            c.initial_state(),
            vec![false, true, false, true],
            "init pattern is LSB-first"
        );
    }
}
