//! Typed index handles into a [`crate::Circuit`].

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw index of this id within its circuit arena.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw arena index.
            ///
            /// Ids are only meaningful for the circuit that produced them;
            /// constructing one from an arbitrary index is allowed but using
            /// it against the wrong circuit may panic on out-of-bounds access.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index exceeds u32 range"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a net (a single-driver signal carrier).
    NetId,
    "n"
);
define_id!(
    /// Identifier of a logic gate.
    GateId,
    "g"
);
define_id!(
    /// Identifier of a D flip-flop state element.
    DffId,
    "ff"
);
define_id!(
    /// Identifier of a fanout edge (one driver-to-sink connection), the unit
    /// at which small delay faults are injected.
    EdgeId,
    "e"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_preserves_index() {
        let id = NetId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(GateId::from_index(1) < GateId::from_index(2));
        assert_eq!(DffId::from_index(7), DffId::from_index(7));
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn oversized_index_panics() {
        let _ = EdgeId::from_index(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
