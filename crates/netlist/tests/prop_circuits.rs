//! Structural property tests on randomly generated circuits: topology
//! invariants that every analysis in the workspace relies on.

use std::collections::HashSet;

use delayavf_netlist::{CircuitBuilder, Consumer, Driver, EdgeId, GateKind, NetId, Topology, Word};
use proptest::prelude::*;

type GateSpec = (u8, u16, u16, u16);

fn build(gates: &[GateSpec], tag_every: usize) -> delayavf_netlist::Circuit {
    let mut b = CircuitBuilder::new();
    let inputs = b.input_word("in", 5);
    let regs = b.reg_word("r", 5, 0b10101);
    let mut nets: Vec<NetId> = inputs.bits().to_vec();
    nets.extend_from_slice(regs.q().bits());
    for (gi, &(kind, i0, i1, i2)) in gates.iter().enumerate() {
        let kinds = [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::Xor2,
            GateKind::Xnor2,
            GateKind::Mux2,
        ];
        let k = kinds[usize::from(kind) % kinds.len()];
        let pick = |sel: u16| nets[usize::from(sel) % nets.len()];
        let ins: Vec<NetId> = [i0, i1, i2][..k.arity()].iter().map(|&s| pick(s)).collect();
        let out = if gi % tag_every == 0 {
            b.in_structure("tagged", |b| b.gate(k, &ins))
        } else {
            b.gate(k, &ins)
        };
        nets.push(out);
    }
    let d: Word = (0..5).map(|i| nets[nets.len() - 1 - i]).collect();
    b.drive_word(&regs, &d);
    b.output_word("o", &regs.q());
    b.finish().expect("builder circuits are acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edges_biject_with_consumer_pins(gates in prop::collection::vec(any::<GateSpec>(), 1..60)) {
        let c = build(&gates, 3);
        let topo = Topology::new(&c);
        // Total edges = sum of gate arities + one per DFF + one per output bit.
        let expect: usize = c.gates().map(|(_, g)| g.kind().arity()).sum::<usize>()
            + c.num_dffs()
            + c.output_ports().iter().map(|p| p.width()).sum::<usize>();
        prop_assert_eq!(topo.edges().len(), expect);
        // Each consumer pin appears exactly once.
        let mut seen = HashSet::new();
        for e in topo.edges() {
            prop_assert!(seen.insert(e.consumer), "duplicate consumer {:?}", e.consumer);
        }
        // Fanout lists partition the edge list.
        let by_fanout: usize = c.nets().map(|(id, _)| topo.fanouts(id).len()).sum();
        prop_assert_eq!(by_fanout, topo.edges().len());
    }

    #[test]
    fn eval_order_is_topological(gates in prop::collection::vec(any::<GateSpec>(), 1..60)) {
        let c = build(&gates, 3);
        let topo = Topology::new(&c);
        let mut pos = vec![usize::MAX; c.num_gates()];
        for (i, &g) in topo.eval_order().iter().enumerate() {
            pos[g.index()] = i;
        }
        for (gid, g) in c.gates() {
            for &inp in g.inputs() {
                if let Driver::Gate(src) = c.net(inp).driver() {
                    prop_assert!(pos[src.index()] < pos[gid.index()]);
                }
            }
        }
    }

    #[test]
    fn structure_edges_source_from_tagged_gates(
        gates in prop::collection::vec(any::<GateSpec>(), 3..60),
        tag_every in 1usize..5,
    ) {
        let c = build(&gates, tag_every);
        let topo = Topology::new(&c);
        let tagged: HashSet<_> = c.structure("tagged").unwrap().gates().iter().copied().collect();
        let edges = topo.structure_edges(&c, "tagged").unwrap();
        for &e in &edges {
            match c.net(topo.edge(e).source).driver() {
                Driver::Gate(g) => prop_assert!(tagged.contains(&g)),
                other => prop_assert!(false, "edge sourced at {other:?}"),
            }
        }
        // Completeness: every fanout edge of every tagged gate's output is in
        // the list.
        let edge_set: HashSet<EdgeId> = edges.into_iter().collect();
        for &g in &tagged {
            let out = c.gate(g).output();
            for id in topo.fanout_ids(out) {
                prop_assert!(edge_set.contains(&id));
            }
        }
    }

    #[test]
    fn downstream_dffs_agree_with_reverse_fanin(
        gates in prop::collection::vec(any::<GateSpec>(), 3..40),
        net_sel: u16,
    ) {
        let c = build(&gates, 3);
        let topo = Topology::new(&c);
        let net = NetId::from_index(usize::from(net_sel) % c.num_nets());
        let down = topo.downstream_dffs(&c, net);
        // Cross-check: a DFF is downstream of `net` iff `net` is in the
        // fan-in cone of its D pin... expressed through fanin_sources on
        // the D net and transitive gate inputs. Use a simple reverse BFS.
        for (did, dff) in c.dffs() {
            let mut stack = vec![dff.d()];
            let mut seen = HashSet::new();
            let mut reach = false;
            while let Some(n) = stack.pop() {
                if n == net {
                    reach = true;
                    break;
                }
                if !seen.insert(n) {
                    continue;
                }
                if let Driver::Gate(g) = c.net(n).driver() {
                    stack.extend(c.gate(g).inputs().iter().copied());
                }
            }
            prop_assert_eq!(down.contains(&did), reach, "dff {}", did);
        }
    }

    #[test]
    fn consumer_pin_edges_round_trip(gates in prop::collection::vec(any::<GateSpec>(), 1..40)) {
        let c = build(&gates, 2);
        let topo = Topology::new(&c);
        for (gid, g) in c.gates() {
            let pins: Vec<EdgeId> = topo.gate_in_edges(gid).collect();
            prop_assert_eq!(pins.len(), g.kind().arity());
            for (k, &e) in pins.iter().enumerate() {
                prop_assert_eq!(topo.edge(e).source, g.inputs()[k]);
                prop_assert_eq!(
                    topo.edge(e).consumer,
                    Consumer::GatePin { gate: gid, pin: k as u8 }
                );
            }
        }
        for (did, d) in c.dffs() {
            let e = topo.dff_in_edge(did);
            prop_assert_eq!(topo.edge(e).source, d.d());
        }
    }
}
