//! Property tests: every word-level operator lowered to gates agrees with
//! the corresponding `u64` arithmetic on arbitrary operands and widths.

use delayavf_netlist::{Circuit, CircuitBuilder, Driver, Word};
use proptest::prelude::*;

/// Evaluates a register-free circuit (gate creation order is topological
/// for builder-produced circuits).
fn eval(c: &Circuit, inputs: &[(&str, u64)]) -> Vec<u64> {
    let mut values = vec![false; c.num_nets()];
    for (id, net) in c.nets() {
        if let Driver::Const(v) = net.driver() {
            values[id.index()] = v;
        }
    }
    for (name, val) in inputs {
        for (i, &n) in c.input_port(name).expect("port").nets().iter().enumerate() {
            values[n.index()] = (val >> i) & 1 == 1;
        }
    }
    for (_, g) in c.gates() {
        values[g.output().index()] = g.eval_in(&values);
    }
    c.output_ports()
        .iter()
        .map(|p| {
            p.nets().iter().enumerate().fold(0u64, |acc, (i, &n)| {
                acc | (u64::from(values[n.index()]) << i)
            })
        })
        .collect()
}

fn binop_circuit(
    width: usize,
    f: impl FnOnce(&mut CircuitBuilder, &Word, &Word) -> Word,
) -> Circuit {
    let mut b = CircuitBuilder::new();
    let x = b.input_word("x", width);
    let y = b.input_word("y", width);
    let out = f(&mut b, &x, &y);
    b.output_word("out", &out);
    b.finish().expect("valid circuit")
}

fn mask(width: usize) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

proptest! {
    #[test]
    fn add_matches_wrapping_add(width in 1usize..33, x: u64, y: u64) {
        let m = mask(width);
        let c = binop_circuit(width, |b, a, bb| b.add(a, bb));
        let got = eval(&c, &[("x", x & m), ("y", y & m)])[0];
        prop_assert_eq!(got, (x & m).wrapping_add(y & m) & m);
    }

    #[test]
    fn sub_matches_wrapping_sub(width in 1usize..33, x: u64, y: u64) {
        let m = mask(width);
        let c = binop_circuit(width, |b, a, bb| b.sub(a, bb));
        let got = eval(&c, &[("x", x & m), ("y", y & m)])[0];
        prop_assert_eq!(got, (x & m).wrapping_sub(y & m) & m);
    }

    #[test]
    fn comparisons_match_reference(width in 1usize..33, x: u64, y: u64) {
        let m = mask(width);
        let (x, y) = (x & m, y & m);
        let mut b = CircuitBuilder::new();
        let xa = b.input_word("x", width);
        let ya = b.input_word("y", width);
        let eq = b.eq_word(&xa, &ya);
        let ltu = b.lt_u(&xa, &ya);
        let lts = b.lt_s(&xa, &ya);
        b.output("eq", eq);
        b.output("ltu", ltu);
        b.output("lts", lts);
        let c = b.finish().unwrap();
        let out = eval(&c, &[("x", x), ("y", y)]);
        prop_assert_eq!(out[0] == 1, x == y);
        prop_assert_eq!(out[1] == 1, x < y);
        // Sign-extend both to i64 for the signed reference.
        let sx = ((x << (64 - width)) as i64) >> (64 - width);
        let sy = ((y << (64 - width)) as i64) >> (64 - width);
        prop_assert_eq!(out[2] == 1, sx < sy);
    }

    #[test]
    fn shifts_match_reference(x: u64, sh in 0u64..32) {
        let x = x & mask(32);
        let mut b = CircuitBuilder::new();
        let xa = b.input_word("x", 32);
        let sa = b.input_word("s", 5);
        let l = b.shl(&xa, &sa);
        let rl = b.shr_l(&xa, &sa);
        let ra = b.shr_a(&xa, &sa);
        b.output_word("l", &l);
        b.output_word("rl", &rl);
        b.output_word("ra", &ra);
        let c = b.finish().unwrap();
        let out = eval(&c, &[("x", x), ("s", sh)]);
        prop_assert_eq!(out[0], ((x as u32) << sh) as u64);
        prop_assert_eq!(out[1], ((x as u32) >> sh) as u64);
        prop_assert_eq!(out[2], ((x as u32 as i32) >> sh) as u32 as u64);
    }

    #[test]
    fn bitwise_and_reductions(width in 1usize..49, x: u64, y: u64) {
        let m = mask(width);
        let (x, y) = (x & m, y & m);
        let mut b = CircuitBuilder::new();
        let xa = b.input_word("x", width);
        let ya = b.input_word("y", width);
        let and = b.w_and(&xa, &ya);
        let or = b.w_or(&xa, &ya);
        let xor = b.w_xor(&xa, &ya);
        let not = b.w_not(&xa);
        let ro = b.reduce_or(&xa);
        let ra = b.reduce_and(&xa);
        let rx = b.reduce_xor(&xa);
        b.output_word("and", &and);
        b.output_word("or", &or);
        b.output_word("xor", &xor);
        b.output_word("not", &not);
        b.output("ro", ro);
        b.output("ra", ra);
        b.output("rx", rx);
        let c = b.finish().unwrap();
        let out = eval(&c, &[("x", x), ("y", y)]);
        prop_assert_eq!(out[0], x & y);
        prop_assert_eq!(out[1], x | y);
        prop_assert_eq!(out[2], x ^ y);
        prop_assert_eq!(out[3], !x & m);
        prop_assert_eq!(out[4] == 1, x != 0);
        prop_assert_eq!(out[5] == 1, x == m);
        prop_assert_eq!(out[6] == 1, (x.count_ones() % 2) == 1);
    }

    #[test]
    fn mux_tree_and_onehot(selw in 1usize..5, sel: u64, items_seed: u64) {
        let n = 1usize << selw;
        let sel = sel & mask(selw);
        let items: Vec<u64> = (0..n as u64).map(|i| items_seed.rotate_left(7 * i as u32) & 0xff).collect();
        let mut b = CircuitBuilder::new();
        let sa = b.input_word("s", selw);
        let words: Vec<Word> = items.iter().map(|&v| b.const_word(v, 8)).collect();
        let out = b.mux_tree(&sa, &words);
        let oh = b.decode_onehot(&sa);
        b.output_word("out", &out);
        b.output_word("oh", &oh);
        let c = b.finish().unwrap();
        let got = eval(&c, &[("s", sel)]);
        prop_assert_eq!(got[0], items[sel as usize]);
        prop_assert_eq!(got[1], 1u64 << sel);
    }

    #[test]
    fn sext_zext_agree_with_reference(width in 1usize..17, target in 17usize..33, x: u64) {
        let m = mask(width);
        let x = x & m;
        let mut b = CircuitBuilder::new();
        let xa = b.input_word("x", width);
        let z = b.zext(&xa, target);
        let s = b.sext(&xa, target);
        b.output_word("z", &z);
        b.output_word("s", &s);
        let c = b.finish().unwrap();
        let out = eval(&c, &[("x", x)]);
        prop_assert_eq!(out[0], x);
        let sx = (((x << (64 - width)) as i64) >> (64 - width)) as u64 & mask(target);
        prop_assert_eq!(out[1], sx);
    }
}
