//! The two-step DelayACE engine (paper §V-B) plus the shared
//! state-element-error replay machinery used for GroupACE, per-bit ACE and
//! particle-strike injections.

use std::collections::{HashMap, HashSet};

use delayavf_netlist::{Circuit, DffId, EdgeId, NetId, Topology};
use delayavf_sim::{
    pack_bits, settle, BatchDeltaSim, BatchSim, CycleSim, DeltaEventSim, DiffSim, Environment,
    EventSim, FaultSpec, LaneMask, LaneWord, MAX_LANES, MAX_TIMING_LANES,
};
use delayavf_timing::{Picos, TimingModel};

use crate::collapse::{propagate_flips, CollapsePlan};
use crate::golden::GoldenRun;

/// Cycle horizon of the semi-formal masking discharge: flip groups whose
/// difference cone is still alive after this many exactly-propagated cycles
/// fall back to a real replay. A constant, not a knob — the discharge never
/// changes results, so there is nothing to trade off but time.
const DISCHARGE_HORIZON: u64 = 64;

/// Difference-cone size cap of the semi-formal masking discharge (deviating
/// nets per propagated cycle); wider cones fall back to a real replay, where
/// the incremental engine handles them better anyway.
const DISCHARGE_CONE_CAP: usize = 4096;

/// Program-level classification of a fault's effect (paper §II-A: a
/// program-visible failure is either a silent data corruption or a detected
/// unrecoverable error).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Architecturally correct execution: the error was masked or corrected.
    #[default]
    Masked,
    /// Silent data corruption: the program completed normally with wrong
    /// output.
    Sdc,
    /// Detected unrecoverable error: the program crashed, trapped, or
    /// failed to complete within the cycle budget.
    Due,
}

impl FailureClass {
    /// True for SDC and DUE (the paper's "program-visible failure").
    #[inline]
    pub fn is_visible(self) -> bool {
        self != FailureClass::Masked
    }
}

/// The result of one small-delay-fault injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// Number of statically reachable flip-flops (Definition 2).
    pub statically_reachable: usize,
    /// The dynamically reachable set (Definition 3): flip-flops that latched
    /// a wrong value in the faulty cycle.
    pub dynamic_set: Vec<DffId>,
    /// Whether the dynamic set is GroupACE (Definition 4), i.e. whether the
    /// injected edge is DelayACE in this cycle (Definition 1).
    pub visible: bool,
    /// SDC/DUE classification of the failure.
    pub class: FailureClass,
}

impl InjectionOutcome {
    /// A fault with no effect at all.
    fn masked(statically_reachable: usize) -> Self {
        InjectionOutcome {
            statically_reachable,
            dynamic_set: Vec::new(),
            visible: false,
            class: FailureClass::Masked,
        }
    }

    /// True when the fault produced two or more simultaneous state-element
    /// errors.
    pub fn is_multi_bit(&self) -> bool {
        self.dynamic_set.len() >= 2
    }
}

/// Cached per-cycle reconstruction shared across all edges injected in the
/// same cycle.
struct CycleData {
    cycle: u64,
    /// Settled net values of cycle `cycle - 1` (the event simulator's
    /// initial condition).
    prev_values: Vec<bool>,
    /// Flip-flop values during `cycle`.
    new_state: Vec<bool>,
    /// Golden flip-flop values at the start of `cycle + 1`.
    next_state: Vec<bool>,
}

/// The DelayACE computation engine.
///
/// One instance owns all scratch buffers and caches; campaigns drive it with
/// [`Injector::inject`] per (edge, cycle, delay) triple. Injection cycles
/// must come from the golden run's sampled set (each needs a checkpoint).
pub struct Injector<'a, E: Environment + Clone> {
    circuit: &'a Circuit,
    topo: &'a Topology,
    timing: &'a TimingModel,
    golden: &'a GoldenRun<E>,
    event: EventSim<'a>,
    delta: DeltaEventSim<'a>,
    batch_delta: BatchDeltaSim<'a>,
    replay: CycleSim<'a>,
    diff: DiffSim<'a>,
    batch: BatchSim<'a>,
    due_slack: u64,
    early_exit: bool,
    toggle_filter: bool,
    incremental: bool,
    /// Whether step 1 runs on the incremental delta engine (golden-waveform
    /// cache + fault-cone delta events) instead of the full event simulator.
    delta_timing: bool,
    /// Lane width for bit-parallel batch replays (1 = scalar only).
    lanes: usize,
    /// Lane width for lane-packed timing-aware batch replays (1 = scalar
    /// only).
    timing_lanes: usize,
    /// Zeroed input-word scratch for advancing the shared golden
    /// environment along the recorded trace.
    env_scratch: Vec<u64>,
    cycle_data: Option<CycleData>,
    /// Fan-in sources (flip-flops, input nets) per net, for the toggle
    /// pre-filter.
    fanin_cache: HashMap<NetId, (Vec<DffId>, Vec<NetId>)>,
    /// boundary -> flipped set -> failure classification. Two levels so a
    /// lookup can borrow the flip set as a slice and hits allocate nothing.
    failure_cache: HashMap<u64, HashMap<Vec<DffId>, FailureClass>>,
    /// For each input net: (port index, bit) to look values up in the trace.
    input_net_pos: HashMap<NetId, (usize, usize)>,
    /// Cycle-invariant static-reach memo: `(edge, extra)` -> statically
    /// reachable count (0 means the injection is statically filtered). Both
    /// `path_through_edge` and the slack-table query depend only on the edge
    /// and the extra delay, so campaigns sweeping many cycles per edge pay
    /// for each `(edge, extra)` pair once per worker.
    static_reach_cache: HashMap<(EdgeId, Picos), usize>,
    /// Whether the pre-simulation collapsing layer (equivalence classes,
    /// quiet-source certificate, semi-formal masking discharge) is enabled.
    collapse: bool,
    /// The collapsing plan, built lazily on the first collapsed query so
    /// `--no-collapse` campaigns never pay for it.
    plan: Option<CollapsePlan>,
    /// Dynamic sets computed for class representatives this cycle:
    /// `(representative, extra)` -> dynamically reachable set. Cleared when
    /// the injection cycle changes; every member query is served from here.
    collapse_cache: HashMap<(EdgeId, Picos), Vec<DffId>>,
    collapse_cycle: Option<u64>,
    /// Per net: whether it transitions in the fault-free timed waveform of
    /// `quiet_cycle` (the quiet-source certificate reads the complement).
    quiet_changed: Vec<bool>,
    quiet_cycle: Option<u64>,
    /// Settled golden net values per trace cycle, shared by every
    /// semi-formal discharge at `discharge_boundary`.
    discharge_settle: HashMap<u64, Vec<bool>>,
    discharge_boundary: Option<u64>,
    /// Memoized [`Injector::golden_identical_class`] (outer `None` = not
    /// yet computed, inner `None` = not establishable).
    golden_class: Option<Option<FailureClass>>,
    /// Counters for reporting/debugging.
    pub stats: InjectorStats,
}

/// Engine counters: how often each §V-C optimization fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectorStats {
    /// Injections rejected because no path through the edge exceeds the
    /// clock period even with the fault.
    pub static_filtered: u64,
    /// Injections rejected because no fan-in source of the faulted edge
    /// toggles in the cycle.
    pub toggle_filtered: u64,
    /// Timing-aware (event-driven) simulations actually run.
    pub event_sims: u64,
    /// Timing-agnostic replays actually run (cache misses).
    pub replays: u64,
    /// Replay results served from the cache.
    pub replay_cache_hits: u64,
    /// Cycles stepped across all replays (incremental and full alike); the
    /// incremental engine is bit-for-bit exact, so this count is identical
    /// in both modes and `gates_evaluated` can be compared against
    /// `replay_cycles * num_gates`, the work a full replay would do.
    pub replay_cycles: u64,
    /// Faulty-cone gate evaluations performed by the incremental replay
    /// engine. The divergence cone of a replay is fully determined by its
    /// boundary and flips, so this counter is thread-count invariant like
    /// the rest. Golden-side work is not counted: each trace cycle's golden
    /// settle is computed once per injector and shared by every replay
    /// crossing it, amortizing to one golden run. Zero when incremental
    /// replay is disabled.
    pub gates_evaluated: u64,
    /// Replays served by the incremental divergence-cone engine.
    pub incremental_replays: u64,
    /// Incremental replays that ran past the end of the golden trace and
    /// finished on the full simulator (no golden baseline to diff against).
    pub full_replay_fallbacks: u64,
    /// Bit-parallel batch replays executed (each covers up to `lanes`
    /// scenarios). Zero when `lanes <= 1`. Depends on the configured lane
    /// width — fewer, fuller batches at higher widths — but not on the
    /// thread count for cycle-sharded campaigns.
    pub batched_replays: u64,
    /// Scenario lanes actually occupied across all batch replays: the
    /// number of distinct uncached scenarios retired through the batch
    /// engine. Invariant across lane widths > 1 (deduplication and cache
    /// checks happen before lane chunking) and across thread counts for
    /// cycle-sharded campaigns.
    pub lanes_occupied: u64,
    /// Total lane slots *scheduled* across all batch replays (the sum of
    /// chunk sizes, not `batched_replays * lanes` — a partially-filled
    /// final chunk contributes only the slots it actually carries); the
    /// denominator of [`InjectorStats::lane_utilization`]. Invariant across
    /// lane widths > 1 and thread counts, like `lanes_occupied`.
    pub lane_slots: u64,
    /// Fault-free timed waveforms simulated and cached by the incremental
    /// timing-aware engine — one per distinct trace cycle that reached the
    /// event-simulation stage. Campaigns iterate cycle-outer/edge-inner and
    /// the sharded engine partitions by whole cycles, so this count is
    /// thread-count invariant. Zero when delta timing is disabled.
    pub golden_waveform_builds: u64,
    /// Merged waveform time-steps processed by the delta engine across all
    /// gate re-evaluations in faulty cones. The divergence cone of an
    /// injection is fully determined by the struck edge and the golden
    /// waveforms, so this counter is thread-count invariant too.
    pub delta_events: u64,
    /// Gates whose recomputed faulty output waveform reconverged with the
    /// cached golden waveform, pruning their entire downstream cone from the
    /// delta simulation.
    pub delta_early_exits: u64,
    /// Timing-aware simulations that ran on the full event simulator because
    /// delta timing was disabled (the `--no-delta-timing` escape hatch).
    /// Zero when delta timing is enabled.
    pub full_event_fallbacks: u64,
    /// Lane-packed timing-aware batch replays executed (each covers up to
    /// `timing_lanes` `(edge, extra)` scenarios at one trace cycle). Zero
    /// when `timing_lanes <= 1` or delta timing is disabled. Depends on the
    /// configured timing lane width — fewer, fuller batches at higher widths
    /// — but not on the thread count for cycle-sharded campaigns.
    pub batched_timing_replays: u64,
    /// Scenario lanes actually occupied across all timing-aware batch
    /// replays: the number of injections whose step-1 simulation rode a
    /// packed batch. Invariant across timing lane widths > 1 (the static and
    /// toggle pre-filters run before lane chunking) and across thread counts
    /// for cycle-sharded campaigns.
    pub timing_lanes_occupied: u64,
    /// Total lane slots *scheduled* across all timing-aware batch replays
    /// (the sum of chunk sizes, not `batched_timing_replays *
    /// timing_lanes` — a partially-filled final chunk contributes only the
    /// slots it actually carries); the denominator of
    /// [`InjectorStats::timing_lane_utilization`]. Invariant across timing
    /// lane widths > 1 and thread counts, like `timing_lanes_occupied`.
    pub timing_lane_slots: u64,
    /// Injections served without their own timing-aware simulation by the
    /// collapsing layer: queries on a member edge redirected to its
    /// equivalence-class representative, plus queries discharged by the
    /// quiet-source certificate (the edge's source net has no transition in
    /// the fault-free waveform of the cycle, so the faulty run is provably
    /// identical). Collapse classes and quiescence are properties of the
    /// plan and the golden trace alone, so the count is thread-count and
    /// lane-width invariant for cycle-sharded campaigns. Zero when
    /// collapsing is disabled.
    pub collapsed_edges: u64,
    /// Representative simulations actually run on behalf of an equivalence
    /// class (one per distinct `(representative, extra)` pair per cycle),
    /// plus fault-free golden waveform builds for the quiet-source
    /// certificate (at most one per cycle). Thread-count and lane-width
    /// invariant like [`InjectorStats::collapsed_edges`]. Zero when
    /// collapsing is disabled.
    pub class_representatives: u64,
    /// Flip groups the semi-formal masking check classified as a
    /// program-visible failure (SDC) without any replay: their exact
    /// propagated difference cone provably corrupts an observed output word
    /// of an environment with a faithful transcript. One count per distinct
    /// `(boundary, flip set)` discharged, so the total is thread-count and
    /// lane-width invariant for cycle-sharded campaigns. Zero when
    /// collapsing is disabled.
    pub formally_discharged_ace: u64,
    /// Flip groups the semi-formal masking check classified as Masked
    /// without any replay: the flipped bits can never reach a primary
    /// output, or their exact propagated difference cone dies out (or runs
    /// off the observable end of the trace) without touching one. Counted
    /// per distinct `(boundary, flip set)` like
    /// [`InjectorStats::formally_discharged_ace`]. Zero when collapsing is
    /// disabled.
    pub formally_discharged_unace: u64,
    /// Strata with at least one injection site in the adaptive sampling
    /// plan. Stratification is a pure function of the golden trace and the
    /// static timing table, so the count is thread-count and lane-width
    /// invariant. Zero when adaptive sampling is off.
    pub strata_active: u64,
    /// Strata the adaptive plan retired before exhausting their sites
    /// because every estimand's Wilson interval was already within the
    /// target half-width. Retirement decisions are pure functions of the
    /// merged round tallies, so the count is thread-count and lane-width
    /// invariant. Zero when adaptive sampling is off.
    pub strata_retired_early: u64,
    /// Injections the adaptive plan never ran: the unsampled site count
    /// times the per-site injection multiplier. Zero when adaptive
    /// sampling is off (the uniform path visits every site).
    pub adaptive_replays_saved: u64,
}

impl InjectorStats {
    /// Adds another worker's counters into this one.
    ///
    /// The sharded campaign engine partitions work by whole cycles and every
    /// cache key is scoped to a single latch boundary, so cache hit/miss
    /// counts are partition-independent: the merged totals are identical to
    /// a serial run's for any thread count.
    pub fn merge(&mut self, other: &InjectorStats) {
        self.static_filtered += other.static_filtered;
        self.toggle_filtered += other.toggle_filtered;
        self.event_sims += other.event_sims;
        self.replays += other.replays;
        self.replay_cache_hits += other.replay_cache_hits;
        self.replay_cycles += other.replay_cycles;
        self.gates_evaluated += other.gates_evaluated;
        self.incremental_replays += other.incremental_replays;
        self.full_replay_fallbacks += other.full_replay_fallbacks;
        self.batched_replays += other.batched_replays;
        self.lanes_occupied += other.lanes_occupied;
        self.lane_slots += other.lane_slots;
        self.golden_waveform_builds += other.golden_waveform_builds;
        self.delta_events += other.delta_events;
        self.delta_early_exits += other.delta_early_exits;
        self.full_event_fallbacks += other.full_event_fallbacks;
        self.batched_timing_replays += other.batched_timing_replays;
        self.timing_lanes_occupied += other.timing_lanes_occupied;
        self.timing_lane_slots += other.timing_lane_slots;
        self.collapsed_edges += other.collapsed_edges;
        self.class_representatives += other.class_representatives;
        self.formally_discharged_ace += other.formally_discharged_ace;
        self.formally_discharged_unace += other.formally_discharged_unace;
        self.strata_active += other.strata_active;
        self.strata_retired_early += other.strata_retired_early;
        self.adaptive_replays_saved += other.adaptive_replays_saved;
    }

    /// The field-wise difference `self - baseline`. Counters only ever
    /// grow, so a snapshot taken before a work unit subtracted from one
    /// taken after yields exactly that unit's contribution — the quantity
    /// the checkpoint and telemetry layers record.
    pub fn delta_since(&self, baseline: &InjectorStats) -> InjectorStats {
        InjectorStats {
            static_filtered: self.static_filtered - baseline.static_filtered,
            toggle_filtered: self.toggle_filtered - baseline.toggle_filtered,
            event_sims: self.event_sims - baseline.event_sims,
            replays: self.replays - baseline.replays,
            replay_cache_hits: self.replay_cache_hits - baseline.replay_cache_hits,
            replay_cycles: self.replay_cycles - baseline.replay_cycles,
            gates_evaluated: self.gates_evaluated - baseline.gates_evaluated,
            incremental_replays: self.incremental_replays - baseline.incremental_replays,
            full_replay_fallbacks: self.full_replay_fallbacks - baseline.full_replay_fallbacks,
            batched_replays: self.batched_replays - baseline.batched_replays,
            lanes_occupied: self.lanes_occupied - baseline.lanes_occupied,
            lane_slots: self.lane_slots - baseline.lane_slots,
            golden_waveform_builds: self.golden_waveform_builds - baseline.golden_waveform_builds,
            delta_events: self.delta_events - baseline.delta_events,
            delta_early_exits: self.delta_early_exits - baseline.delta_early_exits,
            full_event_fallbacks: self.full_event_fallbacks - baseline.full_event_fallbacks,
            batched_timing_replays: self.batched_timing_replays - baseline.batched_timing_replays,
            timing_lanes_occupied: self.timing_lanes_occupied - baseline.timing_lanes_occupied,
            timing_lane_slots: self.timing_lane_slots - baseline.timing_lane_slots,
            collapsed_edges: self.collapsed_edges - baseline.collapsed_edges,
            class_representatives: self.class_representatives - baseline.class_representatives,
            formally_discharged_ace: self.formally_discharged_ace
                - baseline.formally_discharged_ace,
            formally_discharged_unace: self.formally_discharged_unace
                - baseline.formally_discharged_unace,
            strata_active: self.strata_active - baseline.strata_active,
            strata_retired_early: self.strata_retired_early - baseline.strata_retired_early,
            adaptive_replays_saved: self.adaptive_replays_saved - baseline.adaptive_replays_saved,
        }
    }

    /// Mean lane occupancy of the batch replays (`lanes_occupied /
    /// lane_slots`), in `[0, 1]`. Zero when no batch ran. Slots are counted
    /// as *scheduled* (chunk sizes), so a workload smaller than the
    /// configured width no longer reads as waste: sub-1.0 values can only
    /// come from genuinely unscheduled lanes, not from the final partial
    /// chunk.
    pub fn lane_utilization(&self) -> f64 {
        if self.lane_slots == 0 {
            0.0
        } else {
            self.lanes_occupied as f64 / self.lane_slots as f64
        }
    }

    /// Mean lane occupancy of the timing-aware batch replays
    /// (`timing_lanes_occupied / timing_lane_slots`), in `[0, 1]`. Zero when
    /// no timing batch ran. Slots are counted as *scheduled* (chunk sizes),
    /// so a sweep smaller than the configured width — e.g. 32 edges at
    /// `timing_lanes = 64` — reads 1.0 instead of 0.5.
    pub fn timing_lane_utilization(&self) -> f64 {
        if self.timing_lane_slots == 0 {
            0.0
        } else {
            self.timing_lanes_occupied as f64 / self.timing_lane_slots as f64
        }
    }
}

/// Iterates the set bit positions of a lane mask, lowest first.
fn iter_lanes(mask: LaneMask) -> impl Iterator<Item = usize> {
    let mut words = mask.0;
    let mut wi = 0usize;
    std::iter::from_fn(move || loop {
        if wi >= words.len() {
            return None;
        }
        if words[wi] == 0 {
            wi += 1;
            continue;
        }
        let bit = words[wi].trailing_zeros() as usize;
        words[wi] &= words[wi] - 1;
        return Some(wi * 64 + bit);
    })
}

impl<'a, E: Environment + Clone> Injector<'a, E> {
    /// Creates an engine bound to one analyzed circuit and golden run.
    ///
    /// `due_slack` is the number of extra cycles past the golden program
    /// length a faulty run may take before it is declared a detected
    /// unrecoverable error (DUE).
    pub fn new(
        circuit: &'a Circuit,
        topo: &'a Topology,
        timing: &'a TimingModel,
        golden: &'a GoldenRun<E>,
        due_slack: u64,
    ) -> Self {
        let mut input_net_pos = HashMap::new();
        for (pi, port) in circuit.input_ports().iter().enumerate() {
            for (bit, &net) in port.nets().iter().enumerate() {
                input_net_pos.insert(net, (pi, bit));
            }
        }
        Injector {
            circuit,
            topo,
            timing,
            golden,
            event: EventSim::new(circuit, topo, timing),
            delta: DeltaEventSim::new(circuit, topo, timing),
            batch_delta: BatchDeltaSim::new(circuit, topo, timing),
            replay: CycleSim::new(circuit, topo),
            diff: DiffSim::new(circuit, topo),
            batch: BatchSim::new(circuit, topo),
            due_slack,
            early_exit: true,
            toggle_filter: true,
            incremental: true,
            delta_timing: true,
            lanes: MAX_LANES,
            timing_lanes: MAX_TIMING_LANES,
            env_scratch: vec![0; circuit.input_ports().len()],
            cycle_data: None,
            fanin_cache: HashMap::new(),
            failure_cache: HashMap::new(),
            input_net_pos,
            static_reach_cache: HashMap::new(),
            collapse: true,
            plan: None,
            collapse_cache: HashMap::new(),
            collapse_cycle: None,
            quiet_changed: Vec::new(),
            quiet_cycle: None,
            discharge_settle: HashMap::new(),
            discharge_boundary: None,
            golden_class: None,
            stats: InjectorStats::default(),
        }
    }

    /// Disables (or re-enables) the toggle pre-filter (§V-C). The filter
    /// never changes results — a fidelity property the test suite checks —
    /// it only skips timing-aware simulations that provably see no events.
    pub fn set_toggle_filter(&mut self, enabled: bool) {
        self.toggle_filter = enabled;
    }

    /// Disables (or re-enables) the convergence early-exit in the
    /// timing-agnostic replay. With early exit off every replay runs to the
    /// end of the program and visibility is decided purely by the final
    /// output comparison — the exact but slow baseline the early exit is
    /// benchmarked against (it never changes results, only cost). In
    /// incremental mode the convergence test is "divergence set empty" (plus
    /// fingerprint and pending-output equality) instead of a full packed
    /// state comparison — the same predicate, computed for free.
    pub fn set_early_exit(&mut self, enabled: bool) {
        self.early_exit = enabled;
    }

    /// Disables (or re-enables) the incremental divergence-cone replay
    /// engine. Incremental replay is bit-for-bit identical to the full
    /// cycle-by-cycle baseline — a fidelity property the differential and
    /// property test suites check — it only avoids re-evaluating gates
    /// outside the fan-out cone of the diverged state. Disable it to run the
    /// exact full-replay baseline (the `--no-incremental` escape hatch).
    pub fn set_incremental(&mut self, enabled: bool) {
        self.incremental = enabled;
    }

    /// Sets the lane width for bit-parallel batch replays. `1` disables
    /// batching entirely (the exact scalar baseline, byte-identical reports);
    /// `0` selects the maximum width. Values are clamped to
    /// [`delayavf_sim::MAX_LANES`]. Batching never changes campaign results
    /// — a fidelity property the differential test suites check — it only
    /// lets up to `lanes` pending replays share each pass over the netlist.
    pub fn set_lanes(&mut self, lanes: usize) {
        self.lanes = if lanes == 0 {
            MAX_LANES
        } else {
            lanes.min(MAX_LANES)
        };
    }

    /// Disables (or re-enables) the incremental timing-aware engine
    /// ([`DeltaEventSim`]): the shared per-cycle golden-waveform cache plus
    /// fault-cone delta event simulation. Delta timing latches bit-identical
    /// values to the full event simulator — a fidelity property the
    /// differential and property test suites check — it only skips
    /// re-simulating the fault-free bulk of each cycle's waveform. Disable
    /// it to run the exact full-event baseline (the `--no-delta-timing`
    /// escape hatch).
    pub fn set_delta_timing(&mut self, enabled: bool) {
        self.delta_timing = enabled;
    }

    /// Sets the lane width for lane-packed timing-aware batch replays. `1`
    /// disables timing batching entirely (the exact scalar [`DeltaEventSim`]
    /// baseline, byte-identical reports); `0` selects the maximum width.
    /// Values are clamped to [`delayavf_sim::MAX_TIMING_LANES`]. Timing
    /// batching never changes campaign results — a fidelity property the
    /// differential test suites check — it only lets up to `timing_lanes`
    /// injections at one trace cycle share each pass over the fault cone.
    pub fn set_timing_lanes(&mut self, timing_lanes: usize) {
        self.timing_lanes = if timing_lanes == 0 {
            MAX_TIMING_LANES
        } else {
            timing_lanes.min(MAX_TIMING_LANES)
        };
    }

    /// Disables (or re-enables) the pre-simulation collapsing layer: the
    /// same-slack + structural-dominator equivalence classes over injection
    /// sites, the quiet-source certificate, and the semi-formal masking
    /// discharge of flip groups. Collapsing never changes results — a
    /// fidelity property the differential and property test suites check —
    /// it only serves provably identical injections from one representative
    /// simulation and classifies provably masked (or provably corrupting)
    /// flip groups without replay. Disable it to run the exact per-site
    /// baseline (the `--no-collapse` escape hatch).
    pub fn set_collapse(&mut self, enabled: bool) {
        self.collapse = enabled;
    }

    /// Full two-step evaluation: is edge `edge` DelayACE in `cycle` under an
    /// extra delay of `extra` picoseconds?
    ///
    /// The resulting error group is classified at boundary `cycle + 1`: a
    /// delay fault in `cycle` corrupts the values *latched at the end* of
    /// that cycle, which are the state at the start of `cycle + 1`. This is
    /// deliberately one boundary later than the strike-model entry points
    /// ([`Injector::bit_ace`], [`Injector::group_ace`]), which flip state
    /// that is *already* latched at their `boundary` argument.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is not one of the golden run's sampled cycles, is
    /// 0, or is the final cycle.
    pub fn inject(&mut self, cycle: u64, edge: EdgeId, extra: Picos) -> InjectionOutcome {
        let (statically_reachable, dynamic_set) = self.dynamically_reachable(cycle, edge, extra);
        self.classify_injection(cycle, statically_reachable, dynamic_set)
    }

    /// Step 2 packaged for campaigns that run step 1
    /// ([`Injector::dynamically_reachable`]) separately — typically to
    /// collect a whole cycle's dynamic sets first and batch their replays
    /// with [`Injector::prefill_failures`]. `inject` is exactly step 1
    /// followed by this.
    pub fn classify_injection(
        &mut self,
        cycle: u64,
        statically_reachable: usize,
        dynamic_set: Vec<DffId>,
    ) -> InjectionOutcome {
        if dynamic_set.is_empty() {
            return InjectionOutcome::masked(statically_reachable);
        }
        let class = self.group_failure(cycle + 1, &dynamic_set);
        InjectionOutcome {
            statically_reachable,
            dynamic_set,
            visible: class.is_visible(),
            class,
        }
    }

    /// Step 1 (timing-aware): the statically reachable count and the
    /// dynamically reachable set of an SDF.
    pub fn dynamically_reachable(
        &mut self,
        cycle: u64,
        edge: EdgeId,
        extra: Picos,
    ) -> (usize, Vec<DffId>) {
        assert!(cycle >= 1, "cycle 0 has no preceding settled state");
        assert!(
            cycle < self.golden.trace.num_cycles(),
            "cycle {cycle} has no successor in the golden trace"
        );

        // Pre-filter 1: some path through the edge must exceed the clock.
        // Both the path query and the static-reach set are cycle-invariant,
        // so the combined answer is memoized per (edge, extra).
        let static_count = match self.static_reach_cache.get(&(edge, extra)) {
            Some(&n) => n,
            None => {
                let path = self.timing.path_through_edge(self.circuit, self.topo, edge);
                let n = if path + extra <= self.timing.clock_period() {
                    0
                } else {
                    self.timing
                        .statically_reachable(self.circuit, self.topo, edge, extra)
                        .len()
                };
                self.static_reach_cache.insert((edge, extra), n);
                n
            }
        };
        if static_count == 0 {
            self.stats.static_filtered += 1;
            return (0, Vec::new());
        }

        // Collapsing layer: a member edge's fault is event-for-event
        // identical to the same fault on its class representative, so the
        // representative's dynamic set (computed once per cycle) is the
        // answer. The member's own static filter just passed and the class
        // criterion includes slack-table equality, so the representative's
        // would pass identically.
        if self.collapse {
            self.refresh_collapse_cycle(cycle);
            let rep = self.plan().representative(edge);
            if rep != edge {
                self.stats.collapsed_edges += 1;
                return (static_count, self.collapse_rep_set(cycle, rep, extra));
            }
            if self.plan().is_representative(edge) {
                return (static_count, self.collapse_rep_set(cycle, edge, extra));
            }
        }

        let dynamic = self.timed_dynamic_set(cycle, edge, extra);
        (static_count, dynamic)
    }

    /// The toggle pre-filter, quiet-source certificate and timing-aware
    /// simulation of one injection that already passed the static filter
    /// (and, when collapsing, was already resolved to a class
    /// representative or a singleton).
    fn timed_dynamic_set(&mut self, cycle: u64, edge: EdgeId, extra: Picos) -> Vec<DffId> {
        // Pre-filter 2 (§V-C): if no source feeding the faulted edge
        // toggles this cycle, no event ever crosses the edge.
        if self.toggle_filter && !self.edge_sources_toggle(cycle, edge) {
            self.stats.toggle_filtered += 1;
            return Vec::new();
        }

        // Quiet-source certificate: the fault only delays deliveries of the
        // source net's transitions at the sink pin, so if the fault-free
        // waveform has no transition on the source this cycle the faulty
        // run is identical and the dynamic set is provably empty. Always
        // judged on the full event simulator's waveform, independent of the
        // delta-timing knob, so the certificate is knob-invariant.
        if self.collapse {
            self.ensure_quiet_changed(cycle);
            let source = self.topo.edge(edge).source;
            if !self.quiet_changed[source.index()] {
                self.stats.collapsed_edges += 1;
                return Vec::new();
            }
        }

        // Timing-aware simulation of the one faulty cycle. The delta engine
        // shares one cached golden waveform across every injection at this
        // cycle and only propagates the fault's divergence cone; the full
        // event simulator re-simulates the whole cycle and serves as the
        // exact baseline (`--no-delta-timing`).
        self.ensure_cycle_data(cycle);
        let data = self.cycle_data.as_ref().expect("just ensured");
        let inputs = self.golden.trace.inputs_at(cycle);
        self.stats.event_sims += 1;
        let latched: &[bool] = if self.delta_timing {
            let (latched, outcome) = self.delta.latch_cycle(
                cycle,
                &data.prev_values,
                &data.new_state,
                inputs,
                FaultSpec { edge, extra },
            );
            self.stats.golden_waveform_builds += u64::from(outcome.built_golden);
            self.stats.delta_events += outcome.delta_events;
            self.stats.delta_early_exits += outcome.reconverged;
            latched
        } else {
            self.stats.full_event_fallbacks += 1;
            self.event.latch_cycle(
                &data.prev_values,
                &data.new_state,
                inputs,
                Some(FaultSpec { edge, extra }),
            )
        };
        latched
            .iter()
            .enumerate()
            .filter(|&(i, &v)| v != data.next_state[i])
            .map(|(i, _)| DffId::from_index(i))
            .collect()
    }

    /// The collapsing plan, built on first use.
    fn plan(&mut self) -> &CollapsePlan {
        if self.plan.is_none() {
            self.plan = Some(CollapsePlan::build(self.circuit, self.topo, self.timing));
        }
        self.plan.as_ref().expect("just built")
    }

    /// Drops the representative-set cache when the injection cycle changes
    /// (the sets are waveform-dependent, hence cycle-scoped).
    fn refresh_collapse_cycle(&mut self, cycle: u64) {
        if self.collapse_cycle != Some(cycle) {
            self.collapse_cache.clear();
            self.collapse_cycle = Some(cycle);
        }
    }

    /// The dynamically reachable set of a class representative this cycle,
    /// computed once per `(representative, extra)` and served to every
    /// member of the class.
    fn collapse_rep_set(&mut self, cycle: u64, rep: EdgeId, extra: Picos) -> Vec<DffId> {
        if let Some(set) = self.collapse_cache.get(&(rep, extra)) {
            return set.clone();
        }
        self.stats.class_representatives += 1;
        let set = self.timed_dynamic_set(cycle, rep, extra);
        self.collapse_cache.insert((rep, extra), set.clone());
        set
    }

    /// Records which nets transition in the fault-free timed waveform of
    /// `cycle` (for the quiet-source certificate), simulating it on the
    /// full event simulator once per cycle.
    fn ensure_quiet_changed(&mut self, cycle: u64) {
        if self.quiet_cycle == Some(cycle) {
            return;
        }
        self.ensure_cycle_data(cycle);
        let data = self.cycle_data.as_ref().expect("just ensured");
        let inputs = self.golden.trace.inputs_at(cycle);
        self.stats.class_representatives += 1;
        self.event
            .latch_cycle(&data.prev_values, &data.new_state, inputs, None);
        let changed = self.event.changed_nets();
        self.quiet_changed.clear();
        self.quiet_changed.extend_from_slice(changed);
        self.quiet_cycle = Some(cycle);
    }

    /// Step 1 for a whole cycle's worth of injections at once: the
    /// statically reachable count and dynamically reachable set of every
    /// `(edge, extra)` pair, in input order.
    ///
    /// Pairs surviving the static and toggle pre-filters are chunked into
    /// groups of up to `timing_lanes` and each group is propagated together
    /// by [`BatchDeltaSim`] over lane-packed transition words against the
    /// one cached golden waveform. Lanes the batch engine cannot represent
    /// retire to the scalar [`DeltaEventSim`]. With `timing_lanes <= 1` or
    /// delta timing disabled this is exactly a loop over
    /// [`Injector::dynamically_reachable`] — the byte-identical scalar
    /// escape hatch.
    ///
    /// # Panics
    ///
    /// Panics as [`Injector::dynamically_reachable`] does on unsampled,
    /// zero, or final cycles.
    pub fn dynamically_reachable_batch(
        &mut self,
        cycle: u64,
        pairs: &[(EdgeId, Picos)],
    ) -> Vec<(usize, Vec<DffId>)> {
        if !self.delta_timing || self.timing_lanes <= 1 {
            return pairs
                .iter()
                .map(|&(edge, extra)| self.dynamically_reachable(cycle, edge, extra))
                .collect();
        }
        assert!(cycle >= 1, "cycle 0 has no preceding settled state");
        assert!(
            cycle < self.golden.trace.num_cycles(),
            "cycle {cycle} has no successor in the golden trace"
        );

        // Run the cycle-invariant static memo, the collapsing layer and
        // the per-cycle toggle filter exactly as the scalar path does; only
        // plain survivors occupy batch lanes (members and representatives
        // are served through the scalar representative cache, so the
        // per-class work is identical at every lane width).
        if self.collapse {
            self.refresh_collapse_cycle(cycle);
        }
        let mut results: Vec<(usize, Vec<DffId>)> = Vec::with_capacity(pairs.len());
        let mut survivors: Vec<usize> = Vec::new();
        for &(edge, extra) in pairs {
            let static_count = match self.static_reach_cache.get(&(edge, extra)) {
                Some(&n) => n,
                None => {
                    let path = self.timing.path_through_edge(self.circuit, self.topo, edge);
                    let n = if path + extra <= self.timing.clock_period() {
                        0
                    } else {
                        self.timing
                            .statically_reachable(self.circuit, self.topo, edge, extra)
                            .len()
                    };
                    self.static_reach_cache.insert((edge, extra), n);
                    n
                }
            };
            if static_count == 0 {
                self.stats.static_filtered += 1;
                results.push((0, Vec::new()));
                continue;
            }
            if self.collapse {
                let rep = self.plan().representative(edge);
                if rep != edge {
                    self.stats.collapsed_edges += 1;
                    let set = self.collapse_rep_set(cycle, rep, extra);
                    results.push((static_count, set));
                    continue;
                }
                if self.plan().is_representative(edge) {
                    let set = self.collapse_rep_set(cycle, edge, extra);
                    results.push((static_count, set));
                    continue;
                }
            }
            if self.toggle_filter && !self.edge_sources_toggle(cycle, edge) {
                self.stats.toggle_filtered += 1;
                results.push((static_count, Vec::new()));
                continue;
            }
            if self.collapse {
                self.ensure_quiet_changed(cycle);
                let source = self.topo.edge(edge).source;
                if !self.quiet_changed[source.index()] {
                    self.stats.collapsed_edges += 1;
                    results.push((static_count, Vec::new()));
                    continue;
                }
            }
            survivors.push(results.len());
            results.push((static_count, Vec::new()));
        }
        if survivors.is_empty() {
            return results;
        }

        self.ensure_cycle_data(cycle);
        let inputs = self.golden.trace.inputs_at(cycle);
        // Carve lanes so no chunk carries the same edge at two *different*
        // extra delays — such pairs would be retired by the packed engine
        // and replayed scalar anyway, so routing them to separate chunks up
        // front keeps every lane on the fast path. Deterministic first-fit
        // in survivor order; results are written back through `ri`, so the
        // output order never depends on the carving.
        let mut chunks: Vec<Vec<usize>> = Vec::new();
        let mut chunk_extras: Vec<HashMap<EdgeId, Picos>> = Vec::new();
        for &ri in &survivors {
            let (edge, extra) = pairs[ri];
            let slot = (0..chunks.len()).find(|&ci| {
                chunks[ci].len() < self.timing_lanes
                    && chunk_extras[ci].get(&edge).is_none_or(|&e| e == extra)
            });
            match slot {
                Some(ci) => {
                    chunks[ci].push(ri);
                    chunk_extras[ci].insert(edge, extra);
                }
                None => {
                    chunks.push(vec![ri]);
                    chunk_extras.push(HashMap::from([(edge, extra)]));
                }
            }
        }
        for chunk in &chunks {
            let faults: Vec<FaultSpec> = chunk
                .iter()
                .map(|&ri| {
                    let (edge, extra) = pairs[ri];
                    FaultSpec { edge, extra }
                })
                .collect();
            let data = self.cycle_data.as_ref().expect("just ensured");
            self.stats.event_sims += chunk.len() as u64;
            self.stats.batched_timing_replays += 1;
            self.stats.timing_lanes_occupied += chunk.len() as u64;
            self.stats.timing_lane_slots += chunk.len() as u64;
            let outcome = self.batch_delta.latch_batch(
                cycle,
                &data.prev_values,
                &data.new_state,
                inputs,
                &faults,
            );
            self.stats.golden_waveform_builds += u64::from(outcome.built_golden);
            self.stats.delta_events += outcome.delta_events;
            self.stats.delta_early_exits += outcome.reconverged;
            let mut sets = self
                .batch_delta
                .mismatch_sets(chunk.len(), &data.next_state);
            for (lane, &ri) in chunk.iter().enumerate() {
                if outcome.retired.contains(&lane) {
                    // Unbatchable scenario: replay it on the scalar delta
                    // engine, which shares the cached golden waveform.
                    let (latched, o) = self.delta.latch_cycle(
                        cycle,
                        &data.prev_values,
                        &data.new_state,
                        inputs,
                        faults[lane],
                    );
                    self.stats.golden_waveform_builds += u64::from(o.built_golden);
                    self.stats.delta_events += o.delta_events;
                    self.stats.delta_early_exits += o.reconverged;
                    results[ri].1 = latched
                        .iter()
                        .enumerate()
                        .filter(|&(i, &v)| v != data.next_state[i])
                        .map(|(i, _)| DffId::from_index(i))
                        .collect();
                } else {
                    results[ri].1 = std::mem::take(&mut sets[lane]);
                }
            }
        }
        results
    }

    /// Full two-step evaluation of a whole cycle's worth of injections:
    /// step 1 via [`Injector::dynamically_reachable_batch`], then step 2
    /// ([`Injector::classify_injection`]) per pair. Outcomes are returned in
    /// input order; a loop over [`Injector::inject`] produces the same
    /// values.
    pub fn inject_batch(&mut self, cycle: u64, pairs: &[(EdgeId, Picos)]) -> Vec<InjectionOutcome> {
        let parts = self.dynamically_reachable_batch(cycle, pairs);
        parts
            .into_iter()
            .map(|(statically_reachable, dynamic_set)| {
                self.classify_injection(cycle, statically_reachable, dynamic_set)
            })
            .collect()
    }

    /// Step 2 (timing-agnostic): is a simultaneous error in `set` at the
    /// start of `boundary` a program-visible failure (Definition 4)?
    ///
    /// `boundary` names the latch boundary whose *stored* state is
    /// corrupted. Strike-model campaigns pass the struck cycle itself;
    /// [`Injector::inject`] passes `cycle + 1` for the delay-fault model —
    /// see its docs for why the conventions differ.
    pub fn group_ace(&mut self, boundary: u64, set: &[DffId]) -> bool {
        self.group_failure(boundary, set).is_visible()
    }

    /// Like [`Injector::group_ace`] but with the SDC/DUE classification.
    pub fn group_failure(&mut self, boundary: u64, set: &[DffId]) -> FailureClass {
        if set.is_empty() {
            return FailureClass::Masked;
        }
        let mut key: Vec<DffId> = set.to_vec();
        key.sort_unstable();
        key.dedup();
        self.failure_with_flips(boundary, key)
    }

    /// Individual (particle-strike-style) ACEness of one bit flipped at the
    /// start of `boundary` — the ingredient of ORACE (Definition 5) and of
    /// the sAVF campaigns.
    pub fn bit_ace(&mut self, boundary: u64, dff: DffId) -> bool {
        self.failure_with_flips(boundary, vec![dff]).is_visible()
    }

    /// ORACE (Definition 5): true iff any member of `set` is individually
    /// ACE at `boundary`.
    pub fn or_ace(&mut self, boundary: u64, set: &[DffId]) -> bool {
        set.iter().any(|&d| {
            // Borrow-friendly loop body.
            self.bit_ace(boundary, d)
        })
    }

    /// Replays execution with `flips` applied at the start of `boundary`
    /// and classifies program visibility. Results are cached; cache hits
    /// borrow the flip set as a slice and allocate nothing.
    fn failure_with_flips(&mut self, boundary: u64, flips: Vec<DffId>) -> FailureClass {
        if let Some(&hit) = self
            .failure_cache
            .get(&boundary)
            .and_then(|m| m.get(flips.as_slice()))
        {
            self.stats.replay_cache_hits += 1;
            return hit;
        }
        if self.collapse {
            if let Some(class) = self.try_discharge(boundary, &flips) {
                self.failure_cache
                    .entry(boundary)
                    .or_default()
                    .insert(flips, class);
                return class;
            }
        }
        self.stats.replays += 1;
        let class = if self.incremental {
            self.replay_incremental(boundary, &flips)
        } else {
            self.replay_full(boundary, &flips)
        };
        self.failure_cache
            .entry(boundary)
            .or_default()
            .insert(flips, class);
        class
    }

    /// The semi-formal masking check: tries to classify the flip group
    /// without any replay, by exact zero-delay propagation of its
    /// difference cone against per-cycle golden settles. Returns `None`
    /// when no proof is found within the horizon/cone bounds — the caller
    /// falls back to a real replay, so a `None` never changes results.
    ///
    /// Soundness hinges on the environment seeing the *golden* output words
    /// for as long as the cone stays off the output nets (environments are
    /// deterministic in what they observe), and on
    /// [`Injector::golden_identical_class`] certifying that such a
    /// golden-trajectory run classifies as Masked. An output-word deviation
    /// is promoted to SDC only under the stronger
    /// [`Environment::deterministic_transcript`] contract, where a
    /// deviating observed word provably produces a deviating transcript.
    fn try_discharge(&mut self, boundary: u64, flips: &[DffId]) -> Option<FailureClass> {
        if !self.golden.trace.halted() {
            return None;
        }
        if self.golden_identical_class()? != FailureClass::Masked {
            return None;
        }
        // Rule 1: no flipped bit can ever (through any number of cycles of
        // sequential propagation) influence a primary output, so the
        // environment observes the golden trajectory forever.
        let all_invisible = {
            let plan = self.plan();
            flips.iter().all(|&d| !plan.influences_output(d))
        };
        if all_invisible {
            self.stats.formally_discharged_unace += 1;
            return Some(FailureClass::Masked);
        }
        // Rule 2: bounded exact propagation. The environment's step for
        // cycle `t` observes the outputs settled at `t - 1` and its last
        // step is for cycle `n - 1`, so only output deviations in cycles
        // `boundary ..= n - 2` are ever observable.
        let n = self.golden.trace.num_cycles();
        if boundary >= n.saturating_sub(1) {
            self.stats.formally_discharged_unace += 1;
            return Some(FailureClass::Masked);
        }
        let horizon = (n - 1).min(boundary + DISCHARGE_HORIZON);
        let mut cur: Vec<DffId> = flips.to_vec();
        let mut t = boundary;
        while t < horizon {
            self.ensure_discharge_settle(boundary, t);
            let values = &self.discharge_settle[&t];
            let plan = self.plan.as_ref().expect("built by rule 1");
            let step = propagate_flips(
                self.circuit,
                self.topo,
                plan,
                values,
                &cur,
                DISCHARGE_CONE_CAP,
            )?;
            if step.output_deviation {
                if self.env_deterministic() {
                    self.stats.formally_discharged_ace += 1;
                    return Some(FailureClass::Sdc);
                }
                return None;
            }
            if step.next_flips.is_empty() {
                self.stats.formally_discharged_unace += 1;
                return Some(FailureClass::Masked);
            }
            cur = step.next_flips;
            t += 1;
        }
        if t >= n - 1 {
            // The whole observable window was propagated with no output
            // deviation: the environment saw the golden trajectory
            // throughout, so the run classifies exactly as the certified
            // golden-identical one.
            self.stats.formally_discharged_unace += 1;
            Some(FailureClass::Masked)
        } else {
            None
        }
    }

    /// The classification a faulty run would receive if its environment
    /// observed exactly the golden output words until the end of the trace:
    /// advance the latest checkpoint's environment clone along the recorded
    /// outputs and classify it as a halted run. `None` when no usable
    /// checkpoint exists (a cycle-0 checkpoint cannot be advanced — the
    /// trace has no outputs before cycle 0). Memoized per injector.
    fn golden_identical_class(&mut self) -> Option<FailureClass> {
        if let Some(class) = self.golden_class {
            return class;
        }
        let golden = self.golden;
        let computed = golden
            .checkpoints
            .iter()
            .next_back()
            .filter(|(_, cp)| cp.cycle >= 1)
            .map(|(_, cp)| (cp.cycle, cp.env.clone()));
        let computed = computed.map(|(mut env_at, mut env)| {
            self.advance_env(&mut env, &mut env_at, golden.trace.num_cycles());
            self.classify_halted(&env)
        });
        self.golden_class = Some(computed);
        computed
    }

    /// Whether the golden environment opts into the strong
    /// [`Environment::deterministic_transcript`] contract (required for SDC
    /// discharges, not for Masked ones).
    fn env_deterministic(&self) -> bool {
        self.golden
            .checkpoints
            .values()
            .next()
            .is_some_and(|cp| cp.env.deterministic_transcript())
    }

    /// Settles (and caches) the golden net values of trace cycle `t` for
    /// the semi-formal discharge; the cache is scoped to one boundary.
    fn ensure_discharge_settle(&mut self, boundary: u64, t: u64) {
        if self.discharge_boundary != Some(boundary) {
            self.discharge_settle.clear();
            self.discharge_boundary = Some(boundary);
        }
        if self.discharge_settle.contains_key(&t) {
            return;
        }
        let trace = &self.golden.trace;
        let state = trace.state_bits_at(t, self.circuit.num_dffs());
        let values = settle(self.circuit, self.topo, &state, trace.inputs_at(t));
        self.discharge_settle.insert(t, values);
    }

    /// Classification when the faulty run has halted on its own.
    fn classify_halted(&self, env: &E) -> FailureClass {
        if env.failed_abnormally() {
            FailureClass::Due
        } else if env.program_output() != self.golden.trace.program_output() {
            FailureClass::Sdc
        } else {
            FailureClass::Masked
        }
    }

    /// Classification when the cycle budget ran out: the golden run halted
    /// but the faulty one has not — a DUE (hang). If the golden run itself
    /// never halted, fall back to an output comparison at the budget
    /// boundary.
    fn classify_budget_exhausted(&self, env: &E) -> FailureClass {
        if self.golden.trace.halted() {
            FailureClass::Due
        } else if env.program_output() != self.golden.trace.program_output() {
            FailureClass::Sdc
        } else {
            FailureClass::Masked
        }
    }

    /// Clones and advances the golden environment to `boundary` without
    /// touching any simulator state (the incremental path): the trace
    /// already certifies the circuit side of any skipped golden cycle, so
    /// the environment can be stepped directly on the recorded output words.
    fn resolve_env_incremental(&mut self, boundary: u64) -> E {
        if let Some(cp) = self.golden.checkpoints.get(&boundary) {
            return cp.env.clone();
        }
        let cp = self
            .golden
            .checkpoints
            .get(&(boundary - 1))
            .unwrap_or_else(|| {
                panic!(
                    "no checkpoint at or before boundary {boundary}; inject only at sampled cycles"
                )
            });
        let mut env = cp.env.clone();
        let mut scratch = vec![0u64; self.circuit.input_ports().len()];
        env.step(cp.cycle, &cp.prev_outputs, &mut scratch);
        debug_assert_eq!(
            scratch.as_slice(),
            self.golden.trace.inputs_at(cp.cycle),
            "advanced golden environment reproduces the recorded inputs"
        );
        env
    }

    /// Restores `self.replay` to the golden state at `boundary` and returns
    /// the matching environment (the full-replay path).
    fn resolve_env_full(&mut self, boundary: u64) -> E {
        if let Some(cp) = self.golden.checkpoints.get(&boundary) {
            self.replay.restore(cp.cycle, &cp.state, &cp.prev_outputs);
            return cp.env.clone();
        }
        let cp = self
            .golden
            .checkpoints
            .get(&(boundary - 1))
            .unwrap_or_else(|| {
                panic!(
                    "no checkpoint at or before boundary {boundary}; inject only at sampled cycles"
                )
            });
        self.replay.restore(cp.cycle, &cp.state, &cp.prev_outputs);
        let mut env = cp.env.clone();
        self.replay.step(&mut env);
        debug_assert_eq!(
            pack_bits(self.replay.state()),
            self.golden.trace.state_at(boundary),
            "replayed golden cycle reproduces the trace"
        );
        env
    }

    /// The full cycle-by-cycle classification loop, starting from the
    /// current state of `self.replay`. Used by the non-incremental baseline
    /// and as the fallback once an incremental replay outlives the trace.
    fn run_full_loop(&mut self, env: &mut E) -> FailureClass {
        let trace = &self.golden.trace;
        let limit = trace.num_cycles() + self.due_slack;
        loop {
            let cyc = self.replay.cycle();
            if env.halted() {
                break self.classify_halted(env);
            }
            if self.early_exit
                && trace.converged_at(
                    cyc,
                    &pack_bits(self.replay.state()),
                    env.fingerprint(),
                    self.replay.last_outputs(),
                )
            {
                break FailureClass::Masked;
            }
            if cyc >= limit {
                break self.classify_budget_exhausted(env);
            }
            self.replay.step(env);
            self.stats.replay_cycles += 1;
        }
    }

    /// The exact full-replay baseline: restore, flip, simulate every cycle.
    fn replay_full(&mut self, boundary: u64, flips: &[DffId]) -> FailureClass {
        let mut env = self.resolve_env_full(boundary);
        for &d in flips {
            self.replay.flip_dff(d);
        }
        self.run_full_loop(&mut env)
    }

    /// Incremental divergence-cone replay: identical decision sequence to
    /// [`Injector::run_full_loop`], but each cycle only re-evaluates the
    /// fan-out cone of the state diverging from the golden trace. Once the
    /// replay outlives the trace (no baseline to diff against) the
    /// materialized state is handed to the full simulator.
    fn replay_incremental(&mut self, boundary: u64, flips: &[DffId]) -> FailureClass {
        self.stats.incremental_replays += 1;
        let mut env = self.resolve_env_incremental(boundary);
        self.diff.begin(boundary, flips, &self.golden.trace);
        self.run_diff_loop(&mut env)
    }

    /// The incremental classification loop, starting from the current state
    /// of `self.diff` (primed by `begin` or `begin_with_outputs`). Identical
    /// decision sequence to [`Injector::run_full_loop`]; once the replay
    /// outlives the trace the materialized state is handed to the full
    /// simulator.
    fn run_diff_loop(&mut self, env: &mut E) -> FailureClass {
        let trace = &self.golden.trace;
        let n = trace.num_cycles();
        let limit = n + self.due_slack;
        let class = loop {
            let cyc = self.diff.cycle();
            if env.halted() {
                break self.classify_halted(env);
            }
            if self.early_exit && self.diff.converged(trace, env.fingerprint()) {
                break FailureClass::Masked;
            }
            if cyc >= limit {
                break self.classify_budget_exhausted(env);
            }
            if cyc >= n {
                self.stats.full_replay_fallbacks += 1;
                self.stats.gates_evaluated += self.diff.gates_evaluated();
                let state = self.diff.state_bits(trace);
                let outputs = self.diff.outputs().to_vec();
                self.replay.restore(cyc, &state, &outputs);
                return self.run_full_loop(env);
            }
            self.diff.step(env, trace);
            self.stats.replay_cycles += 1;
        };
        self.stats.gates_evaluated += self.diff.gates_evaluated();
        class
    }

    /// Batch-replays every not-yet-cached flip set in `sets` at `boundary`
    /// through the bit-parallel engine, filling the failure cache so later
    /// scalar queries ([`Injector::group_failure`], [`Injector::bit_ace`],
    /// ...) are hits. A no-op at `lanes <= 1` — campaigns call this
    /// unconditionally and the scalar baseline stays byte-identical.
    ///
    /// Results are bit-for-bit identical to scalar replays: each lane's
    /// decision sequence (halt, convergence early-exit, budget, end-of-trace
    /// fallback) mirrors [`Injector::run_diff_loop`] exactly, and lanes
    /// whose output ports diverge from the recorded words retire to the
    /// scalar engine at the boundary where the divergence appeared (their
    /// environments can no longer be assumed to follow the golden
    /// trajectory).
    pub fn prefill_failures<I>(&mut self, boundary: u64, sets: I)
    where
        I: IntoIterator<Item = Vec<DffId>>,
    {
        if self.lanes <= 1 {
            return;
        }
        let mut pending: Vec<Vec<DffId>> = Vec::new();
        let mut seen: HashSet<Vec<DffId>> = HashSet::new();
        for set in sets {
            let mut key = set;
            key.sort_unstable();
            key.dedup();
            if key.is_empty() {
                continue;
            }
            if self
                .failure_cache
                .get(&boundary)
                .is_some_and(|m| m.contains_key(key.as_slice()))
            {
                continue;
            }
            if seen.insert(key.clone()) {
                pending.push(key);
            }
        }
        // Semi-formal discharges run before lane chunking, so discharged
        // sets never occupy lanes — exactly the sets the scalar path
        // (`lanes <= 1`) discharges one query at a time, which keeps every
        // counter lane-width invariant.
        if self.collapse {
            let mut kept = Vec::with_capacity(pending.len());
            for set in pending {
                match self.try_discharge(boundary, &set) {
                    Some(class) => {
                        self.failure_cache
                            .entry(boundary)
                            .or_default()
                            .insert(set, class);
                    }
                    None => kept.push(set),
                }
            }
            pending = kept;
        }
        for chunk_start in (0..pending.len()).step_by(self.lanes) {
            let chunk_end = (chunk_start + self.lanes).min(pending.len());
            self.batch_replay(boundary, &pending[chunk_start..chunk_end]);
        }
    }

    /// Replays one batch of up to `lanes` normalized, uncached flip sets and
    /// caches their classifications.
    fn batch_replay(&mut self, boundary: u64, chunk: &[Vec<DffId>]) {
        let trace = &self.golden.trace;
        let n = trace.num_cycles();
        self.stats.batched_replays += 1;
        self.stats.lanes_occupied += chunk.len() as u64;
        self.stats.lane_slots += chunk.len() as u64;
        self.stats.replays += chunk.len() as u64;
        self.batch.begin(boundary, chunk, trace);
        let mut live = LaneMask::prefix(chunk.len());
        let mut classes = vec![FailureClass::Masked; chunk.len()];
        // One shared environment serves every lane: while a lane's outputs
        // match the golden words its environment trajectory is identical to
        // the recorded one (environments are deterministic in what they
        // observe), so the clone is advanced lazily along the trace and
        // cloned again per retiring lane.
        let mut env = self.resolve_env_incremental(boundary);
        let mut env_at = boundary;
        while live.any() {
            let cyc = self.batch.cycle();
            // Same decision order as the scalar loops. A golden-trajectory
            // environment is halted at a boundary iff the recorded run
            // halted and the boundary is the end of the trace.
            if cyc >= n && trace.halted() {
                self.advance_env(&mut env, &mut env_at, n);
                let class = self.classify_halted(&env);
                for lane in iter_lanes(live) {
                    classes[lane] = class;
                }
                break;
            }
            if self.early_exit {
                // Live lanes have golden outputs and fingerprints, so state
                // reconvergence alone is the full convergence predicate.
                live = live & self.batch.divergence_mask();
                if !live.any() {
                    break;
                }
            }
            if cyc >= n {
                self.advance_env(&mut env, &mut env_at, n);
                for lane in iter_lanes(live) {
                    let flips = self.batch.lane_divergence(lane, trace);
                    let outputs = self.batch.lane_outputs(lane, trace);
                    classes[lane] = self.finish_lane(n, &flips, &outputs, env.clone());
                }
                break;
            }
            // Straggler handoff: a batch step evaluates every gate of the
            // netlist regardless of occupancy, so once only a few lanes
            // remain live (e.g. one DUE-bound scenario that never converges)
            // the scalar engine's small divergence cones are cheaper. The
            // handoff is exact: these lanes never out-diverged, so their
            // pending outputs are the golden words and the shared
            // golden-trajectory environment clone is theirs too.
            if self.early_exit && (live.count_ones() as usize) * 4 <= chunk.len() {
                self.advance_env(&mut env, &mut env_at, cyc);
                for lane in iter_lanes(live) {
                    let flips = self.batch.lane_divergence(lane, trace);
                    let outputs = self.batch.lane_outputs(lane, trace);
                    classes[lane] = self.finish_lane(cyc, &flips, &outputs, env.clone());
                }
                break;
            }
            let out_div = self.batch.step(trace) & live;
            self.stats.replay_cycles += u64::from(live.count_ones());
            if out_div.any() {
                self.advance_env(&mut env, &mut env_at, cyc + 1);
                for lane in iter_lanes(out_div) {
                    let flips = self.batch.lane_divergence(lane, trace);
                    let outputs = self.batch.lane_outputs(lane, trace);
                    classes[lane] = self.finish_lane(cyc + 1, &flips, &outputs, env.clone());
                }
                live = live & !out_div;
            }
        }
        let map = self.failure_cache.entry(boundary).or_default();
        for (set, class) in chunk.iter().zip(classes) {
            map.insert(set.clone(), class);
        }
    }

    /// Advances the shared golden-trajectory environment from boundary
    /// `*env_at` to `target`, feeding it the recorded output words.
    fn advance_env(&mut self, env: &mut E, env_at: &mut u64, target: u64) {
        let trace = &self.golden.trace;
        while *env_at < target {
            self.env_scratch.iter_mut().for_each(|w| *w = 0);
            env.step(
                *env_at,
                trace.outputs_at(*env_at - 1),
                &mut self.env_scratch,
            );
            debug_assert_eq!(
                self.env_scratch.as_slice(),
                trace.inputs_at(*env_at),
                "golden-trajectory environment reproduces the recorded inputs"
            );
            *env_at += 1;
        }
    }

    /// Finishes one lane retired from a batch: a scalar replay from
    /// `boundary` with the lane's materialized divergence and pending output
    /// words, against its own environment clone.
    fn finish_lane(
        &mut self,
        boundary: u64,
        flips: &[DffId],
        outputs: &[u64],
        mut env: E,
    ) -> FailureClass {
        let trace = &self.golden.trace;
        if self.incremental {
            self.diff
                .begin_with_outputs(boundary, flips, outputs, trace);
            self.run_diff_loop(&mut env)
        } else {
            let mut state = trace.state_bits_at(boundary, self.circuit.num_dffs());
            for &d in flips {
                state[d.index()] = !state[d.index()];
            }
            self.replay.restore(boundary, &state, outputs);
            self.run_full_loop(&mut env)
        }
    }

    /// True when at least one flip-flop or primary input in the fan-in cone
    /// of the edge's source net changes value entering `cycle`.
    fn edge_sources_toggle(&mut self, cycle: u64, edge: EdgeId) -> bool {
        let source = self.topo.edge(edge).source;
        let (dffs, input_nets) = match self.fanin_cache.get(&source) {
            Some(v) => v.clone(),
            None => {
                let v = self.topo.fanin_sources(self.circuit, &[source]);
                self.fanin_cache.insert(source, v.clone());
                v
            }
        };
        let trace = &self.golden.trace;
        let prev = trace.state_at(cycle - 1);
        let cur = trace.state_at(cycle);
        for d in dffs {
            let i = d.index();
            let a = (prev[i / 64] >> (i % 64)) & 1;
            let b = (cur[i / 64] >> (i % 64)) & 1;
            if a != b {
                return true;
            }
        }
        let prev_in = trace.inputs_at(cycle - 1);
        let cur_in = trace.inputs_at(cycle);
        for net in input_nets {
            let (port, bit) = self.input_net_pos[&net];
            if (prev_in[port] >> bit) & 1 != (cur_in[port] >> bit) & 1 {
                return true;
            }
        }
        false
    }

    /// Reconstructs (and caches) the golden per-cycle context shared by
    /// every injection at `cycle`: the settled net values of `cycle - 1`
    /// plus the state words around the boundary. Campaigns call this ahead
    /// of their per-cycle edge loop so the golden-settle cost can be timed
    /// as its own phase; injection entry points fall back to it lazily, so
    /// skipping the warm-up never changes results. Touches no counters.
    pub fn warm_cycle_data(&mut self, cycle: u64) {
        self.ensure_cycle_data(cycle);
    }

    /// The classification cached for exactly `set` (normalized) at
    /// `boundary`, if any. Read-only: no replay, no counter.
    pub fn cached_failure(&self, boundary: u64, set: &[DffId]) -> Option<FailureClass> {
        let mut key: Vec<DffId> = set.to_vec();
        key.sort_unstable();
        key.dedup();
        self.failure_cache
            .get(&boundary)
            .and_then(|m| m.get(key.as_slice()))
            .copied()
    }

    /// Every cached classification at `boundary`, sorted by flip set — the
    /// deterministic order checkpoint payloads are serialized in.
    pub fn snapshot_failures(&self, boundary: u64) -> Vec<(Vec<DffId>, FailureClass)> {
        let mut entries: Vec<(Vec<DffId>, FailureClass)> = self
            .failure_cache
            .get(&boundary)
            .map(|m| m.iter().map(|(k, &v)| (k.clone(), v)).collect())
            .unwrap_or_default();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Seeds the failure cache at `boundary` with classifications restored
    /// from a checkpoint, so resumed units cost no replays. Entries must be
    /// normalized (sorted, deduplicated) flip sets — which
    /// [`Injector::snapshot_failures`] guarantees.
    pub fn preload_failures(
        &mut self,
        boundary: u64,
        entries: impl IntoIterator<Item = (Vec<DffId>, FailureClass)>,
    ) {
        let map = self.failure_cache.entry(boundary).or_default();
        for (set, class) in entries {
            debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "normalized flip set");
            map.insert(set, class);
        }
    }

    fn ensure_cycle_data(&mut self, cycle: u64) {
        if self.cycle_data.as_ref().is_some_and(|d| d.cycle == cycle) {
            return;
        }
        let trace = &self.golden.trace;
        let num_dffs = self.circuit.num_dffs();
        let prev_state = trace.state_bits_at(cycle - 1, num_dffs);
        let prev_values = settle(
            self.circuit,
            self.topo,
            &prev_state,
            trace.inputs_at(cycle - 1),
        );
        self.cycle_data = Some(CycleData {
            cycle,
            prev_values,
            new_state: trace.state_bits_at(cycle, num_dffs),
            next_state: trace.state_bits_at(cycle + 1, num_dffs),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::prepare_golden;
    use crate::testenv::ObservingEnv;
    use delayavf_netlist::CircuitBuilder;
    use delayavf_sim::ConstEnvironment;
    use delayavf_timing::TechLibrary;

    /// A 4-bit accumulator with a parity check: the parity register is a
    /// "detector" — flipping accumulator bits changes outputs (visible),
    /// but the circuit has no feedback correction.
    fn fixture() -> (delayavf_netlist::Circuit, Topology, TimingModel) {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let acc = b.reg_word("acc", 4, 0);
        let next = b.in_structure("adder", |b| b.add(&acc.q(), &step));
        b.drive_word(&acc, &next);
        b.output_word("acc", &acc.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        (c, topo, timing)
    }

    #[test]
    fn zero_delay_is_never_delay_ace() {
        let (c, topo, timing) = fixture();
        let env = ConstEnvironment::new(vec![3]);
        let golden = prepare_golden(&c, &topo, &env, 16, 6);
        let mut inj = Injector::new(&c, &topo, &timing, &golden, 100);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        for &cycle in &golden.sampled_cycles {
            if cycle + 1 >= golden.trace.num_cycles() {
                continue;
            }
            for &e in &edges {
                let out = inj.inject(cycle, e, 0);
                assert!(!out.visible, "no fault, no failure");
                assert!(out.dynamic_set.is_empty());
            }
        }
        assert!(inj.stats.static_filtered > 0);
    }

    #[test]
    fn huge_delay_on_critical_edge_is_delay_ace() {
        // The observing environment logs the accumulator outputs, so a
        // corrupted accumulator produces a program-visible failure.
        let (c, topo, timing) = fixture();
        let env = ObservingEnv::new(3, 14);
        let golden = prepare_golden(&c, &topo, &env, 100, 6);
        let mut inj = Injector::new(&c, &topo, &timing, &golden, 20);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        let clock = timing.clock_period();
        let mut any_visible = false;
        for &cycle in &golden.sampled_cycles {
            // Errors in the final cycles are never observed by the
            // environment (nothing reads the last outputs), so only assert
            // strictly-interior cycles.
            if cycle + 2 >= golden.trace.num_cycles() {
                continue;
            }
            for &e in &edges {
                let out = inj.inject(cycle, e, clock);
                if !out.dynamic_set.is_empty() {
                    // An accumulator never forgets a corrupted bit.
                    assert!(out.visible);
                    any_visible = true;
                }
            }
        }
        assert!(any_visible, "some injection corrupts the accumulator");
        assert!(inj.stats.event_sims > 0);
    }

    #[test]
    fn group_ace_of_empty_set_is_false() {
        let (c, topo, timing) = fixture();
        let env = ConstEnvironment::new(vec![1]);
        let golden = prepare_golden(&c, &topo, &env, 12, 4);
        let mut inj = Injector::new(&c, &topo, &timing, &golden, 50);
        assert!(!inj.group_ace(2, &[]));
    }

    #[test]
    fn bit_flips_in_an_accumulator_are_ace() {
        let (c, topo, timing) = fixture();
        let env = ObservingEnv::new(1, 10);
        let golden = prepare_golden(&c, &topo, &env, 100, 4);
        let mut inj = Injector::new(&c, &topo, &timing, &golden, 50);
        let cycle = golden.sampled_cycles[1];
        for (d, _) in c.dffs() {
            assert!(inj.bit_ace(cycle, d), "accumulator bit {d} is ACE");
        }
        // Cache works: same query again costs no replay.
        let replays = inj.stats.replays;
        let _ = inj.bit_ace(cycle, c.dffs().next().unwrap().0);
        assert_eq!(inj.stats.replays, replays);
        assert!(inj.stats.replay_cache_hits > 0);
    }

    #[test]
    fn ace_interference_can_cancel() {
        // A circuit whose output is the XOR of two registers: flipping both
        // registers at once leaves the XOR unchanged (interference), while
        // each individual flip is visible.
        let mut b = CircuitBuilder::new();
        let inp = b.input("in");
        let r1 = b.reg("r1", false);
        let r2 = b.reg("r2", false);
        b.drive(r1, inp);
        let r1q = r1.q();
        b.drive(r2, r1q);
        let x = b.xor(r1.q(), r2.q());
        b.output("x", x);
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let env = ConstEnvironment::new(vec![1]);
        let golden = prepare_golden(&c, &topo, &env, 10, 4);
        let mut inj = Injector::new(&c, &topo, &timing, &golden, 6);
        let cycle = golden.sampled_cycles[1];
        let dffs: Vec<DffId> = c.dffs().map(|(d, _)| d).collect();
        // Individually both flips die out after propagating through the
        // 2-deep pipeline... but they do change the XOR output transiently.
        // The ConstEnvironment has no program output, so visibility is
        // decided purely by state reconvergence — single flips reconverge
        // (the pipeline flushes), and the pair reconverges too. What cannot
        // be masked is a flip in a loop-free pipeline: verify reconvergence.
        assert!(!inj.group_ace(cycle, &dffs), "pipeline flushes both errors");
        assert!(
            !inj.bit_ace(cycle, dffs[0]),
            "pipeline flushes single error"
        );
    }
}
