//! Result records produced by the campaigns.

use std::fmt;

/// ORACE approximation statistics for one delay duration (Table III
/// ingredients).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OraceStats {
    /// Injections whose dynamic set is ORACE (≥1 individually-ACE member).
    pub or_hits: usize,
    /// ACE interference events: the set is ORACE but **not** GroupACE
    /// (individually-ACE errors cancel at the group level).
    pub interference: usize,
    /// ACE compounding events: the set is GroupACE but **not** ORACE
    /// (no member is individually ACE, together they fail).
    pub compounding: usize,
}

impl OraceStats {
    /// Adds another shard's counters into this one (the sharded campaign
    /// engine's deterministic merge — pure integer addition).
    pub fn merge(&mut self, other: &OraceStats) {
        self.or_hits += other.or_hits;
        self.interference += other.interference;
        self.compounding += other.compounding;
    }
}

/// The stratified estimate an adaptive-sampling sweep attaches to its
/// result row: the Neyman-weighted DelayAVF point with its composed
/// per-stratum Wilson interval, plus the sampling spend that produced it.
/// `None` on the uniform (exhaustive-over-the-sample) path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveEstimate {
    /// Stratum-weighted point estimate (Σ W_h · p̂_h).
    pub point: f64,
    /// Lower end of the composed 95% interval.
    pub lo: f64,
    /// Upper end of the composed 95% interval.
    pub hi: f64,
    /// Total injection sites in the stratified population.
    pub population: usize,
    /// Sites actually simulated before every stratum retired.
    pub sampled: usize,
}

impl AdaptiveEstimate {
    /// Achieved half-width of the composed interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// One row of a DelayAVF sweep: all counters for a (structure, benchmark,
/// delay duration) cell.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DelayAvfResult {
    /// The delay duration as a fraction of the clock period (the paper's
    /// *d*).
    pub delay_fraction: f64,
    /// Total (edge, cycle) injections evaluated.
    pub injections: usize,
    /// Injections with ≥1 statically reachable state element ("Static
    /// Reach" in Fig. 8).
    pub static_hits: usize,
    /// Injections with ≥1 state-element error ("Dynamic Reach" in Fig. 8).
    pub dynamic_hits: usize,
    /// Injections that are DelayACE ("GroupACE" in Fig. 8; the DelayAVF
    /// numerator; always `sdc_hits + due_hits`).
    pub delay_ace_hits: usize,
    /// DelayACE injections classified as silent data corruption.
    pub sdc_hits: usize,
    /// DelayACE injections classified as detected unrecoverable errors
    /// (crash, trap or hang).
    pub due_hits: usize,
    /// Injections whose dynamic set holds ≥2 simultaneous errors.
    pub multi_bit_hits: usize,
    /// ORACE statistics, when the campaign computed them.
    pub orace: Option<OraceStats>,
    /// The stratified estimate, when the adaptive sampler produced this
    /// row. Attached once, after the shard merge — shard-local rows carry
    /// `None`.
    pub adaptive: Option<AdaptiveEstimate>,
}

impl DelayAvfResult {
    /// Adds another shard's counters into this one. Both rows must describe
    /// the same delay fraction and agree on whether ORACE was computed —
    /// the sharded campaign engine guarantees both by construction.
    pub fn merge(&mut self, other: &DelayAvfResult) {
        debug_assert_eq!(self.delay_fraction, other.delay_fraction);
        self.injections += other.injections;
        self.static_hits += other.static_hits;
        self.dynamic_hits += other.dynamic_hits;
        self.delay_ace_hits += other.delay_ace_hits;
        self.sdc_hits += other.sdc_hits;
        self.due_hits += other.due_hits;
        self.multi_bit_hits += other.multi_bit_hits;
        match (&mut self.orace, &other.orace) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, None) => {}
            _ => panic!("cannot merge DelayAvfResult rows with mismatched ORACE presence"),
        }
        debug_assert!(
            self.adaptive.is_none() && other.adaptive.is_none(),
            "adaptive estimates are attached after the shard merge"
        );
    }

    /// DelayAVF (Equation 3): DelayACE hits over injections.
    pub fn delay_avf(&self) -> f64 {
        ratio(self.delay_ace_hits, self.injections)
    }

    /// 95% Wilson confidence interval for the sampled DelayAVF.
    pub fn delay_avf_interval(&self) -> (f64, f64) {
        crate::report::wilson_interval(self.delay_ace_hits, self.injections)
    }

    /// Fraction of injections with at least one statically reachable state
    /// element.
    pub fn static_fraction(&self) -> f64 {
        ratio(self.static_hits, self.injections)
    }

    /// Fraction of injections with at least one state-element error.
    pub fn dynamic_fraction(&self) -> f64 {
        ratio(self.dynamic_hits, self.injections)
    }

    /// Fraction of error-producing injections whose error is multi-bit.
    pub fn multi_bit_fraction(&self) -> f64 {
        ratio(self.multi_bit_hits, self.dynamic_hits)
    }

    /// OrDelayAVF (Definition 6): the ORACE-based approximation of
    /// DelayAVF. `None` when ORACE was not computed.
    pub fn or_delay_avf(&self) -> Option<f64> {
        self.orace.map(|o| ratio(o.or_hits, self.injections))
    }

    /// Relative change between DelayAVF and OrDelayAVF (Table III's last
    /// columns), in percent.
    pub fn or_relative_change_pct(&self) -> Option<f64> {
        let or = self.or_delay_avf()?;
        let davf = self.delay_avf();
        if davf == 0.0 {
            return Some(if or == 0.0 { 0.0 } else { 100.0 });
        }
        Some(100.0 * (or - davf).abs() / davf)
    }

    /// ACE interference rate as a percentage of dynamically reachable sets.
    pub fn interference_pct(&self) -> Option<f64> {
        self.orace
            .map(|o| 100.0 * ratio(o.interference, self.dynamic_hits))
    }

    /// ACE compounding rate as a percentage of dynamically reachable sets.
    pub fn compounding_pct(&self) -> Option<f64> {
        self.orace
            .map(|o| 100.0 * ratio(o.compounding, self.dynamic_hits))
    }
}

impl fmt::Display for DelayAvfResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d={:.0}%: DelayAVF={:.4} (static {:.2}, dynamic {:.3}, {} injections)",
            100.0 * self.delay_fraction,
            self.delay_avf(),
            self.static_fraction(),
            self.dynamic_fraction(),
            self.injections
        )
    }
}

/// Result of a particle-strike (sAVF) campaign over a structure's bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SavfResult {
    /// Total (bit, cycle) strikes evaluated.
    pub injections: usize,
    /// Strikes that were ACE (program-visible).
    pub ace_hits: usize,
}

impl SavfResult {
    /// Adds another shard's counters into this one.
    pub fn merge(&mut self, other: &SavfResult) {
        self.injections += other.injections;
        self.ace_hits += other.ace_hits;
    }

    /// The structure's particle-strike AVF (Equation 1 over the sampled
    /// cycles).
    pub fn savf(&self) -> f64 {
        ratio(self.ace_hits, self.injections)
    }

    /// 95% Wilson confidence interval for the sampled sAVF.
    pub fn savf_interval(&self) -> (f64, f64) {
        crate::report::wilson_interval(self.ace_hits, self.injections)
    }
}

impl fmt::Display for SavfResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sAVF={:.4} ({}/{} strikes)",
            self.savf(),
            self.ace_hits,
            self.injections
        )
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_against_empty_denominators() {
        let r = DelayAvfResult::default();
        assert_eq!(r.delay_avf(), 0.0);
        assert_eq!(r.multi_bit_fraction(), 0.0);
        assert_eq!(SavfResult::default().savf(), 0.0);
    }

    #[test]
    fn orace_derivations() {
        let r = DelayAvfResult {
            delay_fraction: 0.9,
            injections: 100,
            static_hits: 80,
            dynamic_hits: 40,
            delay_ace_hits: 20,
            sdc_hits: 15,
            due_hits: 5,
            multi_bit_hits: 10,
            orace: Some(OraceStats {
                or_hits: 25,
                interference: 8,
                compounding: 3,
            }),
            adaptive: None,
        };
        assert!((r.delay_avf() - 0.2).abs() < 1e-12);
        assert!((r.or_delay_avf().unwrap() - 0.25).abs() < 1e-12);
        assert!((r.or_relative_change_pct().unwrap() - 25.0).abs() < 1e-9);
        assert!((r.interference_pct().unwrap() - 20.0).abs() < 1e-9);
        assert!((r.compounding_pct().unwrap() - 7.5).abs() < 1e-9);
        assert!((r.multi_bit_fraction() - 0.25).abs() < 1e-12);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn intervals_bracket_the_point_estimate() {
        let r = DelayAvfResult {
            injections: 200,
            delay_ace_hits: 10,
            ..DelayAvfResult::default()
        };
        let (lo, hi) = r.delay_avf_interval();
        assert!(lo < r.delay_avf() && r.delay_avf() < hi);
        let s = SavfResult {
            injections: 200,
            ace_hits: 100,
        };
        let (lo, hi) = s.savf_interval();
        assert!(lo < 0.5 && 0.5 < hi);
    }

    #[test]
    fn merge_is_plain_counter_addition() {
        let mut a = DelayAvfResult {
            delay_fraction: 0.5,
            injections: 10,
            static_hits: 8,
            dynamic_hits: 6,
            delay_ace_hits: 4,
            sdc_hits: 3,
            due_hits: 1,
            multi_bit_hits: 2,
            orace: Some(OraceStats {
                or_hits: 5,
                interference: 1,
                compounding: 0,
            }),
            adaptive: None,
        };
        let b = DelayAvfResult {
            delay_fraction: 0.5,
            injections: 7,
            static_hits: 5,
            dynamic_hits: 4,
            delay_ace_hits: 2,
            sdc_hits: 1,
            due_hits: 1,
            multi_bit_hits: 1,
            orace: Some(OraceStats {
                or_hits: 2,
                interference: 0,
                compounding: 1,
            }),
            adaptive: None,
        };
        a.merge(&b);
        assert_eq!(a.injections, 17);
        assert_eq!(a.static_hits, 13);
        assert_eq!(a.dynamic_hits, 10);
        assert_eq!(a.delay_ace_hits, 6);
        assert_eq!(a.sdc_hits, 4);
        assert_eq!(a.due_hits, 2);
        assert_eq!(a.multi_bit_hits, 3);
        assert_eq!(
            a.orace.unwrap(),
            OraceStats {
                or_hits: 7,
                interference: 1,
                compounding: 1
            }
        );

        let mut s = SavfResult {
            injections: 4,
            ace_hits: 2,
        };
        s.merge(&SavfResult {
            injections: 3,
            ace_hits: 3,
        });
        assert_eq!(
            s,
            SavfResult {
                injections: 7,
                ace_hits: 5
            }
        );
    }

    #[test]
    #[should_panic(expected = "mismatched ORACE presence")]
    fn merge_rejects_mismatched_orace() {
        let mut a = DelayAvfResult {
            orace: Some(OraceStats::default()),
            ..DelayAvfResult::default()
        };
        a.merge(&DelayAvfResult::default());
    }

    #[test]
    fn zero_davf_relative_change() {
        let mut r = DelayAvfResult {
            injections: 10,
            orace: Some(OraceStats::default()),
            ..DelayAvfResult::default()
        };
        assert_eq!(r.or_relative_change_pct(), Some(0.0));
        r.orace = Some(OraceStats {
            or_hits: 1,
            ..OraceStats::default()
        });
        assert_eq!(r.or_relative_change_pct(), Some(100.0));
    }
}
