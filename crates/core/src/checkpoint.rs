//! Crash-safe campaign checkpoints: periodic atomic snapshots of completed
//! work units, resumable into byte-identical reports.
//!
//! # Model
//!
//! Every campaign's sharded axis (trace cycles, or bits for the per-bit
//! campaign) doubles as its **work-unit** axis, and the engine is
//! structured so each unit's contribution — result-row deltas, engine
//! counter deltas, failure-cache entries, records — is independent of
//! which other units ran and in what partition (see the campaign module
//! docs). A checkpoint is therefore just the set of completed units with
//! their serialized contributions: resuming replays the stored
//! contributions for completed units and computes the rest, and the merged
//! report is bit-for-bit the uninterrupted run's under any `threads ×
//! lanes × delta_timing` combination.
//!
//! # File format
//!
//! A plain-text, line-oriented format (the workspace is offline; no serde):
//!
//! ```text
//! delayavf-checkpoint v2 <kind>
//! fingerprint <hex16>
//! knobs <hex16>
//! unit <key> <payload tokens...>
//! ...
//! ```
//!
//! `kind` names the campaign flavor, `fingerprint` pins everything that
//! determines the results (netlist + timing digest, golden trace, item
//! list, fractions, DUE slack), and `knobs` pins the engine knobs that
//! shape the *counters* without changing results (`lanes`, `incremental`,
//! `delta_timing` — but **not** `threads`, which the stats are invariant
//! to). Resuming against a file whose kind, fingerprint or knob hash
//! differs fails with a pinned `checkpoint mismatch` error instead of
//! silently merging foreign tallies.
//!
//! # Atomicity
//!
//! Flushes rewrite the whole file through a sibling temp file followed by
//! [`std::fs::rename`] — on every mainstream platform a rename within one
//! directory is atomic, so a crash leaves either the previous complete
//! snapshot or the new one, never a torn file.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Checkpoint file format version; bumped on any layout change. A version
/// mismatch on resume is rejected like any other stale checkpoint.
pub const CHECKPOINT_FORMAT_VERSION: u64 = 2;

const MAGIC: &str = "delayavf-checkpoint";

/// Where and how often a campaign should checkpoint, and whether to resume
/// from an existing file. Carried by [`crate::RunContext`].
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// Checkpoint file path (one file per campaign invocation).
    pub path: PathBuf,
    /// Flush after this many newly completed units (clamped to ≥ 1). Every
    /// campaign also flushes once at the end regardless.
    pub every: usize,
    /// Load completed units from `path` before running. A missing file is
    /// a fresh start, not an error (so `--resume` is safe to pass
    /// unconditionally); an *incompatible* file is a hard
    /// `checkpoint mismatch` error.
    pub resume: bool,
}

impl CheckpointSpec {
    /// A spec flushing every `every` completed units.
    pub fn new(path: impl Into<PathBuf>, every: usize, resume: bool) -> Self {
        CheckpointSpec {
            path: path.into(),
            every,
            resume,
        }
    }
}

/// Incremental FNV-1a (64-bit) — the workspace-standard tiny hasher for
/// content fingerprints (not collision-resistant against adversaries, more
/// than strong enough to catch config/netlist/trace drift).
#[derive(Clone, Debug)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }
}

impl Fingerprint {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint::default()
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs one little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs one `usize` (as `u64`, platform-independently).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs one `f64` by exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// The accumulated 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The persistent side of one checkpointed campaign: the validated header
/// plus every completed unit's serialized payload, keyed by its position
/// on the campaign's unit axis.
#[derive(Debug)]
pub(crate) struct CheckpointStore {
    path: PathBuf,
    header: String,
    units: BTreeMap<u64, String>,
    every: usize,
    fresh: usize,
}

impl CheckpointStore {
    /// Opens (or initializes) the store for a campaign of the given `kind`
    /// whose inputs hash to `fingerprint` and whose counter-shaping knobs
    /// hash to `knobs`.
    ///
    /// With `spec.resume` set and `spec.path` present, the file is parsed
    /// and validated; its units become the resumed set. Any header
    /// disagreement is a `checkpoint mismatch` error. Without `resume`, an
    /// existing file is simply overwritten at the first flush.
    pub(crate) fn open(
        spec: &CheckpointSpec,
        kind: &str,
        fingerprint: u64,
        knobs: u64,
    ) -> Result<CheckpointStore, String> {
        debug_assert!(!kind.contains(char::is_whitespace));
        let header = format!(
            "{MAGIC} v{CHECKPOINT_FORMAT_VERSION} {kind}\nfingerprint {fingerprint:016x}\nknobs {knobs:016x}\n"
        );
        let mut store = CheckpointStore {
            path: spec.path.clone(),
            header,
            units: BTreeMap::new(),
            every: spec.every.max(1),
            fresh: 0,
        };
        if spec.resume && spec.path.exists() {
            let text = fs::read_to_string(&spec.path)
                .map_err(|e| format!("cannot read checkpoint {}: {e}", spec.path.display()))?;
            store.units = parse_checkpoint(&text, &spec.path, kind, fingerprint, knobs)?;
        }
        Ok(store)
    }

    /// The units restored from a resumed file (empty on a fresh run).
    pub(crate) fn resumed_units(&self) -> &BTreeMap<u64, String> {
        &self.units
    }

    /// Records one newly completed unit; flushes atomically once `every`
    /// fresh units have accumulated. Returns whether a flush happened (so
    /// the caller can emit a telemetry marker).
    pub(crate) fn record(&mut self, key: u64, payload: String) -> Result<bool, String> {
        debug_assert!(!payload.contains('\n'));
        self.units.insert(key, payload);
        self.fresh += 1;
        if self.fresh >= self.every {
            self.flush()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Completed units currently recorded (resumed + fresh).
    pub(crate) fn completed(&self) -> usize {
        self.units.len()
    }

    /// Atomically rewrites the checkpoint file with every recorded unit.
    pub(crate) fn flush(&mut self) -> Result<(), String> {
        self.fresh = 0;
        let mut text = String::with_capacity(self.header.len() + self.units.len() * 64);
        text.push_str(&self.header);
        for (key, payload) in &self.units {
            text.push_str("unit ");
            text.push_str(&key.to_string());
            if !payload.is_empty() {
                text.push(' ');
                text.push_str(payload);
            }
            text.push('\n');
        }
        let tmp = sibling_tmp(&self.path);
        let write = |p: &Path| -> std::io::Result<()> {
            let mut f = fs::File::create(p)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()
        };
        write(&tmp).map_err(|e| format!("cannot write checkpoint {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &self.path)
            .map_err(|e| format!("cannot publish checkpoint {}: {e}", self.path.display()))
    }
}

fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Parses and validates a checkpoint file against the resuming campaign's
/// identity. Every rejection message contains the pinned phrase
/// `checkpoint mismatch` (for incompatible-but-well-formed files) or
/// `checkpoint parse error` (for torn/corrupt ones).
fn parse_checkpoint(
    text: &str,
    path: &Path,
    kind: &str,
    fingerprint: u64,
    knobs: u64,
) -> Result<BTreeMap<u64, String>, String> {
    let shown = path.display();
    let mut lines = text.lines();
    let magic = lines
        .next()
        .ok_or_else(|| format!("checkpoint parse error in {shown}: empty file"))?;
    let mut head = magic.split_whitespace();
    if head.next() != Some(MAGIC) {
        return Err(format!(
            "checkpoint parse error in {shown}: not a checkpoint file"
        ));
    }
    let version = head.next().unwrap_or("");
    let expect_version = format!("v{CHECKPOINT_FORMAT_VERSION}");
    if version != expect_version {
        return Err(format!(
            "checkpoint mismatch in {shown}: format version {version} != {expect_version}"
        ));
    }
    let stored_kind = head.next().unwrap_or("");
    if stored_kind != kind {
        return Err(format!(
            "checkpoint mismatch in {shown}: campaign kind `{stored_kind}` != `{kind}`"
        ));
    }
    let mut expect_hex = |label: &str, want: u64, what: &str| -> Result<(), String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("checkpoint parse error in {shown}: missing {label} line"))?;
        let mut toks = line.split_whitespace();
        if toks.next() != Some(label) {
            return Err(format!(
                "checkpoint parse error in {shown}: expected {label} line, found `{line}`"
            ));
        }
        let hex = toks.next().unwrap_or("");
        let got = u64::from_str_radix(hex, 16)
            .map_err(|e| format!("checkpoint parse error in {shown}: bad {label} `{hex}`: {e}"))?;
        if got != want {
            return Err(format!(
                "checkpoint mismatch in {shown}: {what} {got:016x} != {want:016x} — the checkpoint \
                 was written by a campaign with different {what}; delete the file or rerun without --resume"
            ));
        }
        Ok(())
    };
    expect_hex("fingerprint", fingerprint, "config/netlist fingerprint")?;
    expect_hex("knobs", knobs, "engine knobs")?;
    let mut units = BTreeMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let rest = line.strip_prefix("unit ").ok_or_else(|| {
            format!("checkpoint parse error in {shown}: unexpected line `{line}`")
        })?;
        let (key_tok, payload) = match rest.split_once(' ') {
            Some((k, p)) => (k, p),
            None => (rest, ""),
        };
        let key: u64 = key_tok.parse().map_err(|e| {
            format!("checkpoint parse error in {shown}: bad unit key `{key_tok}`: {e}")
        })?;
        units.insert(key, payload.to_owned());
    }
    Ok(units)
}

/// A whitespace-token cursor over one unit payload, with contextual error
/// messages (shared by the campaign decoders).
pub(crate) struct Tokens<'a> {
    it: std::str::SplitWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    pub(crate) fn new(payload: &'a str) -> Self {
        Tokens {
            it: payload.split_whitespace(),
        }
    }

    pub(crate) fn next_str(&mut self, what: &str) -> Result<&'a str, String> {
        self.it
            .next()
            .ok_or_else(|| format!("checkpoint parse error: missing {what}"))
    }

    pub(crate) fn next_u64(&mut self, what: &str) -> Result<u64, String> {
        let tok = self.next_str(what)?;
        tok.parse()
            .map_err(|e| format!("checkpoint parse error: bad {what} `{tok}`: {e}"))
    }

    pub(crate) fn next_usize(&mut self, what: &str) -> Result<usize, String> {
        Ok(self.next_u64(what)? as usize)
    }

    /// Asserts the next token equals `tag` (payload section marker).
    pub(crate) fn expect(&mut self, tag: &str) -> Result<(), String> {
        let tok = self.next_str(tag)?;
        if tok != tag {
            return Err(format!(
                "checkpoint parse error: expected `{tag}`, found `{tok}`"
            ));
        }
        Ok(())
    }

    /// Peeks whether any token remains.
    pub(crate) fn finished(&mut self) -> bool {
        self.it.clone().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "delayavf-ckpt-unit-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_units_through_the_file() {
        let dir = tmpdir();
        let spec = CheckpointSpec::new(dir.join("a.ckpt"), 2, false);
        let mut store = CheckpointStore::open(&spec, "delay_sweep", 0xabc, 0xdef).unwrap();
        assert!(!store.record(3, "x 1 2".into()).unwrap());
        assert!(store.record(1, "y 9".into()).unwrap(), "every=2 flushes");
        store.record(2, String::new()).unwrap();
        store.flush().unwrap();

        let resume = CheckpointSpec::new(dir.join("a.ckpt"), 2, true);
        let loaded = CheckpointStore::open(&resume, "delay_sweep", 0xabc, 0xdef).unwrap();
        let units: Vec<(u64, String)> = loaded
            .resumed_units()
            .iter()
            .map(|(&k, v)| (k, v.clone()))
            .collect();
        assert_eq!(
            units,
            vec![(1, "y 9".into()), (2, String::new()), (3, "x 1 2".into())]
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn mismatches_are_rejected_with_the_pinned_phrase() {
        let dir = tmpdir();
        let spec = CheckpointSpec::new(dir.join("b.ckpt"), 1, false);
        let mut store = CheckpointStore::open(&spec, "savf", 7, 9).unwrap();
        store.record(5, "1 1".into()).unwrap();

        let resume = CheckpointSpec::new(dir.join("b.ckpt"), 1, true);
        for (kind, fp, knobs, what) in [
            ("delay_sweep", 7, 9, "kind"),
            ("savf", 8, 9, "fingerprint"),
            ("savf", 7, 10, "knobs"),
        ] {
            let err = CheckpointStore::open(&resume, kind, fp, knobs).unwrap_err();
            assert!(
                err.contains("checkpoint mismatch"),
                "{what}: pinned phrase missing from `{err}`"
            );
        }
        // The matching identity still loads.
        assert!(CheckpointStore::open(&resume, "savf", 7, 9).is_ok());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_files_are_parse_errors_not_silent_fresh_starts() {
        let dir = tmpdir();
        let path = dir.join("c.ckpt");
        for garbage in [
            "",
            "not a checkpoint\n",
            "delayavf-checkpoint v999 savf\nfingerprint 0\nknobs 0\n",
            "delayavf-checkpoint v2 savf\nfingerprint zz\nknobs 0\n",
            "delayavf-checkpoint v2 savf\nfingerprint 0000000000000007\nknobs 0000000000000009\nwat\n",
        ] {
            fs::write(&path, garbage).unwrap();
            let resume = CheckpointSpec::new(&path, 1, true);
            let err = CheckpointStore::open(&resume, "savf", 7, 9).unwrap_err();
            assert!(
                err.contains("checkpoint parse error") || err.contains("checkpoint mismatch"),
                "unexpected error for {garbage:?}: {err}"
            );
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_file_resumes_as_fresh_start() {
        let dir = tmpdir();
        let resume = CheckpointSpec::new(dir.join("absent.ckpt"), 4, true);
        let store = CheckpointStore::open(&resume, "savf", 1, 2).unwrap();
        assert!(store.resumed_units().is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fingerprint::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.write_f64(0.5);
        c.write_bool(true);
        let mut d = Fingerprint::new();
        d.write_f64(0.5);
        d.write_bool(false);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn tokens_cursor_reports_contextual_errors() {
        let mut t = Tokens::new("fc 3 7");
        t.expect("fc").unwrap();
        assert_eq!(t.next_u64("boundary").unwrap(), 3);
        assert_eq!(t.next_usize("count").unwrap(), 7);
        assert!(t.finished());
        assert!(t.next_str("more").unwrap_err().contains("missing more"));
        let mut bad = Tokens::new("xy");
        assert!(bad.expect("fc").unwrap_err().contains("expected `fc`"));
    }
}
