//! Plain-text rendering helpers for the experiment harness.

/// Renders a simple aligned table.
///
/// # Panics
///
/// Panics if a row has a different arity than the header.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity matches header");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_owned()
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Formats one fraction row as a percentage with two decimals.
pub fn format_fraction_row(value: f64) -> String {
    format!("{:.2}%", 100.0 * value)
}

/// A data series normalized to its maximum, as the paper normalizes its
/// DelayAVF figures "to facilitate comparison between structures".
#[derive(Clone, Debug, PartialEq)]
pub struct NormalizedSeries {
    /// Series label (structure or benchmark name).
    pub label: String,
    /// Raw values in sweep order.
    pub raw: Vec<f64>,
}

impl NormalizedSeries {
    /// Creates a series.
    pub fn new(label: impl Into<String>, raw: Vec<f64>) -> Self {
        NormalizedSeries {
            label: label.into(),
            raw,
        }
    }

    /// The values normalized by `max` (usually the maximum across all
    /// series of a figure). A zero `max` yields zeros.
    pub fn normalized_by(&self, max: f64) -> Vec<f64> {
        if max <= 0.0 {
            return vec![0.0; self.raw.len()];
        }
        self.raw.iter().map(|v| v / max).collect()
    }

    /// The maximum raw value of several series (the figure-wide
    /// normalization constant).
    pub fn global_max(series: &[NormalizedSeries]) -> f64 {
        series
            .iter()
            .flat_map(|s| s.raw.iter().copied())
            .fold(0.0f64, f64::max)
    }
}

/// Geometric mean over values, flooring zeros at a tiny epsilon (the paper
/// reports geometric means across benchmarks).
pub fn geometric_mean(values: &[f64]) -> f64 {
    geometric_mean_floored(values, 1e-9)
}

/// Geometric mean with an explicit floor.
///
/// For *sampled rates*, pass the sampling resolution (e.g. half a hit,
/// `0.5 / injections`): cells where no failure was observed then contribute
/// "below resolution" instead of collapsing the product toward zero.
pub fn geometric_mean_floored(values: &[f64], floor: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let floor = floor.max(f64::MIN_POSITIVE);
    let log_sum: f64 = values.iter().map(|&v| v.max(floor).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// 95% Wilson score interval for a sampled proportion (`hits` out of
/// `trials`). Statistical fault injection reports should carry these bounds:
/// a DelayAVF of 0.002 measured over 500 injections is compatible with
/// anything from ~0.0004 to ~0.01.
pub fn wilson_interval(hits: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_985; // 97.5th percentile of the normal distribution
    let n = trials as f64;
    let p = hits as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    // At the extremes the score bound is analytically exact (0 hits cannot
    // raise the lower bound, all hits cannot lower the upper one), but
    // `center - margin` evaluates to ±ε in floating point; pin the edge.
    let lo = if hits == 0 {
        0.0
    } else {
        (center - margin).max(0.0)
    };
    let hi = if hits >= trials {
        1.0
    } else {
        (center + margin).min(1.0)
    };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["alu".into(), "3668".into()],
                vec!["decoder".into(), "1007".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alu"));
        assert!(lines[3].starts_with("decoder"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn normalization() {
        let s1 = NormalizedSeries::new("a", vec![0.1, 0.4]);
        let s2 = NormalizedSeries::new("b", vec![0.2, 0.8]);
        let max = NormalizedSeries::global_max(&[s1.clone(), s2.clone()]);
        assert_eq!(max, 0.8);
        assert_eq!(s1.normalized_by(max), vec![0.125, 0.5]);
        assert_eq!(s2.normalized_by(0.0), vec![0.0, 0.0]);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-9);
        // Zeros are floored, not fatal.
        assert!(geometric_mean(&[0.0, 1.0]) > 0.0);
    }

    #[test]
    fn fraction_formatting() {
        assert_eq!(format_fraction_row(0.1234), "12.34%");
    }

    #[test]
    fn wilson_interval_behaves() {
        let (lo, hi) = wilson_interval(0, 0);
        assert_eq!((lo, hi), (0.0, 1.0), "no data, no knowledge");
        let (lo, hi) = wilson_interval(0, 100);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05, "zero hits still bounds above 0");
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.21, "narrow at n=100");
        // More data, tighter interval.
        let (lo2, hi2) = wilson_interval(500, 1000);
        assert!(hi2 - lo2 < hi - lo);
        // Interval is contained in [0, 1].
        let (lo, hi) = wilson_interval(100, 100);
        assert!(lo > 0.9 && hi > 0.9999);
    }

    #[test]
    fn wilson_interval_boundary_inputs() {
        // Zero trials: the interval is the whole unit interval, exactly.
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));

        // A single trial barely constrains the proportion. The closed forms
        // fall out of the score equation at p ∈ {0, 1}, n = 1:
        // the far bound is z²/(1+z²), the near bound is pinned to the edge.
        let z2 = 1.959_963_985f64 * 1.959_963_985;
        let (lo, hi) = wilson_interval(0, 1);
        assert_eq!(lo, 0.0, "a single miss cannot raise the lower bound");
        assert!(
            (hi - z2 / (1.0 + z2)).abs() < 1e-12,
            "hi = z²/(1+z²), got {hi}"
        );
        let (lo, hi) = wilson_interval(1, 1);
        assert!(
            (lo - 1.0 / (1.0 + z2)).abs() < 1e-12,
            "lo = 1/(1+z²), got {lo}"
        );
        assert_eq!(hi, 1.0, "a single hit cannot lower the upper bound");

        // All-unACE (zero hits): the lower bound stays exactly 0 and the
        // upper bound shrinks monotonically with more evidence.
        let mut prev_hi = 1.0;
        for trials in [1usize, 10, 100, 1000, 100_000] {
            let (lo, hi) = wilson_interval(0, trials);
            assert_eq!(lo, 0.0, "all-unACE lower bound at n={trials}");
            assert!(hi < prev_hi, "upper bound tightens at n={trials}");
            assert!(hi > 0.0, "but never reaches certainty");
            prev_hi = hi;
        }

        // All-ACE (hits == trials) is the mirror image: upper bound exactly
        // 1, lower bound growing toward it.
        let mut prev_lo = 0.0;
        for trials in [1usize, 10, 100, 1000, 100_000] {
            let (lo, hi) = wilson_interval(trials, trials);
            assert_eq!(hi, 1.0, "all-ACE upper bound at n={trials}");
            assert!(lo > prev_lo, "lower bound tightens at n={trials}");
            assert!(lo < 1.0, "but never reaches certainty");
            prev_lo = lo;
        }

        // The two extremes are exact mirrors: (hits, trials) reflects to
        // (trials - hits, trials) with the bounds swapped around 1/2.
        for &(hits, trials) in &[(0usize, 7usize), (3, 7), (7, 7), (1, 1), (0, 1)] {
            let (lo, hi) = wilson_interval(hits, trials);
            let (mlo, mhi) = wilson_interval(trials - hits, trials);
            assert!(
                (lo - (1.0 - mhi)).abs() < 1e-12,
                "mirror lo, {hits}/{trials}"
            );
            assert!(
                (hi - (1.0 - mlo)).abs() < 1e-12,
                "mirror hi, {hits}/{trials}"
            );
        }
    }
}
