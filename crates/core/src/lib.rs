//! **DelayAVF** — architectural vulnerability factors for small delay
//! faults. This crate is the reproduction of the paper's primary
//! contribution (MICRO 2024).
//!
//! A *small delay fault* (SDF) adds a sub-cycle delay `d` to one wire for a
//! single cycle. A wire (here: fanout edge) is **DelayACE** in cycle *i* if
//! such a fault produces a *program-visible failure* (Definition 1); a
//! structure's **DelayAVF** is the fraction of (edge, cycle) pairs that are
//! DelayACE (Equation 3).
//!
//! The computation follows the paper's two-step decomposition (Equation 4):
//!
//! ```text
//! DelayACE_d(e, i) = GroupACE(DynamicReachable_d(e, i), i + 1)
//! ```
//!
//! 1. **Timing-aware step** ([`Injector::dynamically_reachable`]): the
//!    statically reachable set is computed from static timing (Definition
//!    2), cheap pre-filters rule out most injections (no path long enough,
//!    or no toggling source in the fan-in cone — §V-C), and an event-driven
//!    simulation of the single faulty cycle yields the flip-flops that latch
//!    a wrong value (Definition 3).
//! 2. **Timing-agnostic step** ([`Injector::group_ace`]): the wrong values
//!    are injected at the next cycle boundary into a cycle-accurate replay
//!    from a checkpoint; the run early-exits as soon as state and
//!    environment fingerprint re-converge with the golden trace, otherwise
//!    the final program outputs are compared (SDC) or a missing halt is
//!    declared a DUE — both count as program-visible failures.
//!
//! On top of the engine, the crate provides:
//!
//! * [`delay_avf_campaign`] — full sweeps over edges, cycles and delay
//!   fractions producing [`DelayAvfResult`] rows (Figures 7–9),
//! * [`savf_campaign`] — classic single-bit particle-strike AVF on the same
//!   machinery for the sAVF comparison (Figure 10),
//! * ORACE / **OrDelayAVF** (Definitions 5–6) with ACE-interference and
//!   ACE-compounding accounting (Table III),
//! * multi-bit error statistics and per-component breakdowns (Figure 8).
//!
//! Long campaigns additionally get crash-safety and observability: the
//! [`checkpoint`] module snapshots completed work units atomically and
//! resumes them into byte-identical reports, and the [`telemetry`] module
//! streams structured JSONL progress events behind the
//! zero-cost-when-disabled [`TelemetrySink`] trait. Both are wired through
//! the `*_observed` campaign entry points via [`RunContext`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
pub mod checkpoint;
mod collapse;
pub mod fit;
mod golden;
mod injector;
pub mod razor;
mod report;
mod result;
mod sampling;
pub mod telemetry;
#[cfg(test)]
mod testenv;

pub use campaign::{
    delay_avf_campaign, delay_avf_campaign_observed, delay_avf_campaign_records,
    delay_avf_campaign_records_observed, delay_avf_campaign_with_stats, savf_campaign,
    savf_campaign_observed, savf_campaign_with_stats, savf_per_bit_campaign,
    savf_per_bit_campaign_observed, spatial_double_strike_campaign,
    spatial_double_strike_campaign_observed, valid_cycles, CampaignConfig, ReplayOptions,
    RunContext,
};
pub use checkpoint::{CheckpointSpec, CHECKPOINT_FORMAT_VERSION};
pub use collapse::{propagate_flips, CollapsePlan, DischargeStep};
pub use golden::{prepare_golden, prepare_golden_percent, prepare_golden_seeded, GoldenRun};
pub use injector::{FailureClass, InjectionOutcome, Injector, InjectorStats};
pub use report::{
    format_fraction_row, geometric_mean, geometric_mean_floored, render_table, wilson_interval,
    NormalizedSeries,
};
pub use result::{AdaptiveEstimate, DelayAvfResult, OraceStats, SavfResult};
pub use sampling::{
    bucket_axis, compose_intervals, neyman_allocation, percent_to_count, sample_edges,
    spaced_cycles, stratified_cycles, validate_ci_target, validate_strata, AdaptivePlan,
    StratifiedEstimate, DEFAULT_STRATA, MAX_STRATA,
};
pub use telemetry::{
    parse_flat_object, validate_line, JsonValue, JsonlTelemetry, NullTelemetry, PhaseTotals,
    TelemetryEvent, TelemetrySink, NULL_TELEMETRY, TELEMETRY_SCHEMA_VERSION,
};
