//! Structured campaign observability: a JSONL event stream behind a
//! zero-cost-when-disabled sink trait.
//!
//! Long campaigns (the paper's full five-structure × five-benchmark
//! evaluation is a multi-hour run) need a progress signal that can be
//! tailed, parsed and graphed without touching the deterministic report
//! path. This module provides:
//!
//! * [`TelemetrySink`] — the campaign-side abstraction. The associated
//!   `ENABLED` constant lets the sharded engine skip *all* observability
//!   work (including every `Instant::now()` call) when the sink is
//!   [`NullTelemetry`]: campaigns are generic over the sink type, so the
//!   disabled path monomorphizes to exactly the code that existed before
//!   telemetry was added.
//! * [`JsonlTelemetry`] — a line-per-event JSON emitter over any writer,
//!   with a process-monotonic `t_ms` clock (an [`Instant`] anchor, never
//!   `SystemTime`, so no wall-clock value can leak anywhere near the
//!   deterministic tallies).
//! * a minimal flat-JSON parser plus [`validate_line`], the versioned
//!   schema contract the telemetry test suite checks every emitted line
//!   against.
//!
//! Event stream shape (schema version [`TELEMETRY_SCHEMA_VERSION`]): one
//! `campaign_start` per campaign, per-shard `shard_heartbeat` (with
//! units/sec and an ETA), per-shard `phase_timers` wall-clock totals
//! (golden-settle build / timing step / GroupACE replay), periodic
//! `stats_delta` engine-counter deltas, `checkpoint_flush` markers, and a
//! final `campaign_end`.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use crate::injector::InjectorStats;

/// Version stamped into every emitted line as `"v"`; bumped whenever an
/// event gains, loses or renames a field.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 4;

/// Per-shard wall-clock totals of the three phases of a DelayAVF work
/// unit, in microseconds. Only accumulated when the sink is enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Reconstructing the golden per-cycle context (settled previous-cycle
    /// net values plus the latched state words) shared by every injection
    /// at a cycle.
    pub golden_settle_us: u64,
    /// The timing-aware step: event/delta simulation of the faulty cycle
    /// for every (edge, fraction) at the unit's cycle.
    pub timing_step_us: u64,
    /// The timing-agnostic step: batched GroupACE replays plus the
    /// cache-served classification sweep.
    pub replay_us: u64,
}

impl PhaseTotals {
    /// Adds another unit's phase totals into this accumulator.
    pub fn merge(&mut self, other: &PhaseTotals) {
        self.golden_settle_us += other.golden_settle_us;
        self.timing_step_us += other.timing_step_us;
        self.replay_us += other.replay_us;
    }
}

/// One observability event. Borrowed fields keep emission allocation-free
/// on the campaign side.
#[derive(Clone, Copy, Debug)]
pub enum TelemetryEvent<'a> {
    /// A campaign is starting: how much work it has and how it is sharded.
    CampaignStart {
        /// Campaign kind label (`delay_sweep`, `savf`, ...).
        campaign: &'a str,
        /// Total work units (cycles, or bits for the per-bit campaign).
        units: usize,
        /// Resolved worker-thread count.
        threads: usize,
        /// Units restored from a resumed checkpoint (0 on a fresh run).
        resumed_units: usize,
    },
    /// Periodic per-shard progress: always emitted for a shard's first and
    /// last unit, and at most every ~250 ms in between.
    ShardHeartbeat {
        /// Shard index (shards partition the unit axis contiguously).
        shard: usize,
        /// Units finished by this shard so far.
        done: usize,
        /// Units owned by this shard.
        total: usize,
        /// Finished units per wall-clock second (resumed units count —
        /// they are real progress through the unit axis).
        units_per_sec: f64,
        /// Estimated seconds until this shard finishes at the current
        /// rate.
        eta_s: f64,
    },
    /// A shard's accumulated per-phase wall-clock totals, emitted once
    /// when the shard finishes.
    PhaseTimers {
        /// Shard index.
        shard: usize,
        /// Phase totals in microseconds.
        phases: PhaseTotals,
    },
    /// Engine-counter delta since the previous `stats_delta` of the same
    /// shard (emitted with heartbeats, for campaigns that track stats).
    StatsDelta {
        /// Shard index.
        shard: usize,
        /// The counter delta.
        stats: InjectorStats,
    },
    /// A checkpoint file was atomically rewritten.
    CheckpointFlush {
        /// Completed units recorded in the flushed file.
        completed_units: usize,
    },
    /// A campaign finished; its report is complete.
    CampaignEnd {
        /// Campaign kind label.
        campaign: &'a str,
        /// Total work units processed (computed + resumed).
        units: usize,
        /// Wall-clock milliseconds for the whole campaign.
        wall_ms: u64,
    },
}

/// A campaign observability sink.
///
/// Implementations must be [`Sync`]: one sink instance is shared by all
/// worker threads of the sharded engine.
pub trait TelemetrySink: Sync {
    /// Whether this sink observes anything at all. Campaigns consult this
    /// *constant* to skip clock reads and event construction entirely, so
    /// a disabled sink has zero cost — not merely a cheap no-op call.
    const ENABLED: bool;

    /// Consumes one event. Implementations should never panic and should
    /// swallow I/O errors (telemetry is best-effort by design — losing an
    /// event must not kill a multi-hour campaign).
    fn emit(&self, event: &TelemetryEvent<'_>);
}

/// The disabled sink: campaigns monomorphized over it contain no
/// observability code at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTelemetry;

/// A shared static disabled sink, used by [`crate::RunContext::disabled`].
pub static NULL_TELEMETRY: NullTelemetry = NullTelemetry;

impl TelemetrySink for NullTelemetry {
    const ENABLED: bool = false;

    #[inline]
    fn emit(&self, _event: &TelemetryEvent<'_>) {}
}

/// A JSONL emitter: one flat JSON object per line on the wrapped writer.
///
/// Timestamps (`t_ms`) are milliseconds since the sink was created,
/// measured with the monotonic [`Instant`] clock — wall-clock time never
/// enters the event stream, and nothing read from this clock flows into
/// campaign tallies.
pub struct JsonlTelemetry<W: Write + Send> {
    started: Instant,
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlTelemetry<W> {
    /// Creates a sink writing to `out`; the `t_ms` clock starts now.
    pub fn new(out: W) -> Self {
        JsonlTelemetry {
            started: Instant::now(),
            out: Mutex::new(out),
        }
    }

    /// Unwraps the inner writer (flushing is the caller's concern; every
    /// emitted line is already flushed).
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    fn render(&self, event: &TelemetryEvent<'_>) -> String {
        let t_ms = self.started.elapsed().as_millis() as u64;
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"v\":{TELEMETRY_SCHEMA_VERSION},\"t_ms\":{t_ms},\"event\":"
        );
        match event {
            TelemetryEvent::CampaignStart {
                campaign,
                units,
                threads,
                resumed_units,
            } => {
                push_str_field(&mut s, "\"campaign_start\",\"campaign\":", campaign);
                let _ = write!(
                    s,
                    ",\"units\":{units},\"threads\":{threads},\"resumed_units\":{resumed_units}"
                );
            }
            TelemetryEvent::ShardHeartbeat {
                shard,
                done,
                total,
                units_per_sec,
                eta_s,
            } => {
                let _ = write!(
                    s,
                    "\"shard_heartbeat\",\"shard\":{shard},\"done\":{done},\"total\":{total},\
                     \"units_per_sec\":{},\"eta_s\":{}",
                    finite(*units_per_sec),
                    finite(*eta_s)
                );
            }
            TelemetryEvent::PhaseTimers { shard, phases } => {
                let _ = write!(
                    s,
                    "\"phase_timers\",\"shard\":{shard},\"golden_settle_us\":{},\
                     \"timing_step_us\":{},\"replay_us\":{}",
                    phases.golden_settle_us, phases.timing_step_us, phases.replay_us
                );
            }
            TelemetryEvent::StatsDelta { shard, stats } => {
                let _ = write!(s, "\"stats_delta\",\"shard\":{shard}");
                for (name, value) in stats_fields(stats) {
                    let _ = write!(s, ",\"{name}\":{value}");
                }
            }
            TelemetryEvent::CheckpointFlush { completed_units } => {
                let _ = write!(
                    s,
                    "\"checkpoint_flush\",\"completed_units\":{completed_units}"
                );
            }
            TelemetryEvent::CampaignEnd {
                campaign,
                units,
                wall_ms,
            } => {
                push_str_field(&mut s, "\"campaign_end\",\"campaign\":", campaign);
                let _ = write!(s, ",\"units\":{units},\"wall_ms\":{wall_ms}");
            }
        }
        s.push('}');
        s
    }
}

impl<W: Write + Send> TelemetrySink for JsonlTelemetry<W> {
    const ENABLED: bool = true;

    fn emit(&self, event: &TelemetryEvent<'_>) {
        let line = self.render(event);
        if let Ok(mut out) = self.out.lock() {
            // Best-effort: a full disk must not kill the campaign.
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    }
}

/// The twenty-six engine counters in their canonical (schema) order.
fn stats_fields(stats: &InjectorStats) -> [(&'static str, u64); 26] {
    [
        ("static_filtered", stats.static_filtered),
        ("toggle_filtered", stats.toggle_filtered),
        ("event_sims", stats.event_sims),
        ("replays", stats.replays),
        ("replay_cache_hits", stats.replay_cache_hits),
        ("replay_cycles", stats.replay_cycles),
        ("gates_evaluated", stats.gates_evaluated),
        ("incremental_replays", stats.incremental_replays),
        ("full_replay_fallbacks", stats.full_replay_fallbacks),
        ("batched_replays", stats.batched_replays),
        ("lanes_occupied", stats.lanes_occupied),
        ("lane_slots", stats.lane_slots),
        ("golden_waveform_builds", stats.golden_waveform_builds),
        ("delta_events", stats.delta_events),
        ("delta_early_exits", stats.delta_early_exits),
        ("full_event_fallbacks", stats.full_event_fallbacks),
        ("batched_timing_replays", stats.batched_timing_replays),
        ("timing_lanes_occupied", stats.timing_lanes_occupied),
        ("timing_lane_slots", stats.timing_lane_slots),
        ("collapsed_edges", stats.collapsed_edges),
        ("class_representatives", stats.class_representatives),
        ("formally_discharged_ace", stats.formally_discharged_ace),
        ("formally_discharged_unace", stats.formally_discharged_unace),
        ("strata_active", stats.strata_active),
        ("strata_retired_early", stats.strata_retired_early),
        ("adaptive_replays_saved", stats.adaptive_replays_saved),
    ]
}

/// Renders a JSON-safe finite number (NaN/∞ degrade to 0, keeping every
/// line parseable).
fn finite(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0.000".to_owned()
    }
}

fn push_str_field(s: &mut String, prefix: &str, value: &str) {
    s.push_str(prefix);
    s.push('"');
    for ch in value.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// A parsed flat-JSON scalar (the only value kinds the schema uses).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number (validation-grade precision: `f64`).
    Num(f64),
}

impl JsonValue {
    /// The numeric value, if this scalar is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Str(_) => None,
        }
    }

    /// The string value, if this scalar is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            JsonValue::Num(_) => None,
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}`, string or number values,
/// no nesting) into its key/value pairs in order.
///
/// # Errors
///
/// Returns a message describing the first syntax violation.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err("expected `{`".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected key string, found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected `:` after key `{key}`"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonValue::Num(
                    num.parse::<f64>()
                        .map_err(|e| format!("bad number `{num}`: {e}"))?,
                )
            }
            other => return Err(format!("unsupported value start {other:?}")),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            other => return Err(format!("expected `,` or `}}`, found {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing content after object".into());
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected `\"`".into());
    }
    let mut s = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('u') => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let v = u32::from_str_radix(&code, 16)
                        .map_err(|e| format!("bad \\u escape `{code}`: {e}"))?;
                    s.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some(c) => s.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

/// Validates one emitted JSONL line against the versioned schema and
/// returns its event name.
///
/// Checks: the line parses as a flat object, `v` equals
/// [`TELEMETRY_SCHEMA_VERSION`], `t_ms` is a non-negative number, the
/// event name is known, and every field the event requires is present
/// with the right scalar kind.
///
/// # Errors
///
/// Returns a message naming the missing/mistyped field or unknown event.
pub fn validate_line(line: &str) -> Result<String, String> {
    let fields = parse_flat_object(line)?;
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let num = |name: &str| -> Result<f64, String> {
        get(name)
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("missing numeric field `{name}`"))
    };
    let string = |name: &str| -> Result<&str, String> {
        get(name)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("missing string field `{name}`"))
    };
    let v = num("v")?;
    if v != TELEMETRY_SCHEMA_VERSION as f64 {
        return Err(format!("schema version {v} != {TELEMETRY_SCHEMA_VERSION}"));
    }
    if num("t_ms")? < 0.0 {
        return Err("negative t_ms".into());
    }
    let event = string("event")?.to_owned();
    let required_nums: &[&str] = match event.as_str() {
        "campaign_start" => {
            string("campaign")?;
            &["units", "threads", "resumed_units"]
        }
        "shard_heartbeat" => &["shard", "done", "total", "units_per_sec", "eta_s"],
        "phase_timers" => &["shard", "golden_settle_us", "timing_step_us", "replay_us"],
        "stats_delta" => &[
            "shard",
            "static_filtered",
            "toggle_filtered",
            "event_sims",
            "replays",
            "replay_cache_hits",
            "replay_cycles",
            "gates_evaluated",
            "incremental_replays",
            "full_replay_fallbacks",
            "batched_replays",
            "lanes_occupied",
            "lane_slots",
            "golden_waveform_builds",
            "delta_events",
            "delta_early_exits",
            "full_event_fallbacks",
            "batched_timing_replays",
            "timing_lanes_occupied",
            "timing_lane_slots",
            "collapsed_edges",
            "class_representatives",
            "formally_discharged_ace",
            "formally_discharged_unace",
            "strata_active",
            "strata_retired_early",
            "adaptive_replays_saved",
        ],
        "checkpoint_flush" => &["completed_units"],
        "campaign_end" => {
            string("campaign")?;
            &["units", "wall_ms"]
        }
        other => return Err(format!("unknown event `{other}`")),
    };
    for name in required_nums {
        num(name)?;
    }
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<String> {
        let sink = JsonlTelemetry::new(Vec::new());
        sink.emit(&TelemetryEvent::CampaignStart {
            campaign: "delay_sweep",
            units: 24,
            threads: 4,
            resumed_units: 3,
        });
        sink.emit(&TelemetryEvent::ShardHeartbeat {
            shard: 1,
            done: 2,
            total: 6,
            units_per_sec: 12.5,
            eta_s: 0.32,
        });
        sink.emit(&TelemetryEvent::PhaseTimers {
            shard: 1,
            phases: PhaseTotals {
                golden_settle_us: 10,
                timing_step_us: 20,
                replay_us: 30,
            },
        });
        sink.emit(&TelemetryEvent::StatsDelta {
            shard: 0,
            stats: InjectorStats {
                event_sims: 7,
                ..InjectorStats::default()
            },
        });
        sink.emit(&TelemetryEvent::CheckpointFlush { completed_units: 9 });
        sink.emit(&TelemetryEvent::CampaignEnd {
            campaign: "delay_sweep",
            units: 24,
            wall_ms: 1234,
        });
        let bytes = sink.into_inner();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn every_emitted_event_validates_against_the_schema() {
        let lines = sample_events();
        assert_eq!(lines.len(), 6);
        let events: Vec<String> = lines.iter().map(|l| validate_line(l).unwrap()).collect();
        assert_eq!(
            events,
            vec![
                "campaign_start",
                "shard_heartbeat",
                "phase_timers",
                "stats_delta",
                "checkpoint_flush",
                "campaign_end"
            ]
        );
    }

    #[test]
    fn timestamps_are_monotone() {
        let lines = sample_events();
        let mut last = -1.0f64;
        for line in &lines {
            let fields = parse_flat_object(line).unwrap();
            let t = fields
                .iter()
                .find(|(k, _)| k == "t_ms")
                .and_then(|(_, v)| v.as_num())
                .unwrap();
            assert!(t >= last, "t_ms went backwards: {t} after {last}");
            last = t;
        }
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let fields = parse_flat_object(r#"{"a":"x\"y\\z","b":-1.5e2}"#).unwrap();
        assert_eq!(fields[0].1, JsonValue::Str("x\"y\\z".into()));
        assert_eq!(fields[1].1, JsonValue::Num(-150.0));
        assert!(parse_flat_object("not json").is_err());
        assert!(parse_flat_object(r#"{"a":}"#).is_err());
        assert!(parse_flat_object(r#"{"a":1} trailing"#).is_err());
        assert!(validate_line(r#"{"v":99,"t_ms":0,"event":"campaign_end"}"#)
            .unwrap_err()
            .contains("schema version"));
        assert!(validate_line(r#"{"v":4,"t_ms":0,"event":"wat"}"#)
            .unwrap_err()
            .contains("unknown event"));
        assert!(
            validate_line(r#"{"v":4,"t_ms":0,"event":"checkpoint_flush"}"#)
                .unwrap_err()
                .contains("completed_units")
        );
    }

    #[test]
    fn non_finite_numbers_degrade_to_parseable_zero() {
        // The emit path's last line of defense: even if a caller smuggles a
        // NaN/∞ rate past its own guards, the line stays valid JSON.
        assert_eq!(finite(f64::NAN), "0.000");
        assert_eq!(finite(f64::INFINITY), "0.000");
        assert_eq!(finite(f64::NEG_INFINITY), "0.000");
        assert_eq!(finite(1.5), "1.500");
        assert_eq!(finite(-0.25), "-0.250");
    }

    #[test]
    fn string_fields_round_trip_through_escaping() {
        let sink = JsonlTelemetry::new(Vec::new());
        sink.emit(&TelemetryEvent::CampaignStart {
            campaign: "odd \"name\"\\with\nnoise",
            units: 1,
            threads: 1,
            resumed_units: 0,
        });
        let bytes = sink.into_inner();
        let line = String::from_utf8(bytes).unwrap();
        let fields = parse_flat_object(line.trim()).unwrap();
        let campaign = fields
            .iter()
            .find(|(k, _)| k == "campaign")
            .and_then(|(_, v)| v.as_str())
            .unwrap()
            .to_owned();
        assert_eq!(campaign, "odd \"name\"\\with\nnoise");
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullTelemetry::ENABLED) };
        const { assert!(<JsonlTelemetry<Vec<u8>> as TelemetrySink>::ENABLED) };
        NULL_TELEMETRY.emit(&TelemetryEvent::CheckpointFlush { completed_units: 0 });
    }
}
