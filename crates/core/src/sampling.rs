//! Temporal and spatial sampling (§V-C "the simplest way to reduce the
//! total number of simulations is to employ temporal sampling").

use delayavf_netlist::EdgeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Picks `count` injection cycles equally spaced through `1..num_cycles`
/// (cycle 0 is skipped: there is no previous settled cycle to launch the
/// timing-aware simulation from). This mirrors the paper's "injection
/// points chosen to be equally spaced out throughout the whole program
/// execution".
///
/// Returns fewer cycles when the program is shorter than `count`.
pub fn spaced_cycles(num_cycles: u64, count: usize) -> Vec<u64> {
    if num_cycles < 2 || count == 0 {
        return Vec::new();
    }
    let lo = 1u64;
    let hi = num_cycles - 1; // last cycle with a next-cycle boundary
    let span = hi - lo;
    let count = count.min(span as usize + 1);
    if count == 1 {
        return vec![lo];
    }
    let mut out: Vec<u64> = (0..count)
        .map(|k| lo + (span * k as u64) / (count as u64 - 1))
        .collect();
    out.dedup();
    out
}

/// Picks `count` injection cycles with **stratified random** sampling: the
/// run is divided into `count` equal strata and one cycle is drawn uniformly
/// from each. This keeps the even temporal coverage of the paper's
/// equally-spaced injection points while avoiding aliasing with the core's
/// periodic fetch/execute cadence (a fixed stride can systematically land on
/// the same pipeline state).
pub fn stratified_cycles(num_cycles: u64, count: usize, seed: u64) -> Vec<u64> {
    use rand::Rng;
    if num_cycles < 2 || count == 0 {
        return Vec::new();
    }
    let lo = 1u64;
    let hi = num_cycles - 1;
    let span = hi - lo + 1;
    let count = count.min(span as usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for k in 0..count as u64 {
        let s_lo = lo + span * k / count as u64;
        let s_hi = lo + span * (k + 1) / count as u64;
        out.push(rng.gen_range(s_lo..s_hi.max(s_lo + 1)));
    }
    out.dedup();
    out
}

/// Derives the sample count from a sampling percentage, as the paper
/// configures it (`percent_sampled_cycles_delay`).
///
/// The result is clamped to at least one cycle, which also absorbs
/// degenerate rates (negative, zero, NaN) into a count of 1 — callers that
/// accept user input must reject such rates *before* this conversion (the
/// configuration layer enforces `0 < percent <= 100`), because a silent
/// one-cycle sample is statistically meaningless, not conservative.
pub fn percent_to_count(num_cycles: u64, percent: f64) -> usize {
    ((num_cycles as f64) * percent / 100.0).ceil().max(1.0) as usize
}

/// Uniformly samples at most `limit` edges (deterministic under `seed`).
/// With `limit >= edges.len()` this is the identity (every wire injected,
/// as in the paper).
pub fn sample_edges(edges: &[EdgeId], limit: usize, seed: u64) -> Vec<EdgeId> {
    if edges.len() <= limit {
        return edges.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked: Vec<EdgeId> = edges.choose_multiple(&mut rng, limit).copied().collect();
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaced_cycles_cover_the_run() {
        let s = spaced_cycles(1000, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 1);
        assert_eq!(*s.last().unwrap(), 999);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn spaced_cycles_clamp_to_short_programs() {
        assert_eq!(spaced_cycles(3, 10), vec![1, 2]);
        assert_eq!(spaced_cycles(2, 10), vec![1]);
        let s = spaced_cycles(100, 1);
        assert_eq!(s, vec![1]);
    }

    #[test]
    fn percent_conversion_matches_paper_configs() {
        // 4% of 8903 cycles (matmult in Table II) ≈ 357 injection cycles.
        assert_eq!(percent_to_count(8903, 4.0), 357);
        assert_eq!(percent_to_count(10, 0.01), 1, "at least one cycle");
    }

    #[test]
    fn percent_conversion_collapses_degenerate_rates_to_one() {
        // Pinned behavior: the at-least-one clamp absorbs rates the config
        // layer is responsible for rejecting. If this ever changes, the
        // validation contract documented on `percent_to_count` moves too.
        assert_eq!(percent_to_count(1000, -4.0), 1);
        assert_eq!(percent_to_count(1000, 0.0), 1);
        assert_eq!(percent_to_count(1000, f64::NAN), 1);
        assert_eq!(percent_to_count(1000, f64::NEG_INFINITY), 1);
        // Positive infinity saturates instead of wrapping.
        assert_eq!(percent_to_count(1000, f64::INFINITY), usize::MAX);
    }

    #[test]
    fn cycle_samplers_handle_degenerate_runs() {
        // No injectable cycle exists below two cycles (cycle 0 has no
        // previous settled cycle), and a zero-count request is empty.
        for sampler in [
            &(|n, c| spaced_cycles(n, c)) as &dyn Fn(u64, usize) -> Vec<u64>,
            &|n, c| stratified_cycles(n, c, 7),
        ] {
            assert_eq!(sampler(0, 5), Vec::<u64>::new());
            assert_eq!(sampler(1, 5), Vec::<u64>::new());
            assert_eq!(sampler(100, 0), Vec::<u64>::new());
            // A single-sample request returns exactly one in-range cycle.
            let one = sampler(100, 1);
            assert_eq!(one.len(), 1);
            assert!((1..=99).contains(&one[0]));
            // Exactly one injectable cycle exists in a two-cycle run.
            assert_eq!(sampler(2, 5), vec![1]);
        }
    }

    #[test]
    fn stratified_cycles_stay_sorted_in_range_and_deterministic() {
        let a = stratified_cycles(1000, 40, 9);
        assert_eq!(a, stratified_cycles(1000, 40, 9), "seed-deterministic");
        assert_eq!(a.len(), 40, "disjoint strata never collide");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!(a.iter().all(|&c| (1..=999).contains(&c)), "in range");
        // Oversampling clamps to the number of injectable cycles.
        let all = stratified_cycles(10, 100, 3);
        assert_eq!(all, (1..=9).collect::<Vec<u64>>());
    }

    #[test]
    fn edge_sampling_is_deterministic_and_bounded() {
        let edges: Vec<EdgeId> = (0..100).map(EdgeId::from_index).collect();
        let a = sample_edges(&edges, 10, 7);
        let b = sample_edges(&edges, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_ne!(a, sample_edges(&edges, 10, 8));
        assert_eq!(sample_edges(&edges, 1000, 7), edges);
    }
}
