//! Temporal and spatial sampling (§V-C "the simplest way to reduce the
//! total number of simulations is to employ temporal sampling").

use delayavf_netlist::EdgeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Picks `count` injection cycles equally spaced through `1..num_cycles`
/// (cycle 0 is skipped: there is no previous settled cycle to launch the
/// timing-aware simulation from). This mirrors the paper's "injection
/// points chosen to be equally spaced out throughout the whole program
/// execution".
///
/// Returns fewer cycles when the program is shorter than `count`.
pub fn spaced_cycles(num_cycles: u64, count: usize) -> Vec<u64> {
    if num_cycles < 2 || count == 0 {
        return Vec::new();
    }
    let lo = 1u64;
    let hi = num_cycles - 1; // last cycle with a next-cycle boundary
    let span = hi - lo;
    let count = count.min(span as usize + 1);
    if count == 1 {
        return vec![lo];
    }
    let mut out: Vec<u64> = (0..count)
        .map(|k| lo + (span * k as u64) / (count as u64 - 1))
        .collect();
    out.dedup();
    out
}

/// Picks `count` injection cycles with **stratified random** sampling: the
/// run is divided into `count` equal strata and one cycle is drawn uniformly
/// from each. This keeps the even temporal coverage of the paper's
/// equally-spaced injection points while avoiding aliasing with the core's
/// periodic fetch/execute cadence (a fixed stride can systematically land on
/// the same pipeline state).
pub fn stratified_cycles(num_cycles: u64, count: usize, seed: u64) -> Vec<u64> {
    use rand::Rng;
    if num_cycles < 2 || count == 0 {
        return Vec::new();
    }
    let lo = 1u64;
    let hi = num_cycles - 1;
    let span = hi - lo + 1;
    let count = count.min(span as usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for k in 0..count as u64 {
        let s_lo = lo + span * k / count as u64;
        let s_hi = lo + span * (k + 1) / count as u64;
        out.push(rng.gen_range(s_lo..s_hi.max(s_lo + 1)));
    }
    out.dedup();
    out
}

/// Derives the sample count from a sampling percentage, as the paper
/// configures it (`percent_sampled_cycles_delay`).
///
/// The result is clamped to at least one cycle, which also absorbs
/// degenerate rates (negative, zero, NaN) into a count of 1 — callers that
/// accept user input must reject such rates *before* this conversion (the
/// configuration layer enforces `0 < percent <= 100`), because a silent
/// one-cycle sample is statistically meaningless, not conservative.
pub fn percent_to_count(num_cycles: u64, percent: f64) -> usize {
    ((num_cycles as f64) * percent / 100.0).ceil().max(1.0) as usize
}

/// Uniformly samples at most `limit` edges (deterministic under `seed`).
/// With `limit >= edges.len()` this is the identity (every wire injected,
/// as in the paper).
pub fn sample_edges(edges: &[EdgeId], limit: usize, seed: u64) -> Vec<EdgeId> {
    if edges.len() <= limit {
        return edges.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked: Vec<EdgeId> = edges.choose_multiple(&mut rng, limit).copied().collect();
    picked.sort_unstable();
    picked
}

// ---------------------------------------------------------------------------
// Adaptive stratified sampling (ROADMAP: "adaptive importance sampling for
// campaign cost"). Injection sites are grouped into strata by cheap static
// signals (edge slack, per-cycle toggle activity), the replay budget is
// allocated Neyman-style from the running per-stratum variance, and a
// stratum retires as soon as its Wilson interval is tighter than the target
// half-width. All decisions are pure functions of previously recorded
// tallies, so a plan replays deterministically — the property the
// checkpoint layer's byte-identical resume builds on.
// ---------------------------------------------------------------------------

/// Default number of buckets per stratification axis.
pub const DEFAULT_STRATA: usize = 4;

/// Maximum number of buckets per stratification axis.
pub const MAX_STRATA: usize = 16;

/// Validates an adaptive CI target half-width. The open interval keeps the
/// knob meaningful: `0` can never be reached by a Wilson interval and
/// `>= 0.5` is satisfied by an unsampled stratum.
pub fn validate_ci_target(target: f64) -> Result<f64, String> {
    if target.is_finite() && target > 0.0 && target < 0.5 {
        Ok(target)
    } else {
        Err(format!("ci_target must be in (0, 0.5), got {target}"))
    }
}

/// Validates a per-axis stratification bucket count.
pub fn validate_strata(strata: usize) -> Result<usize, String> {
    if (1..=MAX_STRATA).contains(&strata) {
        Ok(strata)
    } else {
        Err(format!("strata must be in 1..={MAX_STRATA}, got {strata}"))
    }
}

/// Equal-width bucketing of one stratification signal: each value maps to a
/// bucket in `0..buckets` by its position in the observed `[min, max]`
/// range. A constant signal (including the empty and single-value cases)
/// collapses into bucket 0 — degenerate axes cost nothing, they just stop
/// discriminating.
pub fn bucket_axis(values: &[u64], buckets: usize) -> Vec<usize> {
    assert!(buckets >= 1, "at least one bucket");
    let (Some(&min), Some(&max)) = (values.iter().min(), values.iter().max()) else {
        return Vec::new();
    };
    if min == max || buckets == 1 {
        return vec![0; values.len()];
    }
    let span = (max - min) as u128 + 1;
    values
        .iter()
        .map(|&v| ((v - min) as u128 * buckets as u128 / span) as usize)
        .collect()
}

/// A composed stratified estimate: the weighted point estimate and the
/// conservative 95% interval around it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StratifiedEstimate {
    /// Weighted point estimate `Σ W_h · p̂_h`, clamped to `[0, 1]`.
    pub point: f64,
    /// Lower interval bound, clamped to `[0, 1]`.
    pub lo: f64,
    /// Upper interval bound, clamped to `[0, 1]`.
    pub hi: f64,
}

impl StratifiedEstimate {
    /// Half the interval width.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Composes per-stratum intervals into one stratified estimate. Each part
/// is `(weight, point, half_width)`; the composed half-width is
/// `sqrt(Σ (w_h · hw_h)²)` — the independent-strata error composition,
/// conservative because `Σ W_h² ≤ (Σ W_h)²`: when every stratum retired at
/// half-width `t` and the weights sum to 1, the composed half-width is
/// `t · sqrt(Σ W_h²) ≤ t`. No parts yield the vacuous `[0, 1]` interval.
pub fn compose_intervals(parts: &[(f64, f64, f64)]) -> StratifiedEstimate {
    if parts.is_empty() {
        return StratifiedEstimate {
            point: 0.0,
            lo: 0.0,
            hi: 1.0,
        };
    }
    let point: f64 = parts
        .iter()
        .map(|&(w, p, _)| w * p)
        .sum::<f64>()
        .clamp(0.0, 1.0);
    let hw = parts
        .iter()
        .map(|&(w, _, h)| (w * h) * (w * h))
        .sum::<f64>()
        .sqrt();
    StratifiedEstimate {
        point,
        lo: (point - hw).max(0.0),
        hi: (point + hw).min(1.0),
    }
}

/// Allocates `budget` samples across strata proportionally to their Neyman
/// weights. Each entry of `needs` is `(remaining, weight)` — the stratum's
/// unsampled population and its `W_h · s_h` allocation weight (any
/// non-negative scale; all-zero weights fall back to equal shares).
///
/// Guarantees, pinned by the property tests below:
///
/// * the allocations sum to `min(budget, Σ remaining)`;
/// * no stratum is allocated past its remaining population;
/// * **every** stratum with remaining population receives at least one
///   sample while budget remains (rounding must never starve a nonempty
///   stratum — the `percent_to_count` × stratification interaction fix);
/// * equal-remaining strata are allocated monotonically in weight;
/// * ties break toward the lower index, keeping the result deterministic.
pub fn neyman_allocation(budget: usize, needs: &[(usize, f64)]) -> Vec<usize> {
    let mut alloc = vec![0usize; needs.len()];
    let total_remaining: usize = needs.iter().map(|&(r, _)| r).sum();
    let mut left = budget.min(total_remaining);
    // The ≥1 floor, in descending-weight order (ties toward the lower
    // index) while budget lasts, so a budget smaller than the stratum
    // count still lands on the highest-variance strata first.
    let mut by_weight: Vec<usize> = (0..needs.len()).filter(|&i| needs[i].0 > 0).collect();
    by_weight.sort_by(|&a, &b| {
        needs[b]
            .1
            .partial_cmp(&needs[a].1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for i in by_weight {
        if left == 0 {
            break;
        }
        alloc[i] = 1;
        left -= 1;
    }
    // Largest-remainder proportional distribution of the rest, re-run while
    // capped strata return unused budget. Each pass either spends the
    // remaining budget or shrinks the uncapped set, so it terminates.
    while left > 0 {
        let open: Vec<usize> = (0..needs.len())
            .filter(|&i| alloc[i] < needs[i].0)
            .collect();
        if open.is_empty() {
            break;
        }
        let weight_of = |i: usize| needs[i].1.max(0.0);
        let wsum: f64 = open.iter().map(|&i| weight_of(i)).sum();
        let share = |i: usize| {
            if wsum > 0.0 {
                left as f64 * weight_of(i) / wsum
            } else {
                left as f64 / open.len() as f64
            }
        };
        let mut gave = 0usize;
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(open.len());
        for &i in &open {
            let s = share(i);
            let whole = (s.floor() as usize)
                .min(needs[i].0 - alloc[i])
                .min(left - gave);
            alloc[i] += whole;
            gave += whole;
            fracs.push((i, s - s.floor()));
        }
        // Distribute the rounding leftover by descending fractional part,
        // ties toward the lower index (sort is stable over the index-ordered
        // `open` list).
        fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (i, _) in fracs {
            if gave == left {
                break;
            }
            if alloc[i] < needs[i].0 {
                alloc[i] += 1;
                gave += 1;
            }
        }
        if gave == 0 {
            // Degenerate rounding (every share floored to 0 and every
            // fractional winner already capped): force progress on the
            // first open stratum.
            alloc[open[0]] += 1;
            gave = 1;
        }
        left -= gave;
    }
    alloc
}

/// An adaptive sampling plan over a fixed population of injection sites.
///
/// Sites are dealt into strata up front (`site_stratum[site]`), each
/// stratum's visit order is a seed-deterministic shuffle, and rounds
/// proceed until every stratum has either retired (all of its estimands'
/// Wilson intervals are within the target half-width) or run out of sites.
/// Recording is additive, so a round's tallies are independent of the
/// order its sites were evaluated in — the thread-invariance the sharded
/// campaign engine requires.
#[derive(Clone, Debug)]
pub struct AdaptivePlan {
    site_stratum: Vec<usize>,
    /// Shuffled site visit order, per stratum.
    order: Vec<Vec<usize>>,
    cursor: Vec<usize>,
    /// Per-stratum, per-estimand trial and hit tallies.
    trials: Vec<Vec<u64>>,
    hits: Vec<Vec<u64>>,
    retired: Vec<bool>,
    retired_early: usize,
    sampled_sites: usize,
    num_estimands: usize,
    ci_target: f64,
    round_budget: usize,
}

impl AdaptivePlan {
    /// Builds a plan for `site_stratum.len()` sites dealt into `num_strata`
    /// strata, estimating `num_estimands` proportions to a Wilson
    /// half-width of `ci_target`, with visit order derived from `seed`.
    pub fn new(
        site_stratum: Vec<usize>,
        num_strata: usize,
        num_estimands: usize,
        ci_target: f64,
        seed: u64,
    ) -> Self {
        let ci_target = validate_ci_target(ci_target).expect("validated ci_target");
        let mut order: Vec<Vec<usize>> = vec![Vec::new(); num_strata];
        for (site, &h) in site_stratum.iter().enumerate() {
            order[h].push(site);
        }
        for (h, sites) in order.iter_mut().enumerate() {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (h as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            sites.shuffle(&mut rng);
        }
        let population = site_stratum.len();
        // Roughly an eighth of the population per round, clamped so tiny
        // populations still finish in one round and huge ones still adapt.
        let round_budget = population.div_ceil(8).max(16).min(population.max(1));
        AdaptivePlan {
            site_stratum,
            retired: order.iter().map(Vec::is_empty).collect(),
            cursor: vec![0; num_strata],
            trials: vec![vec![0; num_estimands]; num_strata],
            hits: vec![vec![0; num_estimands]; num_strata],
            order,
            retired_early: 0,
            sampled_sites: 0,
            num_estimands,
            ci_target,
            round_budget,
        }
    }

    /// Total number of sites in the population.
    pub fn population(&self) -> usize {
        self.site_stratum.len()
    }

    /// Sites consumed by `next_round` so far.
    pub fn sampled_sites(&self) -> usize {
        self.sampled_sites
    }

    /// Number of nonempty strata.
    pub fn strata_active(&self) -> usize {
        self.order.iter().filter(|s| !s.is_empty()).count()
    }

    /// Strata retired by the CI criterion with population still unsampled.
    pub fn strata_retired_early(&self) -> usize {
        self.retired_early
    }

    /// The next round's sites, in ascending site order (empty when every
    /// stratum has retired or been exhausted). Advances the per-stratum
    /// cursors; every returned site must be evaluated and recorded before
    /// `finish_round`.
    pub fn next_round(&mut self) -> Vec<usize> {
        let needs: Vec<(usize, f64)> = (0..self.order.len())
            .map(|h| {
                if self.retired[h] {
                    return (0, 0.0);
                }
                (self.order[h].len() - self.cursor[h], self.stratum_weight(h))
            })
            .collect();
        let alloc = neyman_allocation(self.round_budget, &needs);
        let mut picked = Vec::new();
        for (h, take) in alloc.into_iter().enumerate() {
            let from = self.cursor[h];
            self.cursor[h] += take;
            picked.extend_from_slice(&self.order[h][from..self.cursor[h]]);
        }
        self.sampled_sites += picked.len();
        picked.sort_unstable();
        picked
    }

    /// Neyman allocation weight of stratum `h`: its population share times
    /// the largest per-estimand binomial standard deviation, with the
    /// Laplace-smoothed proportion `(hits + 1) / (trials + 2)` so an
    /// unsampled stratum starts at the maximal `s = 0.5`.
    fn stratum_weight(&self, h: usize) -> f64 {
        let w = self.order[h].len() as f64 / self.population().max(1) as f64;
        let s = (0..self.num_estimands.max(1))
            .map(|e| {
                let (hits, trials) = if e < self.num_estimands {
                    (self.hits[h][e], self.trials[h][e])
                } else {
                    (0, 0)
                };
                let p = (hits as f64 + 1.0) / (trials as f64 + 2.0);
                (p * (1.0 - p)).sqrt()
            })
            .fold(0.0f64, f64::max);
        w * s
    }

    /// Records one evaluated site's per-estimand hit and trial counts.
    pub fn record(&mut self, site: usize, hits: &[u64], trials: &[u64]) {
        assert_eq!(hits.len(), self.num_estimands, "one hit count per estimand");
        assert_eq!(
            trials.len(),
            self.num_estimands,
            "one trial count per estimand"
        );
        let h = self.site_stratum[site];
        for e in 0..self.num_estimands {
            self.hits[h][e] += hits[e];
            self.trials[h][e] += trials[e];
        }
    }

    /// Applies the retirement criterion after a round's tallies are in:
    /// a stratum retires when its widest per-estimand Wilson interval is
    /// within the target (counted in `strata_retired_early` if sites
    /// remain) or when it has no sites left.
    pub fn finish_round(&mut self) {
        for h in 0..self.order.len() {
            if self.retired[h] {
                continue;
            }
            let remaining = self.order[h].len() - self.cursor[h];
            let sampled = self.cursor[h] > 0;
            if sampled && self.max_half_width(h) <= self.ci_target {
                self.retired[h] = true;
                if remaining > 0 {
                    self.retired_early += 1;
                }
            } else if remaining == 0 {
                self.retired[h] = true;
            }
        }
    }

    /// Finite-population correction factor of stratum `h`: sites are drawn
    /// **without replacement** from a fixed, finite site population, and
    /// the estimand is the value the exhaustive campaign would compute over
    /// that same population — so the stratum-mean standard error shrinks by
    /// `sqrt(1 - m_h/n_h)` (Cochran's FPC) and vanishes entirely once the
    /// stratum is fully sampled, exactly when the sampled tally *is* the
    /// exhaustive tally.
    fn fpc(&self, h: usize) -> f64 {
        let n = self.order[h].len();
        if n == 0 {
            return 1.0;
        }
        (1.0 - self.cursor[h] as f64 / n as f64).max(0.0).sqrt()
    }

    /// The widest per-estimand Wilson half-width of stratum `h`, with the
    /// finite-population correction applied.
    fn max_half_width(&self, h: usize) -> f64 {
        let fpc = self.fpc(h);
        (0..self.num_estimands)
            .map(|e| {
                let (lo, hi) = crate::report::wilson_interval(
                    self.hits[h][e] as usize,
                    self.trials[h][e] as usize,
                );
                (hi - lo) / 2.0 * fpc
            })
            .fold(0.0f64, f64::max)
    }

    /// The composed stratified estimate for estimand `e`: per-stratum
    /// Wilson intervals deflated by the finite-population correction and
    /// weighted by population share (an unsampled stratum contributes the
    /// vacuous `p̂ = 0.5 ± 0.5`; a fully sampled one contributes its exact
    /// exhaustive tally with zero width).
    pub fn estimate(&self, e: usize) -> StratifiedEstimate {
        let population = self.population();
        let parts: Vec<(f64, f64, f64)> = (0..self.order.len())
            .filter(|&h| !self.order[h].is_empty())
            .map(|h| {
                let w = self.order[h].len() as f64 / population as f64;
                let (hits, trials) = (self.hits[h][e], self.trials[h][e]);
                if trials == 0 {
                    return (w, 0.5, 0.5);
                }
                let p = hits as f64 / trials as f64;
                let (lo, hi) = crate::report::wilson_interval(hits as usize, trials as usize);
                (w, p, (hi - lo) / 2.0 * self.fpc(h))
            })
            .collect();
        compose_intervals(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaced_cycles_cover_the_run() {
        let s = spaced_cycles(1000, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 1);
        assert_eq!(*s.last().unwrap(), 999);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn spaced_cycles_clamp_to_short_programs() {
        assert_eq!(spaced_cycles(3, 10), vec![1, 2]);
        assert_eq!(spaced_cycles(2, 10), vec![1]);
        let s = spaced_cycles(100, 1);
        assert_eq!(s, vec![1]);
    }

    #[test]
    fn percent_conversion_matches_paper_configs() {
        // 4% of 8903 cycles (matmult in Table II) ≈ 357 injection cycles.
        assert_eq!(percent_to_count(8903, 4.0), 357);
        assert_eq!(percent_to_count(10, 0.01), 1, "at least one cycle");
    }

    #[test]
    fn percent_conversion_collapses_degenerate_rates_to_one() {
        // Pinned behavior: the at-least-one clamp absorbs rates the config
        // layer is responsible for rejecting. If this ever changes, the
        // validation contract documented on `percent_to_count` moves too.
        assert_eq!(percent_to_count(1000, -4.0), 1);
        assert_eq!(percent_to_count(1000, 0.0), 1);
        assert_eq!(percent_to_count(1000, f64::NAN), 1);
        assert_eq!(percent_to_count(1000, f64::NEG_INFINITY), 1);
        // Positive infinity saturates instead of wrapping.
        assert_eq!(percent_to_count(1000, f64::INFINITY), usize::MAX);
    }

    #[test]
    fn cycle_samplers_handle_degenerate_runs() {
        // No injectable cycle exists below two cycles (cycle 0 has no
        // previous settled cycle), and a zero-count request is empty.
        for sampler in [
            &(|n, c| spaced_cycles(n, c)) as &dyn Fn(u64, usize) -> Vec<u64>,
            &|n, c| stratified_cycles(n, c, 7),
        ] {
            assert_eq!(sampler(0, 5), Vec::<u64>::new());
            assert_eq!(sampler(1, 5), Vec::<u64>::new());
            assert_eq!(sampler(100, 0), Vec::<u64>::new());
            // A single-sample request returns exactly one in-range cycle.
            let one = sampler(100, 1);
            assert_eq!(one.len(), 1);
            assert!((1..=99).contains(&one[0]));
            // Exactly one injectable cycle exists in a two-cycle run.
            assert_eq!(sampler(2, 5), vec![1]);
        }
    }

    #[test]
    fn stratified_cycles_stay_sorted_in_range_and_deterministic() {
        let a = stratified_cycles(1000, 40, 9);
        assert_eq!(a, stratified_cycles(1000, 40, 9), "seed-deterministic");
        assert_eq!(a.len(), 40, "disjoint strata never collide");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!(a.iter().all(|&c| (1..=999).contains(&c)), "in range");
        // Oversampling clamps to the number of injectable cycles.
        let all = stratified_cycles(10, 100, 3);
        assert_eq!(all, (1..=9).collect::<Vec<u64>>());
    }

    #[test]
    fn edge_sampling_is_deterministic_and_bounded() {
        let edges: Vec<EdgeId> = (0..100).map(EdgeId::from_index).collect();
        let a = sample_edges(&edges, 10, 7);
        let b = sample_edges(&edges, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_ne!(a, sample_edges(&edges, 10, 8));
        assert_eq!(sample_edges(&edges, 1000, 7), edges);
    }

    // -- adaptive stratified sampling ------------------------------------

    /// Seeded generator for the allocator property sweep: `(remaining,
    /// weight)` vectors covering empty, zero-weight and zero-remaining
    /// strata.
    fn random_needs(rng: &mut StdRng, max_strata: usize) -> Vec<(usize, f64)> {
        use rand::Rng;
        let n = rng.gen_range(0..max_strata + 1);
        (0..n)
            .map(|_| {
                let remaining = match rng.gen_range(0..4u32) {
                    0 => 0,
                    1 => 1,
                    _ => rng.gen_range(0..200usize),
                };
                let weight = match rng.gen_range(0..3u32) {
                    0 => 0.0,
                    // The vendored rand only samples integer ranges.
                    _ => rng.gen_range(0..2000u32) as f64 / 1000.0,
                };
                (remaining, weight)
            })
            .collect()
    }

    #[test]
    fn allocation_sums_to_budget_and_respects_caps() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let needs = random_needs(&mut rng, 12);
            let budget = rng.gen_range(0..300usize);
            let alloc = neyman_allocation(budget, &needs);
            assert_eq!(alloc.len(), needs.len());
            let total_remaining: usize = needs.iter().map(|&(r, _)| r).sum();
            assert_eq!(
                alloc.iter().sum::<usize>(),
                budget.min(total_remaining),
                "allocations must sum to min(budget, remaining): {needs:?} @ {budget}"
            );
            for (a, &(remaining, _)) in alloc.iter().zip(&needs) {
                assert!(*a <= remaining, "over-allocated past the population");
            }
        }
    }

    #[test]
    fn allocation_never_starves_a_nonempty_stratum_while_budget_remains() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..500 {
            let needs = random_needs(&mut rng, 12);
            let eligible = needs.iter().filter(|&&(r, _)| r > 0).count();
            // Budget at least covers one sample per nonempty stratum.
            let budget = eligible + rng.gen_range(0..100usize);
            let alloc = neyman_allocation(budget, &needs);
            for (a, &(remaining, w)) in alloc.iter().zip(&needs) {
                if remaining > 0 {
                    assert!(
                        *a >= 1,
                        "nonempty stratum (rem {remaining}, w {w}) starved: {needs:?} @ {budget}"
                    );
                }
            }
        }
    }

    /// The exact-boundary regression pinned by the satellite: a
    /// `percent_to_count`-derived budget that exactly equals the stratum
    /// count, against wildly skewed weights. Pure largest-remainder
    /// rounding would hand every sample to the heavy stratum; the ≥1 floor
    /// must keep each nonempty stratum alive.
    #[test]
    fn percent_to_count_boundary_budget_keeps_every_stratum_alive() {
        // 4% of 100 cycles = exactly 4 samples (no rounding slack), and
        // the paper's matmult-style 4% of 8903 = 357.
        assert_eq!(percent_to_count(100, 4.0), 4);
        let needs = [(50, 1000.0), (1, 1e-6), (1, 0.0), (48, 900.0)];
        let alloc = neyman_allocation(percent_to_count(100, 4.0), &needs);
        assert_eq!(alloc.iter().sum::<usize>(), 4);
        assert!(
            alloc.iter().all(|&a| a >= 1),
            "boundary budget must not drop a nonempty stratum to zero: {alloc:?}"
        );
        // One sample short of the floor: the highest-weight strata sample
        // this round (deterministically), nobody over-allocates.
        let alloc = neyman_allocation(3, &needs);
        assert_eq!(alloc, vec![1, 1, 0, 1]);
        // With rounding slack (ceil) the count covers the strata again.
        assert_eq!(percent_to_count(101, 4.0), 5);
        let alloc = neyman_allocation(percent_to_count(101, 4.0), &needs);
        assert!(alloc.iter().all(|&a| a >= 1));
    }

    #[test]
    fn allocation_is_monotone_in_weight_for_equal_remaining() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..500 {
            let n = rng.gen_range(2..10usize);
            let remaining = rng.gen_range(1..100usize);
            let needs: Vec<(usize, f64)> = (0..n)
                .map(|_| (remaining, rng.gen_range(0..3000u32) as f64 / 1000.0))
                .collect();
            let budget = rng.gen_range(0..(n * remaining + 20));
            let alloc = neyman_allocation(budget, &needs);
            for i in 0..n {
                for j in 0..n {
                    if needs[i].1 > needs[j].1 {
                        assert!(
                            alloc[i] >= alloc[j],
                            "higher-variance stratum got less: {needs:?} @ {budget} -> {alloc:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn allocation_handles_degenerate_strata_without_panicking() {
        // Empty input, all-empty strata, all-zero weights, zero budget.
        assert_eq!(neyman_allocation(10, &[]), Vec::<usize>::new());
        assert_eq!(neyman_allocation(10, &[(0, 1.0), (0, 0.0)]), vec![0, 0]);
        assert_eq!(neyman_allocation(0, &[(5, 1.0)]), vec![0]);
        let alloc = neyman_allocation(7, &[(3, 0.0), (9, 0.0)]);
        assert_eq!(alloc.iter().sum::<usize>(), 7);
        // Budget exceeding the population exhausts it exactly.
        assert_eq!(neyman_allocation(100, &[(3, 0.5), (2, 0.1)]), vec![3, 2]);
    }

    #[test]
    fn bucket_axis_spans_and_collapses() {
        assert_eq!(bucket_axis(&[], 4), Vec::<usize>::new());
        // Constant signal: one bucket, no discrimination.
        assert_eq!(bucket_axis(&[7, 7, 7], 4), vec![0, 0, 0]);
        // Extremes land in the first and last bucket.
        let b = bucket_axis(&[0, 10, 20, 30], 4);
        assert_eq!(b, vec![0, 1, 2, 3]);
        assert!(
            bucket_axis(&[u64::MAX, 0], 16) == vec![15, 0],
            "no overflow"
        );
        // Single bucket collapses everything.
        assert_eq!(bucket_axis(&[1, 5, 9], 1), vec![0, 0, 0]);
    }

    #[test]
    fn composed_interval_is_within_target_when_every_stratum_is() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(45);
        for _ in 0..200 {
            let n = rng.gen_range(1..10usize);
            let target = 0.001 + rng.gen_range(0..399u32) as f64 / 1000.0;
            // Random weights summing to 1.
            let raw: Vec<f64> = (0..n)
                .map(|_| rng.gen_range(10..1000u32) as f64 / 1000.0)
                .collect();
            let sum: f64 = raw.iter().sum();
            let parts: Vec<(f64, f64, f64)> = raw
                .iter()
                .map(|&w| {
                    (
                        w / sum,
                        rng.gen_range(0..1001u32) as f64 / 1000.0,
                        target * (rng.gen_range(0..1000u32) as f64 / 1000.0),
                    )
                })
                .collect();
            let est = compose_intervals(&parts);
            assert!(est.half_width() <= target + 1e-12, "{parts:?}");
            assert!((0.0..=1.0).contains(&est.point));
            assert!(est.lo <= est.point && est.point <= est.hi);
            assert!(est.lo >= 0.0 && est.hi <= 1.0);
        }
    }

    #[test]
    fn composed_interval_without_parts_is_vacuous() {
        let est = compose_intervals(&[]);
        assert_eq!((est.point, est.lo, est.hi), (0.0, 0.0, 1.0));
    }

    #[test]
    fn knob_validation_pins_error_text() {
        assert_eq!(validate_ci_target(0.05), Ok(0.05));
        for bad in [0.0, -0.1, 0.5, 1.0, f64::NAN, f64::INFINITY] {
            let err = validate_ci_target(bad).unwrap_err();
            assert!(
                err.starts_with("ci_target must be in (0, 0.5), got"),
                "{err}"
            );
        }
        assert_eq!(validate_strata(1), Ok(1));
        assert_eq!(validate_strata(MAX_STRATA), Ok(MAX_STRATA));
        for bad in [0, MAX_STRATA + 1, 1000] {
            let err = validate_strata(bad).unwrap_err();
            assert!(err.starts_with("strata must be in 1..=16, got"), "{err}");
        }
    }

    /// A plan over a synthetic two-stratum population: one certain stratum
    /// (all misses) retires early, one coin-flip stratum is driven to
    /// exhaustion; the plan terminates, is seed-deterministic, and its
    /// bookkeeping is consistent.
    #[test]
    fn plan_retires_tight_strata_and_exhausts_noisy_ones() {
        // Stratum 0: 400 sites, never a hit. Stratum 1: 40 sites,
        // alternating hits (maximal variance at tiny population).
        let site_stratum: Vec<usize> = (0..440).map(|s| usize::from(s >= 400)).collect();
        let run = |seed: u64| {
            let mut plan = AdaptivePlan::new(site_stratum.clone(), 2, 1, 0.05, seed);
            let mut visited = Vec::new();
            loop {
                let sites = plan.next_round();
                if sites.is_empty() {
                    break;
                }
                for &site in &sites {
                    let hit = u64::from(site >= 400 && site % 2 == 0);
                    plan.record(site, &[hit], &[1]);
                }
                visited.extend(sites);
                plan.finish_round();
            }
            (visited, plan)
        };
        let (visited, plan) = run(9);
        // Terminated, visited each site at most once.
        let mut unique = visited.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), visited.len(), "no site visited twice");
        assert_eq!(plan.sampled_sites(), visited.len());
        assert_eq!(plan.strata_active(), 2);
        // The all-miss stratum retires early (its Wilson interval collapses
        // fast); the noisy one runs out of sites before reaching 0.05.
        assert_eq!(plan.strata_retired_early(), 1);
        assert!(plan.sampled_sites() < 440, "early retirement saves sites");
        // Deterministic under the same seed, different under another.
        let (visited2, _) = run(9);
        assert_eq!(visited, visited2);
        let (visited3, _) = run(10);
        assert_ne!(visited, visited3);
        // The single-estimand composed estimate brackets the truth
        // (stratified weighting: 400/440 · 0 + 40/440 · 0.5 ≈ 0.045).
        let est = plan.estimate(0);
        assert!(est.lo <= 0.0455 && 0.0455 <= est.hi, "{est:?}");
    }

    #[test]
    fn plan_handles_degenerate_populations() {
        // Empty population: immediately done.
        let mut plan = AdaptivePlan::new(Vec::new(), 4, 1, 0.1, 7);
        assert!(plan.next_round().is_empty());
        assert_eq!(plan.strata_active(), 0);
        assert_eq!(plan.estimate(0), compose_intervals(&[]));
        // Single site, single stratum, zero estimands: one round, done.
        let mut plan = AdaptivePlan::new(vec![0], 1, 0, 0.1, 7);
        let sites = plan.next_round();
        assert_eq!(sites, vec![0]);
        plan.record(0, &[], &[]);
        plan.finish_round();
        assert!(plan.next_round().is_empty());
        assert_eq!(plan.sampled_sites(), 1);
        // Sparse strata (most buckets empty) collapse without panics.
        let mut plan = AdaptivePlan::new(vec![255, 255, 255], 256, 1, 0.1, 7);
        assert_eq!(plan.strata_active(), 1);
        let sites = plan.next_round();
        assert_eq!(sites.len(), 3);
    }
}
