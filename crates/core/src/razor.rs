//! Targeted protection planning: Razor-style error-detection coverage.
//!
//! The paper motivates DelayAVF as the metric that lets designers "identify
//! structures which are particularly vulnerable to SDFs, helping to guide
//! targeted protections" (§I), naming Razor shadow latches as the spatial-
//! redundancy mitigation (§II-D). This module closes that loop: given the
//! per-injection records of a campaign, it evaluates how many
//! program-visible delay faults a set of shadow-latched flip-flops would
//! *detect* (a Razor latch flags any wrong value captured by its flip-flop),
//! and greedily selects the flip-flops with the best coverage per latch.

use std::collections::HashSet;

use delayavf_netlist::{DffId, EdgeId};

use crate::injector::InjectionOutcome;

/// One recorded injection: where, when and what happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Injection cycle.
    pub cycle: u64,
    /// Faulted edge.
    pub edge: EdgeId,
    /// Two-step outcome.
    pub outcome: InjectionOutcome,
}

/// Detection coverage of a protected flip-flop set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Program-visible injections whose dynamic set touches a protected
    /// flip-flop (Razor would raise an error).
    pub detected: usize,
    /// All program-visible injections.
    pub visible: usize,
}

impl Coverage {
    /// Fraction of program-visible delay faults detected.
    pub fn fraction(&self) -> f64 {
        if self.visible == 0 {
            0.0
        } else {
            self.detected as f64 / self.visible as f64
        }
    }
}

/// Evaluates Razor detection coverage: a visible injection counts as
/// detected iff at least one erring flip-flop carries a shadow latch.
pub fn detection_coverage(records: &[InjectionRecord], protected: &HashSet<DffId>) -> Coverage {
    let mut cov = Coverage::default();
    for r in records {
        if !r.outcome.visible {
            continue;
        }
        cov.visible += 1;
        if r.outcome.dynamic_set.iter().any(|d| protected.contains(d)) {
            cov.detected += 1;
        }
    }
    cov
}

/// Greedy shadow-latch placement: repeatedly picks the flip-flop that
/// detects the most still-undetected program-visible injections, up to
/// `budget` latches. Returns the chosen flip-flops in selection order
/// (classic greedy set cover, within `1 - 1/e` of optimal coverage).
pub fn greedy_protection(records: &[InjectionRecord], budget: usize) -> Vec<DffId> {
    let visible: Vec<&InjectionRecord> = records.iter().filter(|r| r.outcome.visible).collect();
    let mut uncovered: Vec<bool> = vec![true; visible.len()];
    let mut chosen = Vec::new();
    for _ in 0..budget {
        // Count per-dff coverage over still-uncovered injections.
        let mut counts: std::collections::HashMap<DffId, usize> = std::collections::HashMap::new();
        for (i, r) in visible.iter().enumerate() {
            if !uncovered[i] {
                continue;
            }
            for &d in &r.outcome.dynamic_set {
                *counts.entry(d).or_insert(0) += 1;
            }
        }
        // Deterministic tie-break on the dff id.
        let Some((&best, _)) = counts
            .iter()
            .max_by_key(|(d, &n)| (n, std::cmp::Reverse(**d)))
        else {
            break; // everything covered (or nothing visible)
        };
        if counts[&best] == 0 {
            break;
        }
        for (i, r) in visible.iter().enumerate() {
            if uncovered[i] && r.outcome.dynamic_set.contains(&best) {
                uncovered[i] = false;
            }
        }
        chosen.push(best);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::FailureClass;

    fn rec(edge: usize, set: &[usize], visible: bool) -> InjectionRecord {
        InjectionRecord {
            cycle: 1,
            edge: EdgeId::from_index(edge),
            outcome: InjectionOutcome {
                statically_reachable: set.len(),
                dynamic_set: set.iter().map(|&i| DffId::from_index(i)).collect(),
                visible,
                class: if visible {
                    FailureClass::Sdc
                } else {
                    FailureClass::Masked
                },
            },
        }
    }

    #[test]
    fn coverage_counts_only_visible_injections() {
        let records = vec![
            rec(0, &[1, 2], true),
            rec(1, &[3], true),
            rec(2, &[1], false), // masked: irrelevant
            rec(3, &[], false),
        ];
        let protected: HashSet<DffId> = [DffId::from_index(1)].into_iter().collect();
        let cov = detection_coverage(&records, &protected);
        assert_eq!(cov.visible, 2);
        assert_eq!(cov.detected, 1);
        assert!((cov.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_zero_coverage() {
        let cov = detection_coverage(&[], &HashSet::new());
        assert_eq!(cov.fraction(), 0.0);
    }

    #[test]
    fn greedy_prefers_high_coverage_bits() {
        // dff 7 covers three visible injections, dff 1 and 2 one each.
        let records = vec![
            rec(0, &[7, 1], true),
            rec(1, &[7], true),
            rec(2, &[7, 2], true),
            rec(3, &[2], true),
        ];
        let chosen = greedy_protection(&records, 2);
        assert_eq!(chosen[0], DffId::from_index(7));
        assert_eq!(
            chosen[1],
            DffId::from_index(2),
            "second pick covers the leftover"
        );
        let protected: HashSet<DffId> = chosen.into_iter().collect();
        assert_eq!(detection_coverage(&records, &protected).fraction(), 1.0);
    }

    #[test]
    fn greedy_stops_when_everything_is_covered() {
        let records = vec![rec(0, &[5], true)];
        let chosen = greedy_protection(&records, 10);
        assert_eq!(chosen.len(), 1);
    }

    #[test]
    fn greedy_is_deterministic_under_ties() {
        let records = vec![rec(0, &[4], true), rec(1, &[9], true)];
        let a = greedy_protection(&records, 2);
        let b = greedy_protection(&records, 2);
        assert_eq!(a, b);
    }
}
