//! Golden-run preparation: reference trace, checkpoints at the sampled
//! injection cycles.

use std::collections::BTreeMap;

use delayavf_netlist::{Circuit, Topology};
use delayavf_sim::{Checkpoint, Environment, GoldenTrace};

use crate::sampling::{percent_to_count, stratified_cycles};

/// A prepared fault-free reference execution: the golden trace plus
/// checkpoints at every sampled injection cycle. Shared by all structures
/// and delay durations for one (core, benchmark) pair.
#[derive(Clone, Debug)]
pub struct GoldenRun<E> {
    /// The recorded reference execution.
    pub trace: GoldenTrace,
    /// Checkpoints keyed by cycle.
    pub checkpoints: BTreeMap<u64, Checkpoint<E>>,
    /// The sampled injection cycles (each has a checkpoint).
    pub sampled_cycles: Vec<u64>,
}

/// Records the golden execution of `env` and checkpoints `cycle_samples`
/// stratified-random injection cycles (seeded, deterministic).
///
/// Runs the program twice: once to learn its length, once to capture the
/// trace and checkpoints.
///
/// # Panics
///
/// Panics if the program executes no cycles.
pub fn prepare_golden<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    env: &E,
    max_cycles: u64,
    cycle_samples: usize,
) -> GoldenRun<E> {
    prepare_golden_seeded(circuit, topo, env, max_cycles, cycle_samples, 0x5eed)
}

/// [`prepare_golden`] sampling a *percentage* of the program's cycles, as
/// the paper's artifact configures it (`percent_sampled_cycles_delay`).
///
/// # Panics
///
/// Panics if the program executes no cycles.
pub fn prepare_golden_percent<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    env: &E,
    max_cycles: u64,
    percent: f64,
    seed: u64,
) -> GoldenRun<E> {
    let mut probe = env.clone();
    let (pre, _) = GoldenTrace::record(circuit, topo, &mut probe, max_cycles, &[]);
    let count = percent_to_count(pre.num_cycles(), percent);
    prepare_golden_seeded(circuit, topo, env, max_cycles, count, seed)
}

/// [`prepare_golden`] with an explicit sampling seed.
///
/// # Panics
///
/// Panics if the program executes no cycles.
pub fn prepare_golden_seeded<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    env: &E,
    max_cycles: u64,
    cycle_samples: usize,
    seed: u64,
) -> GoldenRun<E> {
    // Pass 1: learn N.
    let mut probe = env.clone();
    let (pre, _) = GoldenTrace::record(circuit, topo, &mut probe, max_cycles, &[]);
    let n = pre.num_cycles();
    assert!(n > 0, "program executed no cycles");

    // Pass 2: record with checkpoints at the sampled cycles.
    let sampled_cycles = stratified_cycles(n, cycle_samples, seed);
    let mut env2 = env.clone();
    let (trace, cps) = GoldenTrace::record(circuit, topo, &mut env2, max_cycles, &sampled_cycles);
    let checkpoints: BTreeMap<u64, Checkpoint<E>> =
        cps.into_iter().map(|cp| (cp.cycle, cp)).collect();
    debug_assert!(sampled_cycles.iter().all(|c| checkpoints.contains_key(c)));
    GoldenRun {
        trace,
        checkpoints,
        sampled_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_netlist::CircuitBuilder;
    use delayavf_sim::ConstEnvironment;

    #[test]
    fn prepares_checkpoints_for_all_samples() {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let count = b.reg_word("count", 4, 0);
        let next = b.add(&count.q(), &step);
        b.drive_word(&count, &next);
        b.output_word("count", &count.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let env = ConstEnvironment::new(vec![1]);
        let g = prepare_golden(&c, &topo, &env, 50, 5);
        assert_eq!(g.trace.num_cycles(), 50);
        assert_eq!(g.sampled_cycles.len(), 5);
        for cyc in &g.sampled_cycles {
            let cp = &g.checkpoints[cyc];
            assert_eq!(cp.cycle, *cyc);
        }
    }
}
