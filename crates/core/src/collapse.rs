//! Pre-simulation fault collapsing: equivalence classes over injection
//! sites plus the semi-formal masking check.
//!
//! Campaigns inject one small delay fault per (edge, cycle, delay) triple,
//! but many edges are *provably interchangeable*: an extra delay `d` on the
//! input edge of an effectively-unary gate whose output funnels through a
//! single fanout produces — cycle for cycle, event for event — the same
//! latched values as the same delay on that downstream edge. The
//! [`CollapsePlan`] partitions edges into such chain classes before any
//! simulation runs, using two independent structural certificates:
//!
//! 1. **Same-slack**: the two edges' CSR slack-table slices
//!    ([`TimingModel::edge_slack_entries`]) must be *identical* — the
//!    absolute longest-path lengths to every reachable flip-flop agree, so
//!    the edges behave identically under every extra delay and guardband.
//! 2. **Structural dominator**: the chain gate's output net must be
//!    post-dominated ([`Topology::post_dominators`]) by exactly the sink
//!    its single fanout feeds, certifying that no value change can bypass
//!    the downstream edge on its way to a latch or output.
//!
//! The plan also precomputes the ingredients of the *semi-formal masking
//! check* ([`propagate_flips`]): which nets feed primary outputs and which
//! flip-flops can ever (transitively, across cycles) influence one. A flip
//! group whose downstream cone provably cannot reach the environment is
//! discharged as Masked without invoking any replay engine; a cone that
//! provably deviates an observed output word is discharged as SDC when the
//! environment's transcript contract
//! ([`delayavf_sim::Environment::deterministic_transcript`]) allows it.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use delayavf_netlist::{
    Circuit, Consumer, DffId, Driver, EdgeId, GateId, GateKind, NetId, Topology,
};
use delayavf_timing::TimingModel;

/// The precomputed fault-collapsing partition of a circuit's edges, plus
/// the reachability tables used by the semi-formal masking check. Built
/// once per [`crate::Injector`] (lazily, only when collapsing is enabled);
/// depends solely on the circuit, topology and timing model, never on the
/// golden trace — so every worker derives the identical plan.
pub struct CollapsePlan {
    /// Per edge: the representative of its equivalence class (itself for
    /// singleton classes). Chains are path-compressed, so a member points
    /// directly at the final edge of its chain.
    rep: Vec<EdgeId>,
    /// Per edge: true when at least one *other* edge collapses onto it.
    is_rep: Vec<bool>,
    /// Number of edges with a representative other than themselves.
    num_members: usize,
    /// Per flip-flop: whether a flip can ever — through any number of
    /// cycles of state propagation — influence a primary-output bit.
    influences: Vec<bool>,
    /// Per net: whether the net directly feeds a primary-output bit.
    output_net: Vec<bool>,
}

impl CollapsePlan {
    /// Builds the plan: chain-collapses edges under the same-slack +
    /// structural-dominator criterion and precomputes the output
    /// reachability tables.
    pub fn build(c: &Circuit, topo: &Topology, timing: &TimingModel) -> Self {
        let pdom = topo.post_dominators(c);
        let n_edges = topo.edges().len();
        let mut next: Vec<Option<EdgeId>> = Vec::with_capacity(n_edges);
        for i in 0..n_edges {
            next.push(chain_next(c, topo, timing, &pdom, EdgeId::from_index(i)));
        }
        // Path-compress each chain to its final edge. Chains only move
        // deeper into the combinational DAG, so iterative resolution
        // terminates without cycle checks.
        let mut rep: Vec<Option<EdgeId>> = vec![None; n_edges];
        for i in 0..n_edges {
            let mut chain = Vec::new();
            let mut cur = EdgeId::from_index(i);
            while rep[cur.index()].is_none() {
                match next[cur.index()] {
                    Some(n) => {
                        chain.push(cur);
                        cur = n;
                    }
                    None => break,
                }
            }
            let r = rep[cur.index()].unwrap_or(cur);
            rep[cur.index()] = Some(r);
            for e in chain {
                rep[e.index()] = Some(r);
            }
        }
        let rep: Vec<EdgeId> = rep
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| EdgeId::from_index(i)))
            .collect();
        let mut is_rep = vec![false; n_edges];
        let mut num_members = 0;
        for (i, &r) in rep.iter().enumerate() {
            if r.index() != i {
                is_rep[r.index()] = true;
                num_members += 1;
            }
        }

        let output_net = output_net_table(c, topo);
        let influences = influence_closure(c, topo, &output_net);
        CollapsePlan {
            rep,
            is_rep,
            num_members,
            influences,
            output_net,
        }
    }

    /// The representative edge of `edge`'s equivalence class (`edge` itself
    /// for singleton classes).
    #[inline]
    pub fn representative(&self, edge: EdgeId) -> EdgeId {
        self.rep[edge.index()]
    }

    /// True when at least one other edge collapses onto `edge`.
    #[inline]
    pub fn is_representative(&self, edge: EdgeId) -> bool {
        self.is_rep[edge.index()]
    }

    /// Number of edges whose representative is another edge — the count of
    /// injection sites the collapsing layer never has to simulate.
    #[inline]
    pub fn num_members(&self) -> usize {
        self.num_members
    }

    /// Whether a flip of `dff` can ever influence a primary output, through
    /// any number of cycles of sequential propagation. `false` certifies
    /// the flip is architecturally invisible forever.
    #[inline]
    pub fn influences_output(&self, dff: DffId) -> bool {
        self.influences[dff.index()]
    }

    /// Whether `net` directly feeds a primary-output bit.
    #[inline]
    pub fn is_output_net(&self, net: NetId) -> bool {
        self.output_net[net.index()]
    }
}

/// The chain link of `e1`, if any: the sole downstream edge `e2` such that
/// delaying `e1` by any extra is event-for-event equivalent to delaying
/// `e2` by the same extra.
///
/// Requirements (see the module docs for why each is load-bearing):
/// * `e1` feeds a gate pin and its source is not a constant net;
/// * the gate is *effectively unary* with respect to that pin (its other
///   pins are constants that make the output a function of this pin
///   alone), so the output waveform is the pin waveform up to inversion;
/// * the gate's output net has exactly one fanout edge `e2`, and the
///   post-dominator of the output net certifies that `e2`'s sink is the
///   only way forward (the structural-dominator half of the criterion);
/// * the CSR slack-table slices of `e1` and `e2` are identical (the
///   same-slack half): both edges reach the same flip-flops over the same
///   absolute path lengths, so the static filter and reachable sets agree
///   under every extra delay.
fn chain_next(
    c: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    pdom: &[Option<NetId>],
    e1: EdgeId,
) -> Option<EdgeId> {
    let edge = topo.edge(e1);
    let Consumer::GatePin { gate, pin } = edge.consumer else {
        return None;
    };
    if matches!(c.net(edge.source).driver(), Driver::Const(_)) {
        return None;
    }
    if !effectively_unary(c, gate, pin) {
        return None;
    }
    let out = c.gate(gate).output();
    let mut fan = topo.fanout_ids(out);
    let e2 = fan.next()?;
    if fan.next().is_some() {
        return None;
    }
    // Structural-dominator certificate: with a single fanout, the output
    // net's immediate post-dominator must be exactly where that fanout
    // leads — the consuming gate's output for a gate-pin sink, the virtual
    // sequential EXIT for a latch or output-port sink. A mismatch means
    // the dominator pass and the fanout list disagree about the circuit's
    // structure, so the link is rejected.
    let certified = match topo.edge(e2).consumer {
        Consumer::GatePin { gate: g2, .. } => pdom[out.index()] == Some(c.gate(g2).output()),
        Consumer::DffD(_) | Consumer::OutputBit { .. } => pdom[out.index()].is_none(),
    };
    if !certified {
        return None;
    }
    if timing.edge_slack_entries(c, topo, e1) != timing.edge_slack_entries(c, topo, e2) {
        return None;
    }
    Some(e2)
}

/// Whether `gate` computes a function of `pin` alone — identity or
/// inversion of that pin — because every other pin is tied to a constant
/// that keeps it transparent.
fn effectively_unary(c: &Circuit, gate: GateId, pin: u8) -> bool {
    let g = c.gate(gate);
    let const_val = |net: NetId| match c.net(net).driver() {
        Driver::Const(v) => Some(v),
        _ => None,
    };
    let ins = g.inputs();
    let other = |p: usize| const_val(ins[1 - p]);
    match g.kind() {
        GateKind::Buf | GateKind::Not => true,
        GateKind::And2 | GateKind::Nand2 => other(usize::from(pin)) == Some(true),
        GateKind::Or2 | GateKind::Nor2 => other(usize::from(pin)) == Some(false),
        GateKind::Xor2 | GateKind::Xnor2 => other(usize::from(pin)).is_some(),
        // Mux2 pins are [s, a, b] with out = if s { b } else { a }.
        GateKind::Mux2 => match pin {
            0 => matches!(
                (const_val(ins[1]), const_val(ins[2])),
                (Some(a), Some(b)) if a != b
            ),
            1 => const_val(ins[0]) == Some(false),
            2 => const_val(ins[0]) == Some(true),
            _ => false,
        },
    }
}

/// Per net: whether it directly feeds a primary-output bit.
fn output_net_table(c: &Circuit, topo: &Topology) -> Vec<bool> {
    let mut out = vec![false; c.num_nets()];
    for (i, net) in out.iter_mut().enumerate() {
        *net = topo
            .fanouts(NetId::from_index(i))
            .iter()
            .any(|e| matches!(e.consumer, Consumer::OutputBit { .. }));
    }
    out
}

/// Per flip-flop: whether a flip can ever reach a primary output — the
/// transitive closure of "my Q cone touches an output net or the D pin of
/// an influencing flip-flop" over the sequential dependence graph.
fn influence_closure(c: &Circuit, topo: &Topology, output_net: &[bool]) -> Vec<bool> {
    let n = c.num_dffs();
    let mut influences = vec![false; n];
    // Reverse sequential adjacency: preds[d2] lists the flip-flops whose Q
    // cone reaches d2's D pin within one cycle.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (did, dff) in c.dffs() {
        let mut touches_output = false;
        let mut seen: HashSet<NetId> = HashSet::new();
        let mut nets: VecDeque<NetId> = VecDeque::new();
        seen.insert(dff.q());
        nets.push_back(dff.q());
        while let Some(net) = nets.pop_front() {
            touches_output |= output_net[net.index()];
            for e in topo.fanouts(net) {
                match e.consumer {
                    Consumer::GatePin { gate, .. } => {
                        let out = c.gate(gate).output();
                        if seen.insert(out) {
                            nets.push_back(out);
                        }
                    }
                    Consumer::DffD(d2) => preds[d2.index()].push(did.index()),
                    Consumer::OutputBit { .. } => touches_output = true,
                }
            }
        }
        if touches_output {
            influences[did.index()] = true;
            queue.push_back(did.index());
        }
    }
    for p in &mut preds {
        p.sort_unstable();
        p.dedup();
    }
    while let Some(d) = queue.pop_front() {
        for &p in &preds[d] {
            if !influences[p] {
                influences[p] = true;
                queue.push_back(p);
            }
        }
    }
    influences
}

/// One cycle of the semi-formal masking check: exact zero-delay
/// propagation of a state difference through the combinational logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DischargeStep {
    /// Flip-flops latching a wrong value at the next boundary, sorted.
    pub next_flips: Vec<DffId>,
    /// Whether any primary-output bit deviates from the golden run during
    /// this cycle.
    pub output_deviation: bool,
}

/// Propagates the state difference `flips` (relative to the golden run)
/// through one cycle of zero-delay combinational evaluation.
///
/// `golden_values` must be the fully settled golden net values of the
/// cycle. Because values are boolean, a faulty net's value is always the
/// complement of the golden one, so the difference is represented as the
/// *set* of deviating nets; gates are re-evaluated at most once each, in
/// level order, restricted to the fan-out cone of the deviation. The
/// result is exact — identical to diffing two full settles — as long as
/// the cone stays under `cap` nets; larger cones return `None` and the
/// caller falls back to a real replay.
pub fn propagate_flips(
    c: &Circuit,
    topo: &Topology,
    plan: &CollapsePlan,
    golden_values: &[bool],
    flips: &[DffId],
    cap: usize,
) -> Option<DischargeStep> {
    let mut overlay: HashSet<NetId> = HashSet::new();
    let mut output_deviation = false;
    let mut heap: BinaryHeap<Reverse<(u32, GateId)>> = BinaryHeap::new();
    let mut queued: HashSet<GateId> = HashSet::new();
    let mut deviate = |net: NetId,
                       overlay: &mut HashSet<NetId>,
                       heap: &mut BinaryHeap<Reverse<(u32, GateId)>>,
                       queued: &mut HashSet<GateId>| {
        if !overlay.insert(net) {
            return;
        }
        output_deviation |= plan.is_output_net(net);
        for e in topo.fanouts(net) {
            if let Consumer::GatePin { gate, .. } = e.consumer {
                if queued.insert(gate) {
                    heap.push(Reverse((topo.gate_level(gate), gate)));
                }
            }
        }
    };
    for &d in flips {
        deviate(c.dff(d).q(), &mut overlay, &mut heap, &mut queued);
    }
    // Level order guarantees every gate sees its final fan-in deviation
    // before it is evaluated, so one evaluation per gate is exact.
    while let Some(Reverse((_, gate))) = heap.pop() {
        if overlay.len() > cap {
            return None;
        }
        let g = c.gate(gate);
        let ins = g.inputs();
        let mut vals = [false; 3];
        for (slot, &net) in vals.iter_mut().zip(ins) {
            *slot = golden_values[net.index()] ^ overlay.contains(&net);
        }
        let faulty = g.kind().eval(&vals[..ins.len()]);
        if faulty != golden_values[g.output().index()] {
            deviate(g.output(), &mut overlay, &mut heap, &mut queued);
        }
    }
    let next_flips: Vec<DffId> = c
        .dffs()
        .filter(|(_, dff)| overlay.contains(&dff.d()))
        .map(|(d, _)| d)
        .collect();
    Some(DischargeStep {
        next_flips,
        output_deviation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_netlist::CircuitBuilder;
    use delayavf_sim::settle;
    use delayavf_timing::TechLibrary;

    fn analyzed(c: &Circuit) -> (Topology, TimingModel) {
        let topo = Topology::new(c);
        let timing = TimingModel::analyze(c, &topo, &TechLibrary::nangate45_like());
        (topo, timing)
    }

    #[test]
    fn buffer_chains_collapse_to_the_final_edge() {
        // in -> BUF -> BUF -> NOT -> DFF: the input edge of each unary gate
        // chains onto its output's sole fanout, all the way to the D pin.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let r = b.reg("r", false);
        let b1 = b.gate(GateKind::Buf, &[a]);
        let b2 = b.gate(GateKind::Buf, &[b1]);
        let n1 = b.not(b2);
        b.drive(r, n1);
        b.output("q", r.q());
        let c = b.finish().unwrap();
        let (topo, timing) = analyzed(&c);
        let plan = CollapsePlan::build(&c, &topo, &timing);
        // Find the chain head (a -> BUF pin) and tail (n1 -> DFF D).
        let head = topo.fanout_ids(a).next().unwrap();
        let tail = (0..topo.edges().len())
            .map(EdgeId::from_index)
            .find(|&e| matches!(topo.edge(e).consumer, Consumer::DffD(_)))
            .unwrap();
        assert_eq!(plan.representative(head), tail);
        assert!(plan.is_representative(tail));
        assert!(!plan.is_representative(head));
        assert_eq!(plan.representative(tail), tail);
        assert_eq!(plan.num_members(), 3, "three chained member edges");
    }

    #[test]
    fn fanout_breaks_a_chain() {
        // The buffer output feeds two sinks, so its input edge must stay a
        // singleton class: a delay on it affects both sinks, a delay on
        // either downstream edge only one.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let r1 = b.reg("r1", false);
        let r2 = b.reg("r2", false);
        let x = b.gate(GateKind::Buf, &[a]);
        b.drive(r1, x);
        b.drive(r2, x);
        b.output("q", r1.q());
        b.output("p", r2.q());
        let c = b.finish().unwrap();
        let (topo, timing) = analyzed(&c);
        let plan = CollapsePlan::build(&c, &topo, &timing);
        let head = topo.fanout_ids(a).next().unwrap();
        assert_eq!(plan.representative(head), head);
        assert_eq!(plan.num_members(), 0);
    }

    #[test]
    fn binary_gates_collapse_only_with_transparent_constants() {
        // AND with a constant-true side input is transparent; AND of two
        // live nets is not.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let r1 = b.reg("r1", false);
        let r2 = b.reg("r2", false);
        let one = b.const_bit(true);
        let transparent = b.and(a, one);
        let opaque = b.and(a, x);
        b.drive(r1, transparent);
        b.drive(r2, opaque);
        b.output("q", r1.q());
        b.output("p", r2.q());
        let c = b.finish().unwrap();
        let (topo, timing) = analyzed(&c);
        let plan = CollapsePlan::build(&c, &topo, &timing);
        let edges: Vec<EdgeId> = topo.fanout_ids(a).collect();
        let to_transparent = edges
            .iter()
            .copied()
            .find(|&e| {
                matches!(topo.edge(e).consumer, Consumer::GatePin { gate, .. }
                    if c.gate(gate).output() == transparent)
            })
            .unwrap();
        let to_opaque = edges
            .iter()
            .copied()
            .find(|&e| {
                matches!(topo.edge(e).consumer, Consumer::GatePin { gate, .. }
                    if c.gate(gate).output() == opaque)
            })
            .unwrap();
        assert_ne!(plan.representative(to_transparent), to_transparent);
        assert_eq!(plan.representative(to_opaque), to_opaque);
        // The constant pin itself never joins a class.
        let const_edge = topo.fanout_ids(one).next().unwrap();
        assert_eq!(plan.representative(const_edge), const_edge);
    }

    #[test]
    fn influence_closure_sees_through_state_chains() {
        // r1 -> r2 -> output: r1 influences the output only transitively;
        // r3 is a sink nobody reads.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let r1 = b.reg("r1", false);
        let r2 = b.reg("r2", false);
        let r3 = b.reg("r3", false);
        b.drive(r1, a);
        b.drive(r2, r1.q());
        b.drive(r3, r2.q());
        b.output("o", r2.q());
        let c = b.finish().unwrap();
        let (topo, timing) = analyzed(&c);
        let plan = CollapsePlan::build(&c, &topo, &timing);
        let by_name = |name: &str| c.dffs().find(|(_, d)| d.name() == name).unwrap().0;
        assert!(plan.influences_output(by_name("r1")));
        assert!(plan.influences_output(by_name("r2")));
        assert!(!plan.influences_output(by_name("r3")));
    }

    #[test]
    fn propagation_matches_a_full_diff_settle() {
        // Random-ish adder circuit: flipping accumulator bits and
        // propagating must reproduce exactly the diff of two settles.
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let acc = b.reg_word("acc", 4, 0);
        let next = b.add(&acc.q(), &step);
        b.drive_word(&acc, &next);
        b.output_word("acc", &acc.q());
        let c = b.finish().unwrap();
        let (topo, timing) = analyzed(&c);
        let plan = CollapsePlan::build(&c, &topo, &timing);
        let state: Vec<bool> = vec![true, false, true, false];
        let inputs = vec![0b0011u64];
        let golden = settle(&c, &topo, &state, &inputs);
        for flip_mask in 1u32..16 {
            let flips: Vec<DffId> = (0..4)
                .filter(|i| flip_mask & (1 << i) != 0)
                .map(DffId::from_index)
                .collect();
            let mut faulty_state = state.clone();
            for d in &flips {
                faulty_state[d.index()] = !faulty_state[d.index()];
            }
            let faulty = settle(&c, &topo, &faulty_state, &inputs);
            let step = propagate_flips(&c, &topo, &plan, &golden, &flips, 4096).unwrap();
            let expect_next: Vec<DffId> = c
                .dffs()
                .filter(|(_, dff)| faulty[dff.d().index()] != golden[dff.d().index()])
                .map(|(d, _)| d)
                .collect();
            assert_eq!(step.next_flips, expect_next, "flips {flips:?}");
            let expect_dev = c.output_ports().iter().any(|p| {
                p.nets()
                    .iter()
                    .any(|&n| faulty[n.index()] != golden[n.index()])
            });
            assert_eq!(step.output_deviation, expect_dev, "flips {flips:?}");
        }
    }

    #[test]
    fn cone_cap_gives_up_instead_of_truncating() {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 8);
        let acc = b.reg_word("acc", 8, 0);
        let next = b.add(&acc.q(), &step);
        b.drive_word(&acc, &next);
        b.output_word("acc", &acc.q());
        let c = b.finish().unwrap();
        let (topo, timing) = analyzed(&c);
        let plan = CollapsePlan::build(&c, &topo, &timing);
        let state = vec![true; 8];
        let inputs = vec![0xFFu64];
        let golden = settle(&c, &topo, &state, &inputs);
        let flips: Vec<DffId> = (0..8).map(DffId::from_index).collect();
        assert!(propagate_flips(&c, &topo, &plan, &golden, &flips, 1).is_none());
    }
}
