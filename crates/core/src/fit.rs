//! Failure-rate estimation: turning DelayAVF into FIT.
//!
//! "Analogous to AVF, to estimate the failure rate of a structure, DelayAVF
//! can be multiplied with the rate at which a given structure experiences a
//! small delay fault" (paper §III-B). This module provides that last
//! multiplication: given a raw per-wire SDF rate (from field data or defect
//! models), it folds structure sizes and DelayAVF values into per-structure
//! and whole-design failure rates.

use std::fmt;

/// Failures-in-time: expected failures per 10⁹ device-hours.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Fit(pub f64);

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Normalize the negative-zero bit pattern (e.g. a rate multiplied
        // by -0.0 AVF) so it renders "0.000", not "-0.000".
        let v = if self.0 == 0.0 { 0.0 } else { self.0 };
        if v != 0.0 && v.abs() < 0.01 {
            write!(f, "{v:.2e} FIT")
        } else {
            write!(f, "{v:.3} FIT")
        }
    }
}

/// Per-structure failure-rate estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureFit {
    /// Structure name.
    pub structure: String,
    /// Number of injectable wires (fanout edges) in the structure.
    pub wires: usize,
    /// The structure's DelayAVF.
    pub delay_avf: f64,
    /// Estimated failure rate.
    pub fit: Fit,
}

/// Estimates the failure rate of a structure.
///
/// `raw_fit_per_wire` is the raw rate at which one wire experiences a small
/// delay fault, in FIT. The structure's failure rate is then
/// `raw_rate × #wires × DelayAVF` — the derating by DelayAVF is exactly the
/// role AVF plays for particle strikes.
pub fn structure_fit(
    structure: impl Into<String>,
    wires: usize,
    delay_avf: f64,
    raw_fit_per_wire: f64,
) -> StructureFit {
    assert!(
        (0.0..=1.0).contains(&delay_avf),
        "DelayAVF is a probability"
    );
    assert!(raw_fit_per_wire >= 0.0, "rates are non-negative");
    StructureFit {
        structure: structure.into(),
        wires,
        delay_avf,
        fit: Fit(raw_fit_per_wire * wires as f64 * delay_avf),
    }
}

/// Sums per-structure estimates into a design-level failure rate.
pub fn total_fit(structures: &[StructureFit]) -> Fit {
    Fit(structures.iter().map(|s| s.fit.0).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_scales_with_size_and_vulnerability() {
        let a = structure_fit("alu", 2000, 0.02, 1e-4);
        let b = structure_fit("regfile", 4000, 0.01, 1e-4);
        assert!((a.fit.0 - 2000.0 * 0.02 * 1e-4).abs() < 1e-12);
        assert_eq!(a.fit, b.fit, "half the AVF on twice the wires is a wash");
        let t = total_fit(&[a.clone(), b]);
        assert!((t.0 - 2.0 * a.fit.0).abs() < 1e-12);
        assert!(a.fit.to_string().contains("FIT"));
        // Small rates render in scientific notation instead of rounding to 0.
        assert_eq!(Fit(4.0e-4).to_string(), "4.00e-4 FIT");
        assert_eq!(Fit(0.0).to_string(), "0.000 FIT");
    }

    #[test]
    fn display_handles_signs_zeros_and_non_finite_rates() {
        // Negative zero normalizes — no "-0.000 FIT" in reports.
        assert_eq!(Fit(-0.0).to_string(), "0.000 FIT");
        // The scientific-notation threshold is exclusive at 0.01.
        assert_eq!(Fit(0.01).to_string(), "0.010 FIT");
        assert_eq!(Fit(0.009).to_string(), "9.00e-3 FIT");
        // Negative small magnitudes keep their sign in scientific notation.
        assert_eq!(Fit(-4.0e-4).to_string(), "-4.00e-4 FIT");
        // Non-finite rates (degenerate inputs) degrade readably rather
        // than panicking; `structure_fit` asserts them away upstream.
        assert_eq!(Fit(f64::NAN).to_string(), "NaN FIT");
        assert_eq!(Fit(f64::INFINITY).to_string(), "inf FIT");
    }

    #[test]
    fn zero_avf_means_zero_fit() {
        let s = structure_fit("decoder", 1000, 0.0, 5.0);
        assert_eq!(s.fit, Fit(0.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn avf_above_one_is_rejected() {
        let _ = structure_fit("x", 1, 1.5, 1.0);
    }
}
