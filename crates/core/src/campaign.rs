//! Fault-injection campaigns: DelayAVF sweeps and particle-strike sAVF.
//!
//! # Sharded parallel engine
//!
//! Every injection is independent given the golden trace, so each campaign
//! partitions its outermost sampling axis (cycles, or bits for the per-bit
//! campaign) into contiguous shards and runs one worker per shard on
//! [`std::thread::scope`] threads. Workers share the circuit, topology,
//! timing model and golden run read-only (hence the `Send + Sync`
//! supertrait on [`Environment`]) and each owns a private [`Injector`],
//! whose fan-in/replay caches and cycle reconstruction are per-run mutable
//! state.
//!
//! **Determinism:** parallel results are bit-for-bit identical to serial
//! for any thread count. All counters are integers merged by addition in
//! shard order, records are concatenated in shard order, and sharding by
//! whole cycles keeps every cache-shareable replay (keys are scoped to one
//! latch boundary) inside a single worker, so even the [`InjectorStats`]
//! cache-hit counters are partition-independent.
//!
//! # Latch-boundary conventions
//!
//! The two fault models classify at different boundaries **by design**:
//!
//! * A small delay fault in cycle `c` corrupts the values *latched at the
//!   end* of `c`, so [`delay_avf_campaign`] (via [`Injector::inject`])
//!   classifies the error group at boundary `c + 1`.
//! * A particle strike at cycle `c` corrupts *already-stored* state, so the
//!   sAVF campaigns ([`savf_campaign`], [`savf_per_bit_campaign`],
//!   [`spatial_double_strike_campaign`]) classify at boundary `c` itself.
//!
//! Both conventions draw `c` from [`valid_cycles`], which keeps every
//! boundary inside the golden trace.
//!
//! # Lane batching
//!
//! On top of sharding, every campaign groups the replays of one latch
//! boundary into bit-parallel batches ([`Injector::prefill_failures`], up
//! to [`ReplayOptions::lanes`] scenarios per pass over the netlist) before
//! running its unchanged scalar loop against the warmed cache — so tally
//! and record order are exactly the sequential engine's, and `lanes = 1`
//! (which turns prefilling into a no-op) reproduces its reports
//! byte-identically. Batching composes with sharding: cycle-sharded
//! campaigns keep each boundary's batches inside one worker, so the batch
//! counters in [`InjectorStats`] merge thread-invariantly. The per-bit
//! campaign shards over *bits* instead; its batch shapes depend on the
//! partition, which is harmless because it exposes no stats — its results
//! are still bit-for-bit deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use delayavf_netlist::{Circuit, DffId, EdgeId, Topology};
use delayavf_sim::{Environment, MAX_LANES, MAX_TIMING_LANES};
use delayavf_timing::{Picos, TimingModel};

use crate::checkpoint::{CheckpointSpec, CheckpointStore, Fingerprint, Tokens};
use crate::golden::GoldenRun;
use crate::injector::{FailureClass, InjectionOutcome, Injector, InjectorStats};
use crate::razor::InjectionRecord;
use crate::result::{AdaptiveEstimate, DelayAvfResult, OraceStats, SavfResult};
use crate::sampling::{bucket_axis, validate_ci_target, validate_strata, AdaptivePlan};
use crate::telemetry::{NullTelemetry, PhaseTotals, TelemetryEvent, TelemetrySink, NULL_TELEMETRY};

/// Replay-engine options shared by the particle-strike campaign entry
/// points (the DelayAVF sweeps carry the same knobs in
/// [`CampaignConfig`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayOptions {
    /// Extra cycles past the golden program length before a non-halting
    /// faulty run is declared a DUE.
    pub due_slack: u64,
    /// Worker threads for the sharded engine. `0` (the default) resolves
    /// to [`std::thread::available_parallelism`]. Results are identical
    /// for every value; only wall-clock time changes.
    pub threads: usize,
    /// Use the incremental divergence-cone replay engine (the default).
    /// Results are bit-for-bit identical either way; `false` runs the
    /// exact full-replay baseline (the `--no-incremental` escape hatch).
    pub incremental: bool,
    /// Use the incremental timing-aware engine — shared per-cycle
    /// golden-waveform cache plus fault-cone delta event simulation — for
    /// step 1 (the default). Results are bit-for-bit identical either way;
    /// `false` runs the exact full event-simulation baseline (the
    /// `--no-delta-timing` escape hatch).
    pub delta_timing: bool,
    /// Lane width for bit-parallel batch replays (default
    /// [`delayavf_sim::MAX_LANES`]). Results are identical for every
    /// width; `1` disables batching and reproduces the sequential
    /// engine's reports byte-identically (the `--lanes 1` escape hatch).
    pub lanes: usize,
    /// Lane width for lane-packed timing-aware batch replays (default
    /// [`delayavf_sim::MAX_TIMING_LANES`]; widths above 64 take the
    /// 256-bit wide-word path and widths above 256 the 512-bit one).
    /// Results are identical for every width; `1` disables timing batching
    /// and reproduces the scalar [`delayavf_sim::DeltaEventSim`] engine's
    /// reports byte-identically (the `--timing-lanes 1` escape hatch).
    pub timing_lanes: usize,
    /// Use the pre-simulation collapsing layer — injection-site
    /// equivalence classes, the quiet-source certificate and the
    /// semi-formal masking discharge (the default). Results are
    /// bit-for-bit identical either way; `false` runs the exact per-site
    /// baseline (the `--no-collapse` escape hatch).
    pub collapse: bool,
    /// Target Wilson half-width for adaptive stratified sampling. `None`
    /// (the default) runs the legacy uniform path byte-identically;
    /// `Some(t)` stratifies the injection sites, allocates replay budget
    /// Neyman-style and retires each stratum once its interval half-width
    /// is at most `t`. Must pass
    /// [`crate::sampling::validate_ci_target`].
    pub ci_target: Option<f64>,
    /// Buckets per stratification axis for adaptive sampling (strata count
    /// is the product of the two axes, so `strata²`). Ignored unless
    /// `ci_target` is set. Must pass [`crate::sampling::validate_strata`].
    pub strata: usize,
    /// Seed of the adaptive plan's per-stratum visit-order shuffle.
    /// Ignored unless `ci_target` is set.
    pub sample_seed: u64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            due_slack: 2_000,
            threads: 0,
            incremental: true,
            delta_timing: true,
            lanes: MAX_LANES,
            timing_lanes: MAX_TIMING_LANES,
            collapse: true,
            ci_target: None,
            strata: crate::sampling::DEFAULT_STRATA,
            sample_seed: 7,
        }
    }
}

impl ReplayOptions {
    /// Options with the given DUE slack and thread count (incremental
    /// replay on, as everywhere by default).
    pub fn new(due_slack: u64, threads: usize) -> Self {
        ReplayOptions {
            due_slack,
            threads,
            ..ReplayOptions::default()
        }
    }

    /// Builder-style override of the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style toggle of the incremental replay engine.
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Builder-style toggle of the incremental timing-aware engine.
    pub fn with_delta_timing(mut self, enabled: bool) -> Self {
        self.delta_timing = enabled;
        self
    }

    /// Builder-style override of the batch lane width (`1` = scalar
    /// baseline, `0` = maximum width).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Builder-style override of the timing batch lane width (`1` =
    /// scalar baseline, `0` = maximum width).
    pub fn with_timing_lanes(mut self, timing_lanes: usize) -> Self {
        self.timing_lanes = timing_lanes;
        self
    }

    /// Builder-style toggle of the pre-simulation collapsing layer.
    pub fn with_collapse(mut self, enabled: bool) -> Self {
        self.collapse = enabled;
        self
    }

    /// Builder-style override of the adaptive-sampling CI target
    /// (`None` = uniform legacy path).
    pub fn with_ci_target(mut self, ci_target: Option<f64>) -> Self {
        self.ci_target = ci_target;
        self
    }

    /// Builder-style override of the per-axis stratification bucket count.
    pub fn with_strata(mut self, strata: usize) -> Self {
        self.strata = strata;
        self
    }

    /// Builder-style override of the adaptive visit-order seed.
    pub fn with_sample_seed(mut self, sample_seed: u64) -> Self {
        self.sample_seed = sample_seed;
        self
    }
}

/// Configuration of a DelayAVF campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Delay durations to sweep, as fractions of the clock period (the
    /// paper sweeps 10%–90%).
    pub delay_fractions: Vec<f64>,
    /// Also evaluate the ORACE approximation per injection (needed for
    /// Table III; costs one replay per distinct (cycle, bit)).
    pub compute_orace: bool,
    /// Extra cycles past the golden program length before a non-halting
    /// faulty run is declared a DUE.
    pub due_slack: u64,
    /// Worker threads for the sharded engine. `0` (the default) resolves
    /// to [`std::thread::available_parallelism`]. Results are identical
    /// for every value; only wall-clock time changes.
    pub threads: usize,
    /// Use the incremental divergence-cone replay engine (the default);
    /// see [`ReplayOptions::incremental`].
    pub incremental: bool,
    /// Use the incremental timing-aware engine for step 1 (the default);
    /// see [`ReplayOptions::delta_timing`].
    pub delta_timing: bool,
    /// Lane width for bit-parallel batch replays; see
    /// [`ReplayOptions::lanes`].
    pub lanes: usize,
    /// Lane width for lane-packed timing-aware batch replays; see
    /// [`ReplayOptions::timing_lanes`].
    pub timing_lanes: usize,
    /// Use the pre-simulation collapsing layer; see
    /// [`ReplayOptions::collapse`].
    pub collapse: bool,
    /// Adaptive-sampling CI target; see [`ReplayOptions::ci_target`].
    pub ci_target: Option<f64>,
    /// Buckets per stratification axis; see [`ReplayOptions::strata`].
    pub strata: usize,
    /// Adaptive visit-order seed; see [`ReplayOptions::sample_seed`].
    pub sample_seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            delay_fractions: (1..=9).map(|k| k as f64 / 10.0).collect(),
            compute_orace: false,
            due_slack: 2_000,
            threads: 0,
            incremental: true,
            delta_timing: true,
            lanes: MAX_LANES,
            timing_lanes: MAX_TIMING_LANES,
            collapse: true,
            ci_target: None,
            strata: crate::sampling::DEFAULT_STRATA,
            sample_seed: 7,
        }
    }
}

impl CampaignConfig {
    /// A configuration sweeping a single delay fraction.
    pub fn single_delay(fraction: f64) -> Self {
        CampaignConfig {
            delay_fractions: vec![fraction],
            ..CampaignConfig::default()
        }
    }

    /// Builder-style override of the worker-thread count (`0` = one per
    /// available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style toggle of the incremental replay engine.
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Builder-style toggle of the incremental timing-aware engine.
    pub fn with_delta_timing(mut self, enabled: bool) -> Self {
        self.delta_timing = enabled;
        self
    }

    /// Builder-style override of the batch lane width (`1` = scalar
    /// baseline, `0` = maximum width).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Builder-style override of the timing batch lane width (`1` =
    /// scalar baseline, `0` = maximum width).
    pub fn with_timing_lanes(mut self, timing_lanes: usize) -> Self {
        self.timing_lanes = timing_lanes;
        self
    }

    /// Builder-style toggle of the pre-simulation collapsing layer.
    pub fn with_collapse(mut self, enabled: bool) -> Self {
        self.collapse = enabled;
        self
    }

    /// Builder-style override of the adaptive-sampling CI target
    /// (`None` = uniform legacy path).
    pub fn with_ci_target(mut self, ci_target: Option<f64>) -> Self {
        self.ci_target = ci_target;
        self
    }

    /// Builder-style override of the per-axis stratification bucket count.
    pub fn with_strata(mut self, strata: usize) -> Self {
        self.strata = strata;
        self
    }

    /// Builder-style override of the adaptive visit-order seed.
    pub fn with_sample_seed(mut self, sample_seed: u64) -> Self {
        self.sample_seed = sample_seed;
        self
    }
}

/// A worker's private injector, with the shard-invariant knobs applied.
#[allow(clippy::too_many_arguments)]
fn shard_injector<'g, E: Environment + Clone>(
    circuit: &'g Circuit,
    topo: &'g Topology,
    timing: &'g TimingModel,
    golden: &'g GoldenRun<E>,
    due_slack: u64,
    incremental: bool,
    delta_timing: bool,
    lanes: usize,
    timing_lanes: usize,
    collapse: bool,
) -> Injector<'g, E> {
    let mut injector = Injector::new(circuit, topo, timing, golden, due_slack);
    injector.set_incremental(incremental);
    injector.set_delta_timing(delta_timing);
    injector.set_lanes(lanes);
    injector.set_timing_lanes(timing_lanes);
    injector.set_collapse(collapse);
    injector
}

/// The sampled cycles on which injection is well-defined: cycle 0 has no
/// preceding settled state to simulate from, and the final trace cycle has
/// no successor boundary to classify at. Every campaign filters through
/// this one helper so the conventions cannot drift apart.
pub fn valid_cycles<E: Environment + Clone>(golden: &GoldenRun<E>) -> Vec<u64> {
    golden
        .sampled_cycles
        .iter()
        .copied()
        .filter(|&c| c >= 1 && c < golden.trace.num_cycles())
        .collect()
}

/// Resolves a requested thread count: `0` means one per available core,
/// and no campaign spawns more workers than it has shardable items.
fn resolve_threads(requested: usize, items: usize) -> usize {
    let t = if requested == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    t.clamp(1, items.max(1))
}

/// Runs `work` over contiguous shards of `items` on scoped threads and
/// returns the per-shard results **in shard order** (which is what makes
/// order-sensitive merges — record concatenation — deterministic). The
/// closure additionally receives its shard index, which the observability
/// layer stamps into heartbeats.
fn run_sharded<T, R, F>(threads: usize, items: &[T], work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return vec![work(0, items)];
    }
    let shard_len = items.len().div_ceil(threads);
    thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = items
            .chunks(shard_len)
            .enumerate()
            .map(|(i, shard)| scope.spawn(move || work(i, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    })
}

/// Observability context threaded through the `*_observed` campaign entry
/// points: a telemetry sink plus an optional checkpoint spec. The plain
/// entry points are thin wrappers over [`RunContext::disabled`], which
/// monomorphizes every observability branch away.
#[derive(Clone, Debug)]
pub struct RunContext<'t, S: TelemetrySink = NullTelemetry> {
    /// Where structured events go. Use [`crate::NULL_TELEMETRY`] (via
    /// [`RunContext::disabled`]) for a zero-cost disabled stream.
    pub telemetry: &'t S,
    /// Periodic crash-safe checkpointing, if any.
    pub checkpoint: Option<CheckpointSpec>,
}

impl RunContext<'static, NullTelemetry> {
    /// No telemetry, no checkpointing: campaigns run exactly the
    /// pre-observability code paths.
    pub fn disabled() -> Self {
        RunContext {
            telemetry: &NULL_TELEMETRY,
            checkpoint: None,
        }
    }
}

impl Default for RunContext<'static, NullTelemetry> {
    fn default() -> Self {
        RunContext::disabled()
    }
}

impl<'t, S: TelemetrySink> RunContext<'t, S> {
    /// A context emitting to `telemetry`, optionally checkpointing.
    pub fn new(telemetry: &'t S, checkpoint: Option<CheckpointSpec>) -> Self {
        RunContext {
            telemetry,
            checkpoint,
        }
    }
}

/// Digest of everything that determines a campaign's *results*: the
/// campaign kind, circuit size, clock period, the golden trace content at
/// every unit cycle, the injected item list and the sweep parameters. Two
/// campaigns with equal fingerprints produce identical reports, so resumed
/// units can be trusted; anything else is a `checkpoint mismatch`.
#[allow(clippy::too_many_arguments)]
fn campaign_fingerprint<E: Environment + Clone>(
    kind: &str,
    circuit: &Circuit,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    cycles: &[u64],
    items: &[usize],
    fractions: &[f64],
    due_slack: u64,
    orace: bool,
) -> u64 {
    let mut f = Fingerprint::new();
    f.write_bytes(kind.as_bytes());
    f.write_usize(circuit.num_dffs());
    f.write_u64(timing.clock_period());
    let trace = &golden.trace;
    f.write_u64(trace.num_cycles());
    f.write_bool(trace.halted());
    f.write_bytes(trace.program_output());
    f.write_usize(cycles.len());
    for &cy in cycles {
        f.write_u64(cy);
        for &word in trace.state_at(cy) {
            f.write_u64(word);
        }
    }
    f.write_usize(items.len());
    for &i in items {
        f.write_usize(i);
    }
    f.write_usize(fractions.len());
    for &fr in fractions {
        f.write_f64(fr);
    }
    f.write_u64(due_slack);
    f.write_bool(orace);
    f.finish()
}

/// Digest of the engine knobs that shape the *counters* without changing
/// results: `lanes`, `timing_lanes`, `incremental` and `delta_timing` all
/// leave reports byte-identical but move work between counters, so a
/// checkpoint written under one knob set cannot be merged under another
/// without breaking the stats-identity guarantee. `threads` is
/// deliberately absent — every counter is thread-count invariant, which is
/// exactly what lets an interrupted 8-thread campaign resume on 2 threads.
///
/// The adaptive sampling policy (`ci_target`, `strata`, `sample_seed`)
/// hashes in only when adaptive sampling is **on**: the policy then
/// decides *which sites were simulated*, so resuming across a policy
/// drift must be rejected. With adaptive sampling off the trio is inert
/// and deliberately excluded — changing an unused `strata` default must
/// not invalidate a uniform run's checkpoint.
#[allow(clippy::too_many_arguments)]
fn knob_hash(
    lanes: usize,
    timing_lanes: usize,
    incremental: bool,
    delta_timing: bool,
    collapse: bool,
    ci_target: Option<f64>,
    strata: usize,
    sample_seed: u64,
) -> u64 {
    let mut f = Fingerprint::new();
    f.write_usize(lanes);
    f.write_usize(timing_lanes);
    f.write_bool(incremental);
    f.write_bool(delta_timing);
    f.write_bool(collapse);
    match ci_target {
        None => f.write_bool(false),
        Some(target) => {
            f.write_bool(true);
            f.write_f64(target);
            f.write_usize(strata);
            f.write_u64(sample_seed);
        }
    }
    f.finish()
}

/// The opened (or absent) checkpoint side of one observed campaign run.
struct ObservedSetup {
    store: Option<Mutex<CheckpointStore>>,
    /// Snapshot of the resumed units, readable without locking the store.
    resumed: BTreeMap<u64, String>,
}

fn open_store(
    checkpoint: &Option<CheckpointSpec>,
    kind: &str,
    fingerprint: u64,
    knobs: u64,
) -> Result<ObservedSetup, String> {
    match checkpoint {
        None => Ok(ObservedSetup {
            store: None,
            resumed: BTreeMap::new(),
        }),
        Some(spec) => {
            let store = CheckpointStore::open(spec, kind, fingerprint, knobs)?;
            let resumed = store.resumed_units().clone();
            Ok(ObservedSetup {
                store: Some(Mutex::new(store)),
                resumed,
            })
        }
    }
}

/// Minimum spacing of intermediate heartbeats (a shard's first and last
/// units always beat).
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(250);

/// Per-worker observability state: emits heartbeats/stats deltas, records
/// completed units into the shared checkpoint store, and accumulates the
/// shard's phase timers. All clock reads are gated on `S::ENABLED`, so a
/// disabled sink never touches a clock.
struct ShardObserver<'a, S: TelemetrySink> {
    telemetry: &'a S,
    store: Option<&'a Mutex<CheckpointStore>>,
    shard: usize,
    total: usize,
    done: usize,
    started: Option<Instant>,
    last_beat: Option<Instant>,
    pending_stats: InjectorStats,
    phases: PhaseTotals,
}

impl<'a, S: TelemetrySink> ShardObserver<'a, S> {
    fn new(
        telemetry: &'a S,
        store: Option<&'a Mutex<CheckpointStore>>,
        shard: usize,
        total: usize,
    ) -> Self {
        ShardObserver {
            telemetry,
            store,
            shard,
            total,
            done: 0,
            started: S::ENABLED.then(Instant::now),
            last_beat: None,
            pending_stats: InjectorStats::default(),
            phases: PhaseTotals::default(),
        }
    }

    /// Marks one unit complete: persists `payload` (fresh units only;
    /// resumed units are already in the store) and emits heartbeat +
    /// stats-delta events when due.
    fn unit_done(
        &mut self,
        key: u64,
        payload: Option<String>,
        stats_delta: Option<&InjectorStats>,
    ) -> Result<(), String> {
        self.done += 1;
        if let (Some(store), Some(payload)) = (self.store, payload) {
            let mut store = store
                .lock()
                .map_err(|_| "checkpoint store poisoned".to_string())?;
            let flushed = store.record(key, payload)?;
            if S::ENABLED && flushed {
                let completed_units = store.completed();
                drop(store);
                self.telemetry
                    .emit(&TelemetryEvent::CheckpointFlush { completed_units });
            }
        }
        if S::ENABLED {
            if let Some(delta) = stats_delta {
                self.pending_stats.merge(delta);
            }
            let now = Instant::now();
            let due = self.done == 1
                || self.done == self.total
                || self
                    .last_beat
                    .is_none_or(|t| now.duration_since(t) >= HEARTBEAT_INTERVAL);
            if due {
                self.last_beat = Some(now);
                let elapsed = self
                    .started
                    .map_or(0.0, |s| now.duration_since(s).as_secs_f64());
                let (units_per_sec, eta_s) = heartbeat_rates(self.done, self.total, elapsed);
                self.telemetry.emit(&TelemetryEvent::ShardHeartbeat {
                    shard: self.shard,
                    done: self.done,
                    total: self.total,
                    units_per_sec,
                    eta_s,
                });
                if stats_delta.is_some() {
                    self.telemetry.emit(&TelemetryEvent::StatsDelta {
                        shard: self.shard,
                        stats: self.pending_stats,
                    });
                    self.pending_stats = InjectorStats::default();
                }
            }
        }
        Ok(())
    }

    /// Emits the shard's phase-timer totals (once, when the shard ends).
    fn finish(self) {
        if S::ENABLED {
            self.telemetry.emit(&TelemetryEvent::PhaseTimers {
                shard: self.shard,
                phases: self.phases,
            });
        }
    }
}

/// Heartbeat rate math: `(units_per_sec, eta_s)` from the units completed,
/// the shard total and the elapsed seconds. Degenerate inputs — zero
/// elapsed time on an instantaneous first unit, or zero completed units —
/// yield `0.0` rather than NaN/∞: the JSONL layer would render non-finite
/// numbers as `0.000` anyway, but never producing them keeps `eta_s`
/// honest at the source. The remaining-unit count saturates so a `done`
/// overshoot can never panic the telemetry path.
fn heartbeat_rates(done: usize, total: usize, elapsed: f64) -> (f64, f64) {
    let units_per_sec = if elapsed > 0.0 {
        done as f64 / elapsed
    } else {
        0.0
    };
    let eta_s = if units_per_sec > 0.0 {
        total.saturating_sub(done) as f64 / units_per_sec
    } else {
        0.0
    };
    (units_per_sec, eta_s)
}

/// Runs `f`, adding its wall-clock microseconds to `acc` when `enabled`.
/// The disabled branch is the bare call — no clock read at all.
fn timed<T>(enabled: bool, acc: &mut u64, f: impl FnOnce() -> T) -> T {
    if enabled {
        let t0 = Instant::now();
        let r = f();
        *acc += t0.elapsed().as_micros() as u64;
        r
    } else {
        f()
    }
}

/// Emits a `campaign_start`, runs `body`, emits the matching
/// `campaign_end`, and performs the final checkpoint flush.
fn observe_campaign<R, S: TelemetrySink>(
    ctx: &RunContext<'_, S>,
    setup: &ObservedSetup,
    campaign: &str,
    units: usize,
    threads: usize,
    body: impl FnOnce() -> Result<R, String>,
) -> Result<R, String> {
    let t0 = S::ENABLED.then(Instant::now);
    if S::ENABLED {
        ctx.telemetry.emit(&TelemetryEvent::CampaignStart {
            campaign,
            units,
            threads,
            resumed_units: setup.resumed.len(),
        });
    }
    let result = body()?;
    if let Some(store) = &setup.store {
        store
            .lock()
            .map_err(|_| "checkpoint store poisoned".to_string())?
            .flush()?;
    }
    if S::ENABLED {
        let wall_ms = t0.map_or(0, |t| t.elapsed().as_millis() as u64);
        ctx.telemetry.emit(&TelemetryEvent::CampaignEnd {
            campaign,
            units,
            wall_ms,
        });
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// Checkpoint unit-payload codecs. One line per completed unit; whitespace
// tokens only (see the checkpoint module docs for the file format).
// ---------------------------------------------------------------------------

fn encode_class(class: FailureClass) -> char {
    match class {
        FailureClass::Masked => 'M',
        FailureClass::Sdc => 'S',
        FailureClass::Due => 'D',
    }
}

fn decode_class(tok: char) -> Result<FailureClass, String> {
    match tok {
        'M' => Ok(FailureClass::Masked),
        'S' => Ok(FailureClass::Sdc),
        'D' => Ok(FailureClass::Due),
        other => Err(format!(
            "checkpoint parse error: bad failure class `{other}`"
        )),
    }
}

fn encode_stats(out: &mut String, s: &InjectorStats) {
    let _ = write!(
        out,
        " stats {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        s.static_filtered,
        s.toggle_filtered,
        s.event_sims,
        s.replays,
        s.replay_cache_hits,
        s.replay_cycles,
        s.gates_evaluated,
        s.incremental_replays,
        s.full_replay_fallbacks,
        s.batched_replays,
        s.lanes_occupied,
        s.lane_slots,
        s.golden_waveform_builds,
        s.delta_events,
        s.delta_early_exits,
        s.full_event_fallbacks,
        s.batched_timing_replays,
        s.timing_lanes_occupied,
        s.timing_lane_slots,
        s.collapsed_edges,
        s.class_representatives,
        s.formally_discharged_ace,
        s.formally_discharged_unace,
        s.strata_active,
        s.strata_retired_early,
        s.adaptive_replays_saved
    );
}

fn decode_stats(t: &mut Tokens<'_>) -> Result<InjectorStats, String> {
    t.expect("stats")?;
    Ok(InjectorStats {
        static_filtered: t.next_u64("static_filtered")?,
        toggle_filtered: t.next_u64("toggle_filtered")?,
        event_sims: t.next_u64("event_sims")?,
        replays: t.next_u64("replays")?,
        replay_cache_hits: t.next_u64("replay_cache_hits")?,
        replay_cycles: t.next_u64("replay_cycles")?,
        gates_evaluated: t.next_u64("gates_evaluated")?,
        incremental_replays: t.next_u64("incremental_replays")?,
        full_replay_fallbacks: t.next_u64("full_replay_fallbacks")?,
        batched_replays: t.next_u64("batched_replays")?,
        lanes_occupied: t.next_u64("lanes_occupied")?,
        lane_slots: t.next_u64("lane_slots")?,
        golden_waveform_builds: t.next_u64("golden_waveform_builds")?,
        delta_events: t.next_u64("delta_events")?,
        delta_early_exits: t.next_u64("delta_early_exits")?,
        full_event_fallbacks: t.next_u64("full_event_fallbacks")?,
        batched_timing_replays: t.next_u64("batched_timing_replays")?,
        timing_lanes_occupied: t.next_u64("timing_lanes_occupied")?,
        timing_lane_slots: t.next_u64("timing_lane_slots")?,
        collapsed_edges: t.next_u64("collapsed_edges")?,
        class_representatives: t.next_u64("class_representatives")?,
        formally_discharged_ace: t.next_u64("formally_discharged_ace")?,
        formally_discharged_unace: t.next_u64("formally_discharged_unace")?,
        strata_active: t.next_u64("strata_active")?,
        strata_retired_early: t.next_u64("strata_retired_early")?,
        adaptive_replays_saved: t.next_u64("adaptive_replays_saved")?,
    })
}

fn encode_failures(out: &mut String, entries: &[(Vec<DffId>, FailureClass)]) {
    let _ = write!(out, " fc {}", entries.len());
    for (set, class) in entries {
        let _ = write!(out, " {} {}", encode_class(*class), set.len());
        for d in set {
            let _ = write!(out, " {}", d.index());
        }
    }
}

fn decode_failures(t: &mut Tokens<'_>) -> Result<Vec<(Vec<DffId>, FailureClass)>, String> {
    t.expect("fc")?;
    let k = t.next_usize("failure-cache entry count")?;
    let mut entries = Vec::with_capacity(k);
    for _ in 0..k {
        let class_tok = t.next_str("failure class")?;
        let mut chars = class_tok.chars();
        let class = decode_class(chars.next().unwrap_or(' '))?;
        if chars.next().is_some() {
            return Err(format!(
                "checkpoint parse error: bad failure class `{class_tok}`"
            ));
        }
        let len = t.next_usize("flip-set length")?;
        let mut set = Vec::with_capacity(len);
        for _ in 0..len {
            set.push(DffId::from_index(t.next_usize("flip-set dff")?));
        }
        entries.push((set, class));
    }
    Ok(entries)
}

fn encode_rows(out: &mut String, rows: &[DelayAvfResult]) {
    let _ = write!(out, "rows {}", rows.len());
    for r in rows {
        let _ = write!(
            out,
            " {} {} {} {} {} {} {}",
            r.injections,
            r.static_hits,
            r.dynamic_hits,
            r.delay_ace_hits,
            r.sdc_hits,
            r.due_hits,
            r.multi_bit_hits
        );
        if let Some(o) = &r.orace {
            let _ = write!(out, " {} {} {}", o.or_hits, o.interference, o.compounding);
        }
    }
}

fn decode_rows(t: &mut Tokens<'_>, config: &CampaignConfig) -> Result<Vec<DelayAvfResult>, String> {
    t.expect("rows")?;
    let n = t.next_usize("row count")?;
    if n != config.delay_fractions.len() {
        return Err(format!(
            "checkpoint parse error: {n} rows != {} configured fractions",
            config.delay_fractions.len()
        ));
    }
    let mut rows = empty_rows(config);
    for row in &mut rows {
        row.injections = t.next_usize("injections")?;
        row.static_hits = t.next_usize("static_hits")?;
        row.dynamic_hits = t.next_usize("dynamic_hits")?;
        row.delay_ace_hits = t.next_usize("delay_ace_hits")?;
        row.sdc_hits = t.next_usize("sdc_hits")?;
        row.due_hits = t.next_usize("due_hits")?;
        row.multi_bit_hits = t.next_usize("multi_bit_hits")?;
        if let Some(o) = row.orace.as_mut() {
            o.or_hits = t.next_usize("or_hits")?;
            o.interference = t.next_usize("interference")?;
            o.compounding = t.next_usize("compounding")?;
        }
    }
    Ok(rows)
}

fn encode_delay_unit(
    rows: &[DelayAvfResult],
    stats: &InjectorStats,
    failures: &[(Vec<DffId>, FailureClass)],
) -> String {
    let mut out = String::new();
    encode_rows(&mut out, rows);
    encode_stats(&mut out, stats);
    encode_failures(&mut out, failures);
    out
}

type DelayUnit = (
    Vec<DelayAvfResult>,
    InjectorStats,
    Vec<(Vec<DffId>, FailureClass)>,
);

fn decode_delay_unit(payload: &str, config: &CampaignConfig) -> Result<DelayUnit, String> {
    let mut t = Tokens::new(payload);
    let rows = decode_rows(&mut t, config)?;
    let stats = decode_stats(&mut t)?;
    let failures = decode_failures(&mut t)?;
    if !t.finished() {
        return Err("checkpoint parse error: trailing payload tokens".into());
    }
    Ok((rows, stats, failures))
}

/// Adaptive sweep units additionally persist the per-site visibility
/// flags (fraction-major over the unit's selected edges, `1` = visible)
/// the plan's stratum tallies are rebuilt from on resume.
fn encode_adaptive_sweep_unit(
    rows: &[DelayAvfResult],
    vis: &[bool],
    stats: &InjectorStats,
    failures: &[(Vec<DffId>, FailureClass)],
) -> String {
    let mut out = String::new();
    encode_rows(&mut out, rows);
    out.push_str(" vis .");
    out.extend(vis.iter().map(|&v| if v { '1' } else { '0' }));
    encode_stats(&mut out, stats);
    encode_failures(&mut out, failures);
    out
}

type AdaptiveSweepUnit = (
    Vec<DelayAvfResult>,
    Vec<bool>,
    InjectorStats,
    Vec<(Vec<DffId>, FailureClass)>,
);

fn decode_adaptive_sweep_unit(
    payload: &str,
    config: &CampaignConfig,
    expected_sites: usize,
) -> Result<AdaptiveSweepUnit, String> {
    let mut t = Tokens::new(payload);
    let rows = decode_rows(&mut t, config)?;
    t.expect("vis")?;
    let tok = t.next_str("visibility string")?;
    let body = tok
        .strip_prefix('.')
        .ok_or_else(|| format!("checkpoint parse error: bad visibility string `{tok}`"))?;
    let vis: Vec<bool> = body
        .chars()
        .map(|c| match c {
            '1' => Ok(true),
            '0' => Ok(false),
            other => Err(format!(
                "checkpoint parse error: bad visibility flag `{other}`"
            )),
        })
        .collect::<Result<_, _>>()?;
    if vis.len() != expected_sites * config.delay_fractions.len() {
        return Err(format!(
            "checkpoint parse error: {} visibility flags != {} sites × {} fractions",
            vis.len(),
            expected_sites,
            config.delay_fractions.len()
        ));
    }
    let stats = decode_stats(&mut t)?;
    let failures = decode_failures(&mut t)?;
    if !t.finished() {
        return Err("checkpoint parse error: trailing payload tokens".into());
    }
    Ok((rows, vis, stats, failures))
}

fn encode_savf_unit(
    result: &SavfResult,
    stats: &InjectorStats,
    failures: &[(Vec<DffId>, FailureClass)],
) -> String {
    let mut out = format!("{} {}", result.injections, result.ace_hits);
    encode_stats(&mut out, stats);
    encode_failures(&mut out, failures);
    out
}

type SavfUnit = (SavfResult, InjectorStats, Vec<(Vec<DffId>, FailureClass)>);

fn decode_savf_unit(payload: &str) -> Result<SavfUnit, String> {
    let mut t = Tokens::new(payload);
    let result = SavfResult {
        injections: t.next_usize("injections")?,
        ace_hits: t.next_usize("ace_hits")?,
    };
    let stats = decode_stats(&mut t)?;
    let failures = decode_failures(&mut t)?;
    if !t.finished() {
        return Err("checkpoint parse error: trailing payload tokens".into());
    }
    Ok((result, stats, failures))
}

fn encode_records_unit(
    records: &[InjectionRecord],
    failures: &[(Vec<DffId>, FailureClass)],
) -> String {
    let mut out = String::new();
    let _ = write!(out, "rec {}", records.len());
    for r in records {
        let _ = write!(
            out,
            " {} {} {} {}",
            r.edge.index(),
            r.outcome.statically_reachable,
            encode_class(r.outcome.class),
            r.outcome.dynamic_set.len()
        );
        for d in &r.outcome.dynamic_set {
            let _ = write!(out, " {}", d.index());
        }
    }
    encode_failures(&mut out, failures);
    out
}

type RecordsUnit = (Vec<InjectionRecord>, Vec<(Vec<DffId>, FailureClass)>);

fn decode_records_unit(payload: &str, cycle: u64) -> Result<RecordsUnit, String> {
    let mut t = Tokens::new(payload);
    t.expect("rec")?;
    let m = t.next_usize("record count")?;
    let mut records = Vec::with_capacity(m);
    for _ in 0..m {
        let edge = EdgeId::from_index(t.next_usize("record edge")?);
        let statically_reachable = t.next_usize("statically reachable count")?;
        let class_tok = t.next_str("record class")?;
        let class = decode_class(class_tok.chars().next().unwrap_or(' '))?;
        let len = t.next_usize("dynamic-set length")?;
        let mut dynamic_set = Vec::with_capacity(len);
        for _ in 0..len {
            dynamic_set.push(DffId::from_index(t.next_usize("dynamic-set dff")?));
        }
        records.push(InjectionRecord {
            cycle,
            edge,
            outcome: InjectionOutcome {
                statically_reachable,
                dynamic_set,
                visible: class.is_visible(),
                class,
            },
        });
    }
    let failures = decode_failures(&mut t)?;
    if !t.finished() {
        return Err("checkpoint parse error: trailing payload tokens".into());
    }
    Ok((records, failures))
}

/// Per-bit payloads store each cycle's classification as one character,
/// with a leading `.` so an empty cycle list still yields a token.
fn encode_per_bit_unit<E: Environment + Clone>(
    injector: &Injector<'_, E>,
    dff: DffId,
    cycles: &[u64],
) -> String {
    let mut out = String::from("cls .");
    for &cycle in cycles {
        let class = injector
            .cached_failure(cycle, &[dff])
            .expect("per-bit unit was just classified");
        out.push(encode_class(class));
    }
    out
}

fn decode_per_bit_unit(payload: &str, expected: usize) -> Result<Vec<FailureClass>, String> {
    let mut t = Tokens::new(payload);
    t.expect("cls")?;
    let tok = t.next_str("class string")?;
    let body = tok
        .strip_prefix('.')
        .ok_or_else(|| format!("checkpoint parse error: bad class string `{tok}`"))?;
    let classes: Vec<FailureClass> = body.chars().map(decode_class).collect::<Result<_, _>>()?;
    if classes.len() != expected || !t.finished() {
        return Err(format!(
            "checkpoint parse error: {} classes != {expected} expected",
            classes.len(),
        ));
    }
    Ok(classes)
}

/// Per-cycle payloads of the *adaptive* per-bit campaign: one class per
/// flip-flop of the structure at a single cycle (the transpose of the
/// legacy per-bit unit).
fn encode_per_bit_cycle_unit<E: Environment + Clone>(
    injector: &Injector<'_, E>,
    dffs: &[DffId],
    cycle: u64,
) -> String {
    let mut out = String::from("cls .");
    for &dff in dffs {
        let class = injector
            .cached_failure(cycle, &[dff])
            .expect("per-bit cycle unit was just classified");
        out.push(encode_class(class));
    }
    out
}

fn merge_rows(into: &mut [DelayAvfResult], from: &[DelayAvfResult]) {
    for (row, part) in into.iter_mut().zip(from) {
        row.merge(part);
    }
}

/// Folds one injection outcome into a result row (shared by the sweep and
/// the record-keeping campaign so their accounting cannot diverge).
fn tally(row: &mut DelayAvfResult, outcome: &InjectionOutcome) {
    row.injections += 1;
    if outcome.statically_reachable > 0 {
        row.static_hits += 1;
    }
    if !outcome.dynamic_set.is_empty() {
        row.dynamic_hits += 1;
        if outcome.is_multi_bit() {
            row.multi_bit_hits += 1;
        }
    }
    if outcome.visible {
        row.delay_ace_hits += 1;
        match outcome.class {
            FailureClass::Sdc => row.sdc_hits += 1,
            FailureClass::Due => row.due_hits += 1,
            FailureClass::Masked => unreachable!("visible"),
        }
    }
}

/// One empty result row per configured delay fraction.
fn empty_rows(config: &CampaignConfig) -> Vec<DelayAvfResult> {
    config
        .delay_fractions
        .iter()
        .map(|&fraction| DelayAvfResult {
            delay_fraction: fraction,
            orace: config.compute_orace.then(OraceStats::default),
            ..DelayAvfResult::default()
        })
        .collect()
}

/// One DelayAVF work unit: the full fraction sweep at a single trace
/// cycle. Cycle-outer iteration makes every unit's contribution (row
/// deltas, counter deltas, the failure-cache entries at boundary
/// `cycle + 1`) independent of which other units ran — the invariant the
/// checkpoint layer builds on — and lets all fractions share one golden
/// waveform build and one cycle reconstruction.
fn delay_sweep_unit<E: Environment + Clone>(
    injector: &mut Injector<'_, E>,
    timing: &TimingModel,
    edges: &[EdgeId],
    config: &CampaignConfig,
    cycle: u64,
    time_phases: bool,
    phases: &mut PhaseTotals,
) -> Vec<DelayAvfResult> {
    delay_sweep_unit_vis(injector, timing, edges, config, cycle, time_phases, phases).0
}

/// [`delay_sweep_unit`] additionally returning each injection's
/// program-visibility flag in tally order (fraction-major, edge-minor) —
/// the per-site signal the adaptive sampler's stratum tallies consume.
/// The shared body keeps the two paths' accounting identical by
/// construction.
fn delay_sweep_unit_vis<E: Environment + Clone>(
    injector: &mut Injector<'_, E>,
    timing: &TimingModel,
    edges: &[EdgeId],
    config: &CampaignConfig,
    cycle: u64,
    time_phases: bool,
    phases: &mut PhaseTotals,
) -> (Vec<DelayAvfResult>, Vec<bool>) {
    let mut vis = Vec::with_capacity(config.delay_fractions.len() * edges.len());
    let mut rows = empty_rows(config);
    // Golden-settle phase: reconstruct the cycle context once for every
    // fraction and edge injected here (touches no counters, so timing it
    // separately cannot perturb the deterministic report path).
    timed(time_phases, &mut phases.golden_settle_us, || {
        injector.warm_cycle_data(cycle)
    });
    if edges.is_empty() {
        return (rows, vis);
    }
    // Phase 1 (timing-aware): one lane-packing pass over the whole cycle.
    // Every fraction's (edge, extra) pairs are handed to the batch carver
    // together, fraction-major, so the per-pair filter decisions and the
    // scalar fallback run in exactly the per-fraction loop's order while
    // survivors from *different* fractions share lanes whenever their
    // edges don't conflict (the carver keeps same-edge/different-extra
    // pairs apart, which the packed engine would retire anyway).
    let pairs: Vec<(EdgeId, Picos)> = config
        .delay_fractions
        .iter()
        .flat_map(|&fraction| {
            let extra = fraction_to_picos(timing, fraction);
            edges.iter().map(move |&edge| (edge, extra))
        })
        .collect();
    let mut parts: Vec<(usize, Vec<DffId>)> =
        timed(time_phases, &mut phases.timing_step_us, || {
            injector.dynamically_reachable_batch(cycle, &pairs)
        });
    for (fi, parts) in parts.chunks_mut(edges.len()).enumerate() {
        timed(time_phases, &mut phases.replay_us, || {
            // Phase 2: batch the whole boundary's replays — group sets and,
            // for ORACE, the individual bits they contain.
            injector.prefill_failures(cycle + 1, parts.iter().map(|(_, set)| set.clone()));
            if config.compute_orace {
                injector.prefill_failures(
                    cycle + 1,
                    parts
                        .iter()
                        .flat_map(|(_, set)| set.iter().map(|&d| vec![d])),
                );
            }
            // Phase 3 (cache-served): identical tally order to the scalar
            // engine's interleaved loop.
            for (statically_reachable, dynamic_set) in parts.iter_mut() {
                let outcome = injector.classify_injection(
                    cycle,
                    *statically_reachable,
                    std::mem::take(dynamic_set),
                );
                vis.push(outcome.visible);
                tally(&mut rows[fi], &outcome);
                if config.compute_orace && !outcome.dynamic_set.is_empty() {
                    let or = injector.or_ace(cycle + 1, &outcome.dynamic_set);
                    let o = rows[fi].orace.as_mut().expect("orace rows configured");
                    if or {
                        o.or_hits += 1;
                    }
                    if or && !outcome.visible {
                        o.interference += 1;
                    }
                    if !or && outcome.visible {
                        o.compounding += 1;
                    }
                }
            }
        });
    }
    (rows, vis)
}

/// Runs a DelayAVF sweep: every sampled cycle × every given edge × every
/// delay fraction. Returns one [`DelayAvfResult`] per delay fraction, in
/// the configured order.
///
/// The denominator of each result counts all (edge, cycle) injections, so
/// `DelayAvfResult::delay_avf` directly instantiates Equation 3 over the
/// sample.
pub fn delay_avf_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    config: &CampaignConfig,
) -> Vec<DelayAvfResult> {
    delay_avf_campaign_with_stats(circuit, topo, timing, golden, edges, config).0
}

/// Like [`delay_avf_campaign`], also returning the merged engine counters
/// of all workers (used for §V-C prefilter reporting and by the
/// determinism tests; identical for every thread count).
pub fn delay_avf_campaign_with_stats<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    config: &CampaignConfig,
) -> (Vec<DelayAvfResult>, InjectorStats) {
    delay_avf_campaign_observed(
        circuit,
        topo,
        timing,
        golden,
        edges,
        config,
        &RunContext::disabled(),
    )
    .expect("campaign without checkpointing is infallible")
}

/// [`delay_avf_campaign_with_stats`] under a [`RunContext`]: emits the
/// structured telemetry stream and, when a checkpoint is configured,
/// periodically snapshots completed cycle units and/or resumes from a
/// previous snapshot. Resumed runs produce byte-identical reports and
/// identical merged stats to uninterrupted ones for any
/// `threads × lanes × delta_timing` combination (the knob hash rejects
/// resumes across `lanes`/`incremental`/`delta_timing` changes, which
/// would silently break the *stats* identity; `threads` may change
/// freely).
///
/// # Errors
///
/// Fails on checkpoint I/O errors and on resuming against a mismatched or
/// corrupt checkpoint file (`checkpoint mismatch` / `checkpoint parse
/// error`). Never fails when `ctx.checkpoint` is `None`.
pub fn delay_avf_campaign_observed<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    config: &CampaignConfig,
    ctx: &RunContext<'_, S>,
) -> Result<(Vec<DelayAvfResult>, InjectorStats), String> {
    if config.ci_target.is_some() {
        return delay_avf_campaign_adaptive(circuit, topo, timing, golden, edges, config, ctx);
    }
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(config.threads, cycles.len());
    let items: Vec<usize> = edges.iter().map(|e| e.index()).collect();
    let fingerprint = campaign_fingerprint(
        "delay_sweep",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &config.delay_fractions,
        config.due_slack,
        config.compute_orace,
    );
    let knobs = knob_hash(
        config.lanes,
        config.timing_lanes,
        config.incremental,
        config.delta_timing,
        config.collapse,
        config.ci_target,
        config.strata,
        config.sample_seed,
    );
    let setup = open_store(&ctx.checkpoint, "delay_sweep", fingerprint, knobs)?;
    observe_campaign(ctx, &setup, "delay_sweep", cycles.len(), threads, || {
        let store = setup.store.as_ref();
        let resumed = &setup.resumed;
        let shards = run_sharded(threads, &cycles, |shard_id, shard| {
            let mut injector = shard_injector(
                circuit,
                topo,
                timing,
                golden,
                config.due_slack,
                config.incremental,
                config.delta_timing,
                config.lanes,
                config.timing_lanes,
                config.collapse,
            );
            let mut rows = empty_rows(config);
            let mut stats = InjectorStats::default();
            let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
            for &cycle in shard {
                if let Some(payload) = resumed.get(&cycle) {
                    let (unit_rows, unit_stats, failures) = decode_delay_unit(payload, config)?;
                    injector.preload_failures(cycle + 1, failures);
                    merge_rows(&mut rows, &unit_rows);
                    stats.merge(&unit_stats);
                    obs.unit_done(cycle, None, Some(&unit_stats))?;
                    continue;
                }
                let before = injector.stats;
                let unit_rows = delay_sweep_unit(
                    &mut injector,
                    timing,
                    edges,
                    config,
                    cycle,
                    S::ENABLED,
                    &mut obs.phases,
                );
                let delta = injector.stats.delta_since(&before);
                let payload = store.is_some().then(|| {
                    encode_delay_unit(&unit_rows, &delta, &injector.snapshot_failures(cycle + 1))
                });
                merge_rows(&mut rows, &unit_rows);
                stats.merge(&delta);
                obs.unit_done(cycle, payload, Some(&delta))?;
            }
            obs.finish();
            Ok::<_, String>((rows, stats))
        });
        let mut rows = empty_rows(config);
        let mut stats = InjectorStats::default();
        for shard in shards {
            let (shard_rows, shard_stats) = shard?;
            merge_rows(&mut rows, &shard_rows);
            stats.merge(&shard_stats);
        }
        Ok((rows, stats))
    })
}

/// Runs a particle-strike campaign: a single bit flip in each of `dffs` at
/// every sampled cycle, classic single-bit ACE analysis (Equation 1).
/// `opts.threads = 0` uses one worker per available core.
pub fn savf_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
) -> SavfResult {
    savf_campaign_with_stats(circuit, topo, timing, golden, dffs, opts).0
}

/// Like [`savf_campaign`], also returning the merged engine counters.
pub fn savf_campaign_with_stats<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
) -> (SavfResult, InjectorStats) {
    savf_campaign_observed(
        circuit,
        topo,
        timing,
        golden,
        dffs,
        opts,
        &RunContext::disabled(),
    )
    .expect("campaign without checkpointing is infallible")
}

/// [`savf_campaign_with_stats`] under a [`RunContext`]; see
/// [`delay_avf_campaign_observed`] for the checkpoint/resume and telemetry
/// semantics (work units are trace cycles here too, classified at
/// boundary `cycle` per the strike-model convention).
///
/// # Errors
///
/// Same failure modes as [`delay_avf_campaign_observed`].
pub fn savf_campaign_observed<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
    ctx: &RunContext<'_, S>,
) -> Result<(SavfResult, InjectorStats), String> {
    if opts.ci_target.is_some() {
        return savf_campaign_adaptive(circuit, topo, timing, golden, dffs, opts, ctx);
    }
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(opts.threads, cycles.len());
    let items: Vec<usize> = dffs.iter().map(|d| d.index()).collect();
    let fingerprint = campaign_fingerprint(
        "savf",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &[],
        opts.due_slack,
        false,
    );
    let knobs = knob_hash(
        opts.lanes,
        opts.timing_lanes,
        opts.incremental,
        opts.delta_timing,
        opts.collapse,
        opts.ci_target,
        opts.strata,
        opts.sample_seed,
    );
    let setup = open_store(&ctx.checkpoint, "savf", fingerprint, knobs)?;
    observe_campaign(ctx, &setup, "savf", cycles.len(), threads, || {
        let store = setup.store.as_ref();
        let resumed = &setup.resumed;
        let shards = run_sharded(threads, &cycles, |shard_id, shard| {
            let mut injector = shard_injector(
                circuit,
                topo,
                timing,
                golden,
                opts.due_slack,
                opts.incremental,
                opts.delta_timing,
                opts.lanes,
                opts.timing_lanes,
                opts.collapse,
            );
            let mut result = SavfResult::default();
            let mut stats = InjectorStats::default();
            let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
            for &cycle in shard {
                if let Some(payload) = resumed.get(&cycle) {
                    let (unit_result, unit_stats, failures) = decode_savf_unit(payload)?;
                    injector.preload_failures(cycle, failures);
                    result.merge(&unit_result);
                    stats.merge(&unit_stats);
                    obs.unit_done(cycle, None, Some(&unit_stats))?;
                    continue;
                }
                let before = injector.stats;
                let mut unit = SavfResult::default();
                timed(S::ENABLED, &mut obs.phases.replay_us, || {
                    injector.prefill_failures(cycle, dffs.iter().map(|&d| vec![d]));
                    for &dff in dffs {
                        unit.injections += 1;
                        if injector.bit_ace(cycle, dff) {
                            unit.ace_hits += 1;
                        }
                    }
                });
                let delta = injector.stats.delta_since(&before);
                let payload = store
                    .is_some()
                    .then(|| encode_savf_unit(&unit, &delta, &injector.snapshot_failures(cycle)));
                result.merge(&unit);
                stats.merge(&delta);
                obs.unit_done(cycle, payload, Some(&delta))?;
            }
            obs.finish();
            Ok::<_, String>((result, stats))
        });
        let mut result = SavfResult::default();
        let mut stats = InjectorStats::default();
        for shard in shards {
            let (shard_result, shard_stats) = shard?;
            result.merge(&shard_result);
            stats.merge(&shard_stats);
        }
        Ok((result, stats))
    })
}

/// Like [`delay_avf_campaign`] for a **single** delay fraction, but also
/// returning every injection's record (cycle, edge, dynamic set,
/// visibility) for downstream analyses such as Razor protection planning
/// ([`crate::razor`]). Records come back in (cycle, edge) sampling order
/// regardless of `opts.threads`.
pub fn delay_avf_campaign_records<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    fraction: f64,
    opts: ReplayOptions,
) -> (DelayAvfResult, Vec<InjectionRecord>) {
    delay_avf_campaign_records_observed(
        circuit,
        topo,
        timing,
        golden,
        edges,
        fraction,
        opts,
        &RunContext::disabled(),
    )
    .expect("campaign without checkpointing is infallible")
}

/// [`delay_avf_campaign_records`] under a [`RunContext`]; see
/// [`delay_avf_campaign_observed`] for the checkpoint/resume and telemetry
/// semantics. Resumed cycle units replay their serialized records (and the
/// tallies re-derived from them) instead of re-simulating.
///
/// # Errors
///
/// Same failure modes as [`delay_avf_campaign_observed`].
#[allow(clippy::too_many_arguments)]
pub fn delay_avf_campaign_records_observed<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    fraction: f64,
    opts: ReplayOptions,
    ctx: &RunContext<'_, S>,
) -> Result<(DelayAvfResult, Vec<InjectionRecord>), String> {
    if opts.ci_target.is_some() {
        return delay_avf_campaign_records_adaptive(
            circuit, topo, timing, golden, edges, fraction, opts, ctx,
        );
    }
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(opts.threads, cycles.len());
    let extra = fraction_to_picos(timing, fraction);
    let items: Vec<usize> = edges.iter().map(|e| e.index()).collect();
    let fingerprint = campaign_fingerprint(
        "delay_records",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &[fraction],
        opts.due_slack,
        false,
    );
    let knobs = knob_hash(
        opts.lanes,
        opts.timing_lanes,
        opts.incremental,
        opts.delta_timing,
        opts.collapse,
        opts.ci_target,
        opts.strata,
        opts.sample_seed,
    );
    let setup = open_store(&ctx.checkpoint, "delay_records", fingerprint, knobs)?;
    observe_campaign(ctx, &setup, "delay_records", cycles.len(), threads, || {
        let store = setup.store.as_ref();
        let resumed = &setup.resumed;
        let shards = run_sharded(threads, &cycles, |shard_id, shard| {
            let mut injector = shard_injector(
                circuit,
                topo,
                timing,
                golden,
                opts.due_slack,
                opts.incremental,
                opts.delta_timing,
                opts.lanes,
                opts.timing_lanes,
                opts.collapse,
            );
            let mut row = DelayAvfResult {
                delay_fraction: fraction,
                ..DelayAvfResult::default()
            };
            let mut records = Vec::with_capacity(shard.len() * edges.len());
            let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
            for &cycle in shard {
                if let Some(payload) = resumed.get(&cycle) {
                    let (unit_records, failures) = decode_records_unit(payload, cycle)?;
                    injector.preload_failures(cycle + 1, failures);
                    for record in &unit_records {
                        tally(&mut row, &record.outcome);
                    }
                    records.extend(unit_records);
                    obs.unit_done(cycle, None, None)?;
                    continue;
                }
                let unit_start = records.len();
                // Same two-phase structure as the sweep: collect the
                // cycle's dynamic sets, batch their replays, then record in
                // edge order.
                timed(S::ENABLED, &mut obs.phases.golden_settle_us, || {
                    injector.warm_cycle_data(cycle)
                });
                let pairs: Vec<(EdgeId, Picos)> = edges.iter().map(|&edge| (edge, extra)).collect();
                let parts: Vec<(usize, Vec<DffId>)> =
                    timed(S::ENABLED, &mut obs.phases.timing_step_us, || {
                        injector.dynamically_reachable_batch(cycle, &pairs)
                    });
                timed(S::ENABLED, &mut obs.phases.replay_us, || {
                    injector.prefill_failures(cycle + 1, parts.iter().map(|(_, set)| set.clone()));
                    for (&edge, (statically_reachable, dynamic_set)) in edges.iter().zip(parts) {
                        let outcome =
                            injector.classify_injection(cycle, statically_reachable, dynamic_set);
                        tally(&mut row, &outcome);
                        records.push(InjectionRecord {
                            cycle,
                            edge,
                            outcome,
                        });
                    }
                });
                let payload = store.is_some().then(|| {
                    encode_records_unit(
                        &records[unit_start..],
                        &injector.snapshot_failures(cycle + 1),
                    )
                });
                obs.unit_done(cycle, payload, None)?;
            }
            obs.finish();
            Ok::<_, String>((row, records))
        });
        let mut row = DelayAvfResult {
            delay_fraction: fraction,
            ..DelayAvfResult::default()
        };
        let mut records = Vec::new();
        for shard in shards {
            let (shard_row, shard_records) = shard?;
            row.merge(&shard_row);
            records.extend(shard_records);
        }
        Ok((row, records))
    })
}

/// Per-bit sAVF: like [`savf_campaign`] but reporting each flip-flop's
/// individual ACE fraction, so designers can locate a structure's
/// vulnerability *hotspots* (the bits worth hardening first). Sharded over
/// bits; the returned order follows `dffs` regardless of `opts.threads`.
pub fn savf_per_bit_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
) -> Vec<(DffId, SavfResult)> {
    savf_per_bit_campaign_observed(
        circuit,
        topo,
        timing,
        golden,
        dffs,
        opts,
        &RunContext::disabled(),
    )
    .expect("campaign without checkpointing is infallible")
}

/// [`savf_per_bit_campaign`] under a [`RunContext`]. Work units are
/// *bits*: each unit stores its per-cycle classifications, which a resumed
/// run preloads into the failure cache so the bit costs no replays. (The
/// preload changes which scenarios the batch prefill still has to run —
/// harmless, because per-bit results are batch-shape invariant and this
/// campaign exposes no stats.)
///
/// # Errors
///
/// Same failure modes as [`delay_avf_campaign_observed`].
pub fn savf_per_bit_campaign_observed<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
    ctx: &RunContext<'_, S>,
) -> Result<Vec<(DffId, SavfResult)>, String> {
    if opts.ci_target.is_some() {
        return savf_per_bit_campaign_adaptive(circuit, topo, timing, golden, dffs, opts, ctx);
    }
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(opts.threads, dffs.len());
    let items: Vec<usize> = dffs.iter().map(|d| d.index()).collect();
    let fingerprint = campaign_fingerprint(
        "savf_per_bit",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &[],
        opts.due_slack,
        false,
    );
    let knobs = knob_hash(
        opts.lanes,
        opts.timing_lanes,
        opts.incremental,
        opts.delta_timing,
        opts.collapse,
        opts.ci_target,
        opts.strata,
        opts.sample_seed,
    );
    let setup = open_store(&ctx.checkpoint, "savf_per_bit", fingerprint, knobs)?;
    observe_campaign(ctx, &setup, "savf_per_bit", dffs.len(), threads, || {
        let store = setup.store.as_ref();
        let resumed = &setup.resumed;
        let shards = run_sharded(threads, dffs, |shard_id, shard| {
            let mut injector = shard_injector(
                circuit,
                topo,
                timing,
                golden,
                opts.due_slack,
                opts.incremental,
                opts.delta_timing,
                opts.lanes,
                opts.timing_lanes,
                opts.collapse,
            );
            let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
            // Preload every resumed bit's classifications first, so the
            // batch prefill only replays what is genuinely unknown.
            for &dff in shard.iter() {
                if let Some(payload) = resumed.get(&(dff.index() as u64)) {
                    let classes = decode_per_bit_unit(payload, cycles.len())?;
                    for (&cycle, class) in cycles.iter().zip(classes) {
                        injector.preload_failures(cycle, [(vec![dff], class)]);
                    }
                }
            }
            timed(S::ENABLED, &mut obs.phases.replay_us, || {
                for &cycle in &cycles {
                    injector.prefill_failures(cycle, shard.iter().map(|&d| vec![d]));
                }
            });
            let mut out = Vec::with_capacity(shard.len());
            for &dff in shard.iter() {
                let key = dff.index() as u64;
                let was_resumed = resumed.contains_key(&key);
                let mut r = SavfResult::default();
                timed(S::ENABLED, &mut obs.phases.replay_us, || {
                    for &cycle in &cycles {
                        r.injections += 1;
                        if injector.bit_ace(cycle, dff) {
                            r.ace_hits += 1;
                        }
                    }
                });
                out.push((dff, r));
                let payload = (store.is_some() && !was_resumed)
                    .then(|| encode_per_bit_unit(&injector, dff, &cycles));
                obs.unit_done(key, payload, None)?;
            }
            obs.finish();
            Ok::<_, String>(out)
        });
        let mut out = Vec::with_capacity(dffs.len());
        for shard in shards {
            out.extend(shard?);
        }
        Ok(out)
    })
}

/// Runs a **spatial double-bit** particle-strike campaign: simultaneous
/// flips of physically adjacent bit pairs, the multi-bit transient-fault
/// model of Wilkening et al. that the paper contrasts DelayAVF against
/// (§VIII). `dffs` must list a structure's bits in physical order;
/// consecutive entries form the struck pairs.
///
/// Unlike an SDF's dynamically reachable set, these pairs are fixed a
/// priori by layout adjacency — comparing the two campaigns quantifies how
/// much of delay-fault vulnerability spatial models can(not) capture.
///
/// Classification happens at boundary `cycle` (not `cycle + 1` as for
/// SDFs): a strike corrupts state that is already latched, whereas an SDF
/// corrupts the values being latched at the end of the faulty cycle — see
/// the module docs on latch-boundary conventions.
pub fn spatial_double_strike_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
) -> SavfResult {
    spatial_double_strike_campaign_observed(
        circuit,
        topo,
        timing,
        golden,
        dffs,
        opts,
        &RunContext::disabled(),
    )
    .expect("campaign without checkpointing is infallible")
}

/// [`spatial_double_strike_campaign`] under a [`RunContext`]. Work units
/// are cycles; a resumed unit preloads its boundary's pair
/// classifications and replays the tally loop from the warmed cache.
///
/// # Errors
///
/// Same failure modes as [`delay_avf_campaign_observed`].
pub fn spatial_double_strike_campaign_observed<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
    ctx: &RunContext<'_, S>,
) -> Result<SavfResult, String> {
    if opts.ci_target.is_some() {
        return spatial_double_strike_campaign_adaptive(
            circuit, topo, timing, golden, dffs, opts, ctx,
        );
    }
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(opts.threads, cycles.len());
    let items: Vec<usize> = dffs.iter().map(|d| d.index()).collect();
    let fingerprint = campaign_fingerprint(
        "spatial_double",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &[],
        opts.due_slack,
        false,
    );
    let knobs = knob_hash(
        opts.lanes,
        opts.timing_lanes,
        opts.incremental,
        opts.delta_timing,
        opts.collapse,
        opts.ci_target,
        opts.strata,
        opts.sample_seed,
    );
    let setup = open_store(&ctx.checkpoint, "spatial_double", fingerprint, knobs)?;
    observe_campaign(ctx, &setup, "spatial_double", cycles.len(), threads, || {
        let store = setup.store.as_ref();
        let resumed = &setup.resumed;
        let shards = run_sharded(threads, &cycles, |shard_id, shard| {
            let mut injector = shard_injector(
                circuit,
                topo,
                timing,
                golden,
                opts.due_slack,
                opts.incremental,
                opts.delta_timing,
                opts.lanes,
                opts.timing_lanes,
                opts.collapse,
            );
            let mut result = SavfResult::default();
            let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
            for &cycle in shard {
                let was_resumed = if let Some(payload) = resumed.get(&cycle) {
                    let mut t = Tokens::new(payload);
                    let failures = decode_failures(&mut t)?;
                    if !t.finished() {
                        return Err("checkpoint parse error: trailing payload tokens".into());
                    }
                    injector.preload_failures(cycle, failures);
                    true
                } else {
                    false
                };
                let mut unit = SavfResult::default();
                timed(S::ENABLED, &mut obs.phases.replay_us, || {
                    injector.prefill_failures(cycle, dffs.windows(2).map(|p| p.to_vec()));
                    for pair in dffs.windows(2) {
                        unit.injections += 1;
                        if injector.group_ace(cycle, pair) {
                            unit.ace_hits += 1;
                        }
                    }
                });
                result.merge(&unit);
                let payload = (store.is_some() && !was_resumed).then(|| {
                    let mut out = String::new();
                    encode_failures(&mut out, &injector.snapshot_failures(cycle));
                    out.trim_start().to_owned()
                });
                obs.unit_done(cycle, payload, None)?;
            }
            obs.finish();
            Ok::<_, String>(result)
        });
        let mut result = SavfResult::default();
        for shard in shards {
            result.merge(&shard?);
        }
        Ok(result)
    })
}

fn fraction_to_picos(timing: &TimingModel, fraction: f64) -> Picos {
    (timing.clock_period() as f64 * fraction).round() as Picos
}

// ---------------------------------------------------------------------------
// Adaptive stratified sampling (`ci_target` set). Injection sites are
// stratified by cheap static signals — edge static slack and per-cycle
// toggle activity — the replay budget is allocated Neyman-style from the
// running per-stratum tallies, and a stratum retires as soon as every
// estimand's composed Wilson interval is inside the target half-width.
// The uniform paths above are untouched: `ci_target: None` (the default)
// never reaches this section, so legacy reports stay byte-identical.
// ---------------------------------------------------------------------------

/// Validates the adaptive knob pair, normalizing `ci_target` out of its
/// `Option` (callers only branch here when it is set).
fn checked_adaptive(ci_target: Option<f64>, strata: usize) -> Result<(f64, usize), String> {
    let target = validate_ci_target(ci_target.expect("adaptive path requires ci_target"))?;
    let buckets = validate_strata(strata)?;
    Ok((target, buckets))
}

/// Number of flip-flop bits that toggled entering `cycle`: the XOR
/// popcount between the packed golden states at `cycle - 1` and `cycle`.
/// High-activity cycles propagate more transitions and are where delay
/// faults tend to land, so toggle count is one stratification axis.
fn toggle_activity<E: Environment + Clone>(golden: &GoldenRun<E>, cycle: u64) -> u64 {
    let prev = golden.trace.state_at(cycle - 1);
    let cur = golden.trace.state_at(cycle);
    prev.iter()
        .zip(cur)
        .map(|(&a, &b)| u64::from((a ^ b).count_ones()))
        .sum()
}

/// Static slack of `edge`: clock period minus the longest complete path
/// through it (setup included). Tight edges are the likeliest DelayACE
/// candidates, so slack is the second stratification axis for the sweep.
fn edge_static_slack(
    timing: &TimingModel,
    circuit: &Circuit,
    topo: &Topology,
    edge: EdgeId,
) -> u64 {
    let longest = timing
        .edge_slack_entries(circuit, topo, edge)
        .last()
        .map_or(0, |&(path, _)| path);
    timing.clock_period().saturating_sub(longest)
}

/// Stratum labels for cycle-only sites (the particle-strike campaigns):
/// toggle-activity bucket crossed with a trace-phase bucket, so bursty
/// program phases cannot hide inside one homogeneous-looking stratum.
fn cycle_strata<E: Environment + Clone>(
    golden: &GoldenRun<E>,
    cycles: &[u64],
    buckets: usize,
) -> Vec<usize> {
    let toggles: Vec<u64> = cycles
        .iter()
        .map(|&cycle| toggle_activity(golden, cycle))
        .collect();
    let tb = bucket_axis(&toggles, buckets);
    (0..cycles.len())
        .map(|i| tb[i] * buckets + (i * buckets) / cycles.len().max(1))
        .collect()
}

/// Packs a sweep checkpoint key: adaptive rounds may revisit a cycle with
/// a different edge subset, so the unit key embeds the round number.
fn round_key(round: u64, cycle: u64) -> u64 {
    debug_assert!(cycle < (1 << 44), "trace cycle overflows the round key");
    (round << 44) | cycle
}

/// Adaptive counterpart of [`delay_avf_campaign_observed`]: sites are
/// (cycle, edge) pairs stratified by edge static slack × cycle toggle
/// activity, and each round's selected sites are grouped per cycle so the
/// batched unit body (and its caches) still see one latch boundary at a
/// time. Work units are (round, cycle) groups.
fn delay_avf_campaign_adaptive<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    config: &CampaignConfig,
    ctx: &RunContext<'_, S>,
) -> Result<(Vec<DelayAvfResult>, InjectorStats), String> {
    let (ci_target, buckets) = checked_adaptive(config.ci_target, config.strata)?;
    let cycles = valid_cycles(golden);
    let nf = config.delay_fractions.len();
    let toggles: Vec<u64> = cycles
        .iter()
        .map(|&cycle| toggle_activity(golden, cycle))
        .collect();
    let slacks: Vec<u64> = edges
        .iter()
        .map(|&edge| edge_static_slack(timing, circuit, topo, edge))
        .collect();
    let tb = bucket_axis(&toggles, buckets);
    let sb = bucket_axis(&slacks, buckets);
    let site_stratum: Vec<usize> = (0..cycles.len() * edges.len())
        .map(|site| sb[site % edges.len().max(1)] * buckets + tb[site / edges.len().max(1)])
        .collect();
    let mut plan = AdaptivePlan::new(
        site_stratum,
        buckets * buckets,
        nf,
        ci_target,
        config.sample_seed,
    );
    let population = plan.population();
    let items: Vec<usize> = edges.iter().map(|e| e.index()).collect();
    let fingerprint = campaign_fingerprint(
        "delay_sweep_adaptive",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &config.delay_fractions,
        config.due_slack,
        config.compute_orace,
    );
    let knobs = knob_hash(
        config.lanes,
        config.timing_lanes,
        config.incremental,
        config.delta_timing,
        config.collapse,
        config.ci_target,
        config.strata,
        config.sample_seed,
    );
    let setup = open_store(&ctx.checkpoint, "delay_sweep_adaptive", fingerprint, knobs)?;
    let threads = resolve_threads(config.threads, cycles.len());
    observe_campaign(
        ctx,
        &setup,
        "delay_sweep_adaptive",
        population,
        threads,
        || {
            let store = setup.store.as_ref();
            let resumed = &setup.resumed;
            let mut rows = empty_rows(config);
            let mut stats = InjectorStats::default();
            let mut round: u64 = 0;
            loop {
                let sites = plan.next_round();
                if sites.is_empty() {
                    break;
                }
                // Group the round's sites per cycle: the unit body batches one
                // latch boundary, and grouping keeps per-unit work independent
                // of how sites landed across strata.
                let mut by_cycle: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
                for site in sites {
                    by_cycle
                        .entry(site / edges.len().max(1))
                        .or_default()
                        .push(site % edges.len().max(1));
                }
                let groups: Vec<(usize, Vec<usize>)> = by_cycle.into_iter().collect();
                let round_threads = resolve_threads(config.threads, groups.len());
                let shards = run_sharded(round_threads, &groups, |shard_id, shard| {
                    let mut injector = shard_injector(
                        circuit,
                        topo,
                        timing,
                        golden,
                        config.due_slack,
                        config.incremental,
                        config.delta_timing,
                        config.lanes,
                        config.timing_lanes,
                        config.collapse,
                    );
                    let mut rows = empty_rows(config);
                    let mut stats = InjectorStats::default();
                    let mut visibility: Vec<Vec<bool>> = Vec::with_capacity(shard.len());
                    let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
                    for (cyclepos, edge_positions) in shard {
                        let cycle = cycles[*cyclepos];
                        let key = round_key(round, cycle);
                        if let Some(payload) = resumed.get(&key) {
                            let (unit_rows, vis, unit_stats, failures) =
                                decode_adaptive_sweep_unit(payload, config, edge_positions.len())?;
                            injector.preload_failures(cycle + 1, failures);
                            merge_rows(&mut rows, &unit_rows);
                            stats.merge(&unit_stats);
                            visibility.push(vis);
                            obs.unit_done(key, None, Some(&unit_stats))?;
                            continue;
                        }
                        let selected: Vec<EdgeId> =
                            edge_positions.iter().map(|&ei| edges[ei]).collect();
                        let before = injector.stats;
                        let (unit_rows, vis) = delay_sweep_unit_vis(
                            &mut injector,
                            timing,
                            &selected,
                            config,
                            cycle,
                            S::ENABLED,
                            &mut obs.phases,
                        );
                        let delta = injector.stats.delta_since(&before);
                        let payload = store.is_some().then(|| {
                            encode_adaptive_sweep_unit(
                                &unit_rows,
                                &vis,
                                &delta,
                                &injector.snapshot_failures(cycle + 1),
                            )
                        });
                        merge_rows(&mut rows, &unit_rows);
                        stats.merge(&delta);
                        visibility.push(vis);
                        obs.unit_done(key, payload, Some(&delta))?;
                    }
                    obs.finish();
                    Ok::<_, String>((rows, stats, visibility))
                });
                // Shards chunk `groups` contiguously and push one visibility
                // vector per group, so the concatenation re-aligns with
                // `groups` — the plan tallies stay thread-count invariant.
                let mut all_vis: Vec<Vec<bool>> = Vec::with_capacity(groups.len());
                for shard in shards {
                    let (shard_rows, shard_stats, shard_vis) = shard?;
                    merge_rows(&mut rows, &shard_rows);
                    stats.merge(&shard_stats);
                    all_vis.extend(shard_vis);
                }
                let trials = vec![1u64; nf];
                for ((cyclepos, edge_positions), vis) in groups.iter().zip(&all_vis) {
                    let width = edge_positions.len();
                    for (j, &ei) in edge_positions.iter().enumerate() {
                        let site = cyclepos * edges.len() + ei;
                        let hits: Vec<u64> =
                            (0..nf).map(|fi| u64::from(vis[fi * width + j])).collect();
                        plan.record(site, &hits, &trials);
                    }
                }
                plan.finish_round();
                round += 1;
            }
            stats.strata_active = plan.strata_active() as u64;
            stats.strata_retired_early = plan.strata_retired_early() as u64;
            stats.adaptive_replays_saved = ((population - plan.sampled_sites()) * nf) as u64;
            for (fi, row) in rows.iter_mut().enumerate() {
                let est = plan.estimate(fi);
                row.adaptive = Some(AdaptiveEstimate {
                    point: est.point,
                    lo: est.lo,
                    hi: est.hi,
                    population,
                    sampled: plan.sampled_sites(),
                });
            }
            Ok((rows, stats))
        },
    )
}

/// Adaptive counterpart of [`savf_campaign_observed`]: sites are trace
/// cycles stratified by toggle activity × trace phase; each sampled cycle
/// runs the full per-bit strike unit, so the estimand is the same ACE
/// fraction the uniform campaign reports.
fn savf_campaign_adaptive<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
    ctx: &RunContext<'_, S>,
) -> Result<(SavfResult, InjectorStats), String> {
    let (ci_target, buckets) = checked_adaptive(opts.ci_target, opts.strata)?;
    let cycles = valid_cycles(golden);
    let mut plan = AdaptivePlan::new(
        cycle_strata(golden, &cycles, buckets),
        buckets * buckets,
        1,
        ci_target,
        opts.sample_seed,
    );
    let population = plan.population();
    let items: Vec<usize> = dffs.iter().map(|d| d.index()).collect();
    let fingerprint = campaign_fingerprint(
        "savf_adaptive",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &[],
        opts.due_slack,
        false,
    );
    let knobs = knob_hash(
        opts.lanes,
        opts.timing_lanes,
        opts.incremental,
        opts.delta_timing,
        opts.collapse,
        opts.ci_target,
        opts.strata,
        opts.sample_seed,
    );
    let setup = open_store(&ctx.checkpoint, "savf_adaptive", fingerprint, knobs)?;
    let threads = resolve_threads(opts.threads, cycles.len());
    observe_campaign(ctx, &setup, "savf_adaptive", population, threads, || {
        let store = setup.store.as_ref();
        let resumed = &setup.resumed;
        let mut result = SavfResult::default();
        let mut stats = InjectorStats::default();
        loop {
            let sites = plan.next_round();
            if sites.is_empty() {
                break;
            }
            let round_threads = resolve_threads(opts.threads, sites.len());
            let shards = run_sharded(round_threads, &sites, |shard_id, shard| {
                let mut injector = shard_injector(
                    circuit,
                    topo,
                    timing,
                    golden,
                    opts.due_slack,
                    opts.incremental,
                    opts.delta_timing,
                    opts.lanes,
                    opts.timing_lanes,
                    opts.collapse,
                );
                let mut units: Vec<SavfResult> = Vec::with_capacity(shard.len());
                let mut stats = InjectorStats::default();
                let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
                for &site in shard {
                    let cycle = cycles[site];
                    if let Some(payload) = resumed.get(&cycle) {
                        let (unit, unit_stats, failures) = decode_savf_unit(payload)?;
                        injector.preload_failures(cycle, failures);
                        units.push(unit);
                        stats.merge(&unit_stats);
                        obs.unit_done(cycle, None, Some(&unit_stats))?;
                        continue;
                    }
                    let before = injector.stats;
                    let mut unit = SavfResult::default();
                    timed(S::ENABLED, &mut obs.phases.replay_us, || {
                        injector.prefill_failures(cycle, dffs.iter().map(|&d| vec![d]));
                        for &dff in dffs {
                            unit.injections += 1;
                            if injector.bit_ace(cycle, dff) {
                                unit.ace_hits += 1;
                            }
                        }
                    });
                    let delta = injector.stats.delta_since(&before);
                    let payload = store.is_some().then(|| {
                        encode_savf_unit(&unit, &delta, &injector.snapshot_failures(cycle))
                    });
                    units.push(unit);
                    stats.merge(&delta);
                    obs.unit_done(cycle, payload, Some(&delta))?;
                }
                obs.finish();
                Ok::<_, String>((units, stats))
            });
            let mut units: Vec<SavfResult> = Vec::with_capacity(sites.len());
            for shard in shards {
                let (shard_units, shard_stats) = shard?;
                units.extend(shard_units);
                stats.merge(&shard_stats);
            }
            for (&site, unit) in sites.iter().zip(&units) {
                result.merge(unit);
                plan.record(site, &[unit.ace_hits as u64], &[unit.injections as u64]);
            }
            plan.finish_round();
        }
        stats.strata_active = plan.strata_active() as u64;
        stats.strata_retired_early = plan.strata_retired_early() as u64;
        stats.adaptive_replays_saved = ((population - plan.sampled_sites()) * dffs.len()) as u64;
        Ok((result, stats))
    })
}

/// Adaptive counterpart of [`delay_avf_campaign_records_observed`]. The
/// returned row carries the stratified estimate; records cover the sampled
/// cycles only, in (round, cycle, edge) order.
#[allow(clippy::too_many_arguments)]
fn delay_avf_campaign_records_adaptive<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    fraction: f64,
    opts: ReplayOptions,
    ctx: &RunContext<'_, S>,
) -> Result<(DelayAvfResult, Vec<InjectionRecord>), String> {
    let (ci_target, buckets) = checked_adaptive(opts.ci_target, opts.strata)?;
    let cycles = valid_cycles(golden);
    let extra = fraction_to_picos(timing, fraction);
    let mut plan = AdaptivePlan::new(
        cycle_strata(golden, &cycles, buckets),
        buckets * buckets,
        1,
        ci_target,
        opts.sample_seed,
    );
    let population = plan.population();
    let items: Vec<usize> = edges.iter().map(|e| e.index()).collect();
    let fingerprint = campaign_fingerprint(
        "delay_records_adaptive",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &[fraction],
        opts.due_slack,
        false,
    );
    let knobs = knob_hash(
        opts.lanes,
        opts.timing_lanes,
        opts.incremental,
        opts.delta_timing,
        opts.collapse,
        opts.ci_target,
        opts.strata,
        opts.sample_seed,
    );
    let setup = open_store(
        &ctx.checkpoint,
        "delay_records_adaptive",
        fingerprint,
        knobs,
    )?;
    let threads = resolve_threads(opts.threads, cycles.len());
    observe_campaign(
        ctx,
        &setup,
        "delay_records_adaptive",
        population,
        threads,
        || {
            let store = setup.store.as_ref();
            let resumed = &setup.resumed;
            let mut row = DelayAvfResult {
                delay_fraction: fraction,
                ..DelayAvfResult::default()
            };
            let mut records: Vec<InjectionRecord> = Vec::new();
            loop {
                let sites = plan.next_round();
                if sites.is_empty() {
                    break;
                }
                let round_threads = resolve_threads(opts.threads, sites.len());
                let shards = run_sharded(round_threads, &sites, |shard_id, shard| {
                    let mut injector = shard_injector(
                        circuit,
                        topo,
                        timing,
                        golden,
                        opts.due_slack,
                        opts.incremental,
                        opts.delta_timing,
                        opts.lanes,
                        opts.timing_lanes,
                        opts.collapse,
                    );
                    let mut row = DelayAvfResult {
                        delay_fraction: fraction,
                        ..DelayAvfResult::default()
                    };
                    let mut records = Vec::with_capacity(shard.len() * edges.len());
                    let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
                    for &site in shard {
                        let cycle = cycles[site];
                        if let Some(payload) = resumed.get(&cycle) {
                            let (unit_records, failures) = decode_records_unit(payload, cycle)?;
                            injector.preload_failures(cycle + 1, failures);
                            for record in &unit_records {
                                tally(&mut row, &record.outcome);
                            }
                            records.extend(unit_records);
                            obs.unit_done(cycle, None, None)?;
                            continue;
                        }
                        let unit_start = records.len();
                        timed(S::ENABLED, &mut obs.phases.golden_settle_us, || {
                            injector.warm_cycle_data(cycle)
                        });
                        let pairs: Vec<(EdgeId, Picos)> =
                            edges.iter().map(|&edge| (edge, extra)).collect();
                        let parts: Vec<(usize, Vec<DffId>)> =
                            timed(S::ENABLED, &mut obs.phases.timing_step_us, || {
                                injector.dynamically_reachable_batch(cycle, &pairs)
                            });
                        timed(S::ENABLED, &mut obs.phases.replay_us, || {
                            injector.prefill_failures(
                                cycle + 1,
                                parts.iter().map(|(_, set)| set.clone()),
                            );
                            for (&edge, (statically_reachable, dynamic_set)) in
                                edges.iter().zip(parts)
                            {
                                let outcome = injector.classify_injection(
                                    cycle,
                                    statically_reachable,
                                    dynamic_set,
                                );
                                tally(&mut row, &outcome);
                                records.push(InjectionRecord {
                                    cycle,
                                    edge,
                                    outcome,
                                });
                            }
                        });
                        let payload = store.is_some().then(|| {
                            encode_records_unit(
                                &records[unit_start..],
                                &injector.snapshot_failures(cycle + 1),
                            )
                        });
                        obs.unit_done(cycle, payload, None)?;
                    }
                    obs.finish();
                    Ok::<_, String>((row, records))
                });
                let mut round_records: Vec<InjectionRecord> = Vec::new();
                for shard in shards {
                    let (shard_row, shard_records) = shard?;
                    row.merge(&shard_row);
                    round_records.extend(shard_records);
                }
                // Records arrive per cycle in `sites` order (shards chunk the
                // round contiguously), `edges.len()` apiece — re-derive each
                // site's visible count for the plan tallies.
                for (i, &site) in sites.iter().enumerate() {
                    let unit = &round_records[i * edges.len()..(i + 1) * edges.len()];
                    let hits = unit.iter().filter(|r| r.outcome.visible).count() as u64;
                    plan.record(site, &[hits], &[edges.len() as u64]);
                }
                records.extend(round_records);
                plan.finish_round();
            }
            row.adaptive = {
                let est = plan.estimate(0);
                Some(AdaptiveEstimate {
                    point: est.point,
                    lo: est.lo,
                    hi: est.hi,
                    population,
                    sampled: plan.sampled_sites(),
                })
            };
            Ok((row, records))
        },
    )
}

/// Adaptive counterpart of [`savf_per_bit_campaign_observed`]. Work units
/// are *cycles* here (the uniform campaign shards over bits): every bit is
/// an estimand, and a cycle retires only when all bits' intervals are
/// tight, so hotspot bits keep drawing budget.
fn savf_per_bit_campaign_adaptive<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
    ctx: &RunContext<'_, S>,
) -> Result<Vec<(DffId, SavfResult)>, String> {
    let (ci_target, buckets) = checked_adaptive(opts.ci_target, opts.strata)?;
    let cycles = valid_cycles(golden);
    let mut plan = AdaptivePlan::new(
        cycle_strata(golden, &cycles, buckets),
        buckets * buckets,
        dffs.len().max(1),
        ci_target,
        opts.sample_seed,
    );
    let population = plan.population();
    let items: Vec<usize> = dffs.iter().map(|d| d.index()).collect();
    let fingerprint = campaign_fingerprint(
        "savf_per_bit_adaptive",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &[],
        opts.due_slack,
        false,
    );
    let knobs = knob_hash(
        opts.lanes,
        opts.timing_lanes,
        opts.incremental,
        opts.delta_timing,
        opts.collapse,
        opts.ci_target,
        opts.strata,
        opts.sample_seed,
    );
    let setup = open_store(&ctx.checkpoint, "savf_per_bit_adaptive", fingerprint, knobs)?;
    let threads = resolve_threads(opts.threads, cycles.len());
    observe_campaign(
        ctx,
        &setup,
        "savf_per_bit_adaptive",
        population,
        threads,
        || {
            let store = setup.store.as_ref();
            let resumed = &setup.resumed;
            let mut out: Vec<(DffId, SavfResult)> =
                dffs.iter().map(|&d| (d, SavfResult::default())).collect();
            loop {
                let sites = plan.next_round();
                if sites.is_empty() {
                    break;
                }
                let round_threads = resolve_threads(opts.threads, sites.len());
                let shards = run_sharded(round_threads, &sites, |shard_id, shard| {
                    let mut injector = shard_injector(
                        circuit,
                        topo,
                        timing,
                        golden,
                        opts.due_slack,
                        opts.incremental,
                        opts.delta_timing,
                        opts.lanes,
                        opts.timing_lanes,
                        opts.collapse,
                    );
                    let mut flags: Vec<Vec<bool>> = Vec::with_capacity(shard.len());
                    let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
                    for &site in shard {
                        let cycle = cycles[site];
                        if let Some(payload) = resumed.get(&cycle) {
                            let classes = decode_per_bit_unit(payload, dffs.len())?;
                            let unit: Vec<bool> = classes.iter().map(|c| c.is_visible()).collect();
                            for (&dff, &class) in dffs.iter().zip(&classes) {
                                injector.preload_failures(cycle, [(vec![dff], class)]);
                            }
                            flags.push(unit);
                            obs.unit_done(cycle, None, None)?;
                            continue;
                        }
                        let mut unit = Vec::with_capacity(dffs.len());
                        timed(S::ENABLED, &mut obs.phases.replay_us, || {
                            injector.prefill_failures(cycle, dffs.iter().map(|&d| vec![d]));
                            for &dff in dffs {
                                unit.push(injector.bit_ace(cycle, dff));
                            }
                        });
                        let payload = store
                            .is_some()
                            .then(|| encode_per_bit_cycle_unit(&injector, dffs, cycle));
                        flags.push(unit);
                        obs.unit_done(cycle, payload, None)?;
                    }
                    obs.finish();
                    Ok::<_, String>(flags)
                });
                let mut flags: Vec<Vec<bool>> = Vec::with_capacity(sites.len());
                for shard in shards {
                    flags.extend(shard?);
                }
                let trials = vec![1u64; dffs.len().max(1)];
                for (&site, unit) in sites.iter().zip(&flags) {
                    let hits: Vec<u64> = unit.iter().map(|&v| u64::from(v)).collect();
                    for ((_, r), &ace) in out.iter_mut().zip(unit) {
                        r.injections += 1;
                        if ace {
                            r.ace_hits += 1;
                        }
                    }
                    if dffs.is_empty() {
                        plan.record(site, &[0], &[0]);
                    } else {
                        plan.record(site, &hits, &trials);
                    }
                }
                plan.finish_round();
            }
            Ok(out)
        },
    )
}

/// Adaptive counterpart of [`spatial_double_strike_campaign_observed`]:
/// cycle sites, one estimand (the pairwise ACE fraction).
fn spatial_double_strike_campaign_adaptive<E: Environment + Clone, S: TelemetrySink>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
    ctx: &RunContext<'_, S>,
) -> Result<SavfResult, String> {
    let (ci_target, buckets) = checked_adaptive(opts.ci_target, opts.strata)?;
    let cycles = valid_cycles(golden);
    let mut plan = AdaptivePlan::new(
        cycle_strata(golden, &cycles, buckets),
        buckets * buckets,
        1,
        ci_target,
        opts.sample_seed,
    );
    let population = plan.population();
    let items: Vec<usize> = dffs.iter().map(|d| d.index()).collect();
    let fingerprint = campaign_fingerprint(
        "spatial_double_adaptive",
        circuit,
        timing,
        golden,
        &cycles,
        &items,
        &[],
        opts.due_slack,
        false,
    );
    let knobs = knob_hash(
        opts.lanes,
        opts.timing_lanes,
        opts.incremental,
        opts.delta_timing,
        opts.collapse,
        opts.ci_target,
        opts.strata,
        opts.sample_seed,
    );
    let setup = open_store(
        &ctx.checkpoint,
        "spatial_double_adaptive",
        fingerprint,
        knobs,
    )?;
    let threads = resolve_threads(opts.threads, cycles.len());
    observe_campaign(
        ctx,
        &setup,
        "spatial_double_adaptive",
        population,
        threads,
        || {
            let store = setup.store.as_ref();
            let resumed = &setup.resumed;
            let mut result = SavfResult::default();
            loop {
                let sites = plan.next_round();
                if sites.is_empty() {
                    break;
                }
                let round_threads = resolve_threads(opts.threads, sites.len());
                let shards = run_sharded(round_threads, &sites, |shard_id, shard| {
                    let mut injector = shard_injector(
                        circuit,
                        topo,
                        timing,
                        golden,
                        opts.due_slack,
                        opts.incremental,
                        opts.delta_timing,
                        opts.lanes,
                        opts.timing_lanes,
                        opts.collapse,
                    );
                    let mut units: Vec<SavfResult> = Vec::with_capacity(shard.len());
                    let mut obs = ShardObserver::new(ctx.telemetry, store, shard_id, shard.len());
                    for &site in shard {
                        let cycle = cycles[site];
                        let was_resumed = if let Some(payload) = resumed.get(&cycle) {
                            let mut t = Tokens::new(payload);
                            let failures = decode_failures(&mut t)?;
                            if !t.finished() {
                                return Err(
                                    "checkpoint parse error: trailing payload tokens".into()
                                );
                            }
                            injector.preload_failures(cycle, failures);
                            true
                        } else {
                            false
                        };
                        let mut unit = SavfResult::default();
                        timed(S::ENABLED, &mut obs.phases.replay_us, || {
                            injector.prefill_failures(cycle, dffs.windows(2).map(|p| p.to_vec()));
                            for pair in dffs.windows(2) {
                                unit.injections += 1;
                                if injector.group_ace(cycle, pair) {
                                    unit.ace_hits += 1;
                                }
                            }
                        });
                        let payload = (store.is_some() && !was_resumed).then(|| {
                            let mut out = String::new();
                            encode_failures(&mut out, &injector.snapshot_failures(cycle));
                            out.trim_start().to_owned()
                        });
                        units.push(unit);
                        obs.unit_done(cycle, payload, None)?;
                    }
                    obs.finish();
                    Ok::<_, String>(units)
                });
                let mut units: Vec<SavfResult> = Vec::with_capacity(sites.len());
                for shard in shards {
                    units.extend(shard?);
                }
                for (&site, unit) in sites.iter().zip(&units) {
                    result.merge(unit);
                    plan.record(site, &[unit.ace_hits as u64], &[unit.injections as u64]);
                }
                plan.finish_round();
            }
            Ok(result)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::prepare_golden;
    use delayavf_netlist::CircuitBuilder;
    use delayavf_sim::ConstEnvironment;
    use delayavf_timing::TechLibrary;

    /// Accumulator fixture: errors persist forever, so dynamic reach implies
    /// visibility under the never-halting environment.
    fn fixture() -> (delayavf_netlist::Circuit, Topology, TimingModel) {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let acc = b.reg_word("acc", 4, 0);
        let next = b.in_structure("adder", |b| b.add(&acc.q(), &step));
        b.drive_word(&acc, &next);
        b.output_word("acc", &acc.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        (c, topo, timing)
    }

    #[test]
    fn sweep_is_monotone_in_static_reach() {
        let (c, topo, timing) = fixture();
        let env = ConstEnvironment::new(vec![5]);
        let golden = prepare_golden(&c, &topo, &env, 24, 6);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        let config = CampaignConfig {
            delay_fractions: vec![0.1, 0.5, 1.0],
            compute_orace: false,
            due_slack: 30,
            threads: 1,
            incremental: true,
            delta_timing: true,
            lanes: 64,
            timing_lanes: 64,
            collapse: true,
            ci_target: None,
            strata: 4,
            sample_seed: 7,
        };
        let rows = delay_avf_campaign(&c, &topo, &timing, &golden, &edges, &config);
        assert_eq!(rows.len(), 3);
        // Static reachability can only grow with the delay duration.
        assert!(rows[0].static_fraction() <= rows[1].static_fraction());
        assert!(rows[1].static_fraction() <= rows[2].static_fraction());
        // Every injection is counted.
        for r in &rows {
            assert_eq!(r.injections, edges.len() * golden.sampled_cycles.len());
            assert!(r.dynamic_hits <= r.static_hits);
            assert!(r.delay_ace_hits <= r.dynamic_hits);
        }
    }

    #[test]
    fn orace_on_an_accumulator_has_no_interference() {
        // Every accumulator bit error is individually ACE and group errors
        // never cancel (distinct bits), so interference = compounding = 0
        // and OrDelayAVF == DelayAVF.
        let (c, topo, timing) = fixture();
        let env = ConstEnvironment::new(vec![5]);
        let golden = prepare_golden(&c, &topo, &env, 24, 4);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        let config = CampaignConfig {
            delay_fractions: vec![0.9],
            compute_orace: true,
            due_slack: 30,
            threads: 1,
            incremental: true,
            delta_timing: true,
            lanes: 64,
            timing_lanes: 64,
            collapse: true,
            ci_target: None,
            strata: 4,
            sample_seed: 7,
        };
        let rows = delay_avf_campaign(&c, &topo, &timing, &golden, &edges, &config);
        let r = &rows[0];
        let o = r.orace.unwrap();
        assert_eq!(o.interference, 0);
        assert_eq!(o.compounding, 0);
        assert_eq!(r.or_delay_avf().unwrap(), r.delay_avf());
        assert_eq!(r.or_relative_change_pct(), Some(0.0));
    }

    #[test]
    fn per_bit_savf_sums_to_the_aggregate() {
        let (c, topo, timing) = fixture();
        let env = crate::testenv::ObservingEnv::new(5, 20);
        let golden = prepare_golden(&c, &topo, &env, 100, 4);
        let dffs: Vec<DffId> = c.dffs().map(|(d, _)| d).collect();
        let agg = savf_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        let per_bit = savf_per_bit_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        assert_eq!(per_bit.len(), dffs.len());
        let hits: usize = per_bit.iter().map(|(_, r)| r.ace_hits).sum();
        let trials: usize = per_bit.iter().map(|(_, r)| r.injections).sum();
        assert_eq!(hits, agg.ace_hits);
        assert_eq!(trials, agg.injections);
    }

    #[test]
    fn savf_of_an_accumulator_is_one() {
        let (c, topo, timing) = fixture();
        let env = crate::testenv::ObservingEnv::new(5, 20);
        let golden = prepare_golden(&c, &topo, &env, 100, 4);
        let dffs: Vec<DffId> = c.dffs().map(|(d, _)| d).collect();
        let r = savf_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        assert_eq!(r.injections, dffs.len() * golden.sampled_cycles.len());
        // Flips in the final executed cycle are never observed by the
        // environment (their outputs are past the last observation) — the
        // classic "un-ACE at end of program" effect. Everything else is ACE
        // in an accumulator.
        let n = golden.trace.num_cycles();
        let invisible_cycles = golden
            .sampled_cycles
            .iter()
            .filter(|&&cy| cy >= n - 1)
            .count();
        assert_eq!(r.ace_hits, r.injections - dffs.len() * invisible_cycles);
        assert!(r.savf() > 0.7);
    }

    /// The tentpole invariant: every campaign entry point returns exactly
    /// the serial answer for every thread count — including the ORACE
    /// statistics and the merged injector counters.
    #[test]
    fn parallel_campaigns_match_serial_bit_for_bit() {
        let (c, topo, timing) = fixture();
        let env = crate::testenv::ObservingEnv::new(5, 20);
        let golden = prepare_golden(&c, &topo, &env, 100, 8);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        let dffs: Vec<DffId> = c.dffs().map(|(d, _)| d).collect();

        let config = CampaignConfig {
            delay_fractions: vec![0.2, 0.6, 1.0],
            compute_orace: true,
            due_slack: 30,
            threads: 1,
            incremental: true,
            delta_timing: true,
            lanes: 64,
            timing_lanes: 64,
            collapse: true,
            ci_target: None,
            strata: 4,
            sample_seed: 7,
        };
        let (serial_rows, serial_stats) =
            delay_avf_campaign_with_stats(&c, &topo, &timing, &golden, &edges, &config);
        let (serial_savf, serial_savf_stats) = savf_campaign_with_stats(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        let (serial_rec_row, serial_records) = delay_avf_campaign_records(
            &c,
            &topo,
            &timing,
            &golden,
            &edges,
            0.9,
            ReplayOptions::new(30, 1),
        );
        let serial_per_bit = savf_per_bit_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        let serial_spatial = spatial_double_strike_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );

        for threads in [2, 4] {
            let cfg = config.clone().with_threads(threads);
            let (rows, stats) =
                delay_avf_campaign_with_stats(&c, &topo, &timing, &golden, &edges, &cfg);
            assert_eq!(rows, serial_rows, "sweep rows, {threads} threads");
            assert_eq!(stats, serial_stats, "sweep stats, {threads} threads");

            let opts = ReplayOptions::new(30, threads);
            let (savf, savf_stats) =
                savf_campaign_with_stats(&c, &topo, &timing, &golden, &dffs, opts);
            assert_eq!(savf, serial_savf, "savf, {threads} threads");
            assert_eq!(
                savf_stats, serial_savf_stats,
                "savf stats, {threads} threads"
            );

            let (rec_row, records) =
                delay_avf_campaign_records(&c, &topo, &timing, &golden, &edges, 0.9, opts);
            assert_eq!(rec_row, serial_rec_row, "records row, {threads} threads");
            assert_eq!(records, serial_records, "records order, {threads} threads");

            let per_bit = savf_per_bit_campaign(&c, &topo, &timing, &golden, &dffs, opts);
            assert_eq!(per_bit, serial_per_bit, "per-bit, {threads} threads");

            let spatial = spatial_double_strike_campaign(&c, &topo, &timing, &golden, &dffs, opts);
            assert_eq!(spatial, serial_spatial, "spatial, {threads} threads");
        }
    }

    #[test]
    fn valid_cycles_drops_only_out_of_range_samples() {
        let (c, topo, timing) = fixture();
        let _ = &timing;
        let env = ConstEnvironment::new(vec![5]);
        let mut golden = prepare_golden(&c, &topo, &env, 24, 6);
        let n = golden.trace.num_cycles();
        // Poison the sample set with out-of-range cycles; campaigns must
        // skip them instead of panicking in the injector.
        golden.sampled_cycles.insert(0, 0);
        golden.sampled_cycles.push(n);
        golden.sampled_cycles.push(n + 7);
        let filtered = valid_cycles(&golden);
        assert!(filtered.iter().all(|&cy| cy >= 1 && cy < n));
        assert_eq!(filtered.len(), golden.sampled_cycles.len() - 3);
    }

    #[test]
    fn thread_resolution_clamps_to_work_items() {
        assert_eq!(resolve_threads(3, 100), 3);
        assert_eq!(resolve_threads(8, 2), 2);
        assert_eq!(resolve_threads(1, 0), 1);
        assert!(resolve_threads(0, 1_000_000) >= 1);
    }

    #[test]
    fn heartbeat_rate_math_is_finite_on_degenerate_inputs() {
        // Instantaneous first unit: no measurable elapsed time yet, so no
        // rate and no ETA — never NaN or ∞.
        assert_eq!(heartbeat_rates(1, 10, 0.0), (0.0, 0.0));
        // Zero completed units at positive elapsed time: zero rate, and the
        // eta guard keeps 10/0 from becoming ∞.
        assert_eq!(heartbeat_rates(0, 10, 1.0), (0.0, 0.0));
        // Steady state: 5 units in 2.5 s is 2 units/s, 5 remaining = 2.5 s.
        let (ups, eta) = heartbeat_rates(5, 10, 2.5);
        assert!((ups - 2.0).abs() < 1e-12);
        assert!((eta - 2.5).abs() < 1e-12);
        // A finished (or overshot) shard reports zero ETA instead of
        // panicking on `total - done` underflow.
        assert_eq!(heartbeat_rates(10, 10, 2.0).1, 0.0);
        assert_eq!(heartbeat_rates(11, 10, 2.0).1, 0.0);
    }
}
