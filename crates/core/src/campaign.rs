//! Fault-injection campaigns: DelayAVF sweeps and particle-strike sAVF.

use delayavf_netlist::{Circuit, DffId, EdgeId, Topology};
use delayavf_sim::Environment;
use delayavf_timing::{Picos, TimingModel};

use crate::golden::GoldenRun;
use crate::injector::Injector;
use crate::razor::InjectionRecord;
use crate::result::{DelayAvfResult, OraceStats, SavfResult};

/// Configuration of a DelayAVF campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Delay durations to sweep, as fractions of the clock period (the
    /// paper sweeps 10%–90%).
    pub delay_fractions: Vec<f64>,
    /// Also evaluate the ORACE approximation per injection (needed for
    /// Table III; costs one replay per distinct (cycle, bit)).
    pub compute_orace: bool,
    /// Extra cycles past the golden program length before a non-halting
    /// faulty run is declared a DUE.
    pub due_slack: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            delay_fractions: (1..=9).map(|k| k as f64 / 10.0).collect(),
            compute_orace: false,
            due_slack: 2_000,
        }
    }
}

impl CampaignConfig {
    /// A configuration sweeping a single delay fraction.
    pub fn single_delay(fraction: f64) -> Self {
        CampaignConfig {
            delay_fractions: vec![fraction],
            ..CampaignConfig::default()
        }
    }
}

/// Runs a DelayAVF sweep: every sampled cycle × every given edge × every
/// delay fraction. Returns one [`DelayAvfResult`] per delay fraction, in
/// the configured order.
///
/// The denominator of each result counts all (edge, cycle) injections, so
/// `DelayAvfResult::delay_avf` directly instantiates Equation 3 over the
/// sample.
pub fn delay_avf_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    config: &CampaignConfig,
) -> Vec<DelayAvfResult> {
    let mut injector = Injector::new(circuit, topo, timing, golden, config.due_slack);
    let cycles: Vec<u64> = golden
        .sampled_cycles
        .iter()
        .copied()
        .filter(|&c| c >= 1 && c < golden.trace.num_cycles())
        .collect();

    let mut results = Vec::with_capacity(config.delay_fractions.len());
    for &fraction in &config.delay_fractions {
        let extra = fraction_to_picos(timing, fraction);
        let mut row = DelayAvfResult {
            delay_fraction: fraction,
            ..DelayAvfResult::default()
        };
        let mut orace = OraceStats::default();
        for &cycle in &cycles {
            for &edge in edges {
                let outcome = injector.inject(cycle, edge, extra);
                row.injections += 1;
                if outcome.statically_reachable > 0 {
                    row.static_hits += 1;
                }
                if !outcome.dynamic_set.is_empty() {
                    row.dynamic_hits += 1;
                    if outcome.is_multi_bit() {
                        row.multi_bit_hits += 1;
                    }
                    if config.compute_orace {
                        let or = injector.or_ace(cycle + 1, &outcome.dynamic_set);
                        if or {
                            orace.or_hits += 1;
                        }
                        if or && !outcome.visible {
                            orace.interference += 1;
                        }
                        if !or && outcome.visible {
                            orace.compounding += 1;
                        }
                    }
                }
                if outcome.visible {
                    row.delay_ace_hits += 1;
                    match outcome.class {
                        crate::injector::FailureClass::Sdc => row.sdc_hits += 1,
                        crate::injector::FailureClass::Due => row.due_hits += 1,
                        crate::injector::FailureClass::Masked => unreachable!("visible"),
                    }
                }
            }
        }
        if config.compute_orace {
            row.orace = Some(orace);
        }
        results.push(row);
    }
    results
}

/// Runs a particle-strike campaign: a single bit flip in each of `dffs` at
/// every sampled cycle, classic single-bit ACE analysis (Equation 1).
pub fn savf_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    due_slack: u64,
) -> SavfResult {
    let mut injector = Injector::new(circuit, topo, timing, golden, due_slack);
    let mut result = SavfResult::default();
    for &cycle in &golden.sampled_cycles {
        for &dff in dffs {
            result.injections += 1;
            if injector.bit_ace(cycle, dff) {
                result.ace_hits += 1;
            }
        }
    }
    result
}

/// Like [`delay_avf_campaign`] for a **single** delay fraction, but also
/// returning every injection's record (cycle, edge, dynamic set,
/// visibility) for downstream analyses such as Razor protection planning
/// ([`crate::razor`]).
pub fn delay_avf_campaign_records<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    fraction: f64,
    due_slack: u64,
) -> (DelayAvfResult, Vec<InjectionRecord>) {
    let mut injector = Injector::new(circuit, topo, timing, golden, due_slack);
    let extra = fraction_to_picos(timing, fraction);
    let mut row = DelayAvfResult {
        delay_fraction: fraction,
        ..DelayAvfResult::default()
    };
    let mut records = Vec::new();
    for &cycle in &golden.sampled_cycles {
        if cycle == 0 || cycle + 1 > golden.trace.num_cycles() {
            continue;
        }
        for &edge in edges {
            let outcome = injector.inject(cycle, edge, extra);
            row.injections += 1;
            if outcome.statically_reachable > 0 {
                row.static_hits += 1;
            }
            if !outcome.dynamic_set.is_empty() {
                row.dynamic_hits += 1;
                if outcome.is_multi_bit() {
                    row.multi_bit_hits += 1;
                }
            }
            if outcome.visible {
                row.delay_ace_hits += 1;
                match outcome.class {
                    crate::injector::FailureClass::Sdc => row.sdc_hits += 1,
                    crate::injector::FailureClass::Due => row.due_hits += 1,
                    crate::injector::FailureClass::Masked => unreachable!("visible"),
                }
            }
            records.push(InjectionRecord {
                cycle,
                edge,
                outcome,
            });
        }
    }
    (row, records)
}

/// Per-bit sAVF: like [`savf_campaign`] but reporting each flip-flop's
/// individual ACE fraction, so designers can locate a structure's
/// vulnerability *hotspots* (the bits worth hardening first).
pub fn savf_per_bit_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    due_slack: u64,
) -> Vec<(DffId, SavfResult)> {
    let mut injector = Injector::new(circuit, topo, timing, golden, due_slack);
    dffs.iter()
        .map(|&dff| {
            let mut r = SavfResult::default();
            for &cycle in &golden.sampled_cycles {
                r.injections += 1;
                if injector.bit_ace(cycle, dff) {
                    r.ace_hits += 1;
                }
            }
            (dff, r)
        })
        .collect()
}

/// Runs a **spatial double-bit** particle-strike campaign: simultaneous
/// flips of physically adjacent bit pairs, the multi-bit transient-fault
/// model of Wilkening et al. that the paper contrasts DelayAVF against
/// (§VIII). `dffs` must list a structure's bits in physical order;
/// consecutive entries form the struck pairs.
///
/// Unlike an SDF's dynamically reachable set, these pairs are fixed a
/// priori by layout adjacency — comparing the two campaigns quantifies how
/// much of delay-fault vulnerability spatial models can(not) capture.
pub fn spatial_double_strike_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    due_slack: u64,
) -> SavfResult {
    let mut injector = Injector::new(circuit, topo, timing, golden, due_slack);
    let mut result = SavfResult::default();
    for &cycle in &golden.sampled_cycles {
        for pair in dffs.windows(2) {
            result.injections += 1;
            if injector.group_ace(cycle, pair) {
                result.ace_hits += 1;
            }
        }
    }
    result
}

fn fraction_to_picos(timing: &TimingModel, fraction: f64) -> Picos {
    (timing.clock_period() as f64 * fraction).round() as Picos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::prepare_golden;
    use delayavf_netlist::CircuitBuilder;
    use delayavf_sim::ConstEnvironment;
    use delayavf_timing::TechLibrary;

    /// Accumulator fixture: errors persist forever, so dynamic reach implies
    /// visibility under the never-halting environment.
    fn fixture() -> (delayavf_netlist::Circuit, Topology, TimingModel) {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let acc = b.reg_word("acc", 4, 0);
        let next = b.in_structure("adder", |b| b.add(&acc.q(), &step));
        b.drive_word(&acc, &next);
        b.output_word("acc", &acc.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        (c, topo, timing)
    }

    #[test]
    fn sweep_is_monotone_in_static_reach() {
        let (c, topo, timing) = fixture();
        let env = ConstEnvironment::new(vec![5]);
        let golden = prepare_golden(&c, &topo, &env, 24, 6);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        let config = CampaignConfig {
            delay_fractions: vec![0.1, 0.5, 1.0],
            compute_orace: false,
            due_slack: 30,
        };
        let rows = delay_avf_campaign(&c, &topo, &timing, &golden, &edges, &config);
        assert_eq!(rows.len(), 3);
        // Static reachability can only grow with the delay duration.
        assert!(rows[0].static_fraction() <= rows[1].static_fraction());
        assert!(rows[1].static_fraction() <= rows[2].static_fraction());
        // Every injection is counted.
        for r in &rows {
            assert_eq!(r.injections, edges.len() * golden.sampled_cycles.len());
            assert!(r.dynamic_hits <= r.static_hits);
            assert!(r.delay_ace_hits <= r.dynamic_hits);
        }
    }

    #[test]
    fn orace_on_an_accumulator_has_no_interference() {
        // Every accumulator bit error is individually ACE and group errors
        // never cancel (distinct bits), so interference = compounding = 0
        // and OrDelayAVF == DelayAVF.
        let (c, topo, timing) = fixture();
        let env = ConstEnvironment::new(vec![5]);
        let golden = prepare_golden(&c, &topo, &env, 24, 4);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        let config = CampaignConfig {
            delay_fractions: vec![0.9],
            compute_orace: true,
            due_slack: 30,
        };
        let rows = delay_avf_campaign(&c, &topo, &timing, &golden, &edges, &config);
        let r = &rows[0];
        let o = r.orace.unwrap();
        assert_eq!(o.interference, 0);
        assert_eq!(o.compounding, 0);
        assert_eq!(r.or_delay_avf().unwrap(), r.delay_avf());
        assert_eq!(r.or_relative_change_pct(), Some(0.0));
    }

    #[test]
    fn per_bit_savf_sums_to_the_aggregate() {
        let (c, topo, timing) = fixture();
        let env = crate::testenv::ObservingEnv::new(5, 20);
        let golden = prepare_golden(&c, &topo, &env, 100, 4);
        let dffs: Vec<DffId> = c.dffs().map(|(d, _)| d).collect();
        let agg = savf_campaign(&c, &topo, &timing, &golden, &dffs, 30);
        let per_bit = savf_per_bit_campaign(&c, &topo, &timing, &golden, &dffs, 30);
        assert_eq!(per_bit.len(), dffs.len());
        let hits: usize = per_bit.iter().map(|(_, r)| r.ace_hits).sum();
        let trials: usize = per_bit.iter().map(|(_, r)| r.injections).sum();
        assert_eq!(hits, agg.ace_hits);
        assert_eq!(trials, agg.injections);
    }

    #[test]
    fn savf_of_an_accumulator_is_one() {
        let (c, topo, timing) = fixture();
        let env = crate::testenv::ObservingEnv::new(5, 20);
        let golden = prepare_golden(&c, &topo, &env, 100, 4);
        let dffs: Vec<DffId> = c.dffs().map(|(d, _)| d).collect();
        let r = savf_campaign(&c, &topo, &timing, &golden, &dffs, 30);
        assert_eq!(r.injections, dffs.len() * golden.sampled_cycles.len());
        // Flips in the final executed cycle are never observed by the
        // environment (their outputs are past the last observation) — the
        // classic "un-ACE at end of program" effect. Everything else is ACE
        // in an accumulator.
        let n = golden.trace.num_cycles();
        let invisible_cycles = golden
            .sampled_cycles
            .iter()
            .filter(|&&cy| cy >= n - 1)
            .count();
        assert_eq!(r.ace_hits, r.injections - dffs.len() * invisible_cycles);
        assert!(r.savf() > 0.7);
    }
}
