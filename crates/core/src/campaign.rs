//! Fault-injection campaigns: DelayAVF sweeps and particle-strike sAVF.
//!
//! # Sharded parallel engine
//!
//! Every injection is independent given the golden trace, so each campaign
//! partitions its outermost sampling axis (cycles, or bits for the per-bit
//! campaign) into contiguous shards and runs one worker per shard on
//! [`std::thread::scope`] threads. Workers share the circuit, topology,
//! timing model and golden run read-only (hence the `Send + Sync`
//! supertrait on [`Environment`]) and each owns a private [`Injector`],
//! whose fan-in/replay caches and cycle reconstruction are per-run mutable
//! state.
//!
//! **Determinism:** parallel results are bit-for-bit identical to serial
//! for any thread count. All counters are integers merged by addition in
//! shard order, records are concatenated in shard order, and sharding by
//! whole cycles keeps every cache-shareable replay (keys are scoped to one
//! latch boundary) inside a single worker, so even the [`InjectorStats`]
//! cache-hit counters are partition-independent.
//!
//! # Latch-boundary conventions
//!
//! The two fault models classify at different boundaries **by design**:
//!
//! * A small delay fault in cycle `c` corrupts the values *latched at the
//!   end* of `c`, so [`delay_avf_campaign`] (via [`Injector::inject`])
//!   classifies the error group at boundary `c + 1`.
//! * A particle strike at cycle `c` corrupts *already-stored* state, so the
//!   sAVF campaigns ([`savf_campaign`], [`savf_per_bit_campaign`],
//!   [`spatial_double_strike_campaign`]) classify at boundary `c` itself.
//!
//! Both conventions draw `c` from [`valid_cycles`], which keeps every
//! boundary inside the golden trace.
//!
//! # Lane batching
//!
//! On top of sharding, every campaign groups the replays of one latch
//! boundary into bit-parallel batches ([`Injector::prefill_failures`], up
//! to [`ReplayOptions::lanes`] scenarios per pass over the netlist) before
//! running its unchanged scalar loop against the warmed cache — so tally
//! and record order are exactly the sequential engine's, and `lanes = 1`
//! (which turns prefilling into a no-op) reproduces its reports
//! byte-identically. Batching composes with sharding: cycle-sharded
//! campaigns keep each boundary's batches inside one worker, so the batch
//! counters in [`InjectorStats`] merge thread-invariantly. The per-bit
//! campaign shards over *bits* instead; its batch shapes depend on the
//! partition, which is harmless because it exposes no stats — its results
//! are still bit-for-bit deterministic.

use std::thread;

use delayavf_netlist::{Circuit, DffId, EdgeId, Topology};
use delayavf_sim::{Environment, MAX_LANES};
use delayavf_timing::{Picos, TimingModel};

use crate::golden::GoldenRun;
use crate::injector::{FailureClass, InjectionOutcome, Injector, InjectorStats};
use crate::razor::InjectionRecord;
use crate::result::{DelayAvfResult, OraceStats, SavfResult};

/// Replay-engine options shared by the particle-strike campaign entry
/// points (the DelayAVF sweeps carry the same knobs in
/// [`CampaignConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Extra cycles past the golden program length before a non-halting
    /// faulty run is declared a DUE.
    pub due_slack: u64,
    /// Worker threads for the sharded engine. `0` (the default) resolves
    /// to [`std::thread::available_parallelism`]. Results are identical
    /// for every value; only wall-clock time changes.
    pub threads: usize,
    /// Use the incremental divergence-cone replay engine (the default).
    /// Results are bit-for-bit identical either way; `false` runs the
    /// exact full-replay baseline (the `--no-incremental` escape hatch).
    pub incremental: bool,
    /// Use the incremental timing-aware engine — shared per-cycle
    /// golden-waveform cache plus fault-cone delta event simulation — for
    /// step 1 (the default). Results are bit-for-bit identical either way;
    /// `false` runs the exact full event-simulation baseline (the
    /// `--no-delta-timing` escape hatch).
    pub delta_timing: bool,
    /// Lane width for bit-parallel batch replays (default
    /// [`delayavf_sim::MAX_LANES`]). Results are identical for every
    /// width; `1` disables batching and reproduces the sequential
    /// engine's reports byte-identically (the `--lanes 1` escape hatch).
    pub lanes: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            due_slack: 2_000,
            threads: 0,
            incremental: true,
            delta_timing: true,
            lanes: MAX_LANES,
        }
    }
}

impl ReplayOptions {
    /// Options with the given DUE slack and thread count (incremental
    /// replay on, as everywhere by default).
    pub fn new(due_slack: u64, threads: usize) -> Self {
        ReplayOptions {
            due_slack,
            threads,
            ..ReplayOptions::default()
        }
    }

    /// Builder-style override of the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style toggle of the incremental replay engine.
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Builder-style toggle of the incremental timing-aware engine.
    pub fn with_delta_timing(mut self, enabled: bool) -> Self {
        self.delta_timing = enabled;
        self
    }

    /// Builder-style override of the batch lane width (`1` = scalar
    /// baseline, `0` = maximum width).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }
}

/// Configuration of a DelayAVF campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Delay durations to sweep, as fractions of the clock period (the
    /// paper sweeps 10%–90%).
    pub delay_fractions: Vec<f64>,
    /// Also evaluate the ORACE approximation per injection (needed for
    /// Table III; costs one replay per distinct (cycle, bit)).
    pub compute_orace: bool,
    /// Extra cycles past the golden program length before a non-halting
    /// faulty run is declared a DUE.
    pub due_slack: u64,
    /// Worker threads for the sharded engine. `0` (the default) resolves
    /// to [`std::thread::available_parallelism`]. Results are identical
    /// for every value; only wall-clock time changes.
    pub threads: usize,
    /// Use the incremental divergence-cone replay engine (the default);
    /// see [`ReplayOptions::incremental`].
    pub incremental: bool,
    /// Use the incremental timing-aware engine for step 1 (the default);
    /// see [`ReplayOptions::delta_timing`].
    pub delta_timing: bool,
    /// Lane width for bit-parallel batch replays; see
    /// [`ReplayOptions::lanes`].
    pub lanes: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            delay_fractions: (1..=9).map(|k| k as f64 / 10.0).collect(),
            compute_orace: false,
            due_slack: 2_000,
            threads: 0,
            incremental: true,
            delta_timing: true,
            lanes: MAX_LANES,
        }
    }
}

impl CampaignConfig {
    /// A configuration sweeping a single delay fraction.
    pub fn single_delay(fraction: f64) -> Self {
        CampaignConfig {
            delay_fractions: vec![fraction],
            ..CampaignConfig::default()
        }
    }

    /// Builder-style override of the worker-thread count (`0` = one per
    /// available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style toggle of the incremental replay engine.
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Builder-style toggle of the incremental timing-aware engine.
    pub fn with_delta_timing(mut self, enabled: bool) -> Self {
        self.delta_timing = enabled;
        self
    }

    /// Builder-style override of the batch lane width (`1` = scalar
    /// baseline, `0` = maximum width).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }
}

/// A worker's private injector, with the shard-invariant knobs applied.
#[allow(clippy::too_many_arguments)]
fn shard_injector<'g, E: Environment + Clone>(
    circuit: &'g Circuit,
    topo: &'g Topology,
    timing: &'g TimingModel,
    golden: &'g GoldenRun<E>,
    due_slack: u64,
    incremental: bool,
    delta_timing: bool,
    lanes: usize,
) -> Injector<'g, E> {
    let mut injector = Injector::new(circuit, topo, timing, golden, due_slack);
    injector.set_incremental(incremental);
    injector.set_delta_timing(delta_timing);
    injector.set_lanes(lanes);
    injector
}

/// The sampled cycles on which injection is well-defined: cycle 0 has no
/// preceding settled state to simulate from, and the final trace cycle has
/// no successor boundary to classify at. Every campaign filters through
/// this one helper so the conventions cannot drift apart.
pub fn valid_cycles<E: Environment + Clone>(golden: &GoldenRun<E>) -> Vec<u64> {
    golden
        .sampled_cycles
        .iter()
        .copied()
        .filter(|&c| c >= 1 && c < golden.trace.num_cycles())
        .collect()
}

/// Resolves a requested thread count: `0` means one per available core,
/// and no campaign spawns more workers than it has shardable items.
fn resolve_threads(requested: usize, items: usize) -> usize {
    let t = if requested == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    t.clamp(1, items.max(1))
}

/// Runs `work` over contiguous shards of `items` on scoped threads and
/// returns the per-shard results **in shard order** (which is what makes
/// order-sensitive merges — record concatenation — deterministic).
fn run_sharded<T, R, F>(threads: usize, items: &[T], work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return vec![work(items)];
    }
    let shard_len = items.len().div_ceil(threads);
    thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = items
            .chunks(shard_len)
            .map(|shard| scope.spawn(move || work(shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    })
}

/// Folds one injection outcome into a result row (shared by the sweep and
/// the record-keeping campaign so their accounting cannot diverge).
fn tally(row: &mut DelayAvfResult, outcome: &InjectionOutcome) {
    row.injections += 1;
    if outcome.statically_reachable > 0 {
        row.static_hits += 1;
    }
    if !outcome.dynamic_set.is_empty() {
        row.dynamic_hits += 1;
        if outcome.is_multi_bit() {
            row.multi_bit_hits += 1;
        }
    }
    if outcome.visible {
        row.delay_ace_hits += 1;
        match outcome.class {
            FailureClass::Sdc => row.sdc_hits += 1,
            FailureClass::Due => row.due_hits += 1,
            FailureClass::Masked => unreachable!("visible"),
        }
    }
}

/// One empty result row per configured delay fraction.
fn empty_rows(config: &CampaignConfig) -> Vec<DelayAvfResult> {
    config
        .delay_fractions
        .iter()
        .map(|&fraction| DelayAvfResult {
            delay_fraction: fraction,
            orace: config.compute_orace.then(OraceStats::default),
            ..DelayAvfResult::default()
        })
        .collect()
}

/// Worker body of [`delay_avf_campaign`]: the full sweep restricted to one
/// shard of cycles, with a private injector.
fn delay_sweep_shard<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    config: &CampaignConfig,
    cycles: &[u64],
) -> (Vec<DelayAvfResult>, InjectorStats) {
    let mut injector = shard_injector(
        circuit,
        topo,
        timing,
        golden,
        config.due_slack,
        config.incremental,
        config.delta_timing,
        config.lanes,
    );
    let mut rows = empty_rows(config);
    for (fi, &fraction) in config.delay_fractions.iter().enumerate() {
        let extra = fraction_to_picos(timing, fraction);
        let mut orace = OraceStats::default();
        for &cycle in cycles {
            // Phase 1 (timing-aware): every edge's dynamically reachable
            // set for this cycle.
            let parts: Vec<(usize, Vec<DffId>)> = edges
                .iter()
                .map(|&edge| injector.dynamically_reachable(cycle, edge, extra))
                .collect();
            // Phase 2: batch the whole boundary's replays — group sets and,
            // for ORACE, the individual bits they contain.
            injector.prefill_failures(cycle + 1, parts.iter().map(|(_, set)| set.clone()));
            if config.compute_orace {
                injector.prefill_failures(
                    cycle + 1,
                    parts
                        .iter()
                        .flat_map(|(_, set)| set.iter().map(|&d| vec![d])),
                );
            }
            // Phase 3 (cache-served): identical tally order to the scalar
            // engine's interleaved loop.
            for (statically_reachable, dynamic_set) in parts {
                let outcome = injector.classify_injection(cycle, statically_reachable, dynamic_set);
                tally(&mut rows[fi], &outcome);
                if config.compute_orace && !outcome.dynamic_set.is_empty() {
                    let or = injector.or_ace(cycle + 1, &outcome.dynamic_set);
                    if or {
                        orace.or_hits += 1;
                    }
                    if or && !outcome.visible {
                        orace.interference += 1;
                    }
                    if !or && outcome.visible {
                        orace.compounding += 1;
                    }
                }
            }
        }
        if config.compute_orace {
            rows[fi].orace = Some(orace);
        }
    }
    (rows, injector.stats)
}

/// Runs a DelayAVF sweep: every sampled cycle × every given edge × every
/// delay fraction. Returns one [`DelayAvfResult`] per delay fraction, in
/// the configured order.
///
/// The denominator of each result counts all (edge, cycle) injections, so
/// `DelayAvfResult::delay_avf` directly instantiates Equation 3 over the
/// sample.
pub fn delay_avf_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    config: &CampaignConfig,
) -> Vec<DelayAvfResult> {
    delay_avf_campaign_with_stats(circuit, topo, timing, golden, edges, config).0
}

/// Like [`delay_avf_campaign`], also returning the merged engine counters
/// of all workers (used for §V-C prefilter reporting and by the
/// determinism tests; identical for every thread count).
pub fn delay_avf_campaign_with_stats<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    config: &CampaignConfig,
) -> (Vec<DelayAvfResult>, InjectorStats) {
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(config.threads, cycles.len());
    let shards = run_sharded(threads, &cycles, |shard| {
        delay_sweep_shard(circuit, topo, timing, golden, edges, config, shard)
    });
    let mut rows = empty_rows(config);
    let mut stats = InjectorStats::default();
    for (shard_rows, shard_stats) in shards {
        for (row, part) in rows.iter_mut().zip(&shard_rows) {
            row.merge(part);
        }
        stats.merge(&shard_stats);
    }
    (rows, stats)
}

/// Runs a particle-strike campaign: a single bit flip in each of `dffs` at
/// every sampled cycle, classic single-bit ACE analysis (Equation 1).
/// `opts.threads = 0` uses one worker per available core.
pub fn savf_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
) -> SavfResult {
    savf_campaign_with_stats(circuit, topo, timing, golden, dffs, opts).0
}

/// Like [`savf_campaign`], also returning the merged engine counters.
pub fn savf_campaign_with_stats<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
) -> (SavfResult, InjectorStats) {
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(opts.threads, cycles.len());
    let shards = run_sharded(threads, &cycles, |shard| {
        let mut injector = shard_injector(
            circuit,
            topo,
            timing,
            golden,
            opts.due_slack,
            opts.incremental,
            opts.delta_timing,
            opts.lanes,
        );
        let mut r = SavfResult::default();
        for &cycle in shard {
            injector.prefill_failures(cycle, dffs.iter().map(|&d| vec![d]));
            for &dff in dffs {
                r.injections += 1;
                if injector.bit_ace(cycle, dff) {
                    r.ace_hits += 1;
                }
            }
        }
        (r, injector.stats)
    });
    let mut result = SavfResult::default();
    let mut stats = InjectorStats::default();
    for (shard_result, shard_stats) in shards {
        result.merge(&shard_result);
        stats.merge(&shard_stats);
    }
    (result, stats)
}

/// Like [`delay_avf_campaign`] for a **single** delay fraction, but also
/// returning every injection's record (cycle, edge, dynamic set,
/// visibility) for downstream analyses such as Razor protection planning
/// ([`crate::razor`]). Records come back in (cycle, edge) sampling order
/// regardless of `opts.threads`.
pub fn delay_avf_campaign_records<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    fraction: f64,
    opts: ReplayOptions,
) -> (DelayAvfResult, Vec<InjectionRecord>) {
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(opts.threads, cycles.len());
    let extra = fraction_to_picos(timing, fraction);
    let shards = run_sharded(threads, &cycles, |shard| {
        let mut injector = shard_injector(
            circuit,
            topo,
            timing,
            golden,
            opts.due_slack,
            opts.incremental,
            opts.delta_timing,
            opts.lanes,
        );
        let mut row = DelayAvfResult {
            delay_fraction: fraction,
            ..DelayAvfResult::default()
        };
        let mut records = Vec::with_capacity(shard.len() * edges.len());
        for &cycle in shard {
            // Same two-phase structure as the sweep: collect the cycle's
            // dynamic sets, batch their replays, then record in edge order.
            let parts: Vec<(usize, Vec<DffId>)> = edges
                .iter()
                .map(|&edge| injector.dynamically_reachable(cycle, edge, extra))
                .collect();
            injector.prefill_failures(cycle + 1, parts.iter().map(|(_, set)| set.clone()));
            for (&edge, (statically_reachable, dynamic_set)) in edges.iter().zip(parts) {
                let outcome = injector.classify_injection(cycle, statically_reachable, dynamic_set);
                tally(&mut row, &outcome);
                records.push(InjectionRecord {
                    cycle,
                    edge,
                    outcome,
                });
            }
        }
        (row, records)
    });
    let mut row = DelayAvfResult {
        delay_fraction: fraction,
        ..DelayAvfResult::default()
    };
    let mut records = Vec::new();
    for (shard_row, shard_records) in shards {
        row.merge(&shard_row);
        records.extend(shard_records);
    }
    (row, records)
}

/// Per-bit sAVF: like [`savf_campaign`] but reporting each flip-flop's
/// individual ACE fraction, so designers can locate a structure's
/// vulnerability *hotspots* (the bits worth hardening first). Sharded over
/// bits; the returned order follows `dffs` regardless of `opts.threads`.
pub fn savf_per_bit_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
) -> Vec<(DffId, SavfResult)> {
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(opts.threads, dffs.len());
    let shards = run_sharded(threads, dffs, |shard| {
        let mut injector = shard_injector(
            circuit,
            topo,
            timing,
            golden,
            opts.due_slack,
            opts.incremental,
            opts.delta_timing,
            opts.lanes,
        );
        for &cycle in &cycles {
            injector.prefill_failures(cycle, shard.iter().map(|&d| vec![d]));
        }
        shard
            .iter()
            .map(|&dff| {
                let mut r = SavfResult::default();
                for &cycle in &cycles {
                    r.injections += 1;
                    if injector.bit_ace(cycle, dff) {
                        r.ace_hits += 1;
                    }
                }
                (dff, r)
            })
            .collect::<Vec<_>>()
    });
    shards.into_iter().flatten().collect()
}

/// Runs a **spatial double-bit** particle-strike campaign: simultaneous
/// flips of physically adjacent bit pairs, the multi-bit transient-fault
/// model of Wilkening et al. that the paper contrasts DelayAVF against
/// (§VIII). `dffs` must list a structure's bits in physical order;
/// consecutive entries form the struck pairs.
///
/// Unlike an SDF's dynamically reachable set, these pairs are fixed a
/// priori by layout adjacency — comparing the two campaigns quantifies how
/// much of delay-fault vulnerability spatial models can(not) capture.
///
/// Classification happens at boundary `cycle` (not `cycle + 1` as for
/// SDFs): a strike corrupts state that is already latched, whereas an SDF
/// corrupts the values being latched at the end of the faulty cycle — see
/// the module docs on latch-boundary conventions.
pub fn spatial_double_strike_campaign<E: Environment + Clone>(
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
) -> SavfResult {
    let cycles = valid_cycles(golden);
    let threads = resolve_threads(opts.threads, cycles.len());
    let shards = run_sharded(threads, &cycles, |shard| {
        let mut injector = shard_injector(
            circuit,
            topo,
            timing,
            golden,
            opts.due_slack,
            opts.incremental,
            opts.delta_timing,
            opts.lanes,
        );
        let mut r = SavfResult::default();
        for &cycle in shard {
            injector.prefill_failures(cycle, dffs.windows(2).map(|p| p.to_vec()));
            for pair in dffs.windows(2) {
                r.injections += 1;
                if injector.group_ace(cycle, pair) {
                    r.ace_hits += 1;
                }
            }
        }
        r
    });
    let mut result = SavfResult::default();
    for shard_result in shards {
        result.merge(&shard_result);
    }
    result
}

fn fraction_to_picos(timing: &TimingModel, fraction: f64) -> Picos {
    (timing.clock_period() as f64 * fraction).round() as Picos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::prepare_golden;
    use delayavf_netlist::CircuitBuilder;
    use delayavf_sim::ConstEnvironment;
    use delayavf_timing::TechLibrary;

    /// Accumulator fixture: errors persist forever, so dynamic reach implies
    /// visibility under the never-halting environment.
    fn fixture() -> (delayavf_netlist::Circuit, Topology, TimingModel) {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let acc = b.reg_word("acc", 4, 0);
        let next = b.in_structure("adder", |b| b.add(&acc.q(), &step));
        b.drive_word(&acc, &next);
        b.output_word("acc", &acc.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        (c, topo, timing)
    }

    #[test]
    fn sweep_is_monotone_in_static_reach() {
        let (c, topo, timing) = fixture();
        let env = ConstEnvironment::new(vec![5]);
        let golden = prepare_golden(&c, &topo, &env, 24, 6);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        let config = CampaignConfig {
            delay_fractions: vec![0.1, 0.5, 1.0],
            compute_orace: false,
            due_slack: 30,
            threads: 1,
            incremental: true,
            delta_timing: true,
            lanes: 64,
        };
        let rows = delay_avf_campaign(&c, &topo, &timing, &golden, &edges, &config);
        assert_eq!(rows.len(), 3);
        // Static reachability can only grow with the delay duration.
        assert!(rows[0].static_fraction() <= rows[1].static_fraction());
        assert!(rows[1].static_fraction() <= rows[2].static_fraction());
        // Every injection is counted.
        for r in &rows {
            assert_eq!(r.injections, edges.len() * golden.sampled_cycles.len());
            assert!(r.dynamic_hits <= r.static_hits);
            assert!(r.delay_ace_hits <= r.dynamic_hits);
        }
    }

    #[test]
    fn orace_on_an_accumulator_has_no_interference() {
        // Every accumulator bit error is individually ACE and group errors
        // never cancel (distinct bits), so interference = compounding = 0
        // and OrDelayAVF == DelayAVF.
        let (c, topo, timing) = fixture();
        let env = ConstEnvironment::new(vec![5]);
        let golden = prepare_golden(&c, &topo, &env, 24, 4);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        let config = CampaignConfig {
            delay_fractions: vec![0.9],
            compute_orace: true,
            due_slack: 30,
            threads: 1,
            incremental: true,
            delta_timing: true,
            lanes: 64,
        };
        let rows = delay_avf_campaign(&c, &topo, &timing, &golden, &edges, &config);
        let r = &rows[0];
        let o = r.orace.unwrap();
        assert_eq!(o.interference, 0);
        assert_eq!(o.compounding, 0);
        assert_eq!(r.or_delay_avf().unwrap(), r.delay_avf());
        assert_eq!(r.or_relative_change_pct(), Some(0.0));
    }

    #[test]
    fn per_bit_savf_sums_to_the_aggregate() {
        let (c, topo, timing) = fixture();
        let env = crate::testenv::ObservingEnv::new(5, 20);
        let golden = prepare_golden(&c, &topo, &env, 100, 4);
        let dffs: Vec<DffId> = c.dffs().map(|(d, _)| d).collect();
        let agg = savf_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        let per_bit = savf_per_bit_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        assert_eq!(per_bit.len(), dffs.len());
        let hits: usize = per_bit.iter().map(|(_, r)| r.ace_hits).sum();
        let trials: usize = per_bit.iter().map(|(_, r)| r.injections).sum();
        assert_eq!(hits, agg.ace_hits);
        assert_eq!(trials, agg.injections);
    }

    #[test]
    fn savf_of_an_accumulator_is_one() {
        let (c, topo, timing) = fixture();
        let env = crate::testenv::ObservingEnv::new(5, 20);
        let golden = prepare_golden(&c, &topo, &env, 100, 4);
        let dffs: Vec<DffId> = c.dffs().map(|(d, _)| d).collect();
        let r = savf_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        assert_eq!(r.injections, dffs.len() * golden.sampled_cycles.len());
        // Flips in the final executed cycle are never observed by the
        // environment (their outputs are past the last observation) — the
        // classic "un-ACE at end of program" effect. Everything else is ACE
        // in an accumulator.
        let n = golden.trace.num_cycles();
        let invisible_cycles = golden
            .sampled_cycles
            .iter()
            .filter(|&&cy| cy >= n - 1)
            .count();
        assert_eq!(r.ace_hits, r.injections - dffs.len() * invisible_cycles);
        assert!(r.savf() > 0.7);
    }

    /// The tentpole invariant: every campaign entry point returns exactly
    /// the serial answer for every thread count — including the ORACE
    /// statistics and the merged injector counters.
    #[test]
    fn parallel_campaigns_match_serial_bit_for_bit() {
        let (c, topo, timing) = fixture();
        let env = crate::testenv::ObservingEnv::new(5, 20);
        let golden = prepare_golden(&c, &topo, &env, 100, 8);
        let edges = topo.structure_edges(&c, "adder").unwrap();
        let dffs: Vec<DffId> = c.dffs().map(|(d, _)| d).collect();

        let config = CampaignConfig {
            delay_fractions: vec![0.2, 0.6, 1.0],
            compute_orace: true,
            due_slack: 30,
            threads: 1,
            incremental: true,
            delta_timing: true,
            lanes: 64,
        };
        let (serial_rows, serial_stats) =
            delay_avf_campaign_with_stats(&c, &topo, &timing, &golden, &edges, &config);
        let (serial_savf, serial_savf_stats) = savf_campaign_with_stats(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        let (serial_rec_row, serial_records) = delay_avf_campaign_records(
            &c,
            &topo,
            &timing,
            &golden,
            &edges,
            0.9,
            ReplayOptions::new(30, 1),
        );
        let serial_per_bit = savf_per_bit_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );
        let serial_spatial = spatial_double_strike_campaign(
            &c,
            &topo,
            &timing,
            &golden,
            &dffs,
            ReplayOptions::new(30, 1),
        );

        for threads in [2, 4] {
            let cfg = config.clone().with_threads(threads);
            let (rows, stats) =
                delay_avf_campaign_with_stats(&c, &topo, &timing, &golden, &edges, &cfg);
            assert_eq!(rows, serial_rows, "sweep rows, {threads} threads");
            assert_eq!(stats, serial_stats, "sweep stats, {threads} threads");

            let opts = ReplayOptions::new(30, threads);
            let (savf, savf_stats) =
                savf_campaign_with_stats(&c, &topo, &timing, &golden, &dffs, opts);
            assert_eq!(savf, serial_savf, "savf, {threads} threads");
            assert_eq!(
                savf_stats, serial_savf_stats,
                "savf stats, {threads} threads"
            );

            let (rec_row, records) =
                delay_avf_campaign_records(&c, &topo, &timing, &golden, &edges, 0.9, opts);
            assert_eq!(rec_row, serial_rec_row, "records row, {threads} threads");
            assert_eq!(records, serial_records, "records order, {threads} threads");

            let per_bit = savf_per_bit_campaign(&c, &topo, &timing, &golden, &dffs, opts);
            assert_eq!(per_bit, serial_per_bit, "per-bit, {threads} threads");

            let spatial = spatial_double_strike_campaign(&c, &topo, &timing, &golden, &dffs, opts);
            assert_eq!(spatial, serial_spatial, "spatial, {threads} threads");
        }
    }

    #[test]
    fn valid_cycles_drops_only_out_of_range_samples() {
        let (c, topo, timing) = fixture();
        let _ = &timing;
        let env = ConstEnvironment::new(vec![5]);
        let mut golden = prepare_golden(&c, &topo, &env, 24, 6);
        let n = golden.trace.num_cycles();
        // Poison the sample set with out-of-range cycles; campaigns must
        // skip them instead of panicking in the injector.
        golden.sampled_cycles.insert(0, 0);
        golden.sampled_cycles.push(n);
        golden.sampled_cycles.push(n + 7);
        let filtered = valid_cycles(&golden);
        assert!(filtered.iter().all(|&cy| cy >= 1 && cy < n));
        assert_eq!(filtered.len(), golden.sampled_cycles.len() - 3);
    }

    #[test]
    fn thread_resolution_clamps_to_work_items() {
        assert_eq!(resolve_threads(3, 100), 3);
        assert_eq!(resolve_threads(8, 2), 2);
        assert_eq!(resolve_threads(1, 0), 1);
        assert!(resolve_threads(0, 1_000_000) >= 1);
    }
}
