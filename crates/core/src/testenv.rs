//! Test-only environment that *observes* outputs, so faults become
//! program-visible (unlike [`delayavf_sim::ConstEnvironment`], which has no
//! program output at all).

use delayavf_sim::Environment;

/// Drives input port 0 with a constant and logs every observed output word
/// into the program output; halts after a fixed horizon.
#[derive(Clone, Debug)]
pub(crate) struct ObservingEnv {
    pub input: u64,
    pub horizon: u64,
    seen: u64,
    fp: u64,
    log: Vec<u8>,
}

impl ObservingEnv {
    pub fn new(input: u64, horizon: u64) -> Self {
        ObservingEnv {
            input,
            horizon,
            seen: 0,
            fp: 0x9e37_79b9_7f4a_7c15,
            log: Vec::new(),
        }
    }
}

impl Environment for ObservingEnv {
    fn step(&mut self, _cycle: u64, prev_outputs: &[u64], inputs: &mut [u64]) {
        for &o in prev_outputs {
            self.fp = (self.fp ^ o).wrapping_mul(0x0000_0100_0000_01b3);
            self.log.extend_from_slice(&o.to_le_bytes());
        }
        self.seen += 1;
        if let Some(slot) = inputs.first_mut() {
            *slot = self.input;
        }
    }

    fn halted(&self) -> bool {
        self.seen > self.horizon
    }

    fn fingerprint(&self) -> u64 {
        self.fp
    }

    fn program_output(&self) -> Vec<u8> {
        self.log.clone()
    }

    // The log is a faithful full-width record of every observed word and
    // halting is a pure cycle count, so the strong transcript contract
    // holds and SDC discharges are exact for this environment.
    fn deterministic_transcript(&self) -> bool {
        true
    }
}
