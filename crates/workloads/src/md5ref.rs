//! Reference MD5 implementation (used to compute the expected digest for
//! the `md5` workload, and nothing else).

/// Per-round left-rotation amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Round constants: `floor(2^32 * |sin(i + 1)|)`.
pub(crate) fn k_table() -> [u32; 64] {
    let mut k = [0u32; 64];
    for (i, slot) in k.iter_mut().enumerate() {
        *slot = (((i as f64 + 1.0).sin().abs()) * 4294967296.0) as u32;
    }
    k
}

/// Message-word index per round.
pub(crate) fn g_table() -> [u32; 64] {
    let mut g = [0u32; 64];
    for (i, slot) in g.iter_mut().enumerate() {
        *slot = match i / 16 {
            0 => i as u32,
            1 => (5 * i as u32 + 1) % 16,
            2 => (3 * i as u32 + 5) % 16,
            _ => (7 * i as u32) % 16,
        };
    }
    g
}

/// Shift table accessor for the workload generator.
pub(crate) fn s_table() -> [u32; 64] {
    S
}

/// Pads a message to MD5 block format (length-terminated, 64-byte blocks).
pub(crate) fn pad(message: &[u8]) -> Vec<u8> {
    let mut m = message.to_vec();
    let bit_len = (message.len() as u64) * 8;
    m.push(0x80);
    while m.len() % 64 != 56 {
        m.push(0);
    }
    m.extend_from_slice(&bit_len.to_le_bytes());
    m
}

/// Computes the MD5 digest of `message`, returned as the four little-endian
/// state words `(a, b, c, d)`.
pub fn md5_digest(message: &[u8]) -> [u32; 4] {
    let k = k_table();
    let g = g_table();
    let padded = pad(message);
    let mut state: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
    for block in padded.chunks_exact(64) {
        let m: Vec<u32> = block
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
        for i in 0..64 {
            let f = match i / 16 {
                0 => (b & c) | (!b & d),
                1 => (d & b) | (!d & c),
                2 => b ^ c ^ d,
                _ => c ^ (b | !d),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(k[i])
                    .wrapping_add(m[g[i] as usize])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_digest(message: &[u8]) -> String {
        md5_digest(message)
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    #[test]
    fn rfc1321_test_vectors() {
        assert_eq!(hex_digest(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex_digest(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex_digest(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            hex_digest(b"message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            hex_digest(b"abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
    }

    #[test]
    fn padding_is_block_aligned() {
        for len in [0usize, 1, 55, 56, 63, 64, 100] {
            let p = pad(&vec![0xaa; len]);
            assert_eq!(p.len() % 64, 0, "len {len}");
        }
    }
}
