//! Generators for the five kernels.
//!
//! Each generator emits complete RV32E assembly with embedded input data and
//! computes the expected exit code with a Rust reference implementation of
//! the same algorithm. Sizes are chosen so the `Paper` scale lands in the
//! cycle range of the paper's Table II (roughly 1k–10k cycles on the
//! gate-level core).

use std::fmt::Write as _;

use crate::md5ref;
use crate::{checksum_step, lcg_data, Kernel, Scale, Workload};

const EXIT_SEQ: &str = "    li   t0, 0x10004\n    sw   a0, 0(t0)\n    ebreak\n";

fn words_directive(data: &[u32]) -> String {
    let mut out = String::new();
    for chunk in data.chunks(8) {
        let row: Vec<String> = chunk.iter().map(|w| format!("{w:#x}")).collect();
        let _ = writeln!(out, "    .word {}", row.join(", "));
    }
    out
}

fn bytes_directive(data: &[u32]) -> String {
    let mut out = String::new();
    for chunk in data.chunks(16) {
        let row: Vec<String> = chunk.iter().map(|w| w.to_string()).collect();
        let _ = writeln!(out, "    .byte {}", row.join(", "));
    }
    out
}

/// Bubble sort over `n` pseudo-random words, exiting with an
/// order-sensitive checksum of the sorted array.
pub fn bubblesort(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Paper => 20,
        Scale::Tiny => 6,
    };
    let data = lcg_data(42, n, 10_000);
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let expected = sorted.iter().fold(0u32, |h, &x| checksum_step(h, x));

    let mut src = String::new();
    let _ = write!(
        src,
        r#"
    la   s0, data
    li   s1, {n}
    addi t0, s1, -1      # passes remaining
outer:
    beqz t0, sorted
    li   t1, 0           # position within pass
    mv   a4, s0
inner:
    lw   a0, 0(a4)
    lw   a1, 4(a4)
    ble  a0, a1, noswap
    sw   a1, 0(a4)
    sw   a0, 4(a4)
noswap:
    addi a4, a4, 4
    addi t1, t1, 1
    blt  t1, t0, inner
    addi t0, t0, -1
    j    outer
sorted:
    li   a0, 0
    mv   a4, s0
    li   t1, 0
ck:
    lw   a1, 0(a4)
    slli a2, a0, 1
    srli a0, a0, 31
    or   a0, a0, a2
    xor  a0, a0, a1
    addi a4, a4, 4
    addi t1, t1, 1
    blt  t1, s1, ck
{EXIT_SEQ}
data:
{data_words}"#,
        data_words = words_directive(&data),
    );
    Workload {
        kernel: Kernel::Bubblesort,
        source: src,
        expected_exit: expected,
        max_cycles: 200_000,
    }
}

/// Substring search, exiting with the index of the first match (or
/// 0xffffffff).
pub fn libstrstr(scale: Scale) -> Workload {
    let (haystack, needle) = match scale {
        Scale::Paper => {
            // Regular, repetitive text as in the paper's characterization,
            // with the needle close to the end.
            let mut h = "the quick brown fox jumps over the lazy dog ".to_string();
            h.push_str("pack my box with five dozen liquor jugs");
            (h, "dozen".to_owned())
        }
        Scale::Tiny => ("abababac".to_owned(), "bac".to_owned()),
    };
    let expected = haystack.find(&needle).map(|i| i as u32).unwrap_or(u32::MAX);

    let mut src = String::new();
    let _ = write!(
        src,
        r#"
    la   s0, hay
    la   s1, nee
    li   t0, 0           # candidate index
outer:
    add  a4, s0, t0
    lbu  a0, 0(a4)
    beqz a0, notfound
    mv   a5, s1
    mv   a3, a4
inner:
    lbu  a1, 0(a5)
    beqz a1, found
    lbu  a2, 0(a3)
    bne  a1, a2, next
    addi a5, a5, 1
    addi a3, a3, 1
    j    inner
next:
    addi t0, t0, 1
    j    outer
found:
    mv   a0, t0
    j    fin
notfound:
    li   a0, -1
fin:
{EXIT_SEQ}
hay:
    .asciz "{haystack}"
nee:
    .asciz "{needle}"
"#
    );
    Workload {
        kernel: Kernel::Libstrstr,
        source: src,
        expected_exit: expected,
        max_cycles: 50_000,
    }
}

/// Recursive Fibonacci (call/return and stack traffic), exiting with
/// `fib(n)`.
pub fn libfibcall(scale: Scale) -> Workload {
    let n: u32 = match scale {
        Scale::Paper => 8,
        Scale::Tiny => 4,
    };
    fn fib(n: u32) -> u32 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    let expected = fib(n);

    let mut src = String::new();
    let _ = write!(
        src,
        r#"
    li   sp, 0xff00
    li   a0, {n}
    call fib
{EXIT_SEQ}
fib:
    li   t0, 2
    blt  a0, t0, fib_base
    addi sp, sp, -12
    sw   ra, 0(sp)
    sw   s0, 4(sp)
    mv   s0, a0
    addi a0, a0, -1
    call fib
    sw   a0, 8(sp)
    addi a0, s0, -2
    call fib
    lw   a1, 8(sp)
    add  a0, a0, a1
    lw   ra, 0(sp)
    lw   s0, 4(sp)
    addi sp, sp, 12
    ret
fib_base:
    ret
"#
    );
    Workload {
        kernel: Kernel::Libfibcall,
        source: src,
        expected_exit: expected,
        max_cycles: 100_000,
    }
}

/// `n × n` integer matrix multiply with a software shift-add multiplier,
/// exiting with an order-sensitive checksum of the product.
pub fn matmult(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Paper => 5,
        Scale::Tiny => 2,
    };
    let a = lcg_data(7, n * n, 16);
    let b = lcg_data(13, n * n, 16);
    let mut c = vec![0u32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0u32;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            c[i * n + j] = acc;
        }
    }
    let expected = c.iter().fold(0u32, |h, &x| checksum_step(h, x));
    let row_bytes = 4 * n;
    let nn = n * n;

    let mut src = String::new();
    let _ = write!(
        src,
        r#"
    la   s0, mat_a       # current A row
    la   gp, mat_c       # C write pointer
    li   t0, 0           # i
i_loop:
    li   t1, 0           # j
j_loop:
    li   a3, 0           # acc
    mv   a4, s0
    la   s1, mat_b
    slli a5, t1, 2
    add  s1, s1, a5      # &B[0][j]
    li   t2, 0           # k
k_loop:
    lw   a0, 0(a4)
    lw   a1, 0(s1)
    call mul
    add  a3, a3, a0
    addi a4, a4, 4
    addi s1, s1, {row_bytes}
    addi t2, t2, 1
    li   a5, {n}
    blt  t2, a5, k_loop
    sw   a3, 0(gp)
    addi gp, gp, 4
    addi t1, t1, 1
    li   a5, {n}
    blt  t1, a5, j_loop
    addi s0, s0, {row_bytes}
    addi t0, t0, 1
    li   a5, {n}
    blt  t0, a5, i_loop
    # checksum over C
    la   a4, mat_c
    li   a0, 0
    li   t1, 0
ck:
    lw   a1, 0(a4)
    slli a2, a0, 1
    srli a0, a0, 31
    or   a0, a0, a2
    xor  a0, a0, a1
    addi a4, a4, 4
    addi t1, t1, 1
    li   a5, {nn}
    blt  t1, a5, ck
{EXIT_SEQ}
mul:                     # a0 = a0 * a1 (shift-add); clobbers a1, a5, tp
    mv   tp, a0
    li   a0, 0
mul_loop:
    beqz a1, mul_done
    andi a5, a1, 1
    beqz a5, mul_skip
    add  a0, a0, tp
mul_skip:
    slli tp, tp, 1
    srli a1, a1, 1
    j    mul_loop
mul_done:
    ret
mat_a:
{a_words}mat_b:
{b_words}mat_c:
    .space {c_bytes}
"#,
        a_words = words_directive(&a),
        b_words = words_directive(&b),
        c_bytes = 4 * nn,
    );
    Workload {
        kernel: Kernel::Matmult,
        source: src,
        expected_exit: expected,
        max_cycles: 200_000,
    }
}

/// MD5 compression, exiting with the first digest word.
///
/// At `Scale::Tiny` only the first 16 rounds run (a structurally identical
/// reduced-round variant, matched by the Rust reference) to keep test
/// runtimes low; `Scale::Paper` computes real single-block MD5.
pub fn md5(scale: Scale) -> Workload {
    let (message, rounds): (&[u8], u32) = match scale {
        Scale::Paper => (b"The DelayAVF reproduction hashes this.", 64),
        Scale::Tiny => (b"tiny", 16),
    };
    let expected = md5_like(message, rounds)[0];

    let padded = md5ref::pad(message);
    assert_eq!(padded.len(), 64, "single-block messages only");
    let msg_words: Vec<u32> = padded
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    let k: Vec<u32> = md5ref::k_table().to_vec();
    let s: Vec<u32> = md5ref::s_table().to_vec();
    let g: Vec<u32> = md5ref::g_table().to_vec();

    let mut src = String::new();
    let _ = write!(
        src,
        r#"
    li   a0, 0x67452301
    li   a1, 0xefcdab89
    li   a2, 0x98badcfe
    li   a3, 0x10325476
    la   s1, msg
    la   tp, saved
    sw   a0, 0(tp)
    sw   a1, 4(tp)
    sw   a2, 8(tp)
    sw   a3, 12(tp)
    li   t0, 0           # round counter
round_loop:
    li   t1, 16
    blt  t0, t1, r0
    li   t1, 32
    blt  t0, t1, r1
    li   t1, 48
    blt  t0, t1, r2
    not  a4, a3          # round 48..64: f = C ^ (B | ~D)
    or   a4, a4, a1
    xor  a4, a4, a2
    j    have_f
r0:                      # f = (B & C) | (~B & D)
    and  a4, a1, a2
    not  a5, a1
    and  a5, a5, a3
    or   a4, a4, a5
    j    have_f
r1:                      # f = (D & B) | (~D & C)
    and  a4, a3, a1
    not  a5, a3
    and  a5, a5, a2
    or   a4, a4, a5
    j    have_f
r2:                      # f = B ^ C ^ D
    xor  a4, a1, a2
    xor  a4, a4, a3
have_f:
    add  a4, a4, a0      # + A
    la   a5, ktab
    slli t2, t0, 2
    add  a5, a5, t2
    lw   a5, 0(a5)
    add  a4, a4, a5      # + K[t]
    la   a5, gtab
    add  a5, a5, t0
    lbu  a5, 0(a5)
    slli a5, a5, 2
    add  a5, a5, s1
    lw   a5, 0(a5)
    add  a4, a4, a5      # + M[g[t]]
    la   a5, stab
    add  a5, a5, t0
    lbu  a5, 0(a5)
    sll  t1, a4, a5      # rotate left by s[t] (1 <= s <= 23)
    li   t2, 32
    sub  t2, t2, a5
    srl  a4, a4, t2
    or   a4, a4, t1
    mv   t1, a3          # (A,B,C,D) <- (D, B + rot, B, C)
    mv   a3, a2
    mv   a2, a1
    add  a1, a1, a4
    mv   a0, t1
    addi t0, t0, 1
    li   t1, {rounds}
    blt  t0, t1, round_loop
    la   tp, saved
    lw   t1, 0(tp)
    add  a0, a0, t1
    lw   t1, 4(tp)
    add  a1, a1, t1
    lw   t1, 8(tp)
    add  a2, a2, t1
    lw   t1, 12(tp)
    add  a3, a3, t1
{EXIT_SEQ}
saved:
    .space 16
ktab:
{k_words}stab:
{s_bytes}gtab:
{g_bytes}    .align 2
msg:
{m_words}"#,
        k_words = words_directive(&k),
        s_bytes = bytes_directive(&s),
        g_bytes = bytes_directive(&g),
        m_words = words_directive(&msg_words),
    );
    Workload {
        kernel: Kernel::Md5,
        source: src,
        expected_exit: expected,
        max_cycles: 100_000,
    }
}

/// Bit-serial reflected CRC-32 (extension kernel beyond the paper's five):
/// xor-heavy data-dependent bit loops, exiting with the checksum.
pub fn crc32(scale: Scale) -> Workload {
    let len = match scale {
        Scale::Paper => 36,
        Scale::Tiny => 5,
    };
    let data: Vec<u32> = lcg_data(99, len, 256);
    let bytes: Vec<u8> = data.iter().map(|&w| w as u8).collect();
    let mut crc = u32::MAX;
    for &b in &bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    let expected = !crc;

    let mut src = String::new();
    let _ = write!(
        src,
        r#"
    la   s0, data
    li   s1, {len}
    li   a0, -1
    li   t2, 0xEDB88320
byte_loop:
    beqz s1, crc_done
    lbu  a1, 0(s0)
    xor  a0, a0, a1
    li   t0, 8
bit_loop:
    andi t1, a0, 1
    srli a0, a0, 1
    beqz t1, no_poly
    xor  a0, a0, t2
no_poly:
    addi t0, t0, -1
    bnez t0, bit_loop
    addi s0, s0, 1
    addi s1, s1, -1
    j    byte_loop
crc_done:
    not  a0, a0
{EXIT_SEQ}
data:
{data_bytes}"#,
        data_bytes = bytes_directive(&data),
    );
    Workload {
        kernel: Kernel::Crc32,
        source: src,
        expected_exit: expected,
        max_cycles: 100_000,
    }
}

/// Recursive quicksort (extension kernel beyond the paper's five): deep
/// call stacks and heavy pointer loads/stores, exiting with an
/// order-sensitive checksum of the sorted array.
pub fn qsort(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Paper => 14,
        Scale::Tiny => 5,
    };
    let data = lcg_data(1234, n, 100_000);
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let expected = sorted.iter().fold(0u32, |h, &x| checksum_step(h, x));
    let last_off = 4 * (n - 1);

    let mut src = String::new();
    let _ = write!(
        src,
        r#"
    li   sp, 0xff00
    la   a0, data
    la   a1, data
    addi a1, a1, {last_off}
    call qsort
    la   a4, data
    li   a0, 0
    li   t1, 0
ck:
    lw   a1, 0(a4)
    slli a2, a0, 1
    srli a0, a0, 31
    or   a0, a0, a2
    xor  a0, a0, a1
    addi a4, a4, 4
    addi t1, t1, 1
    li   a5, {n}
    blt  t1, a5, ck
{EXIT_SEQ}
# qsort(lo = a0, hi = a1): pointers to first/last element, inclusive.
qsort:
    bgeu a0, a1, qs_ret
    addi sp, sp, -16
    sw   ra, 0(sp)
    sw   s0, 4(sp)
    sw   s1, 8(sp)
    sw   gp, 12(sp)
    mv   s0, a0          # lo
    mv   s1, a1          # hi
    lw   t0, 0(s1)       # pivot = *hi (Lomuto)
    mv   gp, s0          # i: store position
    mv   t2, s0          # j
qs_part:
    bgeu t2, s1, qs_pdone
    lw   a2, 0(t2)
    bgtu a2, t0, qs_noswap
    lw   a3, 0(gp)
    sw   a2, 0(gp)
    sw   a3, 0(t2)
    addi gp, gp, 4
qs_noswap:
    addi t2, t2, 4
    j    qs_part
qs_pdone:
    lw   a2, 0(gp)
    lw   a3, 0(s1)
    sw   a3, 0(gp)
    sw   a2, 0(s1)
    mv   a0, s0          # left half: [lo, i-4]
    addi a1, gp, -4
    call qsort
    addi a0, gp, 4       # right half: [i+4, hi]
    mv   a1, s1
    call qsort
    lw   ra, 0(sp)
    lw   s0, 4(sp)
    lw   s1, 8(sp)
    lw   gp, 12(sp)
    addi sp, sp, 16
qs_ret:
    ret
data:
{data_words}"#,
        data_words = words_directive(&data),
    );
    Workload {
        kernel: Kernel::Qsort,
        source: src,
        expected_exit: expected,
        max_cycles: 200_000,
    }
}

/// Reference for the (possibly round-reduced) MD5 variant the workload
/// executes. `rounds = 64` is real single-block MD5.
fn md5_like(message: &[u8], rounds: u32) -> [u32; 4] {
    let k = md5ref::k_table();
    let g = md5ref::g_table();
    let s = md5ref::s_table();
    let padded = md5ref::pad(message);
    assert_eq!(padded.len(), 64);
    let m: Vec<u32> = padded
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    let state: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
    let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
    for i in 0..rounds as usize {
        let f = match i / 16 {
            0 => (b & c) | (!b & d),
            1 => (d & b) | (!d & c),
            2 => b ^ c ^ d,
            _ => c ^ (b | !d),
        };
        let tmp = d;
        d = c;
        c = b;
        b = b.wrapping_add(
            a.wrapping_add(f)
                .wrapping_add(k[i])
                .wrapping_add(m[g[i] as usize])
                .rotate_left(s[i]),
        );
        a = tmp;
    }
    [
        state[0].wrapping_add(a),
        state[1].wrapping_add(b),
        state[2].wrapping_add(c),
        state[3].wrapping_add(d),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md5_like_with_64_rounds_is_md5() {
        let msg = b"The DelayAVF reproduction hashes this.";
        assert_eq!(md5_like(msg, 64), crate::md5_digest(msg));
    }

    #[test]
    fn generators_embed_data() {
        let w = matmult(Scale::Paper);
        assert!(w.source.contains("mat_a"));
        assert!(w.source.contains(".space 100"), "5x5 result matrix");
        let w = md5(Scale::Paper);
        assert!(w.source.contains("ktab"));
    }
}
