//! The benchmark workloads: five Beebs-like kernels in RV32E assembly.
//!
//! The paper evaluates DelayAVF over five applications from the Beebs
//! embedded suite: *md5*, *bubblesort*, *libstrstr*, *libfibcall* and
//! *matmult*. This crate provides the same five kernels, hand-written in
//! RV32E assembly (the studied core has no compiler toolchain), each with:
//!
//! * a **generator** that emits the assembly source with embedded input
//!   data at a chosen [`Scale`],
//! * a Rust **reference implementation** that computes the expected exit
//!   code, so the golden run is verified end to end,
//! * a generous cycle budget for simulation.
//!
//! Every kernel terminates by storing its result to the exit MMIO register
//! and then executing `ebreak`, the convention shared by the ISS and the
//! gate-level core.
//!
//! # Example
//!
//! ```
//! use delayavf_workloads::{Kernel, Scale};
//! use delayavf_isa::{Iss, StopCause};
//!
//! let w = Kernel::Bubblesort.build(Scale::Tiny);
//! let mut iss = Iss::new(64 * 1024);
//! iss.load(&w.assemble()?);
//! assert_eq!(iss.run(w.max_cycles), StopCause::Exit(w.expected_exit));
//! # Ok::<(), delayavf_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod md5ref;

pub use md5ref::md5_digest;

use delayavf_isa::{assemble, AsmError, Program};

/// Which of the five Beebs-like kernels to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// MD5 compression over a padded message (hash-random data, high toggle
    /// rates — the paper's high-DelayAVF ALU workload).
    Md5,
    /// Bubble sort over an integer array.
    Bubblesort,
    /// Substring search over regular text (the paper's low-toggle-rate
    /// workload).
    Libstrstr,
    /// Recursive Fibonacci with real call/return traffic.
    Libfibcall,
    /// Integer matrix multiply (software shift-add multiplier).
    Matmult,
    /// Bit-serial CRC-32 (extension kernel, not part of the paper's suite).
    Crc32,
    /// Recursive quicksort (extension kernel, not part of the paper's
    /// suite).
    Qsort,
}

impl Kernel {
    /// The paper's five kernels, in the paper's order.
    pub const ALL: [Kernel; 5] = [
        Kernel::Md5,
        Kernel::Bubblesort,
        Kernel::Libstrstr,
        Kernel::Libfibcall,
        Kernel::Matmult,
    ];

    /// The paper's five kernels plus the extension kernels.
    pub const EXTENDED: [Kernel; 7] = [
        Kernel::Md5,
        Kernel::Bubblesort,
        Kernel::Libstrstr,
        Kernel::Libfibcall,
        Kernel::Matmult,
        Kernel::Crc32,
        Kernel::Qsort,
    ];

    /// The kernel's Beebs-style name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Md5 => "md5",
            Kernel::Bubblesort => "bubblesort",
            Kernel::Libstrstr => "libstrstr",
            Kernel::Libfibcall => "libfibcall",
            Kernel::Matmult => "matmult",
            Kernel::Crc32 => "crc32",
            Kernel::Qsort => "qsort",
        }
    }

    /// Parses a kernel name as printed by [`Kernel::name`].
    pub fn parse(name: &str) -> Option<Kernel> {
        Kernel::EXTENDED.into_iter().find(|k| k.name() == name)
    }

    /// Builds the workload at the given scale.
    pub fn build(self, scale: Scale) -> Workload {
        match self {
            Kernel::Md5 => kernels::md5(scale),
            Kernel::Bubblesort => kernels::bubblesort(scale),
            Kernel::Libstrstr => kernels::libstrstr(scale),
            Kernel::Libfibcall => kernels::libfibcall(scale),
            Kernel::Matmult => kernels::matmult(scale),
            Kernel::Crc32 => kernels::crc32(scale),
            Kernel::Qsort => kernels::qsort(scale),
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Input size selection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Sizes chosen so gate-level executions land in the paper's Table II
    /// range (roughly one to ten thousand cycles).
    #[default]
    Paper,
    /// Much smaller inputs for fast unit tests.
    Tiny,
}

/// A generated workload: assembly source plus its expected behaviour.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Kernel identity.
    pub kernel: Kernel,
    /// Complete assembly source.
    pub source: String,
    /// Expected exit code (computed by a Rust reference implementation).
    pub expected_exit: u32,
    /// Generous cycle budget for gate-level execution.
    pub max_cycles: u64,
}

impl Workload {
    /// Assembles the workload.
    ///
    /// # Errors
    ///
    /// Returns the assembler error — which would indicate a bug in the
    /// generator — with source line information.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        assemble(&self.source)
    }
}

/// Builds the paper's five workloads at one scale, in the paper's order.
pub fn suite(scale: Scale) -> Vec<Workload> {
    Kernel::ALL.iter().map(|k| k.build(scale)).collect()
}

/// Builds every workload (the paper's five plus the extension kernels).
pub fn suite_extended(scale: Scale) -> Vec<Workload> {
    Kernel::EXTENDED.iter().map(|k| k.build(scale)).collect()
}

/// The order-sensitive checksum shared by the kernels and their reference
/// implementations: `h' = rotl(h, 1) ^ x`.
pub fn checksum_step(h: u32, x: u32) -> u32 {
    h.rotate_left(1) ^ x
}

/// Deterministic pseudo-random data generator used to embed input arrays
/// (a simple LCG; the point is reproducibility, not quality).
pub fn lcg_data(seed: u32, len: usize, modulus: u32) -> Vec<u32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) % modulus
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_isa::{Iss, StopCause};

    fn run_on_iss(w: &Workload) -> (StopCause, u64) {
        let p = w.assemble().expect("workload assembles");
        let mut iss = Iss::new(64 * 1024);
        iss.load(&p);
        let cause = iss.run(w.max_cycles);
        (cause, iss.retired())
    }

    #[test]
    fn every_workload_matches_its_reference_tiny() {
        for w in suite_extended(Scale::Tiny) {
            let (cause, retired) = run_on_iss(&w);
            assert_eq!(
                cause,
                StopCause::Exit(w.expected_exit),
                "{} (tiny) exits with the reference value",
                w.kernel
            );
            assert!(retired > 20, "{} does real work", w.kernel);
        }
    }

    #[test]
    fn every_workload_matches_its_reference_paper() {
        for w in suite_extended(Scale::Paper) {
            let (cause, _) = run_on_iss(&w);
            assert_eq!(
                cause,
                StopCause::Exit(w.expected_exit),
                "{} (paper) exits with the reference value",
                w.kernel
            );
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in Kernel::EXTENDED {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse("nope"), None);
    }

    #[test]
    fn scales_differ_in_work() {
        let tiny = Kernel::Bubblesort.build(Scale::Tiny);
        let paper = Kernel::Bubblesort.build(Scale::Paper);
        let (_, r_tiny) = run_on_iss(&tiny);
        let (_, r_paper) = run_on_iss(&paper);
        assert!(r_paper > 4 * r_tiny, "paper scale is substantially larger");
    }

    #[test]
    fn lcg_is_deterministic_and_bounded() {
        let a = lcg_data(7, 32, 100);
        let b = lcg_data(7, 32, 100);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x < 100));
        assert_ne!(a, lcg_data(8, 32, 100));
    }
}
