//! Property tests: instruction encode/decode round-trips, decoder
//! robustness, and assembler/disassembler agreement.

use delayavf_isa::{assemble, AluOp, BranchKind, Inst, LoadKind, Reg, StoreKind};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (reg_strategy(), 0u32..(1 << 20)).prop_map(|(rd, hi)| Inst::Lui { rd, imm: hi << 12 }),
        (reg_strategy(), 0u32..(1 << 20)).prop_map(|(rd, hi)| Inst::Auipc { rd, imm: hi << 12 }),
        (reg_strategy(), -(1i32 << 19)..(1 << 19))
            .prop_map(|(rd, o)| Inst::Jal { rd, offset: o * 2 }),
        (reg_strategy(), reg_strategy(), -2048i32..2048)
            .prop_map(|(rd, rs1, offset)| { Inst::Jalr { rd, rs1, offset } }),
        (
            prop_oneof![
                Just(BranchKind::Eq),
                Just(BranchKind::Ne),
                Just(BranchKind::Lt),
                Just(BranchKind::Ge),
                Just(BranchKind::Ltu),
                Just(BranchKind::Geu)
            ],
            reg_strategy(),
            reg_strategy(),
            -(1i32 << 11)..(1 << 11)
        )
            .prop_map(|(kind, rs1, rs2, o)| Inst::Branch {
                kind,
                rs1,
                rs2,
                offset: o * 2,
            }),
        (
            prop_oneof![
                Just(LoadKind::Lb),
                Just(LoadKind::Lh),
                Just(LoadKind::Lw),
                Just(LoadKind::Lbu),
                Just(LoadKind::Lhu)
            ],
            reg_strategy(),
            reg_strategy(),
            -2048i32..2048
        )
            .prop_map(|(kind, rd, rs1, offset)| Inst::Load {
                kind,
                rd,
                rs1,
                offset,
            }),
        (
            prop_oneof![
                Just(StoreKind::Sb),
                Just(StoreKind::Sh),
                Just(StoreKind::Sw)
            ],
            reg_strategy(),
            reg_strategy(),
            -2048i32..2048
        )
            .prop_map(|(kind, rs2, rs1, offset)| Inst::Store {
                kind,
                rs2,
                rs1,
                offset,
            }),
        (alu_op(), reg_strategy(), reg_strategy(), -2048i32..2048).prop_filter_map(
            "imm ops exclude sub; shifts need 0..32",
            |(kind, rd, rs1, imm)| {
                if kind == AluOp::Sub {
                    return None;
                }
                let imm = match kind {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(32),
                    _ => imm,
                };
                Some(Inst::OpImm { kind, rd, rs1, imm })
            }
        ),
        (alu_op(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(kind, rd, rs1, rs2)| Inst::Op { kind, rd, rs1, rs2 }),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(inst in inst_strategy()) {
        let word = inst.encode();
        prop_assert_eq!(Inst::decode(word), Ok(inst));
    }

    #[test]
    fn decode_never_panics(word: u32) {
        let _ = Inst::decode(word);
    }

    #[test]
    fn decode_encode_is_identity_on_valid_words(word: u32) {
        if let Ok(inst) = Inst::decode(word) {
            // Re-encoding a decoded instruction reproduces a word that
            // decodes to the same instruction (the encoding may differ only
            // in don't-care bits, which our encoder never sets).
            prop_assert_eq!(Inst::decode(inst.encode()), Ok(inst));
        }
    }

    #[test]
    fn disassembly_reassembles_to_the_same_word(inst in inst_strategy()) {
        // Branch/jump offsets disassemble as absolute byte offsets which the
        // assembler interprets relative to the instruction at address 0 —
        // identical semantics for a single instruction at address 0.
        let text = inst.to_string();
        let program = assemble(&text).unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        prop_assert_eq!(program.words()[0], inst.encode(), "{}", text);
    }
}

proptest! {
    #[test]
    fn random_straightline_programs_assemble_and_run(
        seeds in prop::collection::vec(any::<i32>(), 1..8),
        exit_reg in 1u8..16,
    ) {
        use delayavf_isa::{Iss, StopCause};
        // Straight-line register setup followed by a clean exit: the
        // assembler, encoder, and ISS must agree end to end.
        let mut src = String::new();
        for (i, v) in seeds.iter().enumerate() {
            src.push_str(&format!("li x{}, {}\n", (i % 15) + 1, v));
        }
        src.push_str(&format!("li t0, 0x10004\nsw x{exit_reg}, 0(t0)\nebreak\n"));
        let p = delayavf_isa::assemble(&src).expect("assembles");
        let mut iss = Iss::new(64 * 1024);
        iss.load(&p);
        let cause = iss.run(10_000);
        prop_assert!(matches!(cause, StopCause::Exit(_)), "{cause:?}");
    }

    #[test]
    fn listing_round_trips_through_the_assembler(inst in inst_strategy()) {
        // A single-instruction program's listing contains its own
        // disassembly, and that disassembly reassembles to the same word.
        let word = inst.encode();
        let src = format!(".word {word:#x}\n");
        let p = delayavf_isa::assemble(&src).unwrap();
        let listing = p.listing();
        prop_assert!(listing.contains(&format!("{word:08x}")), "{listing}");
        prop_assert!(listing.contains(&inst.to_string()), "{listing}");
    }
}
