//! Instruction forms and standard RV32 encodings.

use std::error::Error;
use std::fmt;

use crate::reg::Reg;

/// ALU operations shared by register-register and register-immediate forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`; no immediate form).
    Sub,
    /// Logical left shift.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Bitwise XOR.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
}

impl AluOp {
    /// The funct3 field for this operation.
    pub fn funct3(self) -> u32 {
        match self {
            AluOp::Add | AluOp::Sub => 0b000,
            AluOp::Sll => 0b001,
            AluOp::Slt => 0b010,
            AluOp::Sltu => 0b011,
            AluOp::Xor => 0b100,
            AluOp::Srl | AluOp::Sra => 0b101,
            AluOp::Or => 0b110,
            AluOp::And => 0b111,
        }
    }

    fn funct7(self) -> u32 {
        match self {
            AluOp::Sub | AluOp::Sra => 0b0100000,
            _ => 0,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
}

/// Conditional branch comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl BranchKind {
    /// The funct3 field for this comparison.
    pub fn funct3(self) -> u32 {
        match self {
            BranchKind::Eq => 0b000,
            BranchKind::Ne => 0b001,
            BranchKind::Lt => 0b100,
            BranchKind::Ge => 0b101,
            BranchKind::Ltu => 0b110,
            BranchKind::Geu => 0b111,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            BranchKind::Eq => "beq",
            BranchKind::Ne => "bne",
            BranchKind::Lt => "blt",
            BranchKind::Ge => "bge",
            BranchKind::Ltu => "bltu",
            BranchKind::Geu => "bgeu",
        }
    }
}

/// Load widths and extensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// Sign-extended byte.
    Lb,
    /// Sign-extended halfword.
    Lh,
    /// Word.
    Lw,
    /// Zero-extended byte.
    Lbu,
    /// Zero-extended halfword.
    Lhu,
}

impl LoadKind {
    /// The funct3 field for this load.
    pub fn funct3(self) -> u32 {
        match self {
            LoadKind::Lb => 0b000,
            LoadKind::Lh => 0b001,
            LoadKind::Lw => 0b010,
            LoadKind::Lbu => 0b100,
            LoadKind::Lhu => 0b101,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            LoadKind::Lb => "lb",
            LoadKind::Lh => "lh",
            LoadKind::Lw => "lw",
            LoadKind::Lbu => "lbu",
            LoadKind::Lhu => "lhu",
        }
    }
}

/// Store widths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Byte.
    Sb,
    /// Halfword.
    Sh,
    /// Word.
    Sw,
}

impl StoreKind {
    /// The funct3 field for this store.
    pub fn funct3(self) -> u32 {
        match self {
            StoreKind::Sb => 0b000,
            StoreKind::Sh => 0b001,
            StoreKind::Sw => 0b010,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            StoreKind::Sb => "sb",
            StoreKind::Sh => "sh",
            StoreKind::Sw => "sw",
        }
    }
}

/// A decoded RV32E-subset instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Load upper immediate; `imm` is the already-shifted 32-bit value with
    /// its low 12 bits zero.
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper immediate (low 12 bits zero).
        imm: u32,
    },
    /// Add upper immediate to PC.
    Auipc {
        /// Destination.
        rd: Reg,
        /// Upper immediate (low 12 bits zero).
        imm: u32,
    },
    /// Jump and link.
    Jal {
        /// Destination for the return address.
        rd: Reg,
        /// PC-relative byte offset (even, ±1 MiB).
        offset: i32,
    },
    /// Indirect jump and link.
    Jalr {
        /// Destination for the return address.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset (±2 KiB).
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison kind.
        kind: BranchKind,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// PC-relative byte offset (even, ±4 KiB).
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Width/extension.
        kind: LoadKind,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset (±2 KiB).
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        kind: StoreKind,
        /// Value register.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset (±2 KiB).
        offset: i32,
    },
    /// ALU with immediate operand (`Sub` is not encodable in this form).
    OpImm {
        /// Operation.
        kind: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Immediate (±2 KiB for arithmetic, 0..32 for shifts).
        imm: i32,
    },
    /// ALU with two register operands.
    Op {
        /// Operation.
        kind: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// Environment call (halts the studied core).
    Ecall,
    /// Breakpoint (halts the studied core).
    Ebreak,
}

/// Errors from [`Inst::decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The word does not encode a supported instruction.
    Illegal {
        /// The offending word.
        word: u32,
    },
    /// The encoding addresses a register outside RV32E's x0..x15.
    RegisterOutOfRange {
        /// The offending word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Illegal { word } => write!(f, "illegal instruction {word:#010x}"),
            DecodeError::RegisterOutOfRange { word } => {
                write!(f, "register above x15 in rv32e instruction {word:#010x}")
            }
        }
    }
}

impl Error for DecodeError {}

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP: u32 = 0b0110011;
const OPC_SYSTEM: u32 = 0b1110011;

fn field(word: u32, lo: u32, bits: u32) -> u32 {
    (word >> lo) & ((1 << bits) - 1)
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn reg_field(word: u32, lo: u32) -> Result<Reg, DecodeError> {
    let n = field(word, lo, 5);
    Reg::try_new(n as u8).ok_or(DecodeError::RegisterOutOfRange { word })
}

fn enc_b_imm(offset: i32) -> u32 {
    let imm = offset as u32;
    ((imm >> 12) & 1) << 31
        | ((imm >> 5) & 0x3f) << 25
        | ((imm >> 1) & 0xf) << 8
        | ((imm >> 11) & 1) << 7
}

fn dec_b_imm(word: u32) -> i32 {
    let imm = (field(word, 31, 1) << 12)
        | (field(word, 7, 1) << 11)
        | (field(word, 25, 6) << 5)
        | (field(word, 8, 4) << 1);
    sext(imm, 13)
}

fn enc_j_imm(offset: i32) -> u32 {
    let imm = offset as u32;
    ((imm >> 20) & 1) << 31
        | ((imm >> 1) & 0x3ff) << 21
        | ((imm >> 11) & 1) << 20
        | ((imm >> 12) & 0xff) << 12
}

fn dec_j_imm(word: u32) -> i32 {
    let imm = (field(word, 31, 1) << 20)
        | (field(word, 12, 8) << 12)
        | (field(word, 20, 1) << 11)
        | (field(word, 21, 10) << 1);
    sext(imm, 21)
}

impl Inst {
    /// Encodes the instruction into its 32-bit machine word.
    ///
    /// # Panics
    ///
    /// Panics when an immediate does not fit its field (the assembler
    /// validates ranges before constructing instructions; constructing an
    /// `Inst` with an oversized immediate is a programming error).
    pub fn encode(self) -> u32 {
        let rd = |r: Reg| u32::from(r.num()) << 7;
        let rs1 = |r: Reg| u32::from(r.num()) << 15;
        let rs2 = |r: Reg| u32::from(r.num()) << 20;
        let f3 = |v: u32| v << 12;
        let i_imm = |imm: i32| {
            assert!(
                (-2048..=2047).contains(&imm),
                "i-type immediate {imm} out of range"
            );
            ((imm as u32) & 0xfff) << 20
        };
        match self {
            Inst::Lui { rd: d, imm } => {
                assert_eq!(imm & 0xfff, 0, "lui immediate must have low 12 bits clear");
                imm | rd(d) | OPC_LUI
            }
            Inst::Auipc { rd: d, imm } => {
                assert_eq!(
                    imm & 0xfff,
                    0,
                    "auipc immediate must have low 12 bits clear"
                );
                imm | rd(d) | OPC_AUIPC
            }
            Inst::Jal { rd: d, offset } => {
                assert!(
                    offset % 2 == 0 && (-(1 << 20)..(1 << 20)).contains(&offset),
                    "jal offset {offset} out of range"
                );
                enc_j_imm(offset) | rd(d) | OPC_JAL
            }
            Inst::Jalr {
                rd: d,
                rs1: s1,
                offset,
            } => i_imm(offset) | rs1(s1) | f3(0) | rd(d) | OPC_JALR,
            Inst::Branch {
                kind,
                rs1: s1,
                rs2: s2,
                offset,
            } => {
                assert!(
                    offset % 2 == 0 && (-(1 << 12)..(1 << 12)).contains(&offset),
                    "branch offset {offset} out of range"
                );
                enc_b_imm(offset) | rs2(s2) | rs1(s1) | f3(kind.funct3()) | OPC_BRANCH
            }
            Inst::Load {
                kind,
                rd: d,
                rs1: s1,
                offset,
            } => i_imm(offset) | rs1(s1) | f3(kind.funct3()) | rd(d) | OPC_LOAD,
            Inst::Store {
                kind,
                rs2: s2,
                rs1: s1,
                offset,
            } => {
                assert!(
                    (-2048..=2047).contains(&offset),
                    "store offset {offset} out of range"
                );
                let imm = offset as u32;
                ((imm >> 5) & 0x7f) << 25
                    | rs2(s2)
                    | rs1(s1)
                    | f3(kind.funct3())
                    | (imm & 0x1f) << 7
                    | OPC_STORE
            }
            Inst::OpImm {
                kind,
                rd: d,
                rs1: s1,
                imm,
            } => {
                assert_ne!(kind, AluOp::Sub, "subi does not exist; use addi with -imm");
                match kind {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                        assert!((0..32).contains(&imm), "shift amount {imm} out of range");
                        (kind.funct7() << 25)
                            | ((imm as u32) << 20)
                            | rs1(s1)
                            | f3(kind.funct3())
                            | rd(d)
                            | OPC_OP_IMM
                    }
                    _ => i_imm(imm) | rs1(s1) | f3(kind.funct3()) | rd(d) | OPC_OP_IMM,
                }
            }
            Inst::Op {
                kind,
                rd: d,
                rs1: s1,
                rs2: s2,
            } => (kind.funct7() << 25) | rs2(s2) | rs1(s1) | f3(kind.funct3()) | rd(d) | OPC_OP,
            Inst::Ecall => OPC_SYSTEM,
            Inst::Ebreak => (1 << 20) | OPC_SYSTEM,
        }
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Illegal`] for unsupported encodings and
    /// [`DecodeError::RegisterOutOfRange`] when a register field addresses
    /// x16..x31 (not part of RV32E).
    pub fn decode(word: u32) -> Result<Inst, DecodeError> {
        let opcode = field(word, 0, 7);
        let funct3 = field(word, 12, 3);
        let funct7 = field(word, 25, 7);
        let illegal = DecodeError::Illegal { word };
        match opcode {
            OPC_LUI => Ok(Inst::Lui {
                rd: reg_field(word, 7)?,
                imm: word & 0xffff_f000,
            }),
            OPC_AUIPC => Ok(Inst::Auipc {
                rd: reg_field(word, 7)?,
                imm: word & 0xffff_f000,
            }),
            OPC_JAL => Ok(Inst::Jal {
                rd: reg_field(word, 7)?,
                offset: dec_j_imm(word),
            }),
            OPC_JALR if funct3 == 0 => Ok(Inst::Jalr {
                rd: reg_field(word, 7)?,
                rs1: reg_field(word, 15)?,
                offset: sext(field(word, 20, 12), 12),
            }),
            OPC_BRANCH => {
                let kind = match funct3 {
                    0b000 => BranchKind::Eq,
                    0b001 => BranchKind::Ne,
                    0b100 => BranchKind::Lt,
                    0b101 => BranchKind::Ge,
                    0b110 => BranchKind::Ltu,
                    0b111 => BranchKind::Geu,
                    _ => return Err(illegal),
                };
                Ok(Inst::Branch {
                    kind,
                    rs1: reg_field(word, 15)?,
                    rs2: reg_field(word, 20)?,
                    offset: dec_b_imm(word),
                })
            }
            OPC_LOAD => {
                let kind = match funct3 {
                    0b000 => LoadKind::Lb,
                    0b001 => LoadKind::Lh,
                    0b010 => LoadKind::Lw,
                    0b100 => LoadKind::Lbu,
                    0b101 => LoadKind::Lhu,
                    _ => return Err(illegal),
                };
                Ok(Inst::Load {
                    kind,
                    rd: reg_field(word, 7)?,
                    rs1: reg_field(word, 15)?,
                    offset: sext(field(word, 20, 12), 12),
                })
            }
            OPC_STORE => {
                let kind = match funct3 {
                    0b000 => StoreKind::Sb,
                    0b001 => StoreKind::Sh,
                    0b010 => StoreKind::Sw,
                    _ => return Err(illegal),
                };
                let imm = (field(word, 25, 7) << 5) | field(word, 7, 5);
                Ok(Inst::Store {
                    kind,
                    rs2: reg_field(word, 20)?,
                    rs1: reg_field(word, 15)?,
                    offset: sext(imm, 12),
                })
            }
            OPC_OP_IMM => {
                let kind = match funct3 {
                    0b000 => AluOp::Add,
                    0b001 if funct7 == 0 => AluOp::Sll,
                    0b010 => AluOp::Slt,
                    0b011 => AluOp::Sltu,
                    0b100 => AluOp::Xor,
                    0b101 if funct7 == 0 => AluOp::Srl,
                    0b101 if funct7 == 0b0100000 => AluOp::Sra,
                    0b110 => AluOp::Or,
                    0b111 => AluOp::And,
                    _ => return Err(illegal),
                };
                let imm = match kind {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => field(word, 20, 5) as i32,
                    _ => sext(field(word, 20, 12), 12),
                };
                Ok(Inst::OpImm {
                    kind,
                    rd: reg_field(word, 7)?,
                    rs1: reg_field(word, 15)?,
                    imm,
                })
            }
            OPC_OP => {
                let kind = match (funct3, funct7) {
                    (0b000, 0) => AluOp::Add,
                    (0b000, 0b0100000) => AluOp::Sub,
                    (0b001, 0) => AluOp::Sll,
                    (0b010, 0) => AluOp::Slt,
                    (0b011, 0) => AluOp::Sltu,
                    (0b100, 0) => AluOp::Xor,
                    (0b101, 0) => AluOp::Srl,
                    (0b101, 0b0100000) => AluOp::Sra,
                    (0b110, 0) => AluOp::Or,
                    (0b111, 0) => AluOp::And,
                    _ => return Err(illegal),
                };
                Ok(Inst::Op {
                    kind,
                    rd: reg_field(word, 7)?,
                    rs1: reg_field(word, 15)?,
                    rs2: reg_field(word, 20)?,
                })
            }
            OPC_SYSTEM if word == OPC_SYSTEM => Ok(Inst::Ecall),
            OPC_SYSTEM if word == (1 << 20) | OPC_SYSTEM => Ok(Inst::Ebreak),
            _ => Err(illegal),
        }
    }
}

impl fmt::Display for Inst {
    /// Disassembles the instruction in standard syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm >> 12),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", kind.mnemonic()),
            Inst::Load {
                kind,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", kind.mnemonic()),
            Inst::Store {
                kind,
                rs2,
                rs1,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", kind.mnemonic()),
            Inst::OpImm { kind, rd, rs1, imm } => {
                // `sltiu` places the `i` before the `u`, unlike every other
                // immediate mnemonic.
                let m = match kind {
                    AluOp::Sltu => "sltiu".to_owned(),
                    k => format!("{}i", k.mnemonic()),
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Inst::Op { kind, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", kind.mnemonic())
            }
            Inst::Ecall => f.write_str("ecall"),
            Inst::Ebreak => f.write_str("ebreak"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Inst) {
        let w = i.encode();
        assert_eq!(Inst::decode(w), Ok(i), "word {w:#010x}");
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = Reg::new;
        roundtrip(Inst::Lui {
            rd: r(5),
            imm: 0xdead_b000,
        });
        roundtrip(Inst::Auipc {
            rd: r(1),
            imm: 0x1000,
        });
        roundtrip(Inst::Jal {
            rd: r(1),
            offset: -2048,
        });
        roundtrip(Inst::Jal {
            rd: r(0),
            offset: 1048574,
        });
        roundtrip(Inst::Jalr {
            rd: r(0),
            rs1: r(1),
            offset: -4,
        });
        for kind in [
            BranchKind::Eq,
            BranchKind::Ne,
            BranchKind::Lt,
            BranchKind::Ge,
            BranchKind::Ltu,
            BranchKind::Geu,
        ] {
            roundtrip(Inst::Branch {
                kind,
                rs1: r(3),
                rs2: r(9),
                offset: -4096,
            });
            roundtrip(Inst::Branch {
                kind,
                rs1: r(15),
                rs2: r(0),
                offset: 4094,
            });
        }
        for kind in [
            LoadKind::Lb,
            LoadKind::Lh,
            LoadKind::Lw,
            LoadKind::Lbu,
            LoadKind::Lhu,
        ] {
            roundtrip(Inst::Load {
                kind,
                rd: r(4),
                rs1: r(2),
                offset: -2048,
            });
        }
        for kind in [StoreKind::Sb, StoreKind::Sh, StoreKind::Sw] {
            roundtrip(Inst::Store {
                kind,
                rs2: r(7),
                rs1: r(2),
                offset: 2047,
            });
        }
        for kind in [
            AluOp::Add,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Or,
            AluOp::And,
        ] {
            roundtrip(Inst::OpImm {
                kind,
                rd: r(6),
                rs1: r(7),
                imm: -7,
            });
        }
        for kind in [AluOp::Sll, AluOp::Srl, AluOp::Sra] {
            roundtrip(Inst::OpImm {
                kind,
                rd: r(6),
                rs1: r(7),
                imm: 31,
            });
        }
        for kind in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
        ] {
            roundtrip(Inst::Op {
                kind,
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            });
        }
        roundtrip(Inst::Ecall);
        roundtrip(Inst::Ebreak);
    }

    #[test]
    fn known_golden_encodings() {
        // Cross-checked against the RISC-V specification examples.
        // addi a0, a0, 1  ->  0x00150513
        let w = Inst::OpImm {
            kind: AluOp::Add,
            rd: Reg::new(10),
            rs1: Reg::new(10),
            imm: 1,
        }
        .encode();
        assert_eq!(w, 0x0015_0513);
        // sub a0, a1, a2 -> 0x40c58533
        let w = Inst::Op {
            kind: AluOp::Sub,
            rd: Reg::new(10),
            rs1: Reg::new(11),
            rs2: Reg::new(12),
        }
        .encode();
        assert_eq!(w, 0x40c5_8533);
        // lw a0, 4(sp) -> 0x00412503
        let w = Inst::Load {
            kind: LoadKind::Lw,
            rd: Reg::new(10),
            rs1: Reg::SP,
            offset: 4,
        }
        .encode();
        assert_eq!(w, 0x0041_2503);
        // beq a0, a1, +8 -> 0x00b50463
        let w = Inst::Branch {
            kind: BranchKind::Eq,
            rs1: Reg::new(10),
            rs2: Reg::new(11),
            offset: 8,
        }
        .encode();
        assert_eq!(w, 0x00b5_0463);
        // jal ra, +16 -> 0x010000ef
        let w = Inst::Jal {
            rd: Reg::RA,
            offset: 16,
        }
        .encode();
        assert_eq!(w, 0x0100_00ef);
    }

    #[test]
    fn rv32e_rejects_high_registers() {
        // addi x16, x0, 0 is valid RV32I but not RV32E.
        let word = 0x0000_0813;
        assert_eq!(
            Inst::decode(word),
            Err(DecodeError::RegisterOutOfRange { word })
        );
    }

    #[test]
    fn illegal_words_are_rejected() {
        assert!(Inst::decode(0).is_err());
        assert!(Inst::decode(0xffff_ffff).is_err());
        // FENCE (0001111) is unsupported.
        assert!(Inst::decode(0x0000_000f).is_err());
    }

    #[test]
    fn display_disassembles() {
        let i = Inst::Load {
            kind: LoadKind::Lw,
            rd: Reg::new(10),
            rs1: Reg::SP,
            offset: 4,
        };
        assert_eq!(i.to_string(), "lw a0, 4(sp)");
        assert_eq!(Inst::Ebreak.to_string(), "ebreak");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_immediate_panics_on_encode() {
        let _ = Inst::OpImm {
            kind: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: 4096,
        }
        .encode();
    }
}
