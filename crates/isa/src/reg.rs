//! RV32E architectural registers.

use std::fmt;

/// One of the sixteen RV32E integer registers.
///
/// `x0` is hard-wired to zero. Registers parse from both numeric (`x7`) and
/// ABI (`t2`) names and display as ABI names.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// ABI names of the sixteen RV32E registers, indexed by register number.
const ABI_NAMES: [&str; 16] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5",
];

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address register `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`.
    pub const SP: Reg = Reg(2);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16` (RV32E has sixteen registers).
    pub fn new(n: u8) -> Reg {
        assert!(n < 16, "rv32e register index {n} out of range");
        Reg(n)
    }

    /// Creates a register from its number, returning `None` when out of
    /// range.
    pub fn try_new(n: u8) -> Option<Reg> {
        (n < 16).then_some(Reg(n))
    }

    /// The register number (0..16).
    #[inline]
    pub fn num(self) -> u8 {
        self.0
    }

    /// Parses either an `xN` or ABI name.
    pub fn parse(s: &str) -> Option<Reg> {
        if let Some(rest) = s.strip_prefix('x') {
            if let Ok(n) = rest.parse::<u8>() {
                return Reg::try_new(n);
            }
        }
        // `fp` is an alias for `s0`.
        if s == "fp" {
            return Some(Reg(8));
        }
        ABI_NAMES.iter().position(|&n| n == s).map(|i| Reg(i as u8))
    }

    /// The register's ABI name (e.g. `a0`).
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[usize::from(self.0)]
    }

    /// All sixteen registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}({})", self.0, self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_numeric_and_abi_names() {
        assert_eq!(Reg::parse("x0"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("a5"), Some(Reg::new(15)));
        assert_eq!(Reg::parse("fp"), Some(Reg::new(8)));
        assert_eq!(Reg::parse("x16"), None, "rv32e stops at x15");
        assert_eq!(Reg::parse("t6"), None, "t6 is rv32i-only");
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Reg::new(10).to_string(), "a0");
        assert_eq!(format!("{:?}", Reg::new(10)), "x10(a0)");
    }

    #[test]
    fn all_yields_sixteen() {
        assert_eq!(Reg::all().count(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_large_indices() {
        let _ = Reg::new(16);
    }
}
