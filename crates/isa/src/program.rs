//! Assembled program images.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::inst::Inst;

/// An assembled program: a little-endian byte image based at address 0 plus
/// the symbol table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    pub(crate) bytes: Vec<u8>,
    pub(crate) symbols: BTreeMap<String, u32>,
}

impl Program {
    /// The raw image (little-endian, based at address 0).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The image as 32-bit words (zero-padded to a word boundary).
    pub fn words(&self) -> Vec<u32> {
        self.bytes
            .chunks(4)
            .map(|c| {
                let mut w = [0u8; 4];
                w[..c.len()].copy_from_slice(c);
                u32::from_le_bytes(w)
            })
            .collect()
    }

    /// Looks up a label or `.equ` symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// An objdump-style listing: one line per word with address, raw
    /// encoding, label annotations and the disassembled instruction (or
    /// `.word` for data that does not decode).
    ///
    /// # Example
    ///
    /// ```
    /// let p = delayavf_isa::assemble("main: addi a0, a0, 1\n ret\n")?;
    /// let listing = p.listing();
    /// assert!(listing.contains("main:"));
    /// assert!(listing.contains("addi a0, a0, 1"));
    /// # Ok::<(), delayavf_isa::AsmError>(())
    /// ```
    pub fn listing(&self) -> String {
        // Invert the symbol table: address -> names.
        let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, addr) in &self.symbols {
            by_addr.entry(*addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, word) in self.words().iter().enumerate() {
            let addr = (i * 4) as u32;
            for name in by_addr.get(&addr).into_iter().flatten() {
                let _ = writeln!(out, "{name}:");
            }
            match Inst::decode(*word) {
                Ok(inst) => {
                    let _ = writeln!(out, "  {addr:#06x}:  {word:08x}  {inst}");
                }
                Err(_) => {
                    let _ = writeln!(out, "  {addr:#06x}:  {word:08x}  .word {word:#x}");
                }
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} bytes, {} symbols",
            self.len(),
            self.symbols.len()
        )?;
        for (name, addr) in &self.symbols {
            writeln!(f, "  {addr:#06x} {name}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_little_endian_and_padded() {
        let p = Program {
            bytes: vec![0x13, 0x05, 0x15, 0x00, 0xaa],
            symbols: BTreeMap::new(),
        };
        assert_eq!(p.words(), vec![0x0015_0513, 0x0000_00aa]);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }

    #[test]
    fn display_lists_symbols() {
        let mut symbols = BTreeMap::new();
        symbols.insert("main".to_owned(), 0);
        let p = Program {
            bytes: vec![],
            symbols,
        };
        assert!(p.to_string().contains("main"));
        assert_eq!(p.symbol("main"), Some(0));
        assert_eq!(p.symbol("nope"), None);
    }
}
