//! RV32E-subset ISA support: encodings, assembler, disassembler and a golden
//! instruction-set simulator (ISS).
//!
//! The studied core (`delayavf-rvcore`) executes the RV32E base integer
//! instruction set (16 registers, no M/C extensions) with standard RISC-V
//! encodings. This crate provides everything needed to program and validate
//! it:
//!
//! * [`Inst`] — decoded instruction form with exact [`Inst::encode`] /
//!   [`Inst::decode`] round-trips through the standard RV32 formats
//!   (R/I/S/B/U/J),
//! * [`assemble`] — a two-pass assembler with labels, common pseudo
//!   instructions (`li`, `la`, `mv`, `j`, `call`, `ret`, `beqz`, ...) and
//!   data directives (`.word`, `.byte`, `.space`, `.align`, `.equ`),
//! * [`Iss`] — a golden reference simulator used both to validate the
//!   gate-level core instruction-by-instruction and to produce reference
//!   program outputs,
//! * [`mmio`] — the memory-mapped I/O convention shared by the ISS and the
//!   gate-level core's environment (console byte output and exit).
//!
//! # Example
//!
//! ```
//! use delayavf_isa::{assemble, Iss, StopCause};
//!
//! let program = assemble(
//!     r#"
//!     li   a0, 6
//!     li   a1, 7
//!     add  a0, a0, a1     # a0 = 13
//!     li   t0, 0x10004    # EXIT MMIO
//!     sw   a0, 0(t0)      # exit with code 13
//!     "#,
//! )?;
//! let mut iss = Iss::new(64 * 1024);
//! iss.load(&program);
//! let stop = iss.run(1_000);
//! assert_eq!(stop, StopCause::Exit(13));
//! # Ok::<(), delayavf_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod inst;
mod iss;
mod program;
mod reg;

pub use asm::{assemble, AsmError};
pub use inst::{AluOp, BranchKind, DecodeError, Inst, LoadKind, StoreKind};
pub use iss::{Iss, StopCause, Trap};
pub use program::Program;
pub use reg::Reg;

/// Memory-mapped I/O conventions shared by the ISS and the gate-level core's
/// environment.
pub mod mmio {
    /// Writing a byte here appends it to the program's console output.
    pub const CONSOLE: u32 = 0x0001_0000;
    /// Writing here terminates the program; the stored value is the exit
    /// code.
    pub const EXIT: u32 = 0x0001_0004;
}
