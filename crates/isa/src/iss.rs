//! Instruction-set simulator: the golden reference model.

use std::fmt;

use crate::inst::{AluOp, BranchKind, Inst, LoadKind, StoreKind};
use crate::mmio;
use crate::program::Program;
use crate::reg::Reg;

/// An execution fault detected by the ISS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Trap {
    /// Misaligned data access or jump target.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// Access outside RAM and MMIO.
    OutOfRange {
        /// Faulting address.
        addr: u32,
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// Unsupported or malformed instruction word.
    Illegal {
        /// The fetched word.
        word: u32,
        /// PC of the fetch.
        pc: u32,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Misaligned { addr, pc } => {
                write!(f, "misaligned access to {addr:#x} at pc {pc:#x}")
            }
            Trap::OutOfRange { addr, pc } => {
                write!(f, "out-of-range access to {addr:#x} at pc {pc:#x}")
            }
            Trap::Illegal { word, pc } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
        }
    }
}

/// Why an execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopCause {
    /// The program wrote its exit code to [`mmio::EXIT`].
    Exit(u32),
    /// An `ebreak`/`ecall` was executed.
    Break,
    /// A trap occurred.
    Trap(Trap),
    /// The step budget ran out before the program finished.
    OutOfTime,
}

impl StopCause {
    /// Serializes a (console, termination) pair into the canonical
    /// program-output byte string used for program-visible-failure
    /// comparisons across the ISS, the gate-level core's environment, and
    /// the DelayAVF campaigns.
    pub fn encode_output(self, console: &[u8]) -> Vec<u8> {
        let mut out = console.to_vec();
        out.push(0);
        match self {
            StopCause::Exit(code) => {
                out.push(b'E');
                out.extend_from_slice(&code.to_le_bytes());
            }
            StopCause::Break => out.push(b'B'),
            StopCause::Trap(_) => out.push(b'T'),
            StopCause::OutOfTime => out.push(b'O'),
        }
        out
    }
}

/// The golden instruction-set simulator.
///
/// Executes the RV32E subset one instruction per [`Iss::step`], with RAM at
/// address 0 and the MMIO console/exit registers of [`mmio`]. Used to
/// validate the gate-level core and to produce reference program outputs.
#[derive(Clone, Debug)]
pub struct Iss {
    regs: [u32; 16],
    pc: u32,
    mem: Vec<u8>,
    console: Vec<u8>,
    retired: u64,
}

impl Iss {
    /// Creates a simulator with `mem_size` bytes of RAM (rounded up to a
    /// multiple of 4), all registers zero, PC at 0.
    pub fn new(mem_size: usize) -> Self {
        Iss {
            regs: [0; 16],
            pc: 0,
            mem: vec![0; mem_size.next_multiple_of(4)],
            console: Vec::new(),
            retired: 0,
        }
    }

    /// Copies a program image into RAM at address 0.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in RAM.
    pub fn load(&mut self, program: &Program) {
        assert!(
            program.len() <= self.mem.len(),
            "program ({} bytes) exceeds RAM ({} bytes)",
            program.len(),
            self.mem.len()
        );
        self.mem[..program.len()].copy_from_slice(program.bytes());
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads a register (x0 reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[usize::from(r.num())]
    }

    /// Writes a register (writes to x0 are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r.num() != 0 {
            self.regs[usize::from(r.num())] = value;
        }
    }

    /// Bytes written to the MMIO console so far.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Number of retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads a word from RAM (test/debug helper).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is misaligned or out of range.
    pub fn peek_word(&self, addr: u32) -> u32 {
        assert_eq!(addr % 4, 0, "peek_word requires alignment");
        let a = addr as usize;
        u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("in range"))
    }

    fn load_mem(&mut self, addr: u32, size: u32, pc: u32) -> Result<u32, Trap> {
        if !addr.is_multiple_of(size) {
            return Err(Trap::Misaligned { addr, pc });
        }
        if addr == mmio::CONSOLE || addr == mmio::EXIT {
            return Ok(0);
        }
        let end = addr as usize + size as usize;
        if end > self.mem.len() {
            return Err(Trap::OutOfRange { addr, pc });
        }
        let a = addr as usize;
        Ok(match size {
            1 => u32::from(self.mem[a]),
            2 => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            _ => u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("in range")),
        })
    }

    fn store_mem(
        &mut self,
        addr: u32,
        size: u32,
        value: u32,
        pc: u32,
    ) -> Result<Option<StopCause>, Trap> {
        if !addr.is_multiple_of(size) {
            return Err(Trap::Misaligned { addr, pc });
        }
        if addr == mmio::CONSOLE {
            self.console.push(value as u8);
            return Ok(None);
        }
        if addr == mmio::EXIT {
            return Ok(Some(StopCause::Exit(value)));
        }
        let end = addr as usize + size as usize;
        if end > self.mem.len() {
            return Err(Trap::OutOfRange { addr, pc });
        }
        let a = addr as usize;
        match size {
            1 => self.mem[a] = value as u8,
            2 => self.mem[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            _ => self.mem[a..a + 4].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(None)
    }

    fn alu(op: AluOp, a: u32, b: u32) -> u32 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `None` while the program keeps running, or the cause once it
    /// stops. Calling `step` after a stop repeats the stopped state.
    pub fn step(&mut self) -> Option<StopCause> {
        let pc = self.pc;
        if !pc.is_multiple_of(4) {
            return Some(StopCause::Trap(Trap::Misaligned { addr: pc, pc }));
        }
        if pc as usize + 4 > self.mem.len() {
            return Some(StopCause::Trap(Trap::OutOfRange { addr: pc, pc }));
        }
        let word = u32::from_le_bytes(
            self.mem[pc as usize..pc as usize + 4]
                .try_into()
                .expect("in range"),
        );
        let inst = match Inst::decode(word) {
            Ok(i) => i,
            Err(_) => return Some(StopCause::Trap(Trap::Illegal { word, pc })),
        };
        let mut next_pc = pc.wrapping_add(4);
        let mut stop = None;
        match inst {
            Inst::Lui { rd, imm } => self.set_reg(rd, imm),
            Inst::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm)),
            Inst::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Inst::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match kind {
                    BranchKind::Eq => a == b,
                    BranchKind::Ne => a != b,
                    BranchKind::Lt => (a as i32) < (b as i32),
                    BranchKind::Ge => (a as i32) >= (b as i32),
                    BranchKind::Ltu => a < b,
                    BranchKind::Geu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Inst::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let size = match kind {
                    LoadKind::Lb | LoadKind::Lbu => 1,
                    LoadKind::Lh | LoadKind::Lhu => 2,
                    LoadKind::Lw => 4,
                };
                match self.load_mem(addr, size, pc) {
                    Ok(raw) => {
                        let v = match kind {
                            LoadKind::Lb => raw as u8 as i8 as i32 as u32,
                            LoadKind::Lh => raw as u16 as i16 as i32 as u32,
                            LoadKind::Lw | LoadKind::Lbu | LoadKind::Lhu => raw,
                        };
                        self.set_reg(rd, v);
                    }
                    Err(t) => stop = Some(StopCause::Trap(t)),
                }
            }
            Inst::Store {
                kind,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let size = match kind {
                    StoreKind::Sb => 1,
                    StoreKind::Sh => 2,
                    StoreKind::Sw => 4,
                };
                match self.store_mem(addr, size, self.reg(rs2), pc) {
                    Ok(s) => stop = s,
                    Err(t) => stop = Some(StopCause::Trap(t)),
                }
            }
            Inst::OpImm { kind, rd, rs1, imm } => {
                let v = Self::alu(kind, self.reg(rs1), imm as u32);
                self.set_reg(rd, v);
            }
            Inst::Op { kind, rd, rs1, rs2 } => {
                let v = Self::alu(kind, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Inst::Ecall | Inst::Ebreak => stop = Some(StopCause::Break),
        }
        if stop.is_none() {
            self.pc = next_pc;
            self.retired += 1;
            if !next_pc.is_multiple_of(4) {
                stop = Some(StopCause::Trap(Trap::Misaligned { addr: next_pc, pc }));
            }
        }
        stop
    }

    /// Runs until the program stops or `max_steps` instructions retire.
    pub fn run(&mut self, max_steps: u64) -> StopCause {
        for _ in 0..max_steps {
            if let Some(cause) = self.step() {
                return cause;
            }
        }
        StopCause::OutOfTime
    }

    /// The canonical program output: console bytes plus a termination tag.
    pub fn program_output(&self, cause: StopCause) -> Vec<u8> {
        cause.encode_output(&self.console)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> (Iss, StopCause) {
        let p = assemble(src).expect("assembles");
        let mut iss = Iss::new(64 * 1024);
        iss.load(&p);
        let cause = iss.run(100_000);
        (iss, cause)
    }

    #[test]
    fn arithmetic_and_exit() {
        let (iss, cause) =
            run("li a0, 100\n li a1, -30\n add a2, a0, a1\n li t0, 0x10004\n sw a2, 0(t0)\n");
        assert_eq!(cause, StopCause::Exit(70));
        // Retired: li, li, add, li-large (2 insts); the exiting sw does not
        // retire.
        assert_eq!(iss.retired(), 5);
    }

    #[test]
    fn console_collects_bytes() {
        let (iss, cause) = run(
            "li t0, 0x10000\n li a0, 'h'\n sw a0, 0(t0)\n li a0, 'i'\n sw a0, 0(t0)\n ebreak\n",
        );
        assert_eq!(cause, StopCause::Break);
        assert_eq!(iss.console(), b"hi");
        let out = iss.program_output(cause);
        assert_eq!(out, b"hi\0B");
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=10 into a0.
        let (iss, cause) = run(r#"
            li a0, 0
            li a1, 10
        loop:
            add a0, a0, a1
            addi a1, a1, -1
            bnez a1, loop
            li t0, 0x10004
            sw a0, 0(t0)
            "#);
        assert_eq!(cause, StopCause::Exit(55));
        assert!(iss.retired() > 30);
    }

    #[test]
    fn memory_round_trips_all_widths() {
        let (iss, cause) = run(r#"
            li   t0, 0x100
            li   a0, 0x80
            sb   a0, 0(t0)        # store 0x80
            lb   a1, 0(t0)        # sign-extends to 0xffffff80
            lbu  a2, 0(t0)        # zero-extends to 0x80
            li   a0, 0x8000
            sh   a0, 4(t0)
            lh   a3, 4(t0)
            lhu  a4, 4(t0)
            add  a5, a1, a2       # 0xffffff80 + 0x80 = 0 (wraps)
            add  a5, a5, a3       # + 0xffff8000
            add  a5, a5, a4       # + 0x8000 -> 0
            li   t1, 0x10004
            sw   a5, 0(t1)
            "#);
        assert_eq!(cause, StopCause::Exit(0));
        assert_eq!(iss.reg(Reg::parse("a1").unwrap()), 0xffff_ff80);
        assert_eq!(iss.reg(Reg::parse("a3").unwrap()), 0xffff_8000);
        assert_eq!(iss.reg(Reg::parse("a4").unwrap()), 0x8000);
    }

    #[test]
    fn function_calls_work() {
        let (_, cause) = run(r#"
            li   sp, 0x10000
            li   a0, 21
            call double
            li   t0, 0x10004
            sw   a0, 0(t0)
        double:
            add  a0, a0, a0
            ret
            "#);
        assert_eq!(cause, StopCause::Exit(42));
    }

    #[test]
    fn traps_are_reported() {
        let (_, cause) = run("li t0, 0x100002\n lw a0, 0(t0)\n");
        assert!(matches!(cause, StopCause::Trap(Trap::Misaligned { .. })));

        let (_, cause) = run("li t0, 0x200000\n lw a0, 0(t0)\n");
        assert!(matches!(cause, StopCause::Trap(Trap::OutOfRange { .. })));

        let (_, cause) = run(".word 0xffffffff\n");
        assert!(matches!(cause, StopCause::Trap(Trap::Illegal { .. })));
    }

    #[test]
    fn running_off_the_end_is_out_of_range() {
        let p = assemble("nop\n").unwrap();
        let mut iss = Iss::new(4);
        iss.load(&p);
        let cause = iss.run(10);
        assert!(matches!(cause, StopCause::Trap(Trap::OutOfRange { .. })));
        // With zero-filled RAM beyond the program, the fetch decodes as an
        // illegal all-zero word instead.
        let mut iss = Iss::new(8);
        iss.load(&p);
        let cause = iss.run(10);
        assert!(matches!(cause, StopCause::Trap(Trap::Illegal { .. })));
    }

    #[test]
    fn out_of_time_when_budget_exhausted() {
        let (_, cause) = run("loop: j loop\n");
        assert_eq!(cause, StopCause::OutOfTime);
    }

    #[test]
    fn x0_stays_zero() {
        let (iss, _) = run("li a0, 5\n add zero, a0, a0\n ebreak\n");
        assert_eq!(iss.reg(Reg::ZERO), 0);
    }

    #[test]
    fn shift_ops_match_rust_semantics() {
        let (iss, cause) = run(r#"
            li   a0, 0x80000000
            srai a1, a0, 4        # 0xf8000000
            srli a2, a0, 4        # 0x08000000
            li   a3, 1
            slli a3, a3, 31       # 0x80000000
            xor  a4, a1, a2       # 0xf0000000
            xor  a4, a4, a3       # 0x70000000
            srli a4, a4, 28       # 7
            li   t0, 0x10004
            sw   a4, 0(t0)
            "#);
        assert_eq!(cause, StopCause::Exit(7));
        let _ = iss;
    }
}
