//! A two-pass RV32E assembler.
//!
//! Syntax follows the GNU assembler conventions for the supported subset:
//! one statement per line, `label:` definitions, `#` comments, standard
//! mnemonics plus the common pseudo instructions, and the data directives
//! `.word`, `.half`, `.byte`, `.space`, `.align`, `.asciz` and `.equ`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::inst::{AluOp, BranchKind, Inst, LoadKind, StoreKind};
use crate::program::Program;
use crate::reg::Reg;

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// One statement after label extraction.
#[derive(Debug)]
struct Stmt<'a> {
    line: usize,
    /// Address assigned in pass 1.
    addr: u32,
    mnemonic: &'a str,
    operands: &'a str,
}

/// Assembles RV32E source into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending line for syntax errors,
/// unknown mnemonics or registers, undefined or duplicate symbols, and
/// out-of-range immediates or branch targets.
///
/// # Example
///
/// ```
/// let p = delayavf_isa::assemble("loop: addi a0, a0, -1\n bnez a0, loop\n")?;
/// assert_eq!(p.len(), 8);
/// assert_eq!(p.symbol("loop"), Some(0));
/// # Ok::<(), delayavf_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut stmts: Vec<Stmt<'_>> = Vec::new();

    // Pass 1: addresses and symbols.
    let mut pc: u32 = 0;
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let mut rest = strip_comment(raw).trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = rest.find(':') {
            let candidate = rest[..colon].trim();
            if candidate.is_empty() || !is_symbol(candidate) {
                break;
            }
            define_symbol(&mut symbols, candidate, pc, line)?;
            rest = rest[colon + 1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, operands) = split_mnemonic(rest);
        let size = statement_size(mnemonic, operands, pc, &symbols, line)?;
        if let Some(aligned) = directive_align(mnemonic, operands, pc, line)? {
            pc = aligned;
            continue;
        }
        if mnemonic == ".equ" {
            let (name, value) = parse_equ(operands, &symbols, line)?;
            define_symbol(&mut symbols, name, value, line)?;
            continue;
        }
        stmts.push(Stmt {
            line,
            addr: pc,
            mnemonic,
            operands,
        });
        pc = pc
            .checked_add(size)
            .ok_or_else(|| AsmError::new(line, "image exceeds the 32-bit address space"))?;
    }

    // Pass 2: emission.
    let mut bytes = vec![0u8; pc as usize];
    for stmt in &stmts {
        emit(stmt, &symbols, &mut bytes)?;
    }
    Ok(Program { bytes, symbols })
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_symbol(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn define_symbol(
    symbols: &mut BTreeMap<String, u32>,
    name: &str,
    value: u32,
    line: usize,
) -> Result<(), AsmError> {
    if symbols.insert(name.to_owned(), value).is_some() {
        return Err(AsmError::new(line, format!("symbol `{name}` redefined")));
    }
    Ok(())
}

fn split_mnemonic(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    }
}

fn parse_equ<'a>(
    operands: &'a str,
    symbols: &BTreeMap<String, u32>,
    line: usize,
) -> Result<(&'a str, u32), AsmError> {
    let (name, value) = operands
        .split_once(',')
        .ok_or_else(|| AsmError::new(line, ".equ needs `name, value`"))?;
    let name = name.trim();
    if !is_symbol(name) {
        return Err(AsmError::new(line, format!("bad symbol name `{name}`")));
    }
    let value = eval(value.trim(), symbols, line)?;
    Ok((name, value as u32))
}

fn directive_align(
    mnemonic: &str,
    operands: &str,
    pc: u32,
    line: usize,
) -> Result<Option<u32>, AsmError> {
    if mnemonic != ".align" {
        return Ok(None);
    }
    let k: u32 = operands
        .trim()
        .parse()
        .map_err(|_| AsmError::new(line, ".align needs a small integer"))?;
    if k > 12 {
        return Err(AsmError::new(line, ".align exponent too large"));
    }
    let mask = (1u32 << k) - 1;
    Ok(Some((pc + mask) & !mask))
}

/// Size in bytes a statement will occupy (directives included).
fn statement_size(
    mnemonic: &str,
    operands: &str,
    _pc: u32,
    symbols: &BTreeMap<String, u32>,
    line: usize,
) -> Result<u32, AsmError> {
    Ok(match mnemonic {
        ".align" | ".equ" => 0,
        ".word" => 4 * count_operands(operands),
        ".half" => 2 * count_operands(operands),
        ".byte" => count_operands(operands),
        ".space" => eval(operands.trim(), symbols, line)? as u32,
        ".asciz" => {
            let s = parse_string(operands, line)?;
            s.len() as u32 + 1
        }
        "li" => {
            let (_, imm_text) = operands
                .split_once(',')
                .ok_or_else(|| AsmError::new(line, "li needs `rd, imm`"))?;
            let imm = eval(imm_text.trim(), symbols, line).map_err(|_| {
                AsmError::new(
                    line,
                    "li needs a literal or previously defined .equ (use `la` for labels)",
                )
            })?;
            if (-2048..=2047).contains(&imm) {
                4
            } else {
                8
            }
        }
        "la" => 8,
        _ => 4,
    })
}

fn count_operands(operands: &str) -> u32 {
    if operands.trim().is_empty() {
        0
    } else {
        operands.split(',').count() as u32
    }
}

fn parse_string(operands: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let t = operands.trim();
    let inner = t
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(line, "expected a double-quoted string"))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                other => {
                    return Err(AsmError::new(
                        line,
                        format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                    ))
                }
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

/// Evaluates `term` or `term+term` / `term-term` where terms are integers,
/// character literals or defined symbols.
fn eval(expr: &str, symbols: &BTreeMap<String, u32>, line: usize) -> Result<i64, AsmError> {
    let expr = expr.trim();
    if expr.is_empty() {
        return Err(AsmError::new(line, "empty expression"));
    }
    // Split on the last top-level +/-, skipping a leading sign.
    for (i, c) in expr.char_indices().rev() {
        if (c == '+' || c == '-') && i > 0 {
            let lhs = expr[..i].trim();
            let rhs = expr[i + 1..].trim();
            // Avoid splitting literals like `-5` or `0x-`? A trailing
            // operator means malformed input; let term parsing report it.
            if !lhs.is_empty() && !rhs.is_empty() && !lhs.ends_with(['+', '-', 'x', 'b']) {
                let l = eval(lhs, symbols, line)?;
                let r = term(rhs, symbols, line)?;
                return Ok(if c == '+' { l + r } else { l - r });
            }
        }
    }
    term(expr, symbols, line)
}

fn term(t: &str, symbols: &BTreeMap<String, u32>, line: usize) -> Result<i64, AsmError> {
    let t = t.trim();
    if let Some(rest) = t.strip_prefix('-') {
        return Ok(-term(rest, symbols, line)?);
    }
    // Standard RISC-V relocation functions: %hi(x) pairs with %lo(x) such
    // that (%hi(x) << 12) + sext(%lo(x)) == x.
    if let Some(inner) = t.strip_prefix("%hi(").and_then(|r| r.strip_suffix(')')) {
        let v = eval(inner, symbols, line)? as u32;
        return Ok(i64::from(v.wrapping_add(0x800) >> 12));
    }
    if let Some(inner) = t.strip_prefix("%lo(").and_then(|r| r.strip_suffix(')')) {
        let v = eval(inner, symbols, line)? as u32;
        return Ok(i64::from(((v & 0xfff) as i32) << 20 >> 20));
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return i64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|_| AsmError::new(line, format!("bad hex literal `{t}`")));
    }
    if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        return i64::from_str_radix(&bin.replace('_', ""), 2)
            .map_err(|_| AsmError::new(line, format!("bad binary literal `{t}`")));
    }
    if t.starts_with('\'') && t.ends_with('\'') && t.len() == 3 {
        return Ok(t.as_bytes()[1] as i64);
    }
    if t.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return t
            .replace('_', "")
            .parse::<i64>()
            .map_err(|_| AsmError::new(line, format!("bad integer literal `{t}`")));
    }
    symbols
        .get(t)
        .map(|&v| i64::from(v))
        .ok_or_else(|| AsmError::new(line, format!("undefined symbol `{t}`")))
}

fn parse_reg(t: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::parse(t.trim()).ok_or_else(|| AsmError::new(line, format!("unknown register `{t}`")))
}

/// Parses `offset(base)` with an optional offset expression.
fn parse_mem(
    t: &str,
    symbols: &BTreeMap<String, u32>,
    line: usize,
) -> Result<(i32, Reg), AsmError> {
    let t = t.trim();
    let open = t
        .find('(')
        .ok_or_else(|| AsmError::new(line, format!("expected `offset(base)`, got `{t}`")))?;
    let close = t
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| AsmError::new(line, "missing `)` in memory operand"))?;
    let off_text = t[..open].trim();
    let off = if off_text.is_empty() {
        0
    } else {
        check_i12(eval(off_text, symbols, line)?, line)?
    };
    let base = parse_reg(&t[open + 1..close], line)?;
    Ok((off, base))
}

fn check_i12(v: i64, line: usize) -> Result<i32, AsmError> {
    if (-2048..=2047).contains(&v) {
        Ok(v as i32)
    } else {
        Err(AsmError::new(
            line,
            format!("immediate {v} does not fit 12 bits"),
        ))
    }
}

fn split_ops(operands: &str) -> Vec<&str> {
    if operands.trim().is_empty() {
        Vec::new()
    } else {
        operands.split(',').map(str::trim).collect()
    }
}

fn branch_offset(target: i64, pc: u32, line: usize) -> Result<i32, AsmError> {
    let off = target - i64::from(pc);
    if off % 2 != 0 || !(-(1 << 12)..(1 << 12)).contains(&off) {
        return Err(AsmError::new(
            line,
            format!("branch target out of range ({off} bytes)"),
        ));
    }
    Ok(off as i32)
}

fn jump_offset(target: i64, pc: u32, line: usize) -> Result<i32, AsmError> {
    let off = target - i64::from(pc);
    if off % 2 != 0 || !(-(1 << 20)..(1 << 20)).contains(&off) {
        return Err(AsmError::new(
            line,
            format!("jump target out of range ({off} bytes)"),
        ));
    }
    Ok(off as i32)
}

/// Splits a 32-bit constant into `(hi20 << 12, lo12)` such that
/// `hi + sext(lo) == value`.
fn hi_lo(value: u32) -> (u32, i32) {
    let lo = ((value & 0xfff) as i32) << 20 >> 20; // sign-extend 12 bits
    let hi = value.wrapping_sub(lo as u32);
    (hi, lo)
}

fn emit(
    stmt: &Stmt<'_>,
    symbols: &BTreeMap<String, u32>,
    bytes: &mut [u8],
) -> Result<(), AsmError> {
    let line = stmt.line;
    let ops = split_ops(stmt.operands);
    let nops = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(AsmError::new(
                line,
                format!(
                    "`{}` expects {n} operands, got {}",
                    stmt.mnemonic,
                    ops.len()
                ),
            ))
        }
    };
    let val = |t: &str| eval(t, symbols, line);
    let reg = |t: &str| parse_reg(t, line);

    let mut out: Vec<u32> = Vec::with_capacity(2);
    let mut raw_bytes: Option<Vec<u8>> = None;

    let alu_r = |k: AluOp, ops: &[&str]| -> Result<Inst, AsmError> {
        Ok(Inst::Op {
            kind: k,
            rd: parse_reg(ops[0], line)?,
            rs1: parse_reg(ops[1], line)?,
            rs2: parse_reg(ops[2], line)?,
        })
    };
    let alu_i = |k: AluOp, ops: &[&str]| -> Result<Inst, AsmError> {
        let imm = check_i12(eval(ops[2], symbols, line)?, line)?;
        Ok(Inst::OpImm {
            kind: k,
            rd: parse_reg(ops[0], line)?,
            rs1: parse_reg(ops[1], line)?,
            imm,
        })
    };
    let shift_i = |k: AluOp, ops: &[&str]| -> Result<Inst, AsmError> {
        let imm = eval(ops[2], symbols, line)?;
        if !(0..32).contains(&imm) {
            return Err(AsmError::new(
                line,
                format!("shift amount {imm} out of range"),
            ));
        }
        Ok(Inst::OpImm {
            kind: k,
            rd: parse_reg(ops[0], line)?,
            rs1: parse_reg(ops[1], line)?,
            imm: imm as i32,
        })
    };
    let branch = |k: BranchKind, a: &str, b: &str, t: &str| -> Result<Inst, AsmError> {
        Ok(Inst::Branch {
            kind: k,
            rs1: parse_reg(a, line)?,
            rs2: parse_reg(b, line)?,
            offset: branch_offset(eval(t, symbols, line)?, stmt.addr, line)?,
        })
    };
    let load = |k: LoadKind, ops: &[&str]| -> Result<Inst, AsmError> {
        let (offset, rs1) = parse_mem(ops[1], symbols, line)?;
        Ok(Inst::Load {
            kind: k,
            rd: parse_reg(ops[0], line)?,
            rs1,
            offset,
        })
    };
    let store = |k: StoreKind, ops: &[&str]| -> Result<Inst, AsmError> {
        let (offset, rs1) = parse_mem(ops[1], symbols, line)?;
        Ok(Inst::Store {
            kind: k,
            rs2: parse_reg(ops[0], line)?,
            rs1,
            offset,
        })
    };

    match stmt.mnemonic {
        // Data directives.
        ".word" => {
            raw_bytes = Some(
                ops.iter()
                    .map(|t| val(t).map(|v| (v as u32).to_le_bytes()))
                    .collect::<Result<Vec<_>, _>>()?
                    .concat(),
            );
        }
        ".half" => {
            raw_bytes = Some(
                ops.iter()
                    .map(|t| val(t).map(|v| (v as u16).to_le_bytes()))
                    .collect::<Result<Vec<_>, _>>()?
                    .concat(),
            );
        }
        ".byte" => {
            raw_bytes = Some(
                ops.iter()
                    .map(|t| val(t).map(|v| v as u8))
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        ".space" => {
            let n = val(stmt.operands)? as usize;
            raw_bytes = Some(vec![0u8; n]);
        }
        ".asciz" => {
            let mut s = parse_string(stmt.operands, line)?;
            s.push(0);
            raw_bytes = Some(s);
        }

        // R-type ALU.
        "add" => {
            nops(3)?;
            out.push(alu_r(AluOp::Add, &ops)?.encode());
        }
        "sub" => {
            nops(3)?;
            out.push(alu_r(AluOp::Sub, &ops)?.encode());
        }
        "sll" => {
            nops(3)?;
            out.push(alu_r(AluOp::Sll, &ops)?.encode());
        }
        "slt" => {
            nops(3)?;
            out.push(alu_r(AluOp::Slt, &ops)?.encode());
        }
        "sltu" => {
            nops(3)?;
            out.push(alu_r(AluOp::Sltu, &ops)?.encode());
        }
        "xor" => {
            nops(3)?;
            out.push(alu_r(AluOp::Xor, &ops)?.encode());
        }
        "srl" => {
            nops(3)?;
            out.push(alu_r(AluOp::Srl, &ops)?.encode());
        }
        "sra" => {
            nops(3)?;
            out.push(alu_r(AluOp::Sra, &ops)?.encode());
        }
        "or" => {
            nops(3)?;
            out.push(alu_r(AluOp::Or, &ops)?.encode());
        }
        "and" => {
            nops(3)?;
            out.push(alu_r(AluOp::And, &ops)?.encode());
        }

        // I-type ALU.
        "addi" => {
            nops(3)?;
            out.push(alu_i(AluOp::Add, &ops)?.encode());
        }
        "slti" => {
            nops(3)?;
            out.push(alu_i(AluOp::Slt, &ops)?.encode());
        }
        "sltiu" => {
            nops(3)?;
            out.push(alu_i(AluOp::Sltu, &ops)?.encode());
        }
        "xori" => {
            nops(3)?;
            out.push(alu_i(AluOp::Xor, &ops)?.encode());
        }
        "ori" => {
            nops(3)?;
            out.push(alu_i(AluOp::Or, &ops)?.encode());
        }
        "andi" => {
            nops(3)?;
            out.push(alu_i(AluOp::And, &ops)?.encode());
        }
        "slli" => {
            nops(3)?;
            out.push(shift_i(AluOp::Sll, &ops)?.encode());
        }
        "srli" => {
            nops(3)?;
            out.push(shift_i(AluOp::Srl, &ops)?.encode());
        }
        "srai" => {
            nops(3)?;
            out.push(shift_i(AluOp::Sra, &ops)?.encode());
        }

        // Upper immediates.
        "lui" | "auipc" => {
            nops(2)?;
            let v = val(ops[1])?;
            if !(0..(1 << 20)).contains(&v) {
                return Err(AsmError::new(
                    line,
                    format!("upper immediate {v} out of range"),
                ));
            }
            let rd = reg(ops[0])?;
            let imm = (v as u32) << 12;
            out.push(
                if stmt.mnemonic == "lui" {
                    Inst::Lui { rd, imm }
                } else {
                    Inst::Auipc { rd, imm }
                }
                .encode(),
            );
        }

        // Loads / stores.
        "lb" => {
            nops(2)?;
            out.push(load(LoadKind::Lb, &ops)?.encode());
        }
        "lh" => {
            nops(2)?;
            out.push(load(LoadKind::Lh, &ops)?.encode());
        }
        "lw" => {
            nops(2)?;
            out.push(load(LoadKind::Lw, &ops)?.encode());
        }
        "lbu" => {
            nops(2)?;
            out.push(load(LoadKind::Lbu, &ops)?.encode());
        }
        "lhu" => {
            nops(2)?;
            out.push(load(LoadKind::Lhu, &ops)?.encode());
        }
        "sb" => {
            nops(2)?;
            out.push(store(StoreKind::Sb, &ops)?.encode());
        }
        "sh" => {
            nops(2)?;
            out.push(store(StoreKind::Sh, &ops)?.encode());
        }
        "sw" => {
            nops(2)?;
            out.push(store(StoreKind::Sw, &ops)?.encode());
        }

        // Branches.
        "beq" => {
            nops(3)?;
            out.push(branch(BranchKind::Eq, ops[0], ops[1], ops[2])?.encode());
        }
        "bne" => {
            nops(3)?;
            out.push(branch(BranchKind::Ne, ops[0], ops[1], ops[2])?.encode());
        }
        "blt" => {
            nops(3)?;
            out.push(branch(BranchKind::Lt, ops[0], ops[1], ops[2])?.encode());
        }
        "bge" => {
            nops(3)?;
            out.push(branch(BranchKind::Ge, ops[0], ops[1], ops[2])?.encode());
        }
        "bltu" => {
            nops(3)?;
            out.push(branch(BranchKind::Ltu, ops[0], ops[1], ops[2])?.encode());
        }
        "bgeu" => {
            nops(3)?;
            out.push(branch(BranchKind::Geu, ops[0], ops[1], ops[2])?.encode());
        }
        // Swapped-operand pseudo branches.
        "bgt" => {
            nops(3)?;
            out.push(branch(BranchKind::Lt, ops[1], ops[0], ops[2])?.encode());
        }
        "ble" => {
            nops(3)?;
            out.push(branch(BranchKind::Ge, ops[1], ops[0], ops[2])?.encode());
        }
        "bgtu" => {
            nops(3)?;
            out.push(branch(BranchKind::Ltu, ops[1], ops[0], ops[2])?.encode());
        }
        "bleu" => {
            nops(3)?;
            out.push(branch(BranchKind::Geu, ops[1], ops[0], ops[2])?.encode());
        }
        // Compare-to-zero pseudo branches.
        "beqz" => {
            nops(2)?;
            out.push(branch(BranchKind::Eq, ops[0], "zero", ops[1])?.encode());
        }
        "bnez" => {
            nops(2)?;
            out.push(branch(BranchKind::Ne, ops[0], "zero", ops[1])?.encode());
        }
        "bltz" => {
            nops(2)?;
            out.push(branch(BranchKind::Lt, ops[0], "zero", ops[1])?.encode());
        }
        "bgez" => {
            nops(2)?;
            out.push(branch(BranchKind::Ge, ops[0], "zero", ops[1])?.encode());
        }
        "blez" => {
            nops(2)?;
            out.push(branch(BranchKind::Ge, "zero", ops[0], ops[1])?.encode());
        }
        "bgtz" => {
            nops(2)?;
            out.push(branch(BranchKind::Lt, "zero", ops[0], ops[1])?.encode());
        }

        // Jumps.
        "jal" => {
            let (rd, target) = match ops.len() {
                1 => (Reg::RA, ops[0]),
                2 => (reg(ops[0])?, ops[1]),
                n => {
                    return Err(AsmError::new(
                        line,
                        format!("jal expects 1 or 2 operands, got {n}"),
                    ))
                }
            };
            let offset = jump_offset(val(target)?, stmt.addr, line)?;
            out.push(Inst::Jal { rd, offset }.encode());
        }
        "j" => {
            nops(1)?;
            let offset = jump_offset(val(ops[0])?, stmt.addr, line)?;
            out.push(
                Inst::Jal {
                    rd: Reg::ZERO,
                    offset,
                }
                .encode(),
            );
        }
        "call" => {
            nops(1)?;
            let offset = jump_offset(val(ops[0])?, stmt.addr, line)?;
            out.push(
                Inst::Jal {
                    rd: Reg::RA,
                    offset,
                }
                .encode(),
            );
        }
        "jalr" => {
            let (rd, rs1, offset) = match ops.len() {
                1 => (Reg::RA, reg(ops[0])?, 0),
                2 => {
                    let (offset, rs1) = parse_mem(ops[1], symbols, line)?;
                    (reg(ops[0])?, rs1, offset)
                }
                n => {
                    return Err(AsmError::new(
                        line,
                        format!("jalr expects 1 or 2 operands, got {n}"),
                    ))
                }
            };
            out.push(Inst::Jalr { rd, rs1, offset }.encode());
        }
        "jr" => {
            nops(1)?;
            out.push(
                Inst::Jalr {
                    rd: Reg::ZERO,
                    rs1: reg(ops[0])?,
                    offset: 0,
                }
                .encode(),
            );
        }
        "ret" => {
            nops(0)?;
            out.push(
                Inst::Jalr {
                    rd: Reg::ZERO,
                    rs1: Reg::RA,
                    offset: 0,
                }
                .encode(),
            );
        }

        // Other pseudo instructions.
        "nop" => {
            nops(0)?;
            out.push(
                Inst::OpImm {
                    kind: AluOp::Add,
                    rd: Reg::ZERO,
                    rs1: Reg::ZERO,
                    imm: 0,
                }
                .encode(),
            );
        }
        "mv" => {
            nops(2)?;
            out.push(
                Inst::OpImm {
                    kind: AluOp::Add,
                    rd: reg(ops[0])?,
                    rs1: reg(ops[1])?,
                    imm: 0,
                }
                .encode(),
            );
        }
        "not" => {
            nops(2)?;
            out.push(
                Inst::OpImm {
                    kind: AluOp::Xor,
                    rd: reg(ops[0])?,
                    rs1: reg(ops[1])?,
                    imm: -1,
                }
                .encode(),
            );
        }
        "neg" => {
            nops(2)?;
            out.push(
                Inst::Op {
                    kind: AluOp::Sub,
                    rd: reg(ops[0])?,
                    rs1: Reg::ZERO,
                    rs2: reg(ops[1])?,
                }
                .encode(),
            );
        }
        "seqz" => {
            nops(2)?;
            out.push(
                Inst::OpImm {
                    kind: AluOp::Sltu,
                    rd: reg(ops[0])?,
                    rs1: reg(ops[1])?,
                    imm: 1,
                }
                .encode(),
            );
        }
        "snez" => {
            nops(2)?;
            out.push(
                Inst::Op {
                    kind: AluOp::Sltu,
                    rd: reg(ops[0])?,
                    rs1: Reg::ZERO,
                    rs2: reg(ops[1])?,
                }
                .encode(),
            );
        }
        "li" => {
            nops(2)?;
            let rd = reg(ops[0])?;
            // The small/large decision must mirror pass 1's size estimate,
            // which works on the raw i64 value.
            let v64 = val(ops[1])?;
            if (-2048..=2047).contains(&v64) {
                out.push(
                    Inst::OpImm {
                        kind: AluOp::Add,
                        rd,
                        rs1: Reg::ZERO,
                        imm: v64 as i32,
                    }
                    .encode(),
                );
            } else {
                let (hi, lo) = hi_lo(v64 as u32);
                out.push(Inst::Lui { rd, imm: hi }.encode());
                out.push(
                    Inst::OpImm {
                        kind: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: lo,
                    }
                    .encode(),
                );
            }
        }
        "la" => {
            nops(2)?;
            let rd = reg(ops[0])?;
            let v = val(ops[1])? as u32;
            let (hi, lo) = hi_lo(v);
            out.push(Inst::Lui { rd, imm: hi }.encode());
            out.push(
                Inst::OpImm {
                    kind: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: lo,
                }
                .encode(),
            );
        }

        "ecall" => {
            nops(0)?;
            out.push(Inst::Ecall.encode());
        }
        "ebreak" => {
            nops(0)?;
            out.push(Inst::Ebreak.encode());
        }

        other => return Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
    }

    let start = stmt.addr as usize;
    if let Some(raw) = raw_bytes {
        bytes[start..start + raw.len()].copy_from_slice(&raw);
    } else {
        if !start.is_multiple_of(4) {
            return Err(AsmError::new(
                line,
                "instruction is not 4-byte aligned (insert `.align 2` after data)",
            ));
        }
        for (i, w) in out.iter().enumerate() {
            bytes[start + 4 * i..start + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn words(src: &str) -> Vec<u32> {
        assemble(src).unwrap().words()
    }

    #[test]
    fn simple_instructions_assemble() {
        let w = words("add a0, a1, a2\naddi a0, a0, -1\nlw t0, 8(sp)\nsw t0, -4(s0)\n");
        assert_eq!(w.len(), 4);
        assert_eq!(Inst::decode(w[0]).unwrap().to_string(), "add a0, a1, a2");
        assert_eq!(Inst::decode(w[1]).unwrap().to_string(), "addi a0, a0, -1");
        assert_eq!(Inst::decode(w[2]).unwrap().to_string(), "lw t0, 8(sp)");
        assert_eq!(Inst::decode(w[3]).unwrap().to_string(), "sw t0, -4(s0)");
    }

    #[test]
    fn labels_and_branches_resolve_both_directions() {
        let w = words("start: addi a0, a0, 1\n beq a0, a1, done\n j start\n done: ret\n");
        match Inst::decode(w[1]).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("expected branch, got {other}"),
        }
        match Inst::decode(w[2]).unwrap() {
            Inst::Jal { offset, .. } => assert_eq!(offset, -8),
            other => panic!("expected jal, got {other}"),
        }
    }

    #[test]
    fn li_small_and_large() {
        let w = words("li a0, 42\nli a1, 0x12345678\nli a2, -1\nli a3, 0xffff8000\n");
        assert_eq!(w.len(), 6, "4B + 8B + 4B + 8B");
        // li a0, 42 -> addi a0, zero, 42
        assert_eq!(Inst::decode(w[0]).unwrap().to_string(), "addi a0, zero, 42");
        // li a1, 0x12345678 -> lui 0x12345/0x12346? hi_lo: lo = 0x678, hi = 0x12345000.
        match Inst::decode(w[1]).unwrap() {
            Inst::Lui { imm, .. } => assert_eq!(imm, 0x1234_5000),
            other => panic!("expected lui, got {other}"),
        }
        match Inst::decode(w[2]).unwrap() {
            Inst::OpImm { imm, .. } => assert_eq!(imm, 0x678),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn hi_lo_round_trips_all_boundary_values() {
        for v in [
            0u32,
            1,
            0x7ff,
            0x800,
            0xfff,
            0x1000,
            0x7fff_ffff,
            0x8000_0000,
            0xffff_ffff,
            0xffff_f800,
        ] {
            let (hi, lo) = hi_lo(v);
            assert_eq!(hi & 0xfff, 0, "hi has low bits clear for {v:#x}");
            assert_eq!(hi.wrapping_add(lo as u32), v, "hi+lo reconstructs {v:#x}");
            assert!((-2048..=2047).contains(&lo));
        }
    }

    #[test]
    fn data_directives_lay_out_bytes() {
        let p = assemble(
            ".equ MAGIC, 0x10\n data: .word 1, MAGIC\n .byte 1, 2, 3\n .align 2\n .half 0xbeef\n .space 2\n tail: .asciz \"ab\"\n",
        )
        .unwrap();
        assert_eq!(p.symbol("data"), Some(0));
        assert_eq!(p.symbol("tail"), Some(16));
        assert_eq!(&p.bytes()[0..8], &[1, 0, 0, 0, 0x10, 0, 0, 0]);
        assert_eq!(&p.bytes()[8..11], &[1, 2, 3]);
        assert_eq!(&p.bytes()[12..14], &[0xef, 0xbe]);
        assert_eq!(&p.bytes()[16..19], b"ab\0");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\n frobnicate a0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frobnicate"));

        let e = assemble("beq a0, a1, faraway\n").unwrap_err();
        assert!(e.message.contains("undefined symbol"));

        let e = assemble("x: nop\n x: nop\n").unwrap_err();
        assert!(e.message.contains("redefined"));

        let e = assemble("addi a0, a0, 5000\n").unwrap_err();
        assert!(e.message.contains("12 bits"));
    }

    #[test]
    fn la_points_at_labels() {
        let p = assemble("la a0, buf\n ret\n buf: .word 7\n").unwrap();
        let w = p.words();
        assert_eq!(p.symbol("buf"), Some(12));
        match Inst::decode(w[0]).unwrap() {
            Inst::Lui { imm, .. } => assert_eq!(imm, 0),
            other => panic!("{other}"),
        }
        match Inst::decode(w[1]).unwrap() {
            Inst::OpImm { imm, .. } => assert_eq!(imm, 12),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn expressions_with_offsets() {
        let p = assemble("base: .space 8\n lw a0, base+4(zero)\n").unwrap();
        // The load sits at address 8 (after the 8-byte .space)... but loads
        // must be 4-aligned: 8 is aligned, fine.
        let w = p.words()[2];
        match Inst::decode(w).unwrap() {
            Inst::Load { offset, .. } => assert_eq!(offset, 4),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn misaligned_instructions_are_rejected() {
        let e = assemble(".byte 1\n nop\n").unwrap_err();
        assert!(e.message.contains("aligned"));
    }

    #[test]
    fn hi_lo_relocations_pair_up() {
        // `lui+addi` with %hi/%lo must equal `la`'s expansion.
        let p = assemble(
            "lui a0, %hi(buf)\n addi a0, a0, %lo(buf)\n la a1, buf\n .space 2048\n buf: .word 1\n",
        )
        .unwrap();
        let w = p.words();
        assert_eq!(w[0] & 0xffff_f000, w[2] & 0xffff_f000, "lui halves match");
        // The addi immediates match too (la targets a1 instead of a0).
        assert_eq!(w[1] >> 20, w[3] >> 20, "addi immediates match");
        // And the pair reconstructs the address even when %lo is negative.
        let addr = p.symbol("buf").unwrap();
        match Inst::decode(w[0]).unwrap() {
            Inst::Lui { imm, .. } => match Inst::decode(w[1]).unwrap() {
                Inst::OpImm { imm: lo, .. } => {
                    assert_eq!(imm.wrapping_add(lo as u32), addr);
                }
                other => panic!("{other}"),
            },
            other => panic!("{other}"),
        }
    }

    #[test]
    fn pseudo_instructions_expand_correctly() {
        let w = words("mv a0, a1\nnot a1, a2\nneg a2, a3\nseqz a3, a4\nsnez a4, a5\nnop\n");
        assert_eq!(Inst::decode(w[0]).unwrap().to_string(), "addi a0, a1, 0");
        assert_eq!(Inst::decode(w[1]).unwrap().to_string(), "xori a1, a2, -1");
        assert_eq!(Inst::decode(w[2]).unwrap().to_string(), "sub a2, zero, a3");
        assert_eq!(Inst::decode(w[3]).unwrap().to_string(), "sltiu a3, a4, 1");
        assert_eq!(Inst::decode(w[4]).unwrap().to_string(), "sltu a4, zero, a5");
        assert_eq!(
            Inst::decode(w[5]).unwrap().to_string(),
            "addi zero, zero, 0"
        );
    }
}
