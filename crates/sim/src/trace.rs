//! Golden (fault-free) execution traces and checkpoints.
//!
//! A fault-injection campaign first records a [`GoldenTrace`] of the
//! reference execution. The trace stores, for every cycle, the packed
//! start-of-cycle flip-flop state, the environment fingerprint, and the port
//! words exchanged — everything the timing-aware simulator needs to
//! reconstruct a cycle, and everything the timing-agnostic GroupACE check
//! needs to detect that a faulty run has re-converged with the reference.
//!
//! [`Checkpoint`]s additionally capture a clone of the environment at
//! selected injection cycles so faulty executions can resume mid-program
//! without replaying from reset.

use std::collections::HashSet;

use delayavf_netlist::{Circuit, Topology};

use crate::cycle::{CycleSim, StopReason};
use crate::env::Environment;

/// Packs a bit slice into 64-bit words (LSB of word 0 is `bits[0]`).
pub fn pack_bits(bits: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; bits.len().div_ceil(64)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

/// A resumable snapshot of an execution at the start of a cycle.
#[derive(Clone, Debug)]
pub struct Checkpoint<E> {
    /// The cycle this checkpoint resumes at.
    pub cycle: u64,
    /// Flip-flop state at the start of the cycle.
    pub state: Vec<bool>,
    /// Output port words the environment will observe on the next step.
    pub prev_outputs: Vec<u64>,
    /// The environment, cloned before its `step` for this cycle.
    pub env: E,
}

/// A fault-free reference execution.
#[derive(Clone, Debug)]
pub struct GoldenTrace {
    num_cycles: u64,
    halted: bool,
    /// Packed start-of-cycle states; length `num_cycles + 1` (the final
    /// entry is the state after the last executed cycle).
    states: Vec<Vec<u64>>,
    /// Environment fingerprints aligned with `states`.
    fingerprints: Vec<u64>,
    /// Input port words consumed by each cycle; length `num_cycles`.
    inputs: Vec<Vec<u64>>,
    /// Output port words sampled at the end of each cycle; length
    /// `num_cycles`.
    outputs: Vec<Vec<u64>>,
    program_output: Vec<u8>,
}

impl GoldenTrace {
    /// Records the reference execution of `env` on the circuit, capturing
    /// checkpoints at the requested cycles.
    ///
    /// The run stops when the environment halts or after `max_cycles`.
    /// Checkpoint cycles beyond the program's actual length are ignored.
    pub fn record<E: Environment + Clone>(
        circuit: &Circuit,
        topo: &Topology,
        env: &mut E,
        max_cycles: u64,
        checkpoint_cycles: &[u64],
    ) -> (GoldenTrace, Vec<Checkpoint<E>>) {
        let want: HashSet<u64> = checkpoint_cycles.iter().copied().collect();
        let mut sim = CycleSim::new(circuit, topo);
        let mut states = Vec::new();
        let mut fingerprints = Vec::new();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut checkpoints = Vec::new();
        let mut halted = false;
        while sim.cycle() < max_cycles {
            if env.halted() {
                halted = true;
                break;
            }
            states.push(pack_bits(sim.state()));
            fingerprints.push(env.fingerprint());
            if want.contains(&sim.cycle()) {
                checkpoints.push(Checkpoint {
                    cycle: sim.cycle(),
                    state: sim.state().to_vec(),
                    prev_outputs: sim.last_outputs().to_vec(),
                    env: env.clone(),
                });
            }
            sim.step(env);
            inputs.push(sim.last_inputs().to_vec());
            outputs.push(sim.last_outputs().to_vec());
        }
        halted = halted || env.halted();
        // Final boundary state.
        states.push(pack_bits(sim.state()));
        fingerprints.push(env.fingerprint());
        let trace = GoldenTrace {
            num_cycles: sim.cycle(),
            halted,
            states,
            fingerprints,
            inputs,
            outputs,
            program_output: env.program_output(),
        };
        (trace, checkpoints)
    }

    /// Number of executed cycles (the paper's *N*).
    pub fn num_cycles(&self) -> u64 {
        self.num_cycles
    }

    /// Whether the reference execution halted on its own.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the reference run reached [`StopReason::Halted`].
    pub fn stop_reason(&self) -> StopReason {
        if self.halted {
            StopReason::Halted
        } else {
            StopReason::MaxCycles
        }
    }

    /// Packed flip-flop state at the start of `cycle` (0..=num_cycles).
    ///
    /// # Panics
    ///
    /// Panics if `cycle > num_cycles`.
    pub fn state_at(&self, cycle: u64) -> &[u64] {
        &self.states[usize::try_from(cycle).expect("cycle fits usize")]
    }

    /// Unpacked flip-flop state at the start of `cycle`.
    pub fn state_bits_at(&self, cycle: u64, num_dffs: usize) -> Vec<bool> {
        let packed = self.state_at(cycle);
        (0..num_dffs)
            .map(|i| (packed[i / 64] >> (i % 64)) & 1 == 1)
            .collect()
    }

    /// Environment fingerprint at the start of `cycle`.
    pub fn fingerprint_at(&self, cycle: u64) -> u64 {
        self.fingerprints[usize::try_from(cycle).expect("cycle fits usize")]
    }

    /// Input port words consumed by `cycle`.
    pub fn inputs_at(&self, cycle: u64) -> &[u64] {
        &self.inputs[usize::try_from(cycle).expect("cycle fits usize")]
    }

    /// Output port words sampled at the end of `cycle`.
    pub fn outputs_at(&self, cycle: u64) -> &[u64] {
        &self.outputs[usize::try_from(cycle).expect("cycle fits usize")]
    }

    /// The reference program output.
    pub fn program_output(&self) -> &[u8] {
        &self.program_output
    }

    /// True when a run has provably re-converged with the reference at the
    /// start of `cycle` — it will behave identically from `cycle` on.
    ///
    /// Convergence needs **three** equalities: the flip-flop state, the
    /// environment fingerprint, *and* the output-port words sampled at the
    /// end of cycle `cycle - 1`. The last one matters because those outputs
    /// are still *pending*: the environment only observes them during its
    /// next step, so a corrupted-but-already-sampled output can diverge a
    /// run whose state and fingerprint look golden.
    pub fn converged_at(
        &self,
        cycle: u64,
        packed_state: &[u64],
        fingerprint: u64,
        pending_outputs: &[u64],
    ) -> bool {
        cycle >= 1
            && cycle <= self.num_cycles
            && self.state_at(cycle) == packed_state
            && self.fingerprint_at(cycle) == fingerprint
            && self.outputs_at(cycle - 1) == pending_outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ConstEnvironment, Environment};
    use delayavf_netlist::CircuitBuilder;

    fn counter() -> Circuit {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let count = b.reg_word("count", 4, 0);
        let next = b.add(&count.q(), &step);
        b.drive_word(&count, &next);
        b.output_word("count", &count.q());
        b.finish().unwrap()
    }

    #[test]
    fn pack_bits_round_trips() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let packed = pack_bits(&bits);
        assert_eq!(packed.len(), 3);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!((packed[i / 64] >> (i % 64)) & 1 == 1, b);
        }
    }

    #[test]
    fn trace_records_every_cycle() {
        let c = counter();
        let topo = Topology::new(&c);
        let mut env = ConstEnvironment::new(vec![1]);
        let (trace, cps) = GoldenTrace::record(&c, &topo, &mut env, 8, &[2, 5, 100]);
        assert_eq!(trace.num_cycles(), 8);
        assert!(!trace.halted());
        assert_eq!(cps.len(), 2, "checkpoint beyond the run is ignored");
        assert_eq!(cps[0].cycle, 2);
        assert_eq!(cps[0].state, vec![false, true, false, false]); // count=2
                                                                   // Start-of-cycle states count 0,1,2,...,8.
        for cycle in 0..=8u64 {
            assert_eq!(trace.state_at(cycle)[0], cycle);
        }
        // Inputs are constant 1; outputs lag state by nothing (registered).
        for cycle in 0..8u64 {
            assert_eq!(trace.inputs_at(cycle), &[1]);
            assert_eq!(trace.outputs_at(cycle), &[cycle]);
        }
    }

    #[test]
    fn convergence_compares_state_and_fingerprint() {
        let c = counter();
        let topo = Topology::new(&c);
        let mut env = ConstEnvironment::new(vec![1]);
        let (trace, _) = GoldenTrace::record(&c, &topo, &mut env, 4, &[]);
        let good = trace.state_at(2).to_vec();
        let outs = trace.outputs_at(1).to_vec();
        assert!(trace.converged_at(2, &good, 0, &outs));
        let bad = vec![good[0] ^ 1];
        assert!(!trace.converged_at(2, &bad, 0, &outs));
        assert!(
            !trace.converged_at(2, &good, 7, &outs),
            "fingerprint must match"
        );
        assert!(
            !trace.converged_at(2, &good, 0, &[outs[0] ^ 1]),
            "pending outputs must match too"
        );
    }

    #[test]
    fn checkpoint_resumes_identically() {
        let c = counter();
        let topo = Topology::new(&c);
        let mut env = ConstEnvironment::new(vec![3]);
        let (trace, cps) = GoldenTrace::record(&c, &topo, &mut env, 10, &[4]);
        let cp = &cps[0];
        let mut sim = CycleSim::new(&c, &topo);
        sim.restore(cp.cycle, &cp.state, &cp.prev_outputs);
        let mut env2 = cp.env.clone();
        while sim.cycle() < 10 {
            sim.step(&mut env2);
            assert_eq!(
                pack_bits(sim.state()),
                trace.state_at(sim.cycle()),
                "resumed run matches golden at cycle {}",
                sim.cycle()
            );
        }
        let _ = env2.fingerprint();
    }
}
