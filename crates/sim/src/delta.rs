//! Incremental timing-aware simulation: a shared golden-waveform cache plus
//! fault-cone delta event propagation.
//!
//! The full [`EventSim`](crate::EventSim) re-simulates the entire circuit's
//! timed waveform for every injection, although all ~hundreds of edges
//! injected at the same trace cycle share an identical fault-free waveform
//! and a small delay fault can only perturb signals inside the struck edge's
//! fanout cone. [`DeltaEventSim`] exploits both:
//!
//! 1. **Golden-waveform cache.** The fault-free timed waveform of a trace
//!    cycle is simulated once (the same event loop as `EventSim`) and stored
//!    as canonical per-net transition lists — strictly increasing times with
//!    alternating values, i.e. exactly the value-over-time step function of
//!    each net — plus the fault-free latched flip-flop values. The cache
//!    holds one cycle (campaigns sweep edge-inner / cycle-outer, so a single
//!    slot gives perfect reuse, mirroring the injector's `CycleData`). The
//!    cache lives in [`GoldenWave`] so the lane-packed
//!    [`BatchDeltaSim`](crate::BatchDeltaSim) shares the identical build
//!    path.
//! 2. **Delta simulation.** A faulty injection is evaluated as a difference
//!    against the cached waveform, seeded at the struck edge's sink: the
//!    struck gate's faulty output waveform is computed from its input pin
//!    streams (golden source transitions shifted by edge delay, plus the
//!    fault's `extra` on the struck edge), and divergence propagates in
//!    [`Topology::gate_level`] order. A gate whose faulty output waveform
//!    reconverges to the cached golden waveform is pruned; the run ends as
//!    soon as the delta frontier empties, and flip-flops outside the
//!    divergence cone latch their cached golden values for free.
//!
//! Transport delays are pure shifts, so each pin's waveform is its source
//! net's waveform delayed by the edge delay, and every net's final waveform
//! is a deterministic function of the input/state waveforms — independent of
//! the event interleaving the full simulator happens to use. The latched
//! result is therefore **bit-identical** to
//! [`EventSim::latch_cycle`](crate::EventSim::latch_cycle) with the same
//! fault (pinned by `crates/sim/tests/prop_delta_sim.rs`); only the work
//! performed changes.
//!
//! [`Topology::gate_level`]: delayavf_netlist::Topology::gate_level

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use delayavf_netlist::{Circuit, Consumer, EdgeId, GateId, NetId, Topology};
use delayavf_timing::{Picos, TimingModel};

use crate::cycle::write_input_nets;
use crate::event::FaultSpec;

/// Work and cache accounting for one [`DeltaEventSim::latch_cycle`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// True when this call built the golden waveform for its cycle (a cache
    /// miss: the previous call simulated a different trace cycle).
    pub built_golden: bool,
    /// Merged waveform time-steps processed while evaluating delta-cone
    /// gates (the delta analogue of full event-simulation work).
    pub delta_events: u64,
    /// Gates whose faulty output waveform reconverged with the cached
    /// golden waveform and were pruned from the frontier (every remaining
    /// divergence settled before reaching them).
    pub reconverged: u64,
}

/// A transition list: `(time, value)` with strictly increasing times and
/// alternating values — the canonical encoding of a net's value over the
/// cycle, starting from its settled previous-cycle value.
pub(crate) type Wave = Vec<(Picos, bool)>;

/// Appends a transition, keeping the list canonical: a same-time push
/// overwrites (zero-width glitches collapse), and a push restoring the
/// current value is dropped.
#[inline]
pub(crate) fn push_tx(tx: &mut Wave, base: bool, t: Picos, v: bool) {
    if let Some(&(lt, _)) = tx.last() {
        if lt == t {
            let prev = if tx.len() >= 2 {
                tx[tx.len() - 2].1
            } else {
                base
            };
            if prev == v {
                tx.pop();
            } else {
                tx.last_mut().expect("nonempty").1 = v;
            }
            return;
        }
    }
    let cur = tx.last().map_or(base, |&(_, v)| v);
    if cur != v {
        tx.push((t, v));
    }
}

/// The value of a canonical transition list at time `at` (`None` = before
/// the cycle starts, i.e. the base value).
#[inline]
pub(crate) fn value_at(tx: &[(Picos, bool)], base: bool, at: Option<Picos>) -> bool {
    let Some(at) = at else { return base };
    let idx = tx.partition_point(|&(t, _)| t <= at);
    if idx == 0 {
        base
    } else {
        tx[idx - 1].1
    }
}

/// The cached fault-free timed waveform of one trace cycle: canonical
/// per-net transition lists, the settled base values they start from, and
/// the fault-free latched flip-flop values.
///
/// Shared by [`DeltaEventSim`] and [`BatchDeltaSim`](crate::BatchDeltaSim):
/// both engines evaluate faulty injections as deltas against exactly this
/// waveform, built by exactly this event loop (the same one as
/// [`EventSim::latch_cycle`](crate::EventSim::latch_cycle) with no fault).
#[derive(Clone, Debug)]
pub(crate) struct GoldenWave {
    /// Trace cycle the cache currently holds.
    cached_cycle: Option<u64>,
    /// Settled net values at the clock edge (the waveform base values).
    pub(crate) base: Vec<bool>,
    /// Canonical per-net golden transition lists for the cached cycle.
    pub(crate) tx: Vec<Wave>,
    /// Fault-free latched value per flip-flop for the cached cycle.
    pub(crate) latch: Vec<bool>,
    // Scratch for the golden event loop (mirrors `EventSim`).
    net_val: Vec<bool>,
    pin_val: Vec<bool>,
    heap: BinaryHeap<Reverse<(Picos, u64, u32, bool)>>,
    seq: u64,
    input_bits: Vec<bool>,
}

impl GoldenWave {
    /// Creates an empty cache sized for `circuit`.
    pub(crate) fn new(circuit: &Circuit, topo: &Topology) -> Self {
        GoldenWave {
            cached_cycle: None,
            base: vec![false; circuit.num_nets()],
            tx: vec![Vec::new(); circuit.num_nets()],
            latch: vec![false; circuit.num_dffs()],
            net_val: vec![false; circuit.num_nets()],
            pin_val: vec![false; topo.edges().len()],
            heap: BinaryHeap::new(),
            seq: 0,
            input_bits: vec![false; circuit.num_nets()],
        }
    }

    /// Ensures the cache holds `cycle`, rebuilding if the previous call
    /// simulated a different trace cycle. Returns true on a rebuild.
    /// Consecutive calls with the same cycle number must pass the same
    /// `prev_values` / `new_state` / `new_inputs`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ensure(
        &mut self,
        circuit: &Circuit,
        topo: &Topology,
        timing: &TimingModel,
        cycle: u64,
        prev_values: &[bool],
        new_state: &[bool],
        new_inputs: &[u64],
    ) -> bool {
        if self.cached_cycle == Some(cycle) {
            return false;
        }
        self.build(circuit, topo, timing, prev_values, new_state, new_inputs);
        self.cached_cycle = Some(cycle);
        true
    }

    /// Simulates the fault-free timed waveform of one cycle — the same event
    /// loop as [`EventSim::latch_cycle`](crate::EventSim::latch_cycle) with
    /// no fault — recording every net's canonical transition list and the
    /// fault-free latched values.
    fn build(
        &mut self,
        circuit: &Circuit,
        topo: &Topology,
        timing: &TimingModel,
        prev_values: &[bool],
        new_state: &[bool],
        new_inputs: &[u64],
    ) {
        let deadline = timing.clock_period().saturating_sub(timing.setup());
        for tx in &mut self.tx {
            tx.clear();
        }
        self.base.copy_from_slice(prev_values);
        self.net_val.copy_from_slice(prev_values);
        for (i, e) in topo.edges().iter().enumerate() {
            self.pin_val[i] = prev_values[e.source.index()];
        }
        self.heap.clear();
        self.seq = 0;

        // t = 0: the clock edge updates flip-flop outputs and the
        // environment presents new inputs.
        for (id, dff) in circuit.dffs() {
            let q = dff.q();
            let v = new_state[id.index()];
            if self.net_val[q.index()] != v {
                self.net_val[q.index()] = v;
                push_tx(&mut self.tx[q.index()], prev_values[q.index()], 0, v);
                self.schedule_fanouts(topo, timing, q, 0, v);
            }
        }
        self.input_bits.copy_from_slice(prev_values);
        write_input_nets(circuit, new_inputs, &mut self.input_bits);
        for &net in circuit.input_nets() {
            let v = self.input_bits[net.index()];
            if self.net_val[net.index()] != v {
                self.net_val[net.index()] = v;
                push_tx(&mut self.tx[net.index()], prev_values[net.index()], 0, v);
                self.schedule_fanouts(topo, timing, net, 0, v);
            }
        }

        while let Some(&Reverse((t, _, edge_idx, value))) = self.heap.peek() {
            if t > deadline {
                break;
            }
            self.heap.pop();
            let edge = topo.edge(EdgeId::from_index(edge_idx as usize));
            let idx = edge_idx as usize;
            if self.pin_val[idx] == value {
                continue;
            }
            self.pin_val[idx] = value;
            if let Consumer::GatePin { gate, .. } = edge.consumer {
                let g = circuit.gate(gate);
                let mut ins = [false; 3];
                for (slot, e) in ins.iter_mut().zip(topo.gate_in_edges(gate)) {
                    *slot = self.pin_val[e.index()];
                }
                let out = g.kind().eval(&ins[..g.kind().arity()]);
                let out_net = g.output();
                if self.net_val[out_net.index()] != out {
                    self.net_val[out_net.index()] = out;
                    push_tx(
                        &mut self.tx[out_net.index()],
                        prev_values[out_net.index()],
                        t,
                        out,
                    );
                    self.schedule_fanouts(topo, timing, out_net, t, out);
                }
            }
        }
        self.heap.clear();

        for (id, _) in circuit.dffs() {
            self.latch[id.index()] = self.pin_val[topo.dff_in_edge(id).index()];
        }
    }

    fn schedule_fanouts(
        &mut self,
        topo: &Topology,
        timing: &TimingModel,
        net: NetId,
        t: Picos,
        value: bool,
    ) {
        let delay = timing.net_delay(net);
        for eid in topo.fanout_ids(net) {
            self.seq += 1;
            self.heap.push(Reverse((
                t + delay,
                self.seq,
                u32::try_from(eid.index()).expect("edge id fits u32"),
                value,
            )));
        }
    }
}

/// Reusable incremental timing-aware single-cycle simulator (see the module
/// docs). One instance per worker thread, like [`EventSim`](crate::EventSim).
#[derive(Clone, Debug)]
pub struct DeltaEventSim<'a> {
    circuit: &'a Circuit,
    topo: &'a Topology,
    timing: &'a TimingModel,
    /// The shared golden-waveform cache (one trace cycle).
    gold: GoldenWave,
    // Epoch-stamped delta scratch (O(1) reset per injection).
    fault_tx: Vec<Wave>,
    fault_epoch: Vec<u64>,
    sched_epoch: Vec<u64>,
    epoch: u64,
    /// Delta-frontier worklist, bucketed by combinational level.
    buckets: Vec<Vec<GateId>>,
    max_sched_level: usize,
    /// Scratch for the gate output waveform under evaluation.
    wave: Wave,
    /// Latched values returned by the last call (golden patched with the
    /// divergence cone's flip-flops).
    latch_out: Vec<bool>,
}

impl<'a> DeltaEventSim<'a> {
    /// Creates a simulator bound to one circuit and timing model.
    pub fn new(circuit: &'a Circuit, topo: &'a Topology, timing: &'a TimingModel) -> Self {
        DeltaEventSim {
            circuit,
            topo,
            timing,
            gold: GoldenWave::new(circuit, topo),
            fault_tx: vec![Vec::new(); circuit.num_nets()],
            fault_epoch: vec![0; circuit.num_nets()],
            sched_epoch: vec![0; circuit.num_gates()],
            epoch: 0,
            buckets: vec![Vec::new(); topo.num_levels()],
            max_sched_level: 0,
            wave: Vec::new(),
            latch_out: vec![false; circuit.num_dffs()],
        }
    }

    /// Simulates one faulty cycle as a delta against the cycle's cached
    /// golden waveform, returning the latched flip-flop values (identical to
    /// [`EventSim::latch_cycle`](crate::EventSim::latch_cycle) with
    /// `Some(fault)`) and the work/cache accounting.
    ///
    /// `cycle` keys the golden-waveform cache: consecutive calls with the
    /// same cycle number reuse the cached waveform and must pass the same
    /// `prev_values` / `new_state` / `new_inputs`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the circuit.
    pub fn latch_cycle(
        &mut self,
        cycle: u64,
        prev_values: &[bool],
        new_state: &[bool],
        new_inputs: &[u64],
        fault: FaultSpec,
    ) -> (&[bool], DeltaOutcome) {
        assert_eq!(prev_values.len(), self.circuit.num_nets());
        assert_eq!(new_state.len(), self.circuit.num_dffs());
        let mut outcome = DeltaOutcome {
            built_golden: self.gold.ensure(
                self.circuit,
                self.topo,
                self.timing,
                cycle,
                prev_values,
                new_state,
                new_inputs,
            ),
            ..DeltaOutcome::default()
        };
        let deadline = self
            .timing
            .clock_period()
            .saturating_sub(self.timing.setup());

        self.latch_out.copy_from_slice(&self.gold.latch);
        self.epoch += 1;
        self.max_sched_level = self.buckets.len();

        // Seed the delta at the struck edge's sink. The source net's
        // waveform is golden by construction (the fault sits on the edge,
        // and a single combinational cycle has no feedback).
        let struck = self.topo.edge(fault.edge);
        match struck.consumer {
            // A delayed D pin samples the source waveform `extra` later.
            Consumer::DffD(f) => {
                let delay = self
                    .timing
                    .net_delay(struck.source)
                    .saturating_add(fault.extra);
                let at = deadline.checked_sub(delay);
                let src = struck.source.index();
                self.latch_out[f.index()] = value_at(&self.gold.tx[src], self.gold.base[src], at);
            }
            // Primary outputs are not latched state; nothing can diverge.
            Consumer::OutputBit { .. } => {}
            Consumer::GatePin { gate, .. } => {
                self.schedule(gate);
                self.sweep(fault, deadline, &mut outcome);
            }
        }
        (&self.latch_out, outcome)
    }

    /// Latched values of the most recent [`DeltaEventSim::latch_cycle`].
    #[inline]
    pub fn latched(&self) -> &[bool] {
        &self.latch_out
    }

    /// Schedules `gate` onto the delta frontier once per injection.
    #[inline]
    fn schedule(&mut self, gate: GateId) {
        if self.sched_epoch[gate.index()] != self.epoch {
            self.sched_epoch[gate.index()] = self.epoch;
            let level = self.topo.gate_level(gate) as usize;
            if self.max_sched_level == self.buckets.len() {
                self.max_sched_level = level;
            } else {
                self.max_sched_level = self.max_sched_level.max(level);
            }
            self.buckets[level].push(gate);
        }
    }

    /// Levelized delta propagation: each frontier gate's faulty output
    /// waveform is computed from its input pin streams, compared against the
    /// cached golden waveform (reconverged ⇒ pruned), and diverging outputs
    /// extend the frontier / patch latched flip-flops.
    fn sweep(&mut self, fault: FaultSpec, deadline: Picos, outcome: &mut DeltaOutcome) {
        let mut level = 0;
        while level <= self.max_sched_level && level < self.buckets.len() {
            while let Some(g) = self.buckets[level].pop() {
                outcome.delta_events += self.eval_gate_wave(g, fault, deadline);
                let out = self.circuit.gate(g).output();
                if self.wave == self.gold.tx[out.index()] {
                    outcome.reconverged += 1;
                    continue;
                }
                self.mark_diverged(out, deadline);
            }
            level += 1;
        }
    }

    /// Computes the faulty output waveform of `g` into `self.wave` by
    /// sweeping the merged input pin streams in time order, evaluating the
    /// gate at each step. Returns the number of time-steps processed.
    ///
    /// Each input pin stream is its source net's waveform (faulty if the
    /// source diverged, cached golden otherwise) shifted by the edge delay —
    /// plus the fault's `extra` on the struck edge — and truncated at the
    /// latch deadline, exactly as the full event loop applies pin events.
    fn eval_gate_wave(&mut self, g: GateId, fault: FaultSpec, deadline: Picos) -> u64 {
        struct Stream<'w> {
            tx: &'w [(Picos, bool)],
            shift: Picos,
            cursor: usize,
            slot: usize,
        }
        let gate = self.circuit.gate(g);
        let arity = gate.kind().arity();
        let mut ins = [false; 3];
        let mut streams: [Option<Stream<'_>>; 3] = [None, None, None];
        for (slot, (eid, &src)) in self
            .topo
            .gate_in_edges(g)
            .zip(gate.inputs().iter())
            .enumerate()
        {
            ins[slot] = self.gold.base[src.index()];
            let extra = if eid == fault.edge { fault.extra } else { 0 };
            let tx: &[(Picos, bool)] = if self.fault_epoch[src.index()] == self.epoch {
                &self.fault_tx[src.index()]
            } else {
                &self.gold.tx[src.index()]
            };
            streams[slot] = Some(Stream {
                tx,
                shift: self.timing.net_delay(src).saturating_add(extra),
                cursor: 0,
                slot,
            });
        }
        let out = gate.output();
        let mut out_val = self.gold.base[out.index()];
        let base_out = out_val;
        self.wave.clear();
        let mut steps = 0u64;
        loop {
            // Earliest pending pin event across all streams, deadline-capped.
            let mut t_min: Option<Picos> = None;
            for s in streams.iter().flatten() {
                if let Some(&(t, _)) = s.tx.get(s.cursor) {
                    let at = t.saturating_add(s.shift);
                    if at <= deadline && t_min.is_none_or(|m| at < m) {
                        t_min = Some(at);
                    }
                }
            }
            let Some(t) = t_min else { break };
            for s in streams.iter_mut().flatten() {
                while let Some(&(st, v)) = s.tx.get(s.cursor) {
                    if st.saturating_add(s.shift) > t {
                        break;
                    }
                    ins[s.slot] = v;
                    s.cursor += 1;
                }
            }
            steps += 1;
            let v = gate.kind().eval(&ins[..arity]);
            if v != out_val {
                out_val = v;
                push_tx(&mut self.wave, base_out, t, v);
            }
        }
        steps
    }

    /// Records `self.wave` as the faulty waveform of `net`, schedules its
    /// consumer gates and patches latched values of directly fed flip-flops.
    fn mark_diverged(&mut self, net: NetId, deadline: Picos) {
        let i = net.index();
        self.fault_epoch[i] = self.epoch;
        std::mem::swap(&mut self.fault_tx[i], &mut self.wave);
        let delay = self.timing.net_delay(net);
        let at = deadline.checked_sub(delay);
        for e in self.topo.fanouts(net) {
            match e.consumer {
                Consumer::GatePin { gate, .. } => self.schedule(gate),
                Consumer::DffD(f) => {
                    self.latch_out[f.index()] = value_at(&self.fault_tx[i], self.gold.base[i], at);
                }
                Consumer::OutputBit { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::settle;
    use crate::event::EventSim;
    use delayavf_netlist::CircuitBuilder;
    use delayavf_timing::TechLibrary;

    /// Figure-2-style circuit (same as the `EventSim` tests): x and y feed
    /// an AND into register A; x also lands directly in register B.
    fn figure2() -> (Circuit, Topology, TimingModel) {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and(x, y);
        let ra = b.reg("A", false);
        b.drive(ra, z);
        let rb = b.reg("B", false);
        b.drive(rb, x);
        b.output("a", ra.q());
        b.output("b", rb.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        (c, topo, timing)
    }

    #[test]
    fn delta_matches_full_event_sim_on_every_edge_and_delay() {
        let (c, topo, timing) = figure2();
        let state = c.initial_state();
        let prev_values = settle(&c, &topo, &state, &[0, 1]);
        let inputs = [1u64, 1];
        let mut full = EventSim::new(&c, &topo, &timing);
        let mut delta = DeltaEventSim::new(&c, &topo, &timing);
        let clock = timing.clock_period();
        for e in (0..topo.edges().len()).map(EdgeId::from_index) {
            for extra in [0, 1, clock / 2, clock, 2 * clock] {
                let fault = FaultSpec { edge: e, extra };
                let want = full.latch_cycle(&prev_values, &state, &inputs, Some(fault));
                let (got, _) = delta.latch_cycle(3, &prev_values, &state, &inputs, fault);
                assert_eq!(got, want, "edge {e:?} extra {extra}");
            }
        }
    }

    #[test]
    fn golden_cache_is_shared_across_injections_at_one_cycle() {
        let (c, topo, timing) = figure2();
        let state = c.initial_state();
        let prev_values = settle(&c, &topo, &state, &[0, 1]);
        let inputs = [1u64, 1];
        let mut delta = DeltaEventSim::new(&c, &topo, &timing);
        let fault = FaultSpec {
            edge: EdgeId::from_index(0),
            extra: timing.clock_period(),
        };
        let (_, first) = delta.latch_cycle(7, &prev_values, &state, &inputs, fault);
        assert!(first.built_golden, "first injection at a cycle builds");
        let (_, second) = delta.latch_cycle(7, &prev_values, &state, &inputs, fault);
        assert!(
            !second.built_golden,
            "same cycle reuses the cached waveform"
        );
        let (_, third) = delta.latch_cycle(8, &prev_values, &state, &inputs, fault);
        assert!(third.built_golden, "a new cycle rebuilds the cache");
    }

    #[test]
    fn masked_fault_reconverges_and_prunes() {
        // Figure 2c: y = 0 masks the delayed x at the AND, so the struck
        // gate's output waveform equals golden and the frontier is pruned
        // immediately.
        let (c, topo, timing) = figure2();
        let state = c.initial_state();
        let prev_values = settle(&c, &topo, &state, &[0, 0]);
        let inputs = [1u64, 0];
        let e = (0..topo.edges().len())
            .map(EdgeId::from_index)
            .find(|&e| {
                let edge = topo.edge(e);
                edge.source == c.input_nets()[0]
                    && matches!(edge.consumer, Consumer::GatePin { .. })
            })
            .unwrap();
        let mut delta = DeltaEventSim::new(&c, &topo, &timing);
        let fault = FaultSpec {
            edge: e,
            extra: timing.clock_period(),
        };
        let (latched, outcome) = delta.latch_cycle(0, &prev_values, &state, &inputs, fault);
        assert_eq!(latched, &[false, true][..]);
        assert_eq!(outcome.reconverged, 1, "the masked AND gate is pruned");
    }
}
