//! Lane-packing primitives shared by the bit-parallel engines.
//!
//! [`crate::BatchSim`] (timing-agnostic replay) and
//! [`crate::BatchDeltaSim`] (timing-aware delta replay) both carry one bit
//! per fault scenario — a *lane* — inside machine words and evaluate the
//! 9-kind cell set with bitwise ops. This module holds the word-level
//! helpers they share:
//!
//! * [`broadcast`] / [`packed_bit`] / [`eval_word`] — the `u64` primitives
//!   the original 64-lane batch engine was built from;
//! * [`LaneWord`] — the abstraction over lane-carrier words, implemented
//!   for `u64` (64 lanes) and the 4×`u64` wide word [`W256`] (256 lanes),
//!   so the timing-aware engine can widen past 64 lanes without a second
//!   copy of the propagation code.
//!
//! Every operation is lane-independent: bit `L` of any result depends only
//! on bit `L` of the operands, which is what makes a packed simulation an
//! exact simultaneous run of all its lanes.

use delayavf_netlist::GateKind;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Broadcasts one golden bit across all 64 lanes of a `u64`.
#[inline(always)]
pub(crate) fn broadcast(bit: bool) -> u64 {
    if bit {
        !0
    } else {
        0
    }
}

/// Reads bit `i` of a packed (LSB-first) word slice.
#[inline(always)]
pub(crate) fn packed_bit(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Evaluates one gate on lane-packed `u64` words. For `Mux2` the pin order
/// is `[s, a, b]` (select first), matching [`GateKind::eval`]; unused
/// operands of lower-arity kinds are ignored.
#[inline(always)]
pub(crate) fn eval_word(kind: GateKind, a: u64, b: u64, c: u64) -> u64 {
    eval_lanes(kind, a, b, c)
}

/// Evaluates one gate on lane-packed words of any [`LaneWord`] width.
/// Semantics match [`eval_word`] lane for lane.
#[inline(always)]
pub(crate) fn eval_lanes<W: LaneWord>(kind: GateKind, a: W, b: W, c: W) -> W {
    match kind {
        GateKind::Buf => a,
        GateKind::Not => !a,
        GateKind::And2 => a & b,
        GateKind::Or2 => a | b,
        GateKind::Nand2 => !(a & b),
        GateKind::Nor2 => !(a | b),
        GateKind::Xor2 => a ^ b,
        GateKind::Xnor2 => !(a ^ b),
        // `b ^ (s & (b ^ c))` is the 3-op mux: s=0 -> b, s=1 -> c.
        GateKind::Mux2 => b ^ (a & (b ^ c)),
    }
}

/// A lane-carrier word: one bit per packed fault scenario.
///
/// The contract every implementation upholds — and the packed engines rely
/// on — is lane independence: for all operations, bit `L` of the result is
/// the scalar operation applied to bit `L` of the operands.
pub(crate) trait LaneWord:
    Copy
    + Eq
    + std::fmt::Debug
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
{
    /// Number of lanes this word carries.
    const LANES: usize;
    /// The all-zero word.
    const ZERO: Self;
    /// The all-one word (every lane set).
    const ONES: Self;

    /// Broadcasts one bit to every lane.
    fn splat(bit: bool) -> Self;
    /// The single-lane mask with only bit `lane` set.
    fn lane_mask(lane: usize) -> Self;
    /// Reads the bit of `lane`.
    fn get(self, lane: usize) -> bool;
    /// True when any lane is set.
    fn any(self) -> bool;
    /// Calls `f(lane)` for every set lane below `limit`, in ascending lane
    /// order. Cost is proportional to the number of set lanes, not the
    /// word width — the primitive behind word-parallel mismatch
    /// extraction.
    fn for_each_set(self, limit: usize, f: impl FnMut(usize));
}

impl LaneWord for u64 {
    const LANES: usize = 64;
    const ZERO: Self = 0;
    const ONES: Self = !0;

    #[inline(always)]
    fn splat(bit: bool) -> Self {
        broadcast(bit)
    }

    #[inline(always)]
    fn lane_mask(lane: usize) -> Self {
        debug_assert!(lane < 64);
        1u64 << lane
    }

    #[inline(always)]
    fn get(self, lane: usize) -> bool {
        (self >> lane) & 1 == 1
    }

    #[inline(always)]
    fn any(self) -> bool {
        self != 0
    }

    #[inline(always)]
    fn for_each_set(self, limit: usize, mut f: impl FnMut(usize)) {
        let mut w = if limit >= 64 {
            self
        } else {
            self & ((1u64 << limit) - 1)
        };
        while w != 0 {
            let lane = w.trailing_zeros() as usize;
            f(lane);
            w &= w - 1;
        }
    }
}

/// A 256-lane wide word: 4×`u64`, lane `L` living in bit `L % 64` of limb
/// `L / 64`. The timing-aware batch engine selects this carrier when a
/// batch holds more than 64 scenarios (`timing_lanes > 64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct W256(pub [u64; 4]);

impl BitAnd for W256 {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, o: Self) -> Self {
        W256([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }
}

impl BitOr for W256 {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, o: Self) -> Self {
        W256([
            self.0[0] | o.0[0],
            self.0[1] | o.0[1],
            self.0[2] | o.0[2],
            self.0[3] | o.0[3],
        ])
    }
}

impl BitXor for W256 {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, o: Self) -> Self {
        W256([
            self.0[0] ^ o.0[0],
            self.0[1] ^ o.0[1],
            self.0[2] ^ o.0[2],
            self.0[3] ^ o.0[3],
        ])
    }
}

impl Not for W256 {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        W256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl LaneWord for W256 {
    const LANES: usize = 256;
    const ZERO: Self = W256([0; 4]);
    const ONES: Self = W256([!0; 4]);

    #[inline(always)]
    fn splat(bit: bool) -> Self {
        W256([broadcast(bit); 4])
    }

    #[inline(always)]
    fn lane_mask(lane: usize) -> Self {
        debug_assert!(lane < 256);
        let mut limbs = [0u64; 4];
        limbs[lane / 64] = 1u64 << (lane % 64);
        W256(limbs)
    }

    #[inline(always)]
    fn get(self, lane: usize) -> bool {
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    #[inline(always)]
    fn any(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) != 0
    }

    #[inline(always)]
    fn for_each_set(self, limit: usize, mut f: impl FnMut(usize)) {
        for (limb, &bits) in self.0.iter().enumerate() {
            let base = limb * 64;
            if base >= limit {
                break;
            }
            bits.for_each_set(limit - base, |lane| f(base + lane));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laneword<W: LaneWord>() {
        assert!(!W::ZERO.any());
        assert!(W::ONES.any());
        assert_eq!(W::splat(false), W::ZERO);
        assert_eq!(W::splat(true), W::ONES);
        for lane in [0, 1, W::LANES / 2, W::LANES - 1] {
            let m = W::lane_mask(lane);
            assert!(m.any());
            assert!(m.get(lane));
            assert!(!(m ^ std::hint::black_box(m)).any());
            assert!((!m).get((lane + 1) % W::LANES));
            for other in [0, W::LANES - 1] {
                if other != lane {
                    assert!(!m.get(other), "lane {lane} mask leaks into {other}");
                }
            }
        }
    }

    #[test]
    fn lane_words_are_lane_independent_masks() {
        check_laneword::<u64>();
        check_laneword::<W256>();
    }

    fn check_for_each_set<W: LaneWord>() {
        let lanes = [0, 1, W::LANES / 2, W::LANES - 1];
        let mut w = W::ZERO;
        for &l in &lanes {
            w = w | W::lane_mask(l);
        }
        let mut seen = Vec::new();
        w.for_each_set(W::LANES, |l| seen.push(l));
        assert_eq!(seen, lanes, "ascending order, every set lane");
        // The limit truncates without shifting lane numbering.
        let mut seen = Vec::new();
        w.for_each_set(W::LANES / 2, |l| seen.push(l));
        assert_eq!(seen, [0, 1], "lanes at or past the limit are skipped");
        let mut count = 0;
        W::ONES.for_each_set(7, |_| count += 1);
        assert_eq!(count, 7);
        W::ZERO.for_each_set(W::LANES, |_| panic!("no set lanes"));
    }

    #[test]
    fn set_lane_iteration_is_ordered_and_bounded() {
        check_for_each_set::<u64>();
        check_for_each_set::<W256>();
    }

    #[test]
    fn wide_eval_matches_scalar_eval_per_lane() {
        use delayavf_netlist::GateKind::*;
        for kind in [Buf, Not, And2, Or2, Nand2, Nor2, Xor2, Xnor2, Mux2] {
            for bits in 0u32..8 {
                let (a, b, c) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
                let want = kind.eval(&[a, b, c][..kind.arity()]);
                let lane = 137; // an arbitrary lane in limb 2
                let w = eval_lanes::<W256>(kind, W256::splat(a), W256::splat(b), W256::splat(c));
                assert_eq!(w.get(lane), want, "{kind:?} on {bits:03b}");
                let n = eval_word(kind, broadcast(a), broadcast(b), broadcast(c));
                assert_eq!(n & 1 == 1, want, "{kind:?} narrow on {bits:03b}");
            }
        }
    }
}
