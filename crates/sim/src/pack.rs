//! Lane-packing primitives shared by the bit-parallel engines.
//!
//! [`crate::BatchSim`] (timing-agnostic replay) and
//! [`crate::BatchDeltaSim`] (timing-aware delta replay) both carry one bit
//! per fault scenario — a *lane* — inside machine words and evaluate the
//! 9-kind cell set with bitwise ops. This module holds the word-level
//! helpers they share:
//!
//! * [`broadcast`] / [`packed_bit`] / [`eval_word`] — the `u64` primitives
//!   the original 64-lane batch engine was built from;
//! * [`LaneWord`] — the abstraction over lane-carrier words, implemented
//!   for `u64` (64 lanes) and the wide words [`W256`] (4×`u64`, 256 lanes)
//!   and [`W512`] (8×`u64`, 512 lanes), so both batch engines widen past
//!   64 lanes without a second copy of the propagation code.
//!
//! The wide carriers are deliberately plain arrays of `u64` with
//! word-parallel loops rather than `std::simd` or target intrinsics: the
//! fixed-count limb loops vectorize on any release build, the crate keeps
//! `#![forbid(unsafe_code)]`, and the code compiles on the stable
//! toolchain with no feature gates or target dispatch (see DESIGN.md).
//!
//! Every operation is lane-independent: bit `L` of any result depends only
//! on bit `L` of the operands, which is what makes a packed simulation an
//! exact simultaneous run of all its lanes.

use delayavf_netlist::GateKind;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Broadcasts one golden bit across all 64 lanes of a `u64`.
#[inline(always)]
pub(crate) fn broadcast(bit: bool) -> u64 {
    if bit {
        !0
    } else {
        0
    }
}

/// Reads bit `i` of a packed (LSB-first) word slice.
#[inline(always)]
pub(crate) fn packed_bit(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Evaluates one gate on lane-packed `u64` words. For `Mux2` the pin order
/// is `[s, a, b]` (select first), matching [`GateKind::eval`]; unused
/// operands of lower-arity kinds are ignored.
#[inline(always)]
pub(crate) fn eval_word(kind: GateKind, a: u64, b: u64, c: u64) -> u64 {
    eval_lanes(kind, a, b, c)
}

/// Evaluates one gate on lane-packed words of any [`LaneWord`] width.
/// Semantics match [`GateKind::eval`] lane for lane; unused operands of
/// lower-arity kinds are ignored.
#[inline(always)]
pub fn eval_lanes<W: LaneWord>(kind: GateKind, a: W, b: W, c: W) -> W {
    match kind {
        GateKind::Buf => a,
        GateKind::Not => !a,
        GateKind::And2 => a & b,
        GateKind::Or2 => a | b,
        GateKind::Nand2 => !(a & b),
        GateKind::Nor2 => !(a | b),
        GateKind::Xor2 => a ^ b,
        GateKind::Xnor2 => !(a ^ b),
        // `b ^ (s & (b ^ c))` is the 3-op mux: s=0 -> b, s=1 -> c.
        GateKind::Mux2 => b ^ (a & (b ^ c)),
    }
}

/// A lane-carrier word: one bit per packed fault scenario.
///
/// The contract every implementation upholds — and the packed engines rely
/// on — is lane independence: for all operations, bit `L` of the result is
/// the scalar operation applied to bit `L` of the operands.
pub trait LaneWord:
    Copy
    + Eq
    + std::fmt::Debug
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
{
    /// Number of lanes this word carries.
    const LANES: usize;
    /// The all-zero word.
    const ZERO: Self;
    /// The all-one word (every lane set).
    const ONES: Self;

    /// Broadcasts one bit to every lane.
    fn splat(bit: bool) -> Self;
    /// The single-lane mask with only bit `lane` set.
    fn lane_mask(lane: usize) -> Self;
    /// The mask with the first `n` lanes set (`n` clamped to
    /// [`LaneWord::LANES`]) — the carve shape of a partially-filled final
    /// batch.
    fn prefix(n: usize) -> Self;
    /// Reads the bit of `lane`.
    fn get(self, lane: usize) -> bool;
    /// True when any lane is set.
    fn any(self) -> bool;
    /// Number of set lanes (popcount).
    fn count_ones(self) -> u32;
    /// Calls `f(lane)` for every set lane below `limit`, in ascending lane
    /// order. Cost is proportional to the number of set lanes, not the
    /// word width — the primitive behind word-parallel mismatch
    /// extraction.
    fn for_each_set(self, limit: usize, f: impl FnMut(usize));
}

impl LaneWord for u64 {
    const LANES: usize = 64;
    const ZERO: Self = 0;
    const ONES: Self = !0;

    #[inline(always)]
    fn splat(bit: bool) -> Self {
        broadcast(bit)
    }

    #[inline(always)]
    fn lane_mask(lane: usize) -> Self {
        debug_assert!(lane < 64);
        1u64 << lane
    }

    #[inline(always)]
    fn prefix(n: usize) -> Self {
        if n >= 64 {
            !0
        } else {
            (1u64 << n) - 1
        }
    }

    #[inline(always)]
    fn get(self, lane: usize) -> bool {
        (self >> lane) & 1 == 1
    }

    #[inline(always)]
    fn any(self) -> bool {
        self != 0
    }

    #[inline(always)]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }

    #[inline(always)]
    fn for_each_set(self, limit: usize, mut f: impl FnMut(usize)) {
        let mut w = self & Self::prefix(limit);
        while w != 0 {
            let lane = w.trailing_zeros() as usize;
            f(lane);
            w &= w - 1;
        }
    }
}

/// A wide lane-carrier word of `N`×64 lanes: lane `L` lives in bit
/// `L % 64` of limb `L / 64`.
///
/// The limb count is a const generic so the 256- and 512-lane carriers
/// share one implementation; the fixed-trip-count loops compile to
/// straight-line vector code without intrinsics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wide<const N: usize>(pub [u64; N]);

/// A 256-lane wide word (4×`u64`). The batch engines select this carrier
/// for batches of 65–256 scenarios.
pub type W256 = Wide<4>;

/// A 512-lane wide word (8×`u64`). The batch engines select this carrier
/// for batches of 257–512 scenarios.
pub type W512 = Wide<8>;

impl<const N: usize> BitAnd for Wide<N> {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, o: Self) -> Self {
        let mut r = self.0;
        for (limb, &w) in r.iter_mut().zip(o.0.iter()) {
            *limb &= w;
        }
        Wide(r)
    }
}

impl<const N: usize> BitOr for Wide<N> {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, o: Self) -> Self {
        let mut r = self.0;
        for (limb, &w) in r.iter_mut().zip(o.0.iter()) {
            *limb |= w;
        }
        Wide(r)
    }
}

impl<const N: usize> BitXor for Wide<N> {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, o: Self) -> Self {
        let mut r = self.0;
        for (limb, &w) in r.iter_mut().zip(o.0.iter()) {
            *limb ^= w;
        }
        Wide(r)
    }
}

impl<const N: usize> Not for Wide<N> {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        let mut r = self.0;
        for limb in &mut r {
            *limb = !*limb;
        }
        Wide(r)
    }
}

impl<const N: usize> LaneWord for Wide<N> {
    const LANES: usize = N * 64;
    const ZERO: Self = Wide([0; N]);
    const ONES: Self = Wide([!0; N]);

    #[inline(always)]
    fn splat(bit: bool) -> Self {
        Wide([broadcast(bit); N])
    }

    #[inline(always)]
    fn lane_mask(lane: usize) -> Self {
        debug_assert!(lane < Self::LANES);
        let mut limbs = [0u64; N];
        limbs[lane / 64] = 1u64 << (lane % 64);
        Wide(limbs)
    }

    #[inline(always)]
    fn prefix(n: usize) -> Self {
        let mut limbs = [0u64; N];
        for (limb, slot) in limbs.iter_mut().enumerate() {
            let base = limb * 64;
            if n > base {
                *slot = u64::prefix(n - base);
            }
        }
        Wide(limbs)
    }

    #[inline(always)]
    fn get(self, lane: usize) -> bool {
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    #[inline(always)]
    fn any(self) -> bool {
        let mut acc = 0u64;
        for limb in self.0 {
            acc |= limb;
        }
        acc != 0
    }

    #[inline(always)]
    fn count_ones(self) -> u32 {
        let mut n = 0u32;
        for limb in self.0 {
            n += limb.count_ones();
        }
        n
    }

    #[inline(always)]
    fn for_each_set(self, limit: usize, mut f: impl FnMut(usize)) {
        for (limb, &bits) in self.0.iter().enumerate() {
            let base = limb * 64;
            if base >= limit {
                break;
            }
            bits.for_each_set(limit - base, |lane| f(base + lane));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laneword<W: LaneWord>() {
        assert!(!W::ZERO.any());
        assert!(W::ONES.any());
        assert_eq!(W::splat(false), W::ZERO);
        assert_eq!(W::splat(true), W::ONES);
        assert_eq!(W::ZERO.count_ones(), 0);
        assert_eq!(W::ONES.count_ones() as usize, W::LANES);
        for lane in [0, 1, W::LANES / 2, W::LANES - 1] {
            let m = W::lane_mask(lane);
            assert!(m.any());
            assert!(m.get(lane));
            assert_eq!(m.count_ones(), 1);
            assert!(!(m ^ std::hint::black_box(m)).any());
            assert!((!m).get((lane + 1) % W::LANES));
            for other in [0, W::LANES - 1] {
                if other != lane {
                    assert!(!m.get(other), "lane {lane} mask leaks into {other}");
                }
            }
        }
        for n in [0, 1, 63, 64, 65, W::LANES / 2, W::LANES - 1, W::LANES] {
            let p = W::prefix(n);
            assert_eq!(p.count_ones() as usize, n.min(W::LANES), "prefix({n})");
            if n > 0 && n <= W::LANES {
                assert!(p.get(n - 1));
            }
            if n < W::LANES {
                assert!(!p.get(n), "prefix({n}) leaks past its length");
            }
        }
        assert_eq!(W::prefix(W::LANES + 7), W::ONES, "prefix clamps");
    }

    #[test]
    fn lane_words_are_lane_independent_masks() {
        check_laneword::<u64>();
        check_laneword::<W256>();
        check_laneword::<W512>();
    }

    fn check_for_each_set<W: LaneWord>() {
        let lanes = [0, 1, W::LANES / 2, W::LANES - 1];
        let mut w = W::ZERO;
        for &l in &lanes {
            w = w | W::lane_mask(l);
        }
        let mut seen = Vec::new();
        w.for_each_set(W::LANES, |l| seen.push(l));
        assert_eq!(seen, lanes, "ascending order, every set lane");
        // The limit truncates without shifting lane numbering.
        let mut seen = Vec::new();
        w.for_each_set(W::LANES / 2, |l| seen.push(l));
        assert_eq!(seen, [0, 1], "lanes at or past the limit are skipped");
        let mut count = 0;
        W::ONES.for_each_set(7, |_| count += 1);
        assert_eq!(count, 7);
        W::ZERO.for_each_set(W::LANES, |_| panic!("no set lanes"));
    }

    #[test]
    fn set_lane_iteration_is_ordered_and_bounded() {
        check_for_each_set::<u64>();
        check_for_each_set::<W256>();
        check_for_each_set::<W512>();
    }

    #[test]
    fn wide_eval_matches_scalar_eval_per_lane() {
        use delayavf_netlist::GateKind::*;
        for kind in [Buf, Not, And2, Or2, Nand2, Nor2, Xor2, Xnor2, Mux2] {
            for bits in 0u32..8 {
                let (a, b, c) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
                let want = kind.eval(&[a, b, c][..kind.arity()]);
                let lane = 137; // an arbitrary lane in limb 2
                let w = eval_lanes::<W256>(kind, W256::splat(a), W256::splat(b), W256::splat(c));
                assert_eq!(w.get(lane), want, "{kind:?} on {bits:03b}");
                let wide = 431; // an arbitrary lane in limb 6
                let v = eval_lanes::<W512>(kind, W512::splat(a), W512::splat(b), W512::splat(c));
                assert_eq!(v.get(wide), want, "{kind:?} 512-wide on {bits:03b}");
                let n = eval_word(kind, broadcast(a), broadcast(b), broadcast(c));
                assert_eq!(n & 1 == 1, want, "{kind:?} narrow on {bits:03b}");
            }
        }
    }
}
