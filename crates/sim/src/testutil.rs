//! Shared generators for the property/fuzz suites: seeded random netlists
//! (with constant nets and forced fan-out reconvergence), random input
//! traces, and flip-set selection. Used by the `prop_*` integration tests;
//! not part of the simulator API proper.
//!
//! Everything here is a *pure function of its arguments* — the proptest
//! harness owns the randomness, so a failing case is reproducible from its
//! printed inputs alone.

use delayavf_netlist::{Circuit, CircuitBuilder, DffId, GateKind, NetId, Word};

use crate::Environment;

/// Specification of one random gate: kind/shape selector plus three input
/// selectors (reduced modulo the current net pool).
///
/// The high bit of the kind selector forces a *reconvergent* gate — both
/// primary inputs read the same net — so every generated circuit family
/// exercises fan-out reconvergence, the classic trap for incremental and
/// event-driven engines (a glitch that cancels where the paths re-join).
pub type GateSpec = (u8, u16, u16, u16);

/// Builds a random acyclic circuit from a gate list.
///
/// The net pool seeds with the primary-input bits, the register outputs and
/// both **constant nets** (`const0`/`const1`), so random gates freely mix
/// toggling and constant cones; each gate's output joins the pool. The
/// registers latch the most recently created nets (falling back to pool
/// seeds for very short gate lists, which yields constant-driven state
/// bits), and the register outputs are the primary outputs.
pub fn random_circuit(n_inputs: usize, n_regs: usize, gates: &[GateSpec]) -> Circuit {
    let mut b = CircuitBuilder::new();
    let inputs = b.input_word("in", n_inputs);
    let regs = b.reg_word("r", n_regs, 0);
    let mut nets: Vec<NetId> = inputs.bits().to_vec();
    nets.extend_from_slice(regs.q().bits());
    nets.push(b.const0());
    nets.push(b.const1());
    for &(kind, i0, i1, i2) in gates {
        let kinds = [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::Xor2,
            GateKind::Xnor2,
            GateKind::Mux2,
        ];
        let k = kinds[usize::from(kind) % kinds.len()];
        let pick = |sel: u16| nets[usize::from(sel) % nets.len()];
        let reconverge = kind >= 0x80 && k.arity() >= 2;
        let sels = if reconverge {
            [i0, i0, i1]
        } else {
            [i0, i1, i2]
        };
        let ins: Vec<NetId> = sels[..k.arity()].iter().map(|&s| pick(s)).collect();
        nets.push(b.gate(k, &ins));
    }
    // Feed registers from the most recently created nets.
    let d: Word = (0..n_regs).map(|i| nets[nets.len() - 1 - i]).collect();
    b.drive_word(&regs, &d);
    b.output_word("o", &regs.q());
    b.finish().expect("acyclic by construction")
}

/// Flips selected by a mask bit per register; `mask == 0` yields the empty
/// set (a scenario that rides along on the golden trajectory).
pub fn pick_flips(c: &Circuit, mask: u8) -> Vec<DffId> {
    c.dffs()
        .enumerate()
        .filter(|(i, _)| (mask >> (i % 8)) & 1 == 1)
        .map(|(_, (id, _))| id)
        .collect()
}

/// Like [`pick_flips`], but a zero mask is promoted to one flip, for
/// properties that need a non-empty divergence seed.
pub fn pick_flips_nonempty(c: &Circuit, mask: u8) -> Vec<DffId> {
    pick_flips(c, if mask == 0 { 1 } else { mask })
}

/// A random-trace environment: plays a fixed list of per-cycle input rows
/// cyclically, one `u64` per input port. The inputs depend only on the
/// cycle number (never on outputs), so recorded traces satisfy the closed
/// environment the batch replay engine assumes, while still toggling the
/// input cone every cycle — unlike [`crate::ConstEnvironment`].
#[derive(Clone, Debug, Default)]
pub struct SeqEnvironment {
    rows: Vec<Vec<u64>>,
}

impl SeqEnvironment {
    /// An environment cycling through `rows` (each row: one value per input
    /// port; missing trailing ports read zero). An empty `rows` drives all
    /// ports to zero forever.
    pub fn new(rows: Vec<Vec<u64>>) -> Self {
        SeqEnvironment { rows }
    }
}

impl Environment for SeqEnvironment {
    fn step(&mut self, cycle: u64, _prev_outputs: &[u64], inputs: &mut [u64]) {
        if self.rows.is_empty() {
            return;
        }
        let row = &self.rows[cycle as usize % self.rows.len()];
        for (slot, &v) in inputs.iter_mut().zip(row) {
            *slot = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CycleSim, GoldenTrace};
    use delayavf_netlist::Topology;

    #[test]
    fn random_circuits_include_constants_and_simulate() {
        let gates: Vec<GateSpec> = (0..20u16)
            .map(|i| (i as u8 * 13, i, i + 7, i + 3))
            .collect();
        let c = random_circuit(4, 4, &gates);
        assert_eq!(c.num_dffs(), 4);
        let topo = Topology::new(&c);
        let mut env = SeqEnvironment::new(vec![vec![0b1010], vec![0b0101]]);
        let (trace, _) = GoldenTrace::record(&c, &topo, &mut env, 6, &[]);
        assert_eq!(trace.num_cycles(), 6);
        let mut sim = CycleSim::new(&c, &topo);
        sim.restore(
            1,
            &trace.state_bits_at(1, c.num_dffs()),
            trace.outputs_at(0),
        );
        sim.step(&mut SeqEnvironment::new(vec![vec![0b1010], vec![0b0101]]));
        assert_eq!(sim.cycle(), 2);
    }

    #[test]
    fn reconvergent_specs_duplicate_an_input() {
        // kind 0x82 % 9 == And2 family with the reconvergence bit set; the
        // gate must still build and the circuit stay acyclic.
        let c = random_circuit(2, 2, &[(0x82, 0, 1, 2), (0x88, 3, 0, 1)]);
        assert!(c.num_gates() >= 2);
    }

    #[test]
    fn seq_environment_cycles_and_pads() {
        let mut env = SeqEnvironment::new(vec![vec![7], vec![9]]);
        let mut inputs = vec![0u64; 2];
        env.step(0, &[], &mut inputs);
        assert_eq!(inputs, vec![7, 0]);
        env.step(3, &[], &mut inputs);
        assert_eq!(inputs, vec![9, 0]);
        SeqEnvironment::new(Vec::new()).step(0, &[], &mut inputs);
        assert_eq!(inputs, vec![9, 0], "empty rows leave inputs untouched");
    }

    #[test]
    fn flip_pickers_respect_masks() {
        let c = random_circuit(2, 8, &[(0, 0, 0, 0)]);
        assert!(pick_flips(&c, 0).is_empty());
        assert_eq!(pick_flips(&c, 0b101).len(), 2);
        assert_eq!(pick_flips_nonempty(&c, 0).len(), 1);
    }
}
