//! Lane-packed incremental timing-aware simulation: the batched counterpart
//! of [`DeltaEventSim`](crate::DeltaEventSim).
//!
//! A delay-sweep campaign injects hundreds of `(edge, extra)` scenarios at
//! the *same* trace cycle, and every one of them is a delta against the
//! same cached golden waveform. The scalar
//! [`DeltaEventSim`](crate::DeltaEventSim) walks each scenario's fault cone
//! separately, re-reading the same golden transition streams once per
//! scenario. [`BatchDeltaSim`] walks the **union** cone once: per-net
//! transition lists carry lane-packed words — `(time, word)` with one bit
//! per scenario — so a gate inside the cones of thirty scenarios is
//! evaluated once per merged time-step instead of thirty times.
//!
//! Mechanics, mirroring the scalar engine step for step:
//!
//! * the golden waveform is built by exactly the shared
//!   [`GoldenWave`](crate::delta) event loop and cached per trace cycle;
//! * each lane's fault seeds at its struck edge's sink. A struck gate pin
//!   reads **two** streams: the common stream (the source's packed faulty
//!   waveform, or golden when the source never diverged) masked to the
//!   non-striking lanes, and a special stream — the *golden* source
//!   waveform shifted by `delay + extra` — masked to the striking lanes
//!   (a lane's own fault edge source is upstream of its cone, hence golden
//!   for that lane by construction);
//! * gates are evaluated frontier-levelized; the packed output waveform is
//!   compared per lane against the cached golden waveform, giving a
//!   per-lane divergence mask. Lanes whose projection reconverges simply
//!   drop out of the mask (the independent per-lane early-exit); a gate
//!   whose mask is empty is pruned exactly like the scalar engine;
//! * flip-flops outside every lane's cone latch broadcast golden values
//!   for free, and diverged nets patch them with masked word updates.
//!
//! Because every packed operation is lane-independent, lane `L`'s
//! projection of the batch is *defined* to be the scalar delta simulation
//! of lane `L`'s fault — the latched words are bit-identical to
//! [`DeltaEventSim::latch_cycle`](crate::DeltaEventSim::latch_cycle) per
//! lane (pinned by `crates/sim/tests/prop_cross_engine.rs`).
//!
//! **Lane retirement.** The one shape the packed representation cannot
//! carry is two lanes striking the *same gate pin* with *different* extra
//! delays (it would need a second special stream per pin). When a batch
//! contains such scenarios, the first extra keeps its lanes and later
//! conflicting lanes are *retired*: reported in
//! [`BatchDeltaOutcome::retired`] for the caller to replay on the scalar
//! engine. Production sweeps batch distinct edges at one fraction, so
//! retirement never triggers there; it is exercised by the cross-engine
//! fuzz suite.
//!
//! Batches of at most 64 lanes ride plain `u64` words; wider batches step
//! up to a 4×`u64` ([`W256`]) or 8×`u64` ([`W512`]) carrier (up to
//! [`MAX_TIMING_LANES`]) selected per batch from the campaign-level
//! `timing_lanes` knob. Gate evaluation walks the netlist's levelized
//! struct-of-arrays [`EvalPlan`](delayavf_netlist::EvalPlan) so the hot
//! loop reads packed opcode/operand tables instead of per-gate structs.

use delayavf_netlist::{Circuit, Consumer, DffId, GateId, NetId, Topology};
use delayavf_timing::{Picos, TimingModel};

use crate::delta::{value_at, GoldenWave};
use crate::event::FaultSpec;
use crate::pack::{eval_lanes, LaneWord, W256, W512};

/// The widest timing batch: 512 scenarios on the 8×`u64` wide-word path.
pub const MAX_TIMING_LANES: usize = 512;

/// Work, cache and retirement accounting for one
/// [`BatchDeltaSim::latch_batch`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchDeltaOutcome {
    /// True when this call built the golden waveform for its cycle (a cache
    /// miss: the previous call simulated a different trace cycle).
    pub built_golden: bool,
    /// Merged waveform time-steps processed while evaluating union-cone
    /// gates (each step evaluates every lane at once).
    pub delta_events: u64,
    /// Gates whose packed output waveform reconverged with the cached
    /// golden waveform on every lane and were pruned from the frontier.
    pub reconverged: u64,
    /// Lanes whose scenario could not be batched (a same-pin strike with a
    /// conflicting extra delay); their latched words are golden and the
    /// caller must replay them on the scalar engine.
    pub retired: Vec<usize>,
}

/// A lane-packed transition list: `(time, word)` with strictly increasing
/// times; consecutive words differ in at least one lane. Lane `L`'s
/// projection is a canonical scalar waveform.
type WWave<W> = Vec<(Picos, W)>;

/// Appends a packed transition, keeping the list canonical (the lane-packed
/// analogue of the scalar `push_tx`).
#[inline]
fn push_tx_w<W: LaneWord>(tx: &mut WWave<W>, base: W, t: Picos, v: W) {
    if let Some(&(lt, _)) = tx.last() {
        if lt == t {
            let prev = if tx.len() >= 2 {
                tx[tx.len() - 2].1
            } else {
                base
            };
            if prev == v {
                tx.pop();
            } else {
                tx.last_mut().expect("nonempty").1 = v;
            }
            return;
        }
    }
    let cur = tx.last().map_or(base, |&(_, v)| v);
    if cur != v {
        tx.push((t, v));
    }
}

/// The packed value of a lane-packed transition list at time `at` (`None` =
/// before the cycle starts, i.e. the base word).
#[inline]
fn value_at_w<W: LaneWord>(tx: &[(Picos, W)], base: W, at: Option<Picos>) -> W {
    let Some(at) = at else { return base };
    let idx = tx.partition_point(|&(t, _)| t <= at);
    if idx == 0 {
        base
    } else {
        tx[idx - 1].1
    }
}

/// One input-pin stream of a frontier gate: either a lane-packed faulty
/// waveform or a scalar golden waveform broadcast on application, applied
/// under a lane mask after a pure time shift.
enum Tx<'w, W> {
    Packed(&'w [(Picos, W)]),
    Golden(&'w [(Picos, bool)]),
}

struct Stream<'w, W> {
    tx: Tx<'w, W>,
    mask: W,
    shift: Picos,
    cursor: usize,
    slot: usize,
}

impl<W: LaneWord> Stream<'_, W> {
    #[inline]
    fn peek_t(&self) -> Option<Picos> {
        match &self.tx {
            Tx::Packed(s) => s.get(self.cursor).map(|&(t, _)| t),
            Tx::Golden(s) => s.get(self.cursor).map(|&(t, _)| t),
        }
    }

    #[inline]
    fn word(&self) -> W {
        match &self.tx {
            Tx::Packed(s) => s[self.cursor].1,
            Tx::Golden(s) => W::splat(s[self.cursor].1),
        }
    }
}

/// The width-generic propagation core: all per-net scratch for one lane
/// width. [`BatchDeltaSim`] instantiates it at `u64` and (lazily, only when
/// a batch needs them) at [`W256`] and [`W512`].
#[derive(Clone, Debug)]
struct WaveCore<W: LaneWord> {
    /// Epoch-stamped packed faulty waveforms of diverged nets.
    fault_tx: Vec<WWave<W>>,
    fault_epoch: Vec<u64>,
    sched_epoch: Vec<u64>,
    /// Epoch-stamped per-edge strike bookkeeping: which lanes strike the
    /// edge and (for gate pins) the one batchable extra delay.
    strike_epoch: Vec<u64>,
    strike_mask: Vec<W>,
    strike_extra: Vec<Picos>,
    epoch: u64,
    /// Union-frontier worklist, bucketed by combinational level.
    buckets: Vec<Vec<GateId>>,
    max_sched_level: usize,
    /// Scratch for the packed gate output waveform under evaluation.
    wave: WWave<W>,
    /// Lane-packed latched value per flip-flop — valid only where
    /// `latch_epoch` matches the current epoch; every other flip-flop
    /// latches `latch_base` on all lanes. Lazily materializing the words
    /// keeps the per-batch latch cost proportional to the union cone's
    /// fed flip-flops, not to the whole state vector.
    latch_out: Vec<W>,
    latch_epoch: Vec<u64>,
    /// Golden latched value per flip-flop for the current batch.
    latch_base: Vec<bool>,
}

impl<W: LaneWord> WaveCore<W> {
    fn new(circuit: &Circuit, topo: &Topology) -> Self {
        WaveCore {
            fault_tx: vec![Vec::new(); circuit.num_nets()],
            fault_epoch: vec![0; circuit.num_nets()],
            sched_epoch: vec![0; circuit.num_gates()],
            strike_epoch: vec![0; topo.edges().len()],
            strike_mask: vec![W::ZERO; topo.edges().len()],
            strike_extra: vec![0; topo.edges().len()],
            epoch: 0,
            buckets: vec![Vec::new(); topo.num_levels()],
            max_sched_level: 0,
            wave: Vec::new(),
            latch_out: vec![W::ZERO; circuit.num_dffs()],
            latch_epoch: vec![0; circuit.num_dffs()],
            latch_base: vec![false; circuit.num_dffs()],
        }
    }

    /// Lane-packed latched word of flip-flop `fi`, materialized from the
    /// golden base on first touch in this batch.
    #[inline]
    fn latch_word(&mut self, fi: usize) -> &mut W {
        if self.latch_epoch[fi] != self.epoch {
            self.latch_epoch[fi] = self.epoch;
            self.latch_out[fi] = W::splat(self.latch_base[fi]);
        }
        &mut self.latch_out[fi]
    }

    #[inline]
    fn schedule(&mut self, topo: &Topology, gate: GateId) {
        if self.sched_epoch[gate.index()] != self.epoch {
            self.sched_epoch[gate.index()] = self.epoch;
            let level = topo.gate_level(gate) as usize;
            if self.max_sched_level == self.buckets.len() {
                self.max_sched_level = level;
            } else {
                self.max_sched_level = self.max_sched_level.max(level);
            }
            self.buckets[level].push(gate);
        }
    }

    fn latch_batch(
        &mut self,
        topo: &Topology,
        timing: &TimingModel,
        gold: &GoldenWave,
        faults: &[FaultSpec],
        outcome: &mut BatchDeltaOutcome,
    ) {
        debug_assert!(faults.len() <= W::LANES);
        self.epoch += 1;
        self.max_sched_level = self.buckets.len();
        let deadline = timing.clock_period().saturating_sub(timing.setup());
        self.latch_base.copy_from_slice(&gold.latch);

        // Seed every lane at its struck edge's sink (a lane's own fault
        // edge source is upstream of its cone, hence golden for that lane).
        for (lane, fault) in faults.iter().enumerate() {
            let lm = W::lane_mask(lane);
            let struck = topo.edge(fault.edge);
            let ei = fault.edge.index();
            match struck.consumer {
                // A delayed D pin samples the golden source waveform
                // `extra` later, for this lane only.
                Consumer::DffD(f) => {
                    let delay = timing.net_delay(struck.source).saturating_add(fault.extra);
                    let at = deadline.checked_sub(delay);
                    let src = struck.source.index();
                    let v = W::splat(value_at(&gold.tx[src], gold.base[src], at));
                    let fi = f.index();
                    let w = self.latch_word(fi);
                    *w = (*w & !lm) | (v & lm);
                    // Record the strike so a later divergence of the source
                    // net (for other lanes) never overwrites this lane's
                    // extra-shifted sample.
                    if self.strike_epoch[ei] == self.epoch {
                        self.strike_mask[ei] = self.strike_mask[ei] | lm;
                    } else {
                        self.strike_epoch[ei] = self.epoch;
                        self.strike_mask[ei] = lm;
                    }
                }
                // Primary outputs are not latched state; nothing diverges.
                Consumer::OutputBit { .. } => {}
                Consumer::GatePin { gate, .. } => {
                    if self.strike_epoch[ei] == self.epoch {
                        if self.strike_extra[ei] == fault.extra {
                            self.strike_mask[ei] = self.strike_mask[ei] | lm;
                        } else {
                            // A second distinct extra on the same pin would
                            // need a second special stream: retire the lane.
                            outcome.retired.push(lane);
                            continue;
                        }
                    } else {
                        self.strike_epoch[ei] = self.epoch;
                        self.strike_mask[ei] = lm;
                        self.strike_extra[ei] = fault.extra;
                    }
                    self.schedule(topo, gate);
                }
            }
        }

        // Levelized union-cone propagation, mirroring the scalar sweep.
        let plan = topo.plan();
        let mut level = 0;
        while level <= self.max_sched_level && level < self.buckets.len() {
            while let Some(g) = self.buckets[level].pop() {
                outcome.delta_events += self.eval_gate_wave(topo, timing, gold, g, deadline);
                let out = plan.op(plan.op_of_gate(g)).2 as usize;
                let div = self.wave_divergence(&gold.tx[out], gold.base[out]);
                if !div.any() {
                    outcome.reconverged += 1;
                    continue;
                }
                self.mark_diverged(topo, timing, gold, NetId::from_index(out), deadline);
            }
            level += 1;
        }
    }

    /// Computes the packed faulty output waveform of `g` into `self.wave`
    /// by sweeping the merged input streams in time order, evaluating every
    /// lane at each step. Returns the number of time-steps processed.
    fn eval_gate_wave(
        &mut self,
        topo: &Topology,
        timing: &TimingModel,
        gold: &GoldenWave,
        g: GateId,
        deadline: Picos,
    ) -> u64 {
        let plan = topo.plan();
        let (kind, ins, out) = plan.op(plan.op_of_gate(g));
        let mut pins = [W::ZERO; 3];
        // Up to two streams per pin: the common stream plus (for struck
        // pins) the extra-shifted golden special stream.
        let mut streams: [Option<Stream<'_, W>>; 6] = [None, None, None, None, None, None];
        let mut n = 0;
        for (slot, (eid, &src)) in topo
            .gate_in_edges(g)
            .zip(ins.iter().take(kind.arity()))
            .enumerate()
        {
            let si = src as usize;
            pins[slot] = W::splat(gold.base[si]);
            let ei = eid.index();
            let smask = if self.strike_epoch[ei] == self.epoch {
                self.strike_mask[ei]
            } else {
                W::ZERO
            };
            let delay = timing.net_delay(NetId::from_index(si));
            let common_tx = if self.fault_epoch[si] == self.epoch {
                Tx::Packed(&self.fault_tx[si][..])
            } else {
                Tx::Golden(&gold.tx[si][..])
            };
            streams[n] = Some(Stream {
                tx: common_tx,
                mask: !smask,
                shift: delay,
                cursor: 0,
                slot,
            });
            n += 1;
            if smask.any() {
                streams[n] = Some(Stream {
                    tx: Tx::Golden(&gold.tx[si][..]),
                    mask: smask,
                    shift: delay.saturating_add(self.strike_extra[ei]),
                    cursor: 0,
                    slot,
                });
                n += 1;
            }
        }
        let base_out = W::splat(gold.base[out as usize]);
        let mut out_val = base_out;
        self.wave.clear();
        let mut steps = 0u64;
        loop {
            // Earliest pending stream event, deadline-capped.
            let mut t_min: Option<Picos> = None;
            for s in streams[..n].iter().flatten() {
                if let Some(t) = s.peek_t() {
                    let at = t.saturating_add(s.shift);
                    if at <= deadline && t_min.is_none_or(|m| at < m) {
                        t_min = Some(at);
                    }
                }
            }
            let Some(t) = t_min else { break };
            for s in streams[..n].iter_mut().flatten() {
                while let Some(st) = s.peek_t() {
                    if st.saturating_add(s.shift) > t {
                        break;
                    }
                    let w = s.word();
                    pins[s.slot] = (pins[s.slot] & !s.mask) | (w & s.mask);
                    s.cursor += 1;
                }
            }
            steps += 1;
            let v = eval_lanes(kind, pins[0], pins[1], pins[2]);
            if v != out_val {
                out_val = v;
                push_tx_w(&mut self.wave, base_out, t, v);
            }
        }
        steps
    }

    /// The mask of lanes whose projection of `self.wave` differs — as a
    /// value-over-time function — from the scalar golden waveform.
    fn wave_divergence(&self, gold_tx: &[(Picos, bool)], base: bool) -> W {
        let wave = &self.wave;
        let b = W::splat(base);
        let mut div = W::ZERO;
        let (mut cw, mut cg) = (b, b);
        let (mut i, mut j) = (0usize, 0usize);
        while i < wave.len() || j < gold_tx.len() {
            match (wave.get(i), gold_tx.get(j)) {
                (Some(&(tw, vw)), Some(&(tg, vg))) => {
                    if tw <= tg {
                        cw = vw;
                        i += 1;
                    }
                    if tg <= tw {
                        cg = W::splat(vg);
                        j += 1;
                    }
                }
                (Some(&(_, vw)), None) => {
                    cw = vw;
                    i += 1;
                }
                (None, Some(&(_, vg))) => {
                    cg = W::splat(vg);
                    j += 1;
                }
                (None, None) => break,
            }
            div = div | (cw ^ cg);
        }
        div
    }

    /// Records `self.wave` as the packed faulty waveform of `net`,
    /// schedules its consumer gates and patches latched words of directly
    /// fed flip-flops (masked so lanes striking the D edge itself keep
    /// their extra-shifted seed).
    fn mark_diverged(
        &mut self,
        topo: &Topology,
        timing: &TimingModel,
        gold: &GoldenWave,
        net: NetId,
        deadline: Picos,
    ) {
        let i = net.index();
        self.fault_epoch[i] = self.epoch;
        std::mem::swap(&mut self.fault_tx[i], &mut self.wave);
        let at = deadline.checked_sub(timing.net_delay(net));
        for eid in topo.fanout_ids(net) {
            match topo.edge(eid).consumer {
                Consumer::GatePin { gate, .. } => self.schedule(topo, gate),
                Consumer::DffD(f) => {
                    let mut mask = W::ONES;
                    if self.strike_epoch[eid.index()] == self.epoch {
                        mask = mask & !self.strike_mask[eid.index()];
                    }
                    let v = value_at_w(&self.fault_tx[i], W::splat(gold.base[i]), at);
                    let fi = f.index();
                    let w = self.latch_word(fi);
                    *w = (*w & !mask) | (v & mask);
                }
                Consumer::OutputBit { .. } => {}
            }
        }
    }
}

/// Which carrier width the most recent batch ran on (selects the
/// lane-accessor source).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TimingTier {
    /// `u64`: up to 64 lanes.
    Narrow,
    /// [`W256`]: 65..=256 lanes.
    Wide4,
    /// [`W512`]: 257..=[`MAX_TIMING_LANES`] lanes.
    Wide8,
}

/// Dispatches `$body` to the wave core selected by the current tier,
/// binding it mutably as `$core`.
macro_rules! with_wave {
    ($self:expr, $core:ident => $body:expr) => {
        match $self.tier {
            TimingTier::Narrow => {
                let $core = &mut $self.narrow;
                $body
            }
            TimingTier::Wide4 => {
                let $core = $self.wide4.as_mut().expect("wide4 core allocated").as_mut();
                $body
            }
            TimingTier::Wide8 => {
                let $core = $self.wide8.as_mut().expect("wide8 core allocated").as_mut();
                $body
            }
        }
    };
}

/// Shared-borrow counterpart of [`with_wave!`].
macro_rules! with_wave_ref {
    ($self:expr, $core:ident => $body:expr) => {
        match $self.tier {
            TimingTier::Narrow => {
                let $core = &$self.narrow;
                $body
            }
            TimingTier::Wide4 => {
                let $core = $self.wide4.as_ref().expect("wide4 core allocated").as_ref();
                $body
            }
            TimingTier::Wide8 => {
                let $core = $self.wide8.as_ref().expect("wide8 core allocated").as_ref();
                $body
            }
        }
    };
}

/// Lane-packed incremental timing-aware simulator: evaluates up to
/// [`MAX_TIMING_LANES`] `(edge, extra)` delay-fault scenarios at one trace
/// cycle simultaneously, as deltas against the shared cached golden
/// waveform (see the module docs). One instance per worker thread, like
/// [`DeltaEventSim`](crate::DeltaEventSim).
#[derive(Clone, Debug)]
pub struct BatchDeltaSim<'a> {
    circuit: &'a Circuit,
    topo: &'a Topology,
    timing: &'a TimingModel,
    gold: GoldenWave,
    narrow: WaveCore<u64>,
    /// The 256-lane wide-word core, allocated on the first batch wider
    /// than 64 lanes.
    wide4: Option<Box<WaveCore<W256>>>,
    /// The 512-lane wide-word core, allocated on the first batch wider
    /// than 256 lanes.
    wide8: Option<Box<WaveCore<W512>>>,
    /// The carrier width the most recent batch ran on.
    tier: TimingTier,
}

impl<'a> BatchDeltaSim<'a> {
    /// Creates a simulator bound to one circuit and timing model.
    pub fn new(circuit: &'a Circuit, topo: &'a Topology, timing: &'a TimingModel) -> Self {
        BatchDeltaSim {
            circuit,
            topo,
            timing,
            gold: GoldenWave::new(circuit, topo),
            narrow: WaveCore::new(circuit, topo),
            wide4: None,
            wide8: None,
            tier: TimingTier::Narrow,
        }
    }

    /// Simulates one faulty cycle for every scenario in `faults`
    /// simultaneously; lane `L`'s latched values are bit-identical to
    /// [`DeltaEventSim::latch_cycle`](crate::DeltaEventSim::latch_cycle)
    /// with `faults[L]` — except for lanes listed in
    /// [`BatchDeltaOutcome::retired`], which carry golden values and must
    /// be replayed on the scalar engine by the caller.
    ///
    /// `cycle` keys the golden-waveform cache exactly as in the scalar
    /// engine: consecutive calls with the same cycle number reuse the
    /// cached waveform and must pass the same `prev_values` / `new_state` /
    /// `new_inputs`. Batches of at most 64 lanes run on `u64` words; wider
    /// batches switch to the 4×`u64` ([`W256`]) or 8×`u64` ([`W512`])
    /// wide-word path, whichever is the narrowest fit.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_TIMING_LANES`] faults are given or slice
    /// lengths do not match the circuit.
    pub fn latch_batch(
        &mut self,
        cycle: u64,
        prev_values: &[bool],
        new_state: &[bool],
        new_inputs: &[u64],
        faults: &[FaultSpec],
    ) -> BatchDeltaOutcome {
        assert!(
            faults.len() <= MAX_TIMING_LANES,
            "too many lanes in a timing batch"
        );
        assert_eq!(prev_values.len(), self.circuit.num_nets());
        assert_eq!(new_state.len(), self.circuit.num_dffs());
        let mut outcome = BatchDeltaOutcome {
            built_golden: self.gold.ensure(
                self.circuit,
                self.topo,
                self.timing,
                cycle,
                prev_values,
                new_state,
                new_inputs,
            ),
            ..BatchDeltaOutcome::default()
        };
        self.tier = if faults.len() <= <u64 as LaneWord>::LANES {
            TimingTier::Narrow
        } else if faults.len() <= W256::LANES {
            if self.wide4.is_none() {
                self.wide4 = Some(Box::new(WaveCore::new(self.circuit, self.topo)));
            }
            TimingTier::Wide4
        } else {
            if self.wide8.is_none() {
                self.wide8 = Some(Box::new(WaveCore::new(self.circuit, self.topo)));
            }
            TimingTier::Wide8
        };
        with_wave!(self, core => core.latch_batch(
            self.topo,
            self.timing,
            &self.gold,
            faults,
            &mut outcome,
        ));
        outcome
    }

    /// The latched value of flip-flop `dff` on `lane` after the most recent
    /// batch.
    #[inline]
    fn latched_bit(&self, dff: usize, lane: usize) -> bool {
        with_wave_ref!(self, core => if core.latch_epoch[dff] == core.epoch {
            core.latch_out[dff].get(lane)
        } else {
            core.latch_base[dff]
        })
    }

    /// The flip-flops whose latched value on `lane` differs from `expect`
    /// (for the injector: `expect` = the fault-free next state, making this
    /// the lane's dynamically reachable set), sorted by id.
    pub fn lane_mismatches(&self, lane: usize, expect: &[bool]) -> Vec<DffId> {
        assert_eq!(expect.len(), self.circuit.num_dffs());
        (0..expect.len())
            .filter(|&i| self.latched_bit(i, lane) != expect[i])
            .map(DffId::from_index)
            .collect()
    }

    /// Every lane's mismatch set against `expect` in one pass over the
    /// flip-flops: entry `L` equals
    /// [`lane_mismatches`](BatchDeltaSim::lane_mismatches)`(L, expect)` for
    /// `L < lanes`. One word-wide XOR per flip-flop replaces a per-lane
    /// scan, so the cost is O(num_dffs + total mismatches) instead of
    /// O(lanes × num_dffs) — the difference dominates exactly when faults
    /// are mostly masked and mismatch sets are small.
    pub fn mismatch_sets(&self, lanes: usize, expect: &[bool]) -> Vec<Vec<DffId>> {
        assert_eq!(expect.len(), self.circuit.num_dffs());
        fn extract<W: LaneWord>(
            core: &WaveCore<W>,
            lanes: usize,
            expect: &[bool],
        ) -> Vec<Vec<DffId>> {
            let mut out = vec![Vec::new(); lanes];
            for (i, &e) in expect.iter().enumerate() {
                if core.latch_epoch[i] == core.epoch {
                    let diff = core.latch_out[i] ^ W::splat(e);
                    if diff.any() {
                        diff.for_each_set(lanes, |lane| out[lane].push(DffId::from_index(i)));
                    }
                } else if core.latch_base[i] != e {
                    // Untouched by the union cone: every lane latched the
                    // golden base, so either no lane mismatches or all do.
                    for set in &mut out {
                        set.push(DffId::from_index(i));
                    }
                }
            }
            out
        }
        with_wave_ref!(self, core => extract(core, lanes, expect))
    }

    /// The full latched flip-flop vector of `lane` after the most recent
    /// batch.
    pub fn lane_latched(&self, lane: usize) -> Vec<bool> {
        (0..self.circuit.num_dffs())
            .map(|i| self.latched_bit(i, lane))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::settle;
    use crate::delta::DeltaEventSim;
    use crate::event::EventSim;
    use delayavf_netlist::{CircuitBuilder, EdgeId};
    use delayavf_timing::TechLibrary;

    /// Figure-2-style circuit (same as the `DeltaEventSim` tests).
    fn figure2() -> (Circuit, Topology, TimingModel) {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and(x, y);
        let ra = b.reg("A", false);
        b.drive(ra, z);
        let rb = b.reg("B", false);
        b.drive(rb, x);
        b.output("a", ra.q());
        b.output("b", rb.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        (c, topo, timing)
    }

    #[test]
    fn every_lane_matches_the_full_event_sim() {
        let (c, topo, timing) = figure2();
        let state = c.initial_state();
        let prev_values = settle(&c, &topo, &state, &[0, 1]);
        let inputs = [1u64, 1];
        let mut full = EventSim::new(&c, &topo, &timing);
        let mut batch = BatchDeltaSim::new(&c, &topo, &timing);
        let clock = timing.clock_period();
        // One batch per extra: distinct edges batch without retirement.
        for extra in [0, 1, clock / 2, clock, 2 * clock] {
            let faults: Vec<FaultSpec> = (0..topo.edges().len())
                .map(|i| FaultSpec {
                    edge: EdgeId::from_index(i),
                    extra,
                })
                .collect();
            let outcome = batch.latch_batch(3, &prev_values, &state, &inputs, &faults);
            assert!(outcome.retired.is_empty(), "distinct edges never retire");
            for (lane, &fault) in faults.iter().enumerate() {
                let want = full.latch_cycle(&prev_values, &state, &inputs, Some(fault));
                assert_eq!(batch.lane_latched(lane), want, "lane {lane} extra {extra}");
            }
        }
    }

    #[test]
    fn conflicting_extras_on_one_pin_retire_the_later_lane() {
        let (c, topo, timing) = figure2();
        let state = c.initial_state();
        let prev_values = settle(&c, &topo, &state, &[0, 1]);
        let inputs = [1u64, 1];
        let clock = timing.clock_period();
        // A gate-pin edge: x into the AND.
        let e = (0..topo.edges().len())
            .map(EdgeId::from_index)
            .find(|&e| matches!(topo.edge(e).consumer, Consumer::GatePin { .. }))
            .unwrap();
        let faults = [
            FaultSpec {
                edge: e,
                extra: clock,
            },
            FaultSpec {
                edge: e,
                extra: clock / 2,
            },
            FaultSpec {
                edge: e,
                extra: clock,
            },
        ];
        let mut batch = BatchDeltaSim::new(&c, &topo, &timing);
        let outcome = batch.latch_batch(0, &prev_values, &state, &inputs, &faults);
        assert_eq!(outcome.retired, vec![1], "the conflicting extra retires");
        let mut delta = DeltaEventSim::new(&c, &topo, &timing);
        for lane in [0usize, 2] {
            let (want, _) = delta.latch_cycle(0, &prev_values, &state, &inputs, faults[lane]);
            assert_eq!(batch.lane_latched(lane), want, "surviving lane {lane}");
        }
    }

    #[test]
    fn wide_batches_run_the_256_lane_path() {
        let (c, topo, timing) = figure2();
        let state = c.initial_state();
        let prev_values = settle(&c, &topo, &state, &[0, 1]);
        let inputs = [1u64, 1];
        let clock = timing.clock_period();
        let n_edges = topo.edges().len();
        // > 64 lanes by cycling the edge set at one extra (same-extra
        // repeats share the special stream, no retirement).
        let faults: Vec<FaultSpec> = (0..100)
            .map(|i| FaultSpec {
                edge: EdgeId::from_index(i % n_edges),
                extra: clock,
            })
            .collect();
        let mut batch = BatchDeltaSim::new(&c, &topo, &timing);
        let outcome = batch.latch_batch(5, &prev_values, &state, &inputs, &faults);
        assert!(outcome.retired.is_empty());
        assert_eq!(
            batch.tier,
            TimingTier::Wide4,
            "a 100-lane batch takes the 256-lane path"
        );
        let mut full = EventSim::new(&c, &topo, &timing);
        for (lane, &fault) in faults.iter().enumerate() {
            let want = full.latch_cycle(&prev_values, &state, &inputs, Some(fault));
            assert_eq!(batch.lane_latched(lane), want, "wide lane {lane}");
        }
    }

    #[test]
    fn widest_batches_run_the_512_lane_path() {
        let (c, topo, timing) = figure2();
        let state = c.initial_state();
        let prev_values = settle(&c, &topo, &state, &[0, 1]);
        let inputs = [1u64, 1];
        let clock = timing.clock_period();
        let n_edges = topo.edges().len();
        let faults: Vec<FaultSpec> = (0..300)
            .map(|i| FaultSpec {
                edge: EdgeId::from_index(i % n_edges),
                extra: clock,
            })
            .collect();
        let mut batch = BatchDeltaSim::new(&c, &topo, &timing);
        let outcome = batch.latch_batch(5, &prev_values, &state, &inputs, &faults);
        assert!(outcome.retired.is_empty());
        assert_eq!(
            batch.tier,
            TimingTier::Wide8,
            "a 300-lane batch takes the 512-lane path"
        );
        assert!(batch.wide4.is_none(), "the 256-lane core stays unallocated");
        let mut full = EventSim::new(&c, &topo, &timing);
        for (lane, &fault) in faults.iter().enumerate() {
            let want = full.latch_cycle(&prev_values, &state, &inputs, Some(fault));
            assert_eq!(batch.lane_latched(lane), want, "widest lane {lane}");
        }
    }

    #[test]
    fn golden_cache_is_shared_across_batches_at_one_cycle() {
        let (c, topo, timing) = figure2();
        let state = c.initial_state();
        let prev_values = settle(&c, &topo, &state, &[0, 1]);
        let inputs = [1u64, 1];
        let faults = [FaultSpec {
            edge: EdgeId::from_index(0),
            extra: timing.clock_period(),
        }];
        let mut batch = BatchDeltaSim::new(&c, &topo, &timing);
        let first = batch.latch_batch(7, &prev_values, &state, &inputs, &faults);
        assert!(first.built_golden, "first batch at a cycle builds");
        let second = batch.latch_batch(7, &prev_values, &state, &inputs, &faults);
        assert!(!second.built_golden, "same cycle reuses the cache");
        let third = batch.latch_batch(8, &prev_values, &state, &inputs, &faults);
        assert!(third.built_golden, "a new cycle rebuilds");
    }
}
