//! Simulators for [`delayavf_netlist`] circuits.
//!
//! Two complementary engines implement the paper's two-step methodology
//! (§V-B):
//!
//! * [`CycleSim`] — a **timing-agnostic**, cycle-accurate simulator
//!   (the role Verilator plays in the paper's artifact). It settles the
//!   combinational logic once per cycle in topological order, supports
//!   state-element error injection at cycle boundaries, per-cycle state
//!   hashing for early convergence detection, and checkpoint/restore.
//!   This engine determines whether a set of state-element errors is
//!   *GroupACE* and also serves as the particle-strike (sAVF) injection
//!   engine.
//! * [`EventSim`] — a **timing-aware**, event-driven simulator for a single
//!   clock cycle with per-edge transport delays from a
//!   [`delayavf_timing::TimingModel`]. A small delay fault is injected as an
//!   extra delay on one fanout edge; the values latched at the clock edge
//!   (honoring setup time) determine the *dynamically reachable set*.
//! * [`DiffSim`] — an **incremental** variant of the timing-agnostic replay
//!   (concurrent fault simulation): it tracks only the divergence from a
//!   recorded [`GoldenTrace`] and re-evaluates just the dirty fan-out cone
//!   each cycle, which is what makes large GroupACE campaigns affordable.
//! * [`BatchSim`] — a **bit-parallel** replay engine (parallel-pattern
//!   single-fault propagation): up to [`MAX_LANES`] independent fault
//!   scenarios packed into the bit lanes of `u64` net words, replayed
//!   simultaneously against the shared golden trace with straight-line
//!   bitwise gate evaluation. Lanes whose outputs diverge from the recorded
//!   words retire to a scalar engine; the rest ride along for nearly free.
//! * [`DeltaEventSim`] — an **incremental** variant of the timing-aware
//!   engine: each trace cycle's fault-free timed waveform is simulated once
//!   and cached as per-net transition lists, and every faulty injection at
//!   that cycle is evaluated as a delta seeded at the struck edge's sink,
//!   propagating only where the faulty waveform diverges from golden and
//!   pruning gates whose output waveform reconverges.
//! * [`BatchDeltaSim`] — the **lane-packed** timing-aware engine: up to
//!   [`MAX_TIMING_LANES`] `(edge, extra)` scenarios at one trace cycle are
//!   propagated together over packed word transition lists against the same
//!   cached golden waveform, with a per-lane divergence frontier,
//!   independent lane early-exit, and retirement of unbatchable lanes to
//!   the scalar engine.
//!
//! Circuits interact with the outside world through an [`Environment`]
//! (memories, MMIO consoles, ...). The environment exchanges whole port
//! words with the simulator once per cycle; within a cycle the circuit is
//! closed, which is what makes the paper's decomposition exact for cores
//! whose outputs are registered.
//!
//! [`GoldenTrace`] records a fault-free reference execution: per-cycle
//! packed architectural state, port activity, and environment fingerprints.
//! Fault campaigns replay from [`Checkpoint`]s against this trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod batch_delta;
mod cycle;
mod delta;
mod diff;
mod env;
mod event;
mod pack;
pub mod testutil;
mod trace;
mod vcd;

pub use batch::{BatchSim, LaneMask, MAX_LANES};
pub use batch_delta::{BatchDeltaOutcome, BatchDeltaSim, MAX_TIMING_LANES};
pub use cycle::{settle, CycleSim, RunSummary, StopReason};
pub use delta::{DeltaEventSim, DeltaOutcome};
pub use diff::DiffSim;
pub use env::{ConstEnvironment, Environment};
pub use event::{EventSim, FaultSpec};
pub use pack::{eval_lanes, LaneWord, Wide, W256, W512};
pub use trace::{pack_bits, Checkpoint, GoldenTrace};
pub use vcd::VcdWriter;
