//! The environment abstraction: everything outside the netlist.
//!
//! Memories, MMIO devices and testbench stimulus live behind the
//! [`Environment`] trait. The simulator hands the environment the sampled
//! primary-output port values of the previous cycle and receives this
//! cycle's primary-input port values — a registered, one-cycle-latency
//! interface that matches how the studied cores talk to their memories.

/// A cycle-level environment for a circuit.
///
/// Port values are exchanged as one `u64` per port, in the circuit's port
/// declaration order, least-significant bit first (ports wider than 64 bits
/// are not supported by the simulators in this crate).
///
/// Implementations must be deterministic: the input sequence may only depend
/// on the environment's own state and the output values it has observed.
/// This is what makes checkpoint/replay-based fault injection exact.
///
/// `Send + Sync` is a supertrait so the sharded campaign engine can share a
/// golden run (which stores environment checkpoints) across worker threads;
/// each worker clones the checkpointed environment it replays from.
pub trait Environment: Send + Sync {
    /// Produces the primary-input values for `cycle`.
    ///
    /// `prev_outputs` holds the settled primary-output port values sampled
    /// at the end of cycle `cycle - 1` (all zeros for cycle 0). `inputs`
    /// has one slot per input port and is pre-zeroed.
    ///
    /// Side effects belong here too: an environment typically decodes a
    /// memory command issued by the core in the previous cycle, performs the
    /// write or read, and presents read data in `inputs`.
    fn step(&mut self, cycle: u64, prev_outputs: &[u64], inputs: &mut [u64]);

    /// Whether the program running on the circuit has signaled completion
    /// (e.g. through an exit MMIO write observed in `step`).
    fn halted(&self) -> bool {
        false
    }

    /// True when the program stopped *abnormally* (trap, breakpoint, crash)
    /// rather than completing with a normal exit. Fault campaigns use this
    /// to classify program-visible failures as detected unrecoverable
    /// errors (DUE) instead of silent data corruptions (SDC).
    fn failed_abnormally(&self) -> bool {
        false
    }

    /// A cheap order-sensitive digest of all externally visible side effects
    /// so far (e.g. memory/MMIO write history).
    ///
    /// Fault campaigns compare fingerprints against the golden trace to
    /// detect that a faulty run has re-converged; two runs with identical
    /// state *and* fingerprint at the same cycle will behave identically
    /// from then on. The default (constant 0) is only appropriate for
    /// environments without state that outlives a cycle.
    fn fingerprint(&self) -> u64 {
        0
    }

    /// The program-visible output produced so far (console bytes, exit
    /// status, result buffers — serialized in any stable form).
    ///
    /// Two executions differ in a program-visible way exactly when their
    /// final `program_output` differs or when one fails to halt.
    fn program_output(&self) -> Vec<u8> {
        Vec::new()
    }

    /// True when the environment's externally visible behavior is an
    /// open-loop schedule plus a faithful record of what it observed:
    /// [`Environment::halted`] and [`Environment::failed_abnormally`] depend
    /// only on the cycle count (never on observed values), and
    /// [`Environment::program_output`] is an exact, *injective* record of
    /// the sequence of observed output-port words. Only under this contract
    /// may an analysis classify a faulty run without replaying the
    /// environment — identical observed words imply an identical transcript
    /// (masked), while any deviating observed word implies a deviating
    /// transcript in a normally-halting run (SDC) — so semi-formal ACE
    /// discharge is gated on it. The conservative default is `false`.
    fn deterministic_transcript(&self) -> bool {
        false
    }
}

/// An environment that drives every input port with fixed values and never
/// halts. Useful for unit tests and for circuits without memory traffic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstEnvironment {
    values: Vec<u64>,
}

impl ConstEnvironment {
    /// Creates an environment driving the given per-port values (in port
    /// declaration order; missing trailing ports read zero).
    pub fn new(values: Vec<u64>) -> Self {
        ConstEnvironment { values }
    }
}

impl Environment for ConstEnvironment {
    fn step(&mut self, _cycle: u64, _prev_outputs: &[u64], inputs: &mut [u64]) {
        for (slot, &v) in inputs.iter_mut().zip(&self.values) {
            *slot = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_environment_repeats_values() {
        let mut env = ConstEnvironment::new(vec![3, 9]);
        let mut inputs = vec![0u64; 3];
        env.step(0, &[], &mut inputs);
        assert_eq!(inputs, vec![3, 9, 0]);
        assert!(!env.halted());
        assert_eq!(env.fingerprint(), 0);
        assert!(env.program_output().is_empty());
    }
}
