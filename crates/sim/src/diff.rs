//! Incremental diff-from-golden replay (concurrent fault simulation).
//!
//! A faulty GroupACE replay differs from the recorded [`GoldenTrace`] only in
//! the fan-out cone of the flipped flip-flops, so re-simulating the entire
//! circuit every cycle wastes almost all of its work. [`DiffSim`] instead
//! carries a *divergence set* — the flip-flops whose value differs from the
//! golden state at the current boundary — and each cycle:
//!
//! 1. steps the environment with the (possibly patched) output words, and
//!    diffs the inputs it produces against the golden input words;
//! 2. seeds the dirty-net set with the diverged flip-flop Q nets and input
//!    bits;
//! 3. re-evaluates *only* gates reached by dirty nets, in increasing
//!    [`Topology::gate_level`] order, reading un-dirty fan-in from a
//!    per-trace-cycle cache of golden net values (each cycle's golden
//!    settle is computed once from the recorded state/input words and then
//!    shared by every replay that crosses that cycle);
//! 4. compares each dirty D pin against `trace.state_at(cycle + 1)` to form
//!    the next divergence set, and patches dirty output-port bits into the
//!    golden output words.
//!
//! The paper's convergence early-exit falls out for free: the run has
//! re-converged exactly when the divergence set is empty, the environment
//! fingerprint matches, and no pending output bit is patched. All bookkeeping
//! uses epoch-stamped scratch arrays, so per-cycle reset is O(1).
//!
//! [`Topology::gate_level`]: delayavf_netlist::Topology::gate_level

use delayavf_netlist::{Circuit, Consumer, DffId, GateId, NetId, Topology};

/// Sets bit `i` of a packed (LSB-first) word slice.
#[inline]
fn set_packed_bit(words: &mut [u64], i: usize, v: bool) {
    if v {
        words[i / 64] |= 1 << (i % 64);
    }
}

use crate::env::Environment;
use crate::trace::GoldenTrace;

/// Reads bit `i` of a packed (LSB-first) word slice.
#[inline]
fn packed_bit(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// An incremental cycle simulator that replays a faulty run as a *diff*
/// against a [`GoldenTrace`], re-evaluating only the divergence cone.
///
/// Semantically equivalent to restoring a [`crate::CycleSim`] from the golden
/// state at a boundary, applying flips and stepping — but the per-cycle cost
/// scales with the size of the divergence cone instead of the whole circuit.
/// It is only defined while the golden trace provides a baseline
/// (`cycle < trace.num_cycles()`); callers must materialize the full state
/// with [`DiffSim::state_bits`] and fall back to a full simulator to run past
/// the end of the trace.
#[derive(Clone, Debug)]
pub struct DiffSim<'c> {
    circuit: &'c Circuit,
    topo: &'c Topology,
    /// Epoch-stamped faulty net values (set only for *dirty* nets).
    faulty_val: Vec<bool>,
    faulty_epoch: Vec<u64>,
    /// Per trace cycle: packed golden values of every net, settled once
    /// from the recorded state/input words and shared by every replay that
    /// crosses the cycle. ~`num_nets / 8` bytes per cached cycle.
    golden_nets: Vec<Option<Box<[u64]>>>,
    /// Scratch for one golden settle.
    golden_scratch: Vec<bool>,
    /// Epoch stamp marking gates already scheduled this cycle.
    sched_epoch: Vec<u64>,
    /// Dirty-gate worklist, bucketed by combinational level.
    buckets: Vec<Vec<GateId>>,
    /// Highest level with a scheduled gate this cycle (sweep bound).
    max_sched_level: usize,
    epoch: u64,
    /// Flip-flops differing from `trace.state_at(cycle)`, sorted.
    divergence: Vec<DffId>,
    next_divergence: Vec<DffId>,
    /// Output words pending for the environment's next step (golden words
    /// with dirty bits patched).
    outputs: Vec<u64>,
    input_buf: Vec<u64>,
    cycle: u64,
    gates_evaluated: u64,
}

impl<'c> DiffSim<'c> {
    /// Creates an incremental simulator for `circuit`.
    pub fn new(circuit: &'c Circuit, topo: &'c Topology) -> Self {
        DiffSim {
            circuit,
            topo,
            faulty_val: vec![false; circuit.num_nets()],
            faulty_epoch: vec![0; circuit.num_nets()],
            golden_nets: Vec::new(),
            golden_scratch: vec![false; circuit.num_nets()],
            sched_epoch: vec![0; circuit.num_gates()],
            buckets: vec![Vec::new(); topo.num_levels()],
            max_sched_level: 0,
            epoch: 0,
            divergence: Vec::new(),
            next_divergence: Vec::new(),
            outputs: vec![0; circuit.output_ports().len()],
            input_buf: vec![0; circuit.input_ports().len()],
            cycle: 0,
            gates_evaluated: 0,
        }
    }

    /// Starts a replay at `boundary` with the given flip-flops inverted
    /// relative to the golden state, and resets [`DiffSim::gates_evaluated`].
    ///
    /// # Panics
    ///
    /// Panics if `boundary > trace.num_cycles()`.
    pub fn begin(&mut self, boundary: u64, flips: &[DffId], trace: &GoldenTrace) {
        assert!(
            boundary <= trace.num_cycles(),
            "replay boundary past the golden trace"
        );
        self.cycle = boundary;
        self.divergence.clear();
        self.divergence.extend_from_slice(flips);
        self.divergence.sort_unstable();
        self.divergence.dedup();
        // The outputs the environment observes first are exactly the golden
        // words sampled at the end of the previous cycle (all-zero at reset,
        // matching `CycleSim::new`).
        if boundary == 0 {
            self.outputs.iter_mut().for_each(|w| *w = 0);
        } else {
            self.outputs.copy_from_slice(trace.outputs_at(boundary - 1));
        }
        self.gates_evaluated = 0;
    }

    /// Like [`DiffSim::begin`], but with explicit pending output words: a
    /// faulty run's outputs for the cycle before `boundary` instead of the
    /// golden words. Used by the batch engine to hand over a lane whose
    /// output ports diverged mid-trace.
    ///
    /// # Panics
    ///
    /// Panics if `boundary > trace.num_cycles()` or `outputs` has the wrong
    /// length.
    pub fn begin_with_outputs(
        &mut self,
        boundary: u64,
        flips: &[DffId],
        outputs: &[u64],
        trace: &GoldenTrace,
    ) {
        self.begin(boundary, flips, trace);
        self.outputs.copy_from_slice(outputs);
    }

    /// The current cycle number.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Flip-flops whose value differs from the golden state at the current
    /// boundary, sorted by id.
    #[inline]
    pub fn divergence(&self) -> &[DffId] {
        &self.divergence
    }

    /// Output port words pending for the environment's next step.
    #[inline]
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// Faulty-cone gate evaluations performed since [`DiffSim::begin`].
    /// Golden-side work is excluded: each trace cycle's golden settle is
    /// computed once per simulator and shared by every replay crossing it,
    /// so it amortizes to a single golden run's worth of work.
    #[inline]
    pub fn gates_evaluated(&self) -> u64 {
        self.gates_evaluated
    }

    /// True when the replay has provably re-converged with the golden trace:
    /// the divergence set is empty, `fingerprint` matches the recorded one,
    /// and the pending output words are golden. Equivalent to
    /// [`GoldenTrace::converged_at`] on the materialized state.
    pub fn converged(&self, trace: &GoldenTrace, fingerprint: u64) -> bool {
        self.divergence.is_empty()
            && self.cycle >= 1
            && self.cycle <= trace.num_cycles()
            && trace.fingerprint_at(self.cycle) == fingerprint
            && self.outputs.as_slice() == trace.outputs_at(self.cycle - 1)
    }

    /// Materializes the full flip-flop state at the current boundary: the
    /// golden state with the divergence set inverted.
    pub fn state_bits(&self, trace: &GoldenTrace) -> Vec<bool> {
        let mut state = trace.state_bits_at(self.cycle, self.circuit.num_dffs());
        for &d in &self.divergence {
            state[d.index()] = !state[d.index()];
        }
        state
    }

    /// Executes one clock cycle against `env`, re-evaluating only the
    /// divergence cone.
    ///
    /// # Panics
    ///
    /// Panics if the golden trace provides no baseline for this cycle
    /// (`cycle >= trace.num_cycles()`); callers must fall back to a full
    /// simulator first.
    pub fn step(&mut self, env: &mut impl Environment, trace: &GoldenTrace) {
        assert!(
            self.cycle < trace.num_cycles(),
            "no golden baseline past the end of the trace"
        );
        let circuit = self.circuit;
        self.epoch += 1;
        self.max_sched_level = self.buckets.len();
        let cycle = self.cycle;

        // 1. Environment step: identical observable interaction to a full
        //    `CycleSim::step` (zeroed input buffer, pending outputs).
        self.input_buf.iter_mut().for_each(|w| *w = 0);
        env.step(cycle, &self.outputs, &mut self.input_buf);

        // From here on, `outputs` accumulates this cycle's words: golden with
        // dirty bits patched in as they are discovered.
        self.outputs.copy_from_slice(trace.outputs_at(cycle));

        // 2a. Seed: input bits differing from the golden input words (the
        //     environment may diverge once it has observed faulty outputs).
        let golden_inputs = trace.inputs_at(cycle);
        for (pi, port) in circuit.input_ports().iter().enumerate() {
            let diff = self.input_buf[pi] ^ golden_inputs[pi];
            if diff == 0 {
                continue;
            }
            for (bit, &net) in port.nets().iter().enumerate() {
                if (diff >> bit) & 1 == 1 {
                    let val = (self.input_buf[pi] >> bit) & 1 == 1;
                    self.mark_dirty(net, val, trace);
                }
            }
        }

        // 2b. Seed: Q nets of the diverged flip-flops (faulty = !golden).
        let divergence = std::mem::take(&mut self.divergence);
        let golden_state = trace.state_at(cycle);
        for &d in &divergence {
            let q = circuit.dff(d).q();
            self.mark_dirty(q, !packed_bit(golden_state, d.index()), trace);
        }
        self.divergence = divergence;

        // 3. Levelized cone propagation: each scheduled gate is evaluated
        //    once, after all of its (possibly dirty) fan-in. Clean fan-in
        //    reads come from the per-cycle golden settle, computed on first
        //    demand and shared by every replay crossing this cycle.
        if self.max_sched_level < self.buckets.len() {
            self.ensure_golden(trace);
        }
        let plan = self.topo.plan();
        let mut level = 0;
        while level <= self.max_sched_level && level < self.buckets.len() {
            while let Some(g) = self.buckets[level].pop() {
                let golden = self.golden_nets[cycle as usize]
                    .as_deref()
                    .expect("golden settle ensured above");
                let (kind, ins, out) = plan.op(plan.op_of_gate(g));
                self.gates_evaluated += 1;
                let read = |slot: u32| {
                    let i = slot as usize;
                    if self.faulty_epoch[i] == self.epoch {
                        self.faulty_val[i]
                    } else {
                        packed_bit(golden, i)
                    }
                };
                let out_val = kind.eval3(read(ins[0]), read(ins[1]), read(ins[2]));
                if out_val != packed_bit(golden, out as usize) {
                    self.mark_dirty(NetId::from_index(out as usize), out_val, trace);
                }
            }
            level += 1;
        }

        // 4. Latch: the next divergence set was collected by `mark_dirty`
        //    from dirty D pins; everything else latches golden.
        self.next_divergence.sort_unstable();
        std::mem::swap(&mut self.divergence, &mut self.next_divergence);
        self.next_divergence.clear();
        self.cycle += 1;
    }

    /// Marks `net` as carrying faulty value `val`, scheduling consumer gates
    /// and recording diverged D pins / output bits. Each net is marked at
    /// most once per cycle.
    fn mark_dirty(&mut self, net: NetId, val: bool, trace: &GoldenTrace) {
        let i = net.index();
        debug_assert_ne!(self.faulty_epoch[i], self.epoch, "net marked dirty twice");
        self.faulty_val[i] = val;
        self.faulty_epoch[i] = self.epoch;
        let topo = self.topo;
        for e in topo.fanouts(net) {
            match e.consumer {
                Consumer::GatePin { gate, .. } => {
                    if self.sched_epoch[gate.index()] != self.epoch {
                        self.sched_epoch[gate.index()] = self.epoch;
                        let level = topo.gate_level(gate) as usize;
                        if self.max_sched_level == self.buckets.len() {
                            self.max_sched_level = level;
                        } else {
                            self.max_sched_level = self.max_sched_level.max(level);
                        }
                        self.buckets[level].push(gate);
                    }
                }
                Consumer::DffD(d) => {
                    let next_golden = packed_bit(trace.state_at(self.cycle + 1), d.index());
                    if val != next_golden {
                        self.next_divergence.push(d);
                    }
                }
                Consumer::OutputBit { port, bit } => {
                    let mask = 1u64 << bit;
                    if val {
                        self.outputs[usize::from(port)] |= mask;
                    } else {
                        self.outputs[usize::from(port)] &= !mask;
                    }
                }
            }
        }
    }

    /// Ensures the packed golden net values for the current cycle are
    /// cached, settling the recorded state/input words through the whole
    /// circuit once. Every replay crossing this cycle shares the result.
    fn ensure_golden(&mut self, trace: &GoldenTrace) {
        let cycle = self.cycle as usize;
        if self.golden_nets.len() <= cycle {
            self.golden_nets.resize(cycle + 1, None);
        }
        if self.golden_nets[cycle].is_some() {
            return;
        }
        let circuit = self.circuit;
        let vals = &mut self.golden_scratch;
        self.topo.seed_consts(vals);
        let inputs = trace.inputs_at(self.cycle);
        for (pi, port) in circuit.input_ports().iter().enumerate() {
            for (bit, &net) in port.nets().iter().enumerate() {
                vals[net.index()] = (inputs[pi] >> bit) & 1 == 1;
            }
        }
        let state = trace.state_at(self.cycle);
        let plan = self.topo.plan();
        for (i, &q) in plan.dff_q().iter().enumerate() {
            vals[q as usize] = packed_bit(state, i);
        }
        for ((&kind, &[a, b, c]), &out) in plan.kinds().iter().zip(plan.ins()).zip(plan.outs()) {
            vals[out as usize] = kind.eval3(vals[a as usize], vals[b as usize], vals[c as usize]);
        }
        let mut packed = vec![0u64; circuit.num_nets().div_ceil(64)].into_boxed_slice();
        for (i, &v) in vals.iter().enumerate() {
            set_packed_bit(&mut packed, i, v);
        }
        self.golden_nets[cycle] = Some(packed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use crate::env::ConstEnvironment;
    use crate::trace::pack_bits;
    use delayavf_netlist::{CircuitBuilder, Driver};

    /// A 4-bit counter incrementing by `step` each cycle (divergence
    /// persists) plus a 4-bit input-reload register (divergence heals).
    fn fixture() -> Circuit {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let count = b.reg_word("count", 4, 0);
        let next = b.add(&count.q(), &step);
        b.drive_word(&count, &next);
        b.output_word("count", &count.q());
        let reload = b.reg_word("reload", 4, 0);
        b.drive_word(&reload, &step);
        b.output_word("reload", &reload.q());
        b.finish().unwrap()
    }

    fn golden(c: &Circuit, topo: &Topology, cycles: u64) -> GoldenTrace {
        let mut env = ConstEnvironment::new(vec![3]);
        GoldenTrace::record(c, topo, &mut env, cycles, &[]).0
    }

    #[test]
    fn diff_sim_tracks_full_sim_exactly() {
        let c = fixture();
        let topo = Topology::new(&c);
        let trace = golden(&c, &topo, 10);
        let boundary = 2u64;
        let flips: Vec<DffId> = c.dffs().map(|(id, _)| id).take(3).collect();

        let mut full = CycleSim::new(&c, &topo);
        full.restore(
            boundary,
            &trace.state_bits_at(boundary, c.num_dffs()),
            trace.outputs_at(boundary - 1),
        );
        for &f in &flips {
            full.flip_dff(f);
        }
        let mut diff = DiffSim::new(&c, &topo);
        diff.begin(boundary, &flips, &trace);
        assert_eq!(diff.state_bits(&trace), full.state());

        let mut env_full = ConstEnvironment::new(vec![3]);
        let mut env_diff = ConstEnvironment::new(vec![3]);
        while diff.cycle() < trace.num_cycles() {
            full.step(&mut env_full);
            diff.step(&mut env_diff, &trace);
            assert_eq!(diff.cycle(), full.cycle());
            assert_eq!(diff.state_bits(&trace), full.state());
            assert_eq!(diff.outputs(), full.last_outputs());
        }
        assert!(diff.gates_evaluated() > 0);
    }

    #[test]
    fn reload_register_divergence_heals() {
        let c = fixture();
        let topo = Topology::new(&c);
        let trace = golden(&c, &topo, 8);
        // Flip only a reload bit: the register re-latches its input next
        // cycle, so the divergence set empties after one step.
        let reload_bit = c
            .dffs()
            .find(|(_, d)| {
                // Reload DFFs are driven directly by input nets.
                matches!(c.net(d.d()).driver(), Driver::Input(_))
            })
            .map(|(id, _)| id)
            .expect("fixture has an input-driven register");
        let mut diff = DiffSim::new(&c, &topo);
        diff.begin(3, &[reload_bit], &trace);
        let mut env = ConstEnvironment::new(vec![3]);
        diff.step(&mut env, &trace);
        assert!(diff.divergence().is_empty(), "reload overwrites the flip");
        // Outputs of the flipped cycle differ from golden, so convergence is
        // only claimable one clean cycle later.
        assert!(!diff.converged(&trace, env.fingerprint()));
        diff.step(&mut env, &trace);
        assert!(diff.converged(&trace, env.fingerprint()));
        assert_eq!(
            pack_bits(&diff.state_bits(&trace)),
            trace.state_at(diff.cycle())
        );
    }

    #[test]
    fn counter_divergence_persists() {
        let c = fixture();
        let topo = Topology::new(&c);
        let trace = golden(&c, &topo, 8);
        let count_bit = c
            .dffs()
            .find(|(_, d)| matches!(c.net(d.d()).driver(), Driver::Gate(_)))
            .map(|(id, _)| id)
            .expect("fixture has a gate-driven register");
        let mut diff = DiffSim::new(&c, &topo);
        diff.begin(1, &[count_bit], &trace);
        let mut env = ConstEnvironment::new(vec![3]);
        for _ in 1..8 {
            diff.step(&mut env, &trace);
            assert!(
                !diff.divergence().is_empty(),
                "a corrupted counter never re-converges"
            );
        }
    }
}
