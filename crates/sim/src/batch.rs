//! Wide-lane bit-parallel replay (parallel-pattern single-fault
//! propagation).
//!
//! A GroupACE / sAVF campaign replays thousands of near-identical fault
//! scenarios through the same netlist against the same [`GoldenTrace`].
//! [`BatchSim`] packs up to [`MAX_LANES`] such scenarios into the bit lanes
//! of lane-carrier words — one word per net, one bit per lane — and
//! evaluates the whole batch with bitwise ops over the 9-kind cell set.
//! The carrier is chosen per batch from the scenario count: `u64` up to 64
//! lanes, [`crate::W256`] up to 256, [`crate::W512`] up to 512, all running
//! the same generic engine, so small batches never pay for unused width.
//!
//! Each cycle is executed by one of two exact, interchangeable paths:
//!
//! * **dense** — a straight-line sweep of the [`EvalPlan`]'s packed
//!   opcode/operand arrays, evaluating every gate (branch-light,
//!   allocation-free, no per-gate struct loads); and
//! * **sparse** — the word-wide analogue of [`crate::DiffSim`]: net words
//!   are carried as lane-diffs against a per-trace-cycle golden settle
//!   (computed once and shared by every batch crossing the cycle), and a
//!   levelized worklist re-evaluates only gates reached by dirty nets.
//!
//! The path is chosen per cycle from the size of the diverged flip-flop
//! seed: when only a few flip-flops differ across all lanes (the common
//! case for persistent single-bit state corruptions) the sparse path costs
//! the union of the lanes' divergence cones instead of the whole netlist.
//!
//! The key semantic restriction: **every lane shares the golden environment
//! trajectory**. The [`crate::Environment`] contract is deterministic given
//! the outputs it observes, so while a lane's output ports match the golden
//! words its environment behaves exactly like the recorded run — the batch
//! engine therefore broadcasts the *recorded* golden input words instead of
//! stepping per-lane environments. [`BatchSim::step`] returns the mask of
//! lanes whose output words diverged this cycle; those lanes must be retired
//! from the batch (handed to a scalar engine seeded with their materialized
//! state and pending outputs) because their environments may now diverge.
//!
//! Divergence against the golden run is detected with word-wide XOR against
//! the packed per-cycle state of the trace, giving each lane an independent
//! convergence early-exit via [`BatchSim::divergence_mask`]. All masks
//! cross the public API as [`LaneMask`] (512 bits) regardless of the
//! carrier running the batch.
//!
//! [`EvalPlan`]: delayavf_netlist::EvalPlan

use delayavf_netlist::{Circuit, Consumer, DffId, EvalPlan, GateId, NetId, Topology};

use crate::pack::{broadcast, eval_lanes, eval_word, packed_bit, LaneWord, W256, W512};
use crate::trace::GoldenTrace;

/// Maximum number of scenarios in one [`BatchSim`] batch (the lane count
/// of the widest carrier, [`crate::W512`]).
pub const MAX_LANES: usize = 512;

/// The lane mask type crossing the [`BatchSim`] public API: one bit per
/// possible lane, independent of the carrier width running the batch
/// (narrower carriers report their lanes in the low bits).
pub type LaneMask = W512;

/// A sparse cycle runs when `diverged flip-flops × this ≤ gates`: the
/// worklist costs a small constant factor per visited gate, so it must beat
/// the straight-line table by leaving most of the netlist untouched.
const SPARSE_SEED_FACTOR: usize = 16;

/// One primary-port bit: the net carrying it and its position in the port
/// word.
#[derive(Clone, Copy, Debug)]
struct PortBit {
    net: u32,
    port: u16,
    bit: u16,
}

/// Widens a carrier-width mask into the public [`LaneMask`]. Costs one
/// iteration per set lane.
fn widen<W: LaneWord>(w: W) -> LaneMask {
    let mut m = LaneMask::ZERO;
    w.for_each_set(W::LANES, |l| m = m | LaneMask::lane_mask(l));
    m
}

/// Which carrier runs the currently loaded batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tier {
    /// `u64`, up to 64 lanes.
    Narrow,
    /// [`W256`], 65–256 lanes.
    Wide4,
    /// [`W512`], 257–512 lanes.
    Wide8,
}

/// Dispatches a wrapper-method body to the active carrier's core (mutably).
/// Expands the body once per tier, so it is generic over the core's lane
/// word.
macro_rules! with_core {
    ($self:ident, $core:ident => $body:expr) => {
        match $self.tier {
            Tier::Narrow => {
                let $core = &mut $self.narrow;
                $body
            }
            Tier::Wide4 => {
                let $core = &mut **$self.wide4.as_mut().expect("W256 core allocated by begin");
                $body
            }
            Tier::Wide8 => {
                let $core = &mut **$self.wide8.as_mut().expect("W512 core allocated by begin");
                $body
            }
        }
    };
}

/// Read-only variant of [`with_core!`].
macro_rules! with_core_ref {
    ($self:ident, $core:ident => $body:expr) => {
        match $self.tier {
            Tier::Narrow => {
                let $core = &$self.narrow;
                $body
            }
            Tier::Wide4 => {
                let $core = &**$self.wide4.as_ref().expect("W256 core allocated by begin");
                $body
            }
            Tier::Wide8 => {
                let $core = &**$self.wide8.as_ref().expect("W512 core allocated by begin");
                $body
            }
        }
    };
}

/// The width-specific half of the engine: every per-net / per-lane buffer,
/// plus the scheduling scratch of the sparse path. One core exists per
/// carrier width actually used; the golden-block cache and the port tables
/// are shared by all of them through [`BatchSim`].
#[derive(Clone, Debug)]
struct Core<W: LaneWord> {
    /// Dense-path scratch: one word per net; constant nets are
    /// broadcast-seeded once and never overwritten.
    values: Vec<W>,
    /// One word per flip-flop: lanes whose bit differs from the golden
    /// state at the current boundary. Zero for every index not listed in
    /// `dirty_dffs`.
    state_diff: Vec<W>,
    /// Indices of flip-flops with a non-zero `state_diff` word.
    dirty_dffs: Vec<u32>,
    /// Sparse-path epoch-stamped net lane-diffs against the golden settle.
    diff_val: Vec<W>,
    diff_epoch: Vec<u64>,
    /// Epoch stamp marking gates already scheduled this cycle.
    sched_epoch: Vec<u64>,
    /// Dirty-gate worklist, bucketed by combinational level.
    buckets: Vec<Vec<GateId>>,
    /// Highest level with a scheduled gate this cycle (sweep bound).
    max_sched_level: usize,
    epoch: u64,
    /// Diverged D-pin collection for the sparse latch: `(dff index, diff)`.
    next_dirty: Vec<(u32, W)>,
    /// Lanes whose state differs from the golden state at the boundary.
    diverged: W,
}

impl<W: LaneWord> Core<W> {
    fn new(circuit: &Circuit, topo: &Topology) -> Self {
        let mut values = vec![W::ZERO; circuit.num_nets()];
        for &(net, v) in topo.const_nets() {
            values[net.index()] = W::splat(v);
        }
        Core {
            values,
            state_diff: vec![W::ZERO; circuit.num_dffs()],
            dirty_dffs: Vec::new(),
            diff_val: vec![W::ZERO; circuit.num_nets()],
            diff_epoch: vec![0; circuit.num_nets()],
            sched_epoch: vec![0; circuit.num_gates()],
            buckets: vec![Vec::new(); topo.num_levels()],
            max_sched_level: 0,
            epoch: 0,
            next_dirty: Vec::new(),
            diverged: W::ZERO,
        }
    }

    /// Loads the batched flip sets (XOR packing, so duplicate flips cancel
    /// — the scalar engines' `flip_dff` semantics).
    fn begin(&mut self, scenarios: &[Vec<DffId>]) {
        for &i in &self.dirty_dffs {
            self.state_diff[i as usize] = W::ZERO;
        }
        self.dirty_dffs.clear();
        for (lane, flips) in scenarios.iter().enumerate() {
            for &d in flips {
                let i = d.index();
                if !self.state_diff[i].any() {
                    self.dirty_dffs
                        .push(u32::try_from(i).expect("dff fits u32"));
                }
                self.state_diff[i] = self.state_diff[i] ^ W::lane_mask(lane);
            }
        }
        let state_diff = &self.state_diff;
        self.dirty_dffs.retain(|&i| state_diff[i as usize].any());
        self.diverged = self
            .dirty_dffs
            .iter()
            .fold(W::ZERO, |m, &i| m | state_diff[i as usize]);
    }

    /// The dense path: straight-line evaluation of every plan op.
    fn step_dense(
        &mut self,
        plan: &EvalPlan,
        input_bits: &[PortBit],
        output_bits: &[PortBit],
        trace: &GoldenTrace,
        cycle: u64,
    ) -> W {
        let vals = &mut self.values;
        // 1. Broadcast this cycle's recorded input words.
        let golden_inputs = trace.inputs_at(cycle);
        for pb in input_bits {
            let bit = (golden_inputs[usize::from(pb.port)] >> pb.bit) & 1 == 1;
            vals[pb.net as usize] = W::splat(bit);
        }
        // 2. Drive the batched state (golden ^ diff) onto the Q nets.
        let golden_state = trace.state_at(cycle);
        for (i, &q) in plan.dff_q().iter().enumerate() {
            vals[q as usize] = W::splat(packed_bit(golden_state, i)) ^ self.state_diff[i];
        }
        // 3. Straight-line bitwise settle over the plan's packed arrays.
        for ((&kind, &[a, b, c]), &out) in plan.kinds().iter().zip(plan.ins()).zip(plan.outs()) {
            vals[out as usize] =
                eval_lanes(kind, vals[a as usize], vals[b as usize], vals[c as usize]);
        }
        // 4. Word-wide XOR against the golden output words.
        let golden_outs = trace.outputs_at(cycle);
        let mut out_div = W::ZERO;
        for pb in output_bits {
            let bit = (golden_outs[usize::from(pb.port)] >> pb.bit) & 1 == 1;
            out_div = out_div | (vals[pb.net as usize] ^ W::splat(bit));
        }
        // 5. Latch into diff form against the next golden boundary.
        let next_golden = trace.state_at(cycle + 1);
        self.dirty_dffs.clear();
        let mut diverged = W::ZERO;
        for (i, &d) in plan.dff_d().iter().enumerate() {
            let diff = vals[d as usize] ^ W::splat(packed_bit(next_golden, i));
            self.state_diff[i] = diff;
            if diff.any() {
                self.dirty_dffs.push(i as u32);
                diverged = diverged | diff;
            }
        }
        self.diverged = diverged;
        out_div
    }

    /// The sparse path: seed the dirty-net set with the diverged flip-flop
    /// Q nets and propagate through consumer gates in level order, reading
    /// clean fan-in from the shared per-cycle golden settle. Gates outside
    /// the union of the lanes' divergence cones are never touched.
    ///
    /// `golden` is the 64-cycle golden block containing `cycle` (required
    /// unless the batch is fully converged), `sh` the cycle's bit position
    /// within it.
    fn step_sparse(
        &mut self,
        plan: &EvalPlan,
        topo: &Topology,
        golden: Option<&[u64]>,
        cycle: u64,
    ) -> W {
        self.epoch += 1;
        self.max_sched_level = self.buckets.len();
        // Fully converged batches ride the golden trace for free.
        if self.dirty_dffs.is_empty() {
            return W::ZERO;
        }
        let golden = golden.expect("golden block settled for a dirty sparse step");
        let sh = (cycle % 64) as u32;
        // Seed: Q nets of diverged flip-flops carry their state diff. An
        // output-registered bit out-diverges right here via its OutputBit
        // consumer; inputs are golden by the shared-trajectory contract and
        // never seed.
        let mut out_div = W::ZERO;
        let dirty = std::mem::take(&mut self.dirty_dffs);
        for &i in &dirty {
            let q = plan.dff_q()[i as usize];
            out_div = out_div
                | self.mark_dirty(
                    topo,
                    NetId::from_index(q as usize),
                    self.state_diff[i as usize],
                );
        }
        self.dirty_dffs = dirty;
        // Levelized cone propagation, exactly as in `DiffSim::step` but on
        // lane-packed diff words.
        let mut level = 0;
        while level <= self.max_sched_level && level < self.buckets.len() {
            while let Some(g) = self.buckets[level].pop() {
                let (kind, ins, out) = plan.op(plan.op_of_gate(g));
                let read = |slot: u32, diff_epoch: &[u64], diff_val: &[W]| {
                    let i = slot as usize;
                    let gw = W::splat((golden[i] >> sh) & 1 == 1);
                    if diff_epoch[i] == self.epoch {
                        gw ^ diff_val[i]
                    } else {
                        gw
                    }
                };
                let out_w = eval_lanes(
                    kind,
                    read(ins[0], &self.diff_epoch, &self.diff_val),
                    read(ins[1], &self.diff_epoch, &self.diff_val),
                    read(ins[2], &self.diff_epoch, &self.diff_val),
                );
                let diff = out_w ^ W::splat((golden[out as usize] >> sh) & 1 == 1);
                if diff.any() {
                    out_div =
                        out_div | self.mark_dirty(topo, NetId::from_index(out as usize), diff);
                }
            }
            level += 1;
        }
        // Latch: only dirty D pins can differ from the next golden state.
        for &i in &self.dirty_dffs {
            self.state_diff[i as usize] = W::ZERO;
        }
        self.dirty_dffs.clear();
        let mut diverged = W::ZERO;
        for (i, diff) in self.next_dirty.drain(..) {
            self.state_diff[i as usize] = diff;
            self.dirty_dffs.push(i);
            diverged = diverged | diff;
        }
        self.diverged = diverged;
        out_div
    }

    /// Marks `net` as carrying lane-diff `diff`, scheduling consumer gates
    /// and collecting diverged D pins. Returns the lanes touching an output
    /// bit through this net. Each net is marked at most once per cycle.
    fn mark_dirty(&mut self, topo: &Topology, net: NetId, diff: W) -> W {
        let i = net.index();
        debug_assert_ne!(self.diff_epoch[i], self.epoch, "net marked dirty twice");
        self.diff_val[i] = diff;
        self.diff_epoch[i] = self.epoch;
        let mut out_div = W::ZERO;
        for e in topo.fanouts(net) {
            match e.consumer {
                Consumer::GatePin { gate, .. } => {
                    if self.sched_epoch[gate.index()] != self.epoch {
                        self.sched_epoch[gate.index()] = self.epoch;
                        let level = topo.gate_level(gate) as usize;
                        if self.max_sched_level == self.buckets.len() {
                            self.max_sched_level = level;
                        } else {
                            self.max_sched_level = self.max_sched_level.max(level);
                        }
                        self.buckets[level].push(gate);
                    }
                }
                Consumer::DffD(d) => {
                    self.next_dirty
                        .push((u32::try_from(d.index()).expect("dff fits u32"), diff));
                }
                Consumer::OutputBit { .. } => out_div = out_div | diff,
            }
        }
        out_div
    }
}

/// A bit-parallel replay engine: up to [`MAX_LANES`] independent fault
/// scenarios evaluated simultaneously against a shared [`GoldenTrace`].
///
/// Each lane is semantically a [`crate::CycleSim`] restored from the golden
/// state at a boundary with that lane's flip set applied — as long as the
/// lane's output ports keep matching the golden words. Lanes whose outputs
/// diverge are reported by [`BatchSim::step`] and must be retired to a
/// scalar engine; lanes whose state re-converges simply drop out of
/// [`BatchSim::divergence_mask`].
///
/// Internally one generic engine runs on the narrowest carrier that fits
/// the batch (`u64`, [`W256`] or [`W512`]); the per-64-cycle golden settle
/// cache (whose lanes stand for *trace cycles*, not scenarios) is shared
/// across carriers.
#[derive(Clone, Debug)]
pub struct BatchSim<'c> {
    circuit: &'c Circuit,
    topo: &'c Topology,
    input_bits: Vec<PortBit>,
    output_bits: Vec<PortBit>,
    /// Per 64-cycle trace block: golden values of every net, one word per
    /// net with bit `L` holding the value at cycle `64·block + L`. Each
    /// block is settled once — bit-parallel, with lanes standing for
    /// *cycles* — and shared by every batch crossing it (the sparse path's
    /// clean fan-in source).
    golden_blocks: Vec<Option<Box<[u64]>>>,
    narrow: Core<u64>,
    wide4: Option<Box<Core<W256>>>,
    wide8: Option<Box<Core<W512>>>,
    tier: Tier,
    cycle: u64,
    /// False until the first `step` after `begin` (pending outputs are then
    /// still the golden words of the previous cycle).
    stepped: bool,
    /// True when the most recent `step` ran the dense path (selects the
    /// output-word assembly source in `lane_outputs`).
    dense_last: bool,
}

impl<'c> BatchSim<'c> {
    /// Creates a batch engine for `circuit`, evaluating through the
    /// topology's [`EvalPlan`]. Wide-carrier state is allocated lazily on
    /// the first batch that needs it.
    pub fn new(circuit: &'c Circuit, topo: &'c Topology) -> Self {
        let port_bits = |ports: &[delayavf_netlist::Port]| {
            ports
                .iter()
                .enumerate()
                .flat_map(|(pi, port)| {
                    port.nets()
                        .iter()
                        .enumerate()
                        .map(move |(bi, &net)| PortBit {
                            net: u32::try_from(net.index()).expect("net fits u32"),
                            port: u16::try_from(pi).expect("port fits u16"),
                            bit: u16::try_from(bi).expect("bit fits u16"),
                        })
                })
                .collect::<Vec<_>>()
        };
        BatchSim {
            circuit,
            topo,
            input_bits: port_bits(circuit.input_ports()),
            output_bits: port_bits(circuit.output_ports()),
            golden_blocks: Vec::new(),
            narrow: Core::new(circuit, topo),
            wide4: None,
            wide8: None,
            tier: Tier::Narrow,
            cycle: 0,
            stepped: false,
            dense_last: false,
        }
    }

    /// Loads a batch: lane `i` starts at `boundary` with `scenarios[i]`
    /// inverted relative to the golden state. Lanes beyond `scenarios.len()`
    /// carry the unmodified golden state (they track the reference and never
    /// diverge). The narrowest carrier that fits the batch is selected:
    /// `u64` up to 64 scenarios, [`W256`] up to 256, [`W512`] beyond.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_LANES`] scenarios are given or `boundary`
    /// is past the end of the trace.
    pub fn begin(&mut self, boundary: u64, scenarios: &[Vec<DffId>], trace: &GoldenTrace) {
        assert!(scenarios.len() <= MAX_LANES, "too many lanes in a batch");
        assert!(
            boundary <= trace.num_cycles(),
            "replay boundary past the golden trace"
        );
        self.tier = if scenarios.len() <= 64 {
            Tier::Narrow
        } else if scenarios.len() <= 256 {
            Tier::Wide4
        } else {
            Tier::Wide8
        };
        match self.tier {
            Tier::Narrow => {}
            Tier::Wide4 => {
                if self.wide4.is_none() {
                    self.wide4 = Some(Box::new(Core::new(self.circuit, self.topo)));
                }
            }
            Tier::Wide8 => {
                if self.wide8.is_none() {
                    self.wide8 = Some(Box::new(Core::new(self.circuit, self.topo)));
                }
            }
        }
        with_core!(self, core => core.begin(scenarios));
        self.cycle = boundary;
        self.stepped = false;
        self.dense_last = false;
    }

    /// The current cycle number (the boundary all lanes sit at).
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Mask of lanes whose flip-flop state differs from the golden state at
    /// the current boundary. A zero bit means the lane's state has
    /// re-converged (its outputs never diverged, or [`BatchSim::step`] would
    /// have reported it for retirement).
    #[inline]
    pub fn divergence_mask(&self) -> LaneMask {
        with_core_ref!(self, core => widen(core.diverged))
    }

    /// Executes one clock cycle for every lane, broadcasting the recorded
    /// golden input words. Returns the mask of lanes whose output-port words
    /// differ from the golden words this cycle; those lanes must be retired
    /// to a scalar engine (their environments may diverge from the recorded
    /// trajectory from the next cycle on).
    ///
    /// # Panics
    ///
    /// Panics if the trace provides no baseline for this cycle
    /// (`cycle >= trace.num_cycles()`).
    pub fn step(&mut self, trace: &GoldenTrace) -> LaneMask {
        assert!(
            self.cycle < trace.num_cycles(),
            "no golden baseline past the end of the trace"
        );
        self.stepped = true;
        let gates = self.topo.plan().len();
        let sparse = with_core!(self, core => core.dirty_dffs.len() * SPARSE_SEED_FACTOR <= gates);
        if sparse {
            self.step_sparse(trace)
        } else {
            self.step_dense(trace)
        }
    }

    /// Runs the dense path for one cycle (the paths are interchangeable per
    /// cycle; `step` picks automatically).
    fn step_dense(&mut self, trace: &GoldenTrace) -> LaneMask {
        self.dense_last = true;
        let cycle = self.cycle;
        let plan = self.topo.plan();
        let out = with_core!(self, core => widen(core.step_dense(
            plan,
            &self.input_bits,
            &self.output_bits,
            trace,
            cycle,
        )));
        self.cycle += 1;
        out
    }

    /// Runs the sparse path for one cycle.
    fn step_sparse(&mut self, trace: &GoldenTrace) -> LaneMask {
        self.dense_last = false;
        let cycle = self.cycle;
        let plan = self.topo.plan();
        let dirty = with_core!(self, core => !core.dirty_dffs.is_empty());
        if dirty {
            self.ensure_golden(trace);
        }
        let golden = self
            .golden_blocks
            .get((cycle / 64) as usize)
            .and_then(|b| b.as_deref());
        let topo = self.topo;
        let out = with_core!(self, core => widen(core.step_sparse(
            plan,
            topo,
            golden,
            cycle,
        )));
        self.cycle += 1;
        out
    }

    /// Ensures the golden net values for the 64-cycle block containing the
    /// current cycle are cached. The whole block settles in *one*
    /// bit-parallel sweep of the plan with the lanes standing for
    /// consecutive trace cycles (each cycle's combinational settle is
    /// independent given the recorded state and input words), so the
    /// amortized cost per cycle is 1/64th of a scalar settle. The cache is
    /// `u64`-packed and shared by every carrier width.
    fn ensure_golden(&mut self, trace: &GoldenTrace) {
        let block = (self.cycle / 64) as usize;
        if self.golden_blocks.len() <= block {
            self.golden_blocks.resize(block + 1, None);
        }
        if self.golden_blocks[block].is_some() {
            return;
        }
        let plan = self.topo.plan();
        let base = self.cycle - self.cycle % 64;
        let width = (trace.num_cycles() - base).min(64);
        let mut vals = vec![0u64; self.circuit.num_nets()].into_boxed_slice();
        for &(net, v) in self.topo.const_nets() {
            vals[net.index()] = broadcast(v);
        }
        for l in 0..width {
            let inputs = trace.inputs_at(base + l);
            for pb in &self.input_bits {
                vals[pb.net as usize] |= ((inputs[usize::from(pb.port)] >> pb.bit) & 1) << l;
            }
            let state = trace.state_at(base + l);
            for (i, &q) in plan.dff_q().iter().enumerate() {
                vals[q as usize] |= u64::from(packed_bit(state, i)) << l;
            }
        }
        for ((&kind, &[a, b, c]), &out) in plan.kinds().iter().zip(plan.ins()).zip(plan.outs()) {
            vals[out as usize] =
                eval_word(kind, vals[a as usize], vals[b as usize], vals[c as usize]);
        }
        self.golden_blocks[block] = Some(vals);
    }

    /// The flip-flops of `lane` whose value differs from the golden state at
    /// the current boundary, sorted by id. Matches
    /// [`crate::DiffSim::divergence`] for an equivalent scalar replay.
    pub fn lane_divergence(&self, lane: usize, _trace: &GoldenTrace) -> Vec<DffId> {
        assert!(lane < MAX_LANES, "lane out of range");
        let mut flips: Vec<DffId> = with_core_ref!(self, core => core
            .dirty_dffs
            .iter()
            .filter(|&&i| core.state_diff[i as usize].get(lane))
            .map(|&i| DffId::from_index(i as usize))
            .collect());
        flips.sort_unstable();
        flips
    }

    /// The full flip-flop state of `lane` at the current boundary.
    pub fn lane_state_bits(&self, lane: usize, trace: &GoldenTrace) -> Vec<bool> {
        assert!(lane < MAX_LANES, "lane out of range");
        let golden = trace.state_at(self.cycle);
        let num_dffs = self.circuit.num_dffs();
        with_core_ref!(self, core => (0..num_dffs)
            .map(|i| packed_bit(golden, i) != core.state_diff[i].get(lane))
            .collect())
    }

    /// The output-port words of `lane` pending for its environment's next
    /// step: the words sampled at the end of the previous cycle (golden
    /// words before the first step, all-zero at a reset boundary).
    pub fn lane_outputs(&self, lane: usize, trace: &GoldenTrace) -> Vec<u64> {
        assert!(lane < MAX_LANES, "lane out of range");
        if !self.stepped {
            return if self.cycle == 0 {
                vec![0; self.circuit.output_ports().len()]
            } else {
                trace.outputs_at(self.cycle - 1).to_vec()
            };
        }
        if self.dense_last {
            let mut out = vec![0u64; self.circuit.output_ports().len()];
            let output_bits = &self.output_bits;
            with_core_ref!(self, core => {
                for pb in output_bits {
                    if core.values[pb.net as usize].get(lane) {
                        out[usize::from(pb.port)] |= 1u64 << pb.bit;
                    }
                }
            });
            return out;
        }
        // Sparse: the golden words of the just-executed cycle with the
        // epoch-current dirty bits patched in.
        let mut out = trace.outputs_at(self.cycle - 1).to_vec();
        let output_bits = &self.output_bits;
        with_core_ref!(self, core => {
            for pb in output_bits {
                let i = pb.net as usize;
                if core.diff_epoch[i] == core.epoch && core.diff_val[i].get(lane) {
                    out[usize::from(pb.port)] ^= 1u64 << pb.bit;
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use crate::env::ConstEnvironment;
    use delayavf_netlist::CircuitBuilder;

    /// A 4-bit counter (divergence persists), a 4-bit input-reload register
    /// (divergence heals) and a mux-selected output exercising `Mux2`.
    fn fixture() -> Circuit {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let count = b.reg_word("count", 4, 0);
        let next = b.add(&count.q(), &step);
        b.drive_word(&count, &next);
        b.output_word("count", &count.q());
        let reload = b.reg_word("reload", 4, 0);
        b.drive_word(&reload, &step);
        b.output_word("reload", &reload.q());
        let sel = b.reg("sel", false);
        let nsel = b.not(sel.q());
        b.drive(sel, nsel);
        let count_q = count.q();
        let reload_q = reload.q();
        let muxed: delayavf_netlist::Word = count_q
            .bits()
            .iter()
            .zip(reload_q.bits())
            .map(|(&a, &r)| b.mux(sel.q(), a, r))
            .collect();
        b.output_word("muxed", &muxed);
        b.finish().unwrap()
    }

    fn golden(c: &Circuit, topo: &Topology, cycles: u64) -> GoldenTrace {
        let mut env = ConstEnvironment::new(vec![3]);
        GoldenTrace::record(c, topo, &mut env, cycles, &[]).0
    }

    /// A scalar reference lane: CycleSim restored at the boundary with the
    /// flips applied, stepped in lockstep.
    fn scalar_lane<'a>(
        c: &'a Circuit,
        topo: &'a Topology,
        trace: &GoldenTrace,
        boundary: u64,
        flips: &[DffId],
    ) -> CycleSim<'a> {
        let mut sim = CycleSim::new(c, topo);
        let prev = if boundary == 0 {
            vec![0; c.output_ports().len()]
        } else {
            trace.outputs_at(boundary - 1).to_vec()
        };
        sim.restore(
            boundary,
            &trace.state_bits_at(boundary, c.num_dffs()),
            &prev,
        );
        for &f in flips {
            sim.flip_dff(f);
        }
        sim
    }

    /// Which step implementation a lockstep check drives.
    #[derive(Clone, Copy, PartialEq)]
    enum Path {
        Auto,
        Dense,
        Sparse,
    }

    /// Locksteps a batch against per-lane scalar replays on the chosen step
    /// path (the paths are interchangeable per cycle, so forcing either one
    /// for a whole run must still match the scalar engines exactly).
    fn check_lockstep(scenarios: &[Vec<DffId>], path: Path) {
        let c = fixture();
        let topo = Topology::new(&c);
        let trace = golden(&c, &topo, 10);
        let boundary = 2u64;
        let mut batch = BatchSim::new(&c, &topo);
        batch.begin(boundary, scenarios, &trace);

        let mut scalars: Vec<CycleSim> = scenarios
            .iter()
            .map(|fl| scalar_lane(&c, &topo, &trace, boundary, fl))
            .collect();
        let mut envs: Vec<ConstEnvironment> = scenarios
            .iter()
            .map(|_| ConstEnvironment::new(vec![3]))
            .collect();

        while batch.cycle() < trace.num_cycles() {
            let golden_state = trace.state_at(batch.cycle());
            for (lane, sim) in scalars.iter().enumerate() {
                assert_eq!(
                    batch.lane_state_bits(lane, &trace),
                    sim.state(),
                    "lane {lane}"
                );
                let scalar_div = sim
                    .state()
                    .iter()
                    .enumerate()
                    .any(|(i, &b)| b != packed_bit(golden_state, i));
                assert_eq!(
                    batch.divergence_mask().get(lane),
                    scalar_div,
                    "divergence mask lane {lane}"
                );
            }
            batch.stepped = true;
            let out_div = match path {
                Path::Auto => batch.step(&trace),
                Path::Dense => batch.step_dense(&trace),
                Path::Sparse => batch.step_sparse(&trace),
            };
            for (lane, sim) in scalars.iter_mut().enumerate() {
                sim.step(&mut envs[lane]);
                assert_eq!(
                    batch.lane_outputs(lane, &trace),
                    sim.last_outputs(),
                    "outputs lane {lane}"
                );
                let diverged = sim.last_outputs() != trace.outputs_at(batch.cycle() - 1);
                assert_eq!(out_div.get(lane), diverged, "out_div lane {lane}");
            }
        }
    }

    #[test]
    fn every_lane_matches_scalar_replay() {
        let c = fixture();
        let dffs: Vec<DffId> = c.dffs().map(|(id, _)| id).collect();
        // A partial batch of 5 scenarios, including an empty flip set.
        let scenarios: Vec<Vec<DffId>> = vec![
            vec![dffs[0]],
            vec![dffs[4]],
            vec![dffs[0], dffs[5], dffs[8]],
            vec![],
            vec![dffs[8]],
        ];
        check_lockstep(&scenarios, Path::Auto);
        check_lockstep(&scenarios, Path::Dense);
        check_lockstep(&scenarios, Path::Sparse);
    }

    /// A deterministic spread of flip sets over `n` lanes, cycling through
    /// the fixture's flip-flops so neighbouring lanes differ.
    fn spread_scenarios(c: &Circuit, n: usize) -> Vec<Vec<DffId>> {
        let dffs: Vec<DffId> = c.dffs().map(|(id, _)| id).collect();
        (0..n)
            .map(|lane| match lane % 4 {
                0 => vec![dffs[lane % dffs.len()]],
                1 => vec![dffs[lane % dffs.len()], dffs[(lane + 3) % dffs.len()]],
                2 => vec![],
                _ => vec![dffs[(lane + 5) % dffs.len()]],
            })
            .collect()
    }

    /// 65+ scenarios select the 256-lane carrier; every lane must still
    /// match its scalar replay on both paths.
    #[test]
    fn wide256_batches_match_scalar_replay() {
        let c = fixture();
        let scenarios = spread_scenarios(&c, 70);
        check_lockstep(&scenarios, Path::Auto);
        check_lockstep(&scenarios, Path::Dense);
        check_lockstep(&scenarios, Path::Sparse);
    }

    /// 257+ scenarios select the 512-lane carrier.
    #[test]
    fn wide512_batches_match_scalar_replay() {
        let c = fixture();
        let scenarios = spread_scenarios(&c, 300);
        check_lockstep(&scenarios, Path::Auto);
        check_lockstep(&scenarios, Path::Sparse);
    }

    #[test]
    fn carrier_tier_tracks_batch_size() {
        let c = fixture();
        let topo = Topology::new(&c);
        let trace = golden(&c, &topo, 6);
        let mut batch = BatchSim::new(&c, &topo);
        batch.begin(1, &spread_scenarios(&c, 3), &trace);
        assert_eq!(batch.tier, Tier::Narrow);
        assert!(batch.wide4.is_none() && batch.wide8.is_none(), "lazy wides");
        batch.begin(1, &spread_scenarios(&c, 64), &trace);
        assert_eq!(batch.tier, Tier::Narrow, "64 still fits u64");
        batch.begin(1, &spread_scenarios(&c, 65), &trace);
        assert_eq!(batch.tier, Tier::Wide4);
        batch.begin(1, &spread_scenarios(&c, 257), &trace);
        assert_eq!(batch.tier, Tier::Wide8);
        batch.begin(1, &spread_scenarios(&c, 2), &trace);
        assert_eq!(batch.tier, Tier::Narrow, "narrow batches re-narrow");
    }

    #[test]
    fn unused_lanes_track_golden() {
        let c = fixture();
        let topo = Topology::new(&c);
        let trace = golden(&c, &topo, 6);
        let mut batch = BatchSim::new(&c, &topo);
        batch.begin(1, &[], &trace);
        assert!(!batch.divergence_mask().any());
        while batch.cycle() < trace.num_cycles() {
            assert!(!batch.step(&trace).any(), "golden lanes never out-diverge");
            assert!(!batch.divergence_mask().any());
        }
    }

    #[test]
    fn lane_divergence_matches_flips_at_begin() {
        let c = fixture();
        let topo = Topology::new(&c);
        let trace = golden(&c, &topo, 6);
        let dffs: Vec<DffId> = c.dffs().map(|(id, _)| id).collect();
        let mut flips = vec![dffs[5], dffs[0], dffs[2]];
        let mut batch = BatchSim::new(&c, &topo);
        batch.begin(3, &[flips.clone()], &trace);
        flips.sort_unstable();
        assert_eq!(batch.lane_divergence(0, &trace), flips);
        assert_eq!(
            batch.lane_outputs(0, &trace),
            trace.outputs_at(2),
            "pre-step outputs are golden"
        );
    }
}
