//! The timing-agnostic cycle-accurate simulator.

use delayavf_netlist::{Circuit, DffId, Topology};

use crate::env::Environment;

/// Why a [`CycleSim::run`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The environment reported the program halted.
    Halted,
    /// The cycle limit was reached without a halt.
    MaxCycles,
}

/// Result of a [`CycleSim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// The cycle counter after the run (number of executed cycles when
    /// starting from reset).
    pub end_cycle: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

/// Writes per-port input words into the flat net-value table.
pub(crate) fn write_input_nets(circuit: &Circuit, port_values: &[u64], values: &mut [bool]) {
    debug_assert_eq!(port_values.len(), circuit.input_ports().len());
    for (port, &word) in circuit.input_ports().iter().zip(port_values) {
        for (bit, &net) in port.nets().iter().enumerate() {
            values[net.index()] = (word >> bit) & 1 == 1;
        }
    }
}

/// Samples per-port output words from the flat net-value table.
pub(crate) fn sample_output_ports(circuit: &Circuit, values: &[bool], out: &mut [u64]) {
    for (slot, port) in out.iter_mut().zip(circuit.output_ports()) {
        *slot = port
            .nets()
            .iter()
            .enumerate()
            .fold(0u64, |acc, (bit, &net)| {
                acc | (u64::from(values[net.index()]) << bit)
            });
    }
}

/// Settles the combinational logic for one cycle and returns the full
/// net-value table.
///
/// `state` holds one value per flip-flop (the cycle's Q outputs) and
/// `input_ports` one word per input port. This is the zero-delay fixpoint the
/// timing-aware simulator's results are compared against, and is also used to
/// reconstruct the pre-fault signal values of a cycle from a
/// [`crate::GoldenTrace`].
///
/// # Panics
///
/// Panics if `state` or `input_ports` have the wrong length.
pub fn settle(
    circuit: &Circuit,
    topo: &Topology,
    state: &[bool],
    input_ports: &[u64],
) -> Vec<bool> {
    assert_eq!(state.len(), circuit.num_dffs(), "state width mismatch");
    assert_eq!(
        input_ports.len(),
        circuit.input_ports().len(),
        "input port count mismatch"
    );
    let mut values = vec![false; circuit.num_nets()];
    topo.seed_consts(&mut values);
    settle_in_place(circuit, topo, state, input_ports, &mut values);
    values
}

/// Settles into an existing buffer whose constant nets are already set.
fn settle_in_place(
    circuit: &Circuit,
    topo: &Topology,
    state: &[bool],
    input_ports: &[u64],
    values: &mut [bool],
) {
    write_input_nets(circuit, input_ports, values);
    let plan = topo.plan();
    for (&q, &s) in plan.dff_q().iter().zip(state) {
        values[q as usize] = s;
    }
    // The dense settle is a straight-line walk over the plan's packed
    // arrays — no per-gate struct loads.
    for ((&kind, &[a, b, c]), &out) in plan.kinds().iter().zip(plan.ins()).zip(plan.outs()) {
        values[out as usize] =
            kind.eval3(values[a as usize], values[b as usize], values[c as usize]);
    }
}

/// A timing-agnostic cycle-accurate simulator (the paper's "timing-agnostic
/// stage").
///
/// Each [`CycleSim::step`]:
///
/// 1. asks the [`Environment`] for this cycle's input port words, handing it
///    the output words sampled at the end of the previous cycle;
/// 2. settles the combinational logic in topological order;
/// 3. samples the output ports;
/// 4. latches every flip-flop's D value, advancing the cycle counter.
///
/// State-element errors are injected by calling [`CycleSim::flip_dff`]
/// between steps — exactly the paper's model of errors appearing at a cycle
/// boundary.
#[derive(Clone, Debug)]
pub struct CycleSim<'c> {
    circuit: &'c Circuit,
    topo: &'c Topology,
    state: Vec<bool>,
    values: Vec<bool>,
    prev_outputs: Vec<u64>,
    input_buf: Vec<u64>,
    last_inputs: Vec<u64>,
    cycle: u64,
}

impl<'c> CycleSim<'c> {
    /// Creates a simulator at reset: cycle 0, flip-flops at their power-on
    /// values, previous outputs all zero.
    pub fn new(circuit: &'c Circuit, topo: &'c Topology) -> Self {
        let mut values = vec![false; circuit.num_nets()];
        topo.seed_consts(&mut values);
        CycleSim {
            circuit,
            topo,
            state: circuit.initial_state(),
            values,
            prev_outputs: vec![0; circuit.output_ports().len()],
            input_buf: vec![0; circuit.input_ports().len()],
            last_inputs: vec![0; circuit.input_ports().len()],
            cycle: 0,
        }
    }

    /// The current cycle number (number of completed cycles).
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current flip-flop state, indexed by raw [`DffId`].
    #[inline]
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// The settled net values of the most recently executed cycle.
    #[inline]
    pub fn net_values(&self) -> &[bool] {
        &self.values
    }

    /// Output port words sampled at the end of the most recent cycle.
    #[inline]
    pub fn last_outputs(&self) -> &[u64] {
        &self.prev_outputs
    }

    /// Input port words used by the most recent cycle.
    #[inline]
    pub fn last_inputs(&self) -> &[u64] {
        &self.last_inputs
    }

    /// Inverts the stored value of one flip-flop (a state-element error).
    pub fn flip_dff(&mut self, dff: DffId) {
        self.state[dff.index()] = !self.state[dff.index()];
    }

    /// Overwrites the stored value of one flip-flop.
    pub fn set_dff(&mut self, dff: DffId, value: bool) {
        self.state[dff.index()] = value;
    }

    /// Restores the simulator to an arbitrary point: cycle number, state and
    /// the outputs the environment will observe on the next step.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the circuit.
    pub fn restore(&mut self, cycle: u64, state: &[bool], prev_outputs: &[u64]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        assert_eq!(
            prev_outputs.len(),
            self.prev_outputs.len(),
            "output port count mismatch"
        );
        self.cycle = cycle;
        self.state.copy_from_slice(state);
        self.prev_outputs.copy_from_slice(prev_outputs);
    }

    /// Executes one clock cycle against `env`.
    pub fn step(&mut self, env: &mut impl Environment) {
        self.input_buf.iter_mut().for_each(|v| *v = 0);
        env.step(self.cycle, &self.prev_outputs, &mut self.input_buf);
        self.last_inputs.copy_from_slice(&self.input_buf);
        settle_in_place(
            self.circuit,
            self.topo,
            &self.state,
            &self.input_buf,
            &mut self.values,
        );
        sample_output_ports(self.circuit, &self.values, &mut self.prev_outputs);
        for (slot, &d) in self.state.iter_mut().zip(self.topo.plan().dff_d()) {
            *slot = self.values[d as usize];
        }
        self.cycle += 1;
    }

    /// Runs until the environment halts or `max_cycles` total cycles have
    /// been executed.
    pub fn run(&mut self, env: &mut impl Environment, max_cycles: u64) -> RunSummary {
        while self.cycle < max_cycles {
            if env.halted() {
                return RunSummary {
                    end_cycle: self.cycle,
                    reason: StopReason::Halted,
                };
            }
            self.step(env);
        }
        let reason = if env.halted() {
            StopReason::Halted
        } else {
            StopReason::MaxCycles
        };
        RunSummary {
            end_cycle: self.cycle,
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ConstEnvironment;
    use delayavf_netlist::CircuitBuilder;

    /// A 4-bit counter that increments by `step` each cycle.
    fn counter() -> Circuit {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let count = b.reg_word("count", 4, 0);
        let next = b.add(&count.q(), &step);
        b.drive_word(&count, &next);
        b.output_word("count", &count.q());
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts() {
        let c = counter();
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = ConstEnvironment::new(vec![3]);
        for expected in [0u64, 3, 6, 9, 12, 15, 2] {
            sim.step(&mut env);
            assert_eq!(sim.last_outputs()[0], expected, "registered output");
        }
        assert_eq!(sim.cycle(), 7);
    }

    #[test]
    fn flip_dff_perturbs_state() {
        let c = counter();
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = ConstEnvironment::new(vec![1]);
        sim.step(&mut env);
        sim.step(&mut env); // state = 2
        let dff0 = c.dffs().next().unwrap().0;
        sim.flip_dff(dff0); // state = 3
        sim.step(&mut env);
        assert_eq!(sim.last_outputs()[0], 3);
    }

    #[test]
    fn restore_rewinds_execution() {
        let c = counter();
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = ConstEnvironment::new(vec![2]);
        for _ in 0..3 {
            sim.step(&mut env);
        }
        let saved_state = sim.state().to_vec();
        let saved_out = sim.last_outputs().to_vec();
        let saved_cycle = sim.cycle();
        for _ in 0..4 {
            sim.step(&mut env);
        }
        let later = sim.last_outputs()[0];
        sim.restore(saved_cycle, &saved_state, &saved_out);
        for _ in 0..4 {
            sim.step(&mut env);
        }
        assert_eq!(sim.last_outputs()[0], later, "replay is deterministic");
    }

    #[test]
    fn run_stops_at_max_cycles() {
        let c = counter();
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = ConstEnvironment::new(vec![1]);
        let summary = sim.run(&mut env, 10);
        assert_eq!(summary.end_cycle, 10);
        assert_eq!(summary.reason, StopReason::MaxCycles);
    }

    #[test]
    fn settle_matches_step_values() {
        let c = counter();
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = ConstEnvironment::new(vec![5]);
        sim.step(&mut env);
        sim.step(&mut env);
        // Reconstruct the second cycle's settled values from its start state.
        let start_state = vec![true, false, true, false]; // 5 = 0101 LSB-first
        let values = settle(&c, &topo, &start_state, &[5]);
        assert_eq!(&values[..], sim.net_values());
    }

    #[test]
    fn halting_environment_stops_run() {
        struct CountingEnv {
            left: u64,
        }
        impl Environment for CountingEnv {
            fn step(&mut self, _c: u64, _o: &[u64], _i: &mut [u64]) {
                self.left = self.left.saturating_sub(1);
            }
            fn halted(&self) -> bool {
                self.left == 0
            }
        }
        let c = counter();
        let topo = Topology::new(&c);
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = CountingEnv { left: 4 };
        let summary = sim.run(&mut env, 100);
        assert_eq!(summary.reason, StopReason::Halted);
        assert_eq!(summary.end_cycle, 4);
    }
}
