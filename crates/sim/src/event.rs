//! The timing-aware event-driven simulator (the paper's "timing-aware
//! stage", step 1 of the two-step DelayACE computation).
//!
//! [`EventSim`] simulates exactly **one clock cycle** with per-edge transport
//! delays taken from a [`TimingModel`]. The cycle starts at the clock edge:
//! flip-flop outputs and primary inputs change at *t = 0*, waves propagate
//! through the gates (glitches included — transport delays are not
//! inertially filtered), and every flip-flop latches the value present at
//! its D pin at *t = clock − setup*.
//!
//! A [`FaultSpec`] injects a small delay fault: one fanout edge carries an
//! additional delay for this one cycle (the paper's single-cycle marginal
//! defect model, §IV-B). Comparing the latched values against the fault-free
//! next state yields the **dynamically reachable set** (Definition 3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use delayavf_netlist::{Circuit, Consumer, EdgeId, Topology};
use delayavf_timing::{Picos, TimingModel};

use crate::cycle::write_input_nets;

/// A small delay fault: `extra` picoseconds added to one fanout edge for a
/// single cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// The faulted edge.
    pub edge: EdgeId,
    /// The additional delay (the paper's *d*).
    pub extra: Picos,
}

/// Reusable timing-aware single-cycle simulator.
///
/// The struct owns its scratch buffers, so a fault campaign can reuse one
/// instance per worker thread across many injections.
#[derive(Clone, Debug)]
pub struct EventSim<'a> {
    circuit: &'a Circuit,
    topo: &'a Topology,
    timing: &'a TimingModel,
    /// Current value at each net origin.
    net_val: Vec<bool>,
    /// Current value seen at each fanout-edge sink.
    pin_val: Vec<bool>,
    /// Event queue: (time, sequence, edge, value) with min-heap ordering.
    heap: BinaryHeap<Reverse<(Picos, u64, u32, bool)>>,
    seq: u64,
    input_bits: Vec<bool>,
    /// Reusable buffer for the latched flip-flop values, so the hot path of
    /// a fault campaign allocates nothing per injection.
    latch_buf: Vec<bool>,
    /// Per-net activity flags for the most recent cycle: true iff the net's
    /// origin value changed at least once (including the t = 0 clock-edge
    /// updates). A net that stays quiet carries no transitions whose timing
    /// a delay fault could alter.
    changed: Vec<bool>,
}

impl<'a> EventSim<'a> {
    /// Creates a simulator bound to one circuit and timing model.
    pub fn new(circuit: &'a Circuit, topo: &'a Topology, timing: &'a TimingModel) -> Self {
        EventSim {
            circuit,
            topo,
            timing,
            net_val: vec![false; circuit.num_nets()],
            pin_val: vec![false; topo.edges().len()],
            heap: BinaryHeap::new(),
            seq: 0,
            input_bits: vec![false; circuit.num_nets()],
            latch_buf: vec![false; circuit.num_dffs()],
            changed: vec![false; circuit.num_nets()],
        }
    }

    /// Per-net activity flags from the most recent [`EventSim::latch_cycle`]
    /// call: `changed_nets()[n]` is true iff net `n` changed value at least
    /// once during that cycle (clock-edge updates at t = 0 included). A
    /// quiet net has no transitions, so a transport-delay fault on any of
    /// its fanout edges is vacuous for that cycle.
    pub fn changed_nets(&self) -> &[bool] {
        &self.changed
    }

    /// Simulates one cycle with full timing and returns the values latched
    /// by every flip-flop (indexed by raw `DffId`). The returned slice
    /// borrows a scratch buffer reused across calls, so the hot path is
    /// allocation-free; clone it if it must outlive the next call.
    ///
    /// * `prev_values` — settled net values of the previous cycle (from
    ///   [`crate::settle`] or [`crate::CycleSim::net_values`]); these are the
    ///   signal values everywhere at the instant of the clock edge.
    /// * `new_state` — the flip-flop values for this cycle (latched at the
    ///   edge).
    /// * `new_inputs` — this cycle's input port words.
    /// * `fault` — an optional small delay fault active during this cycle.
    ///
    /// Without a fault, the result equals the zero-delay next state whenever
    /// the design meets timing (which it does by construction, since the
    /// clock period is the critical path).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the circuit.
    pub fn latch_cycle(
        &mut self,
        prev_values: &[bool],
        new_state: &[bool],
        new_inputs: &[u64],
        fault: Option<FaultSpec>,
    ) -> &[bool] {
        assert_eq!(prev_values.len(), self.circuit.num_nets());
        assert_eq!(new_state.len(), self.circuit.num_dffs());
        let deadline = self
            .timing
            .clock_period()
            .saturating_sub(self.timing.setup());

        // Initial condition: every net and pin holds its settled value from
        // the previous cycle.
        self.net_val.copy_from_slice(prev_values);
        for (i, e) in self.topo.edges().iter().enumerate() {
            self.pin_val[i] = prev_values[e.source.index()];
        }
        self.heap.clear();
        self.seq = 0;
        self.changed.iter_mut().for_each(|c| *c = false);

        // At t = 0 the clock edge updates flip-flop outputs and the
        // environment presents new inputs.
        for (id, dff) in self.circuit.dffs() {
            let q = dff.q();
            let v = new_state[id.index()];
            if self.net_val[q.index()] != v {
                self.net_val[q.index()] = v;
                self.changed[q.index()] = true;
                self.schedule_fanouts(q, 0, v, fault);
            }
        }
        self.input_bits.copy_from_slice(prev_values);
        write_input_nets(self.circuit, new_inputs, &mut self.input_bits);
        for &net in self.circuit.input_nets() {
            let v = self.input_bits[net.index()];
            if self.net_val[net.index()] != v {
                self.net_val[net.index()] = v;
                self.changed[net.index()] = true;
                self.schedule_fanouts(net, 0, v, fault);
            }
        }

        // Propagate events until the latch deadline.
        while let Some(&Reverse((t, _, edge_idx, value))) = self.heap.peek() {
            if t > deadline {
                break;
            }
            self.heap.pop();
            let edge = self.topo.edge(EdgeId::from_index(edge_idx as usize));
            let idx = edge_idx as usize;
            if self.pin_val[idx] == value {
                continue;
            }
            self.pin_val[idx] = value;
            if let Consumer::GatePin { gate, .. } = edge.consumer {
                let g = self.circuit.gate(gate);
                let mut ins = [false; 3];
                for (slot, e) in ins.iter_mut().zip(self.topo.gate_in_edges(gate)) {
                    *slot = self.pin_val[e.index()];
                }
                let out = g.kind().eval(&ins[..g.kind().arity()]);
                let out_net = g.output();
                if self.net_val[out_net.index()] != out {
                    self.net_val[out_net.index()] = out;
                    self.changed[out_net.index()] = true;
                    self.schedule_fanouts(out_net, t, out, fault);
                }
            }
        }
        self.heap.clear();

        // Latch: every flip-flop samples its D pin at the deadline.
        for (id, _) in self.circuit.dffs() {
            self.latch_buf[id.index()] = self.pin_val[self.topo.dff_in_edge(id).index()];
        }
        &self.latch_buf
    }

    fn schedule_fanouts(
        &mut self,
        net: delayavf_netlist::NetId,
        t: Picos,
        value: bool,
        fault: Option<FaultSpec>,
    ) {
        let delay = self.timing.net_delay(net);
        for eid in self.topo.fanout_ids(net) {
            let extra = match fault {
                Some(f) if f.edge == eid => f.extra,
                _ => 0,
            };
            self.seq += 1;
            self.heap.push(Reverse((
                t + delay + extra,
                self.seq,
                u32::try_from(eid.index()).expect("edge id fits u32"),
                value,
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::settle;
    use delayavf_netlist::{CircuitBuilder, NetId};
    use delayavf_timing::TechLibrary;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct Fixture {
        c: Circuit,
        topo: Topology,
        timing: TimingModel,
    }

    fn fixture(c: Circuit) -> Fixture {
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        Fixture { c, topo, timing }
    }

    /// Figure-2-style circuit: x and y feed an AND whose output lands in
    /// register A; x also lands directly in register B.
    fn figure2() -> (Fixture, NetId) {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and(x, y);
        let ra = b.reg("A", false);
        b.drive(ra, z);
        let rb = b.reg("B", false);
        b.drive(rb, x);
        b.output("a", ra.q());
        b.output("b", rb.q());
        let c = b.finish().unwrap();
        (fixture(c), x)
    }

    fn edge_from(f: &Fixture, source: NetId, to_gate: bool) -> EdgeId {
        (0..f.topo.edges().len())
            .map(EdgeId::from_index)
            .find(|&e| {
                let edge = f.topo.edge(e);
                edge.source == source
                    && matches!(edge.consumer, Consumer::GatePin { .. }) == to_gate
            })
            .unwrap()
    }

    /// Runs one cycle where inputs change from `prev` to `next`.
    fn latch_transition(
        f: &Fixture,
        prev_inputs: &[u64],
        next_inputs: &[u64],
        fault: Option<FaultSpec>,
    ) -> Vec<bool> {
        let state = f.c.initial_state();
        let prev_values = settle(&f.c, &f.topo, &state, prev_inputs);
        let mut sim = EventSim::new(&f.c, &f.topo, &f.timing);
        sim.latch_cycle(&prev_values, &state, next_inputs, fault)
            .to_vec()
    }

    #[test]
    fn fault_free_cycle_matches_zero_delay_semantics() {
        let (f, _) = figure2();
        // x: 0 -> 1, y stays 1: AND output becomes 1, so A latches 1, B
        // latches 1.
        let latched = latch_transition(&f, &[0, 1], &[1, 1], None);
        assert_eq!(latched, vec![true, true]);
    }

    #[test]
    fn small_delay_is_absorbed_by_slack() {
        // Figure 2a: a small added delay still arrives before the clock.
        // The direct x -> B edge has positive slack; a delay up to the slack
        // is harmless, one picosecond more corrupts B.
        let (f, x) = figure2();
        let e = edge_from(&f, x, false);
        let slack = f.timing.clock_period() - f.timing.path_through_edge(&f.c, &f.topo, e);
        assert!(slack > 0, "the direct path must be shorter than the clock");
        let run =
            |extra| latch_transition(&f, &[0, 1], &[1, 1], Some(FaultSpec { edge: e, extra }));
        assert_eq!(
            run(slack),
            vec![true, true],
            "delay within slack is harmless"
        );
        assert_eq!(
            run(slack + 1),
            vec![true, false],
            "one ps past slack fails B"
        );
    }

    #[test]
    fn large_delay_causes_stale_latch() {
        // Figure 2b: a large delay on x -> AND makes A miss the new value.
        let (f, x) = figure2();
        let e = edge_from(&f, x, true);
        let latched = latch_transition(
            &f,
            &[0, 1],
            &[1, 1],
            Some(FaultSpec {
                edge: e,
                extra: f.timing.clock_period(),
            }),
        );
        assert_eq!(
            latched,
            vec![false, true],
            "A latches the stale AND output; B is unaffected by the x->AND edge fault"
        );
    }

    #[test]
    fn logical_masking_prevents_the_error() {
        // Figure 2c: y = 0 masks the delayed x; the AND output never
        // changes, so A latches the correct 0.
        let (f, x) = figure2();
        let e = edge_from(&f, x, true);
        let latched = latch_transition(
            &f,
            &[0, 0],
            &[1, 0],
            Some(FaultSpec {
                edge: e,
                extra: f.timing.clock_period(),
            }),
        );
        assert_eq!(latched, vec![false, true]);
    }

    #[test]
    fn non_toggling_wire_is_immune() {
        // Figure 2d: x does not change, so a delay on it has no effect.
        let (f, x) = figure2();
        let e = edge_from(&f, x, true);
        let latched = latch_transition(
            &f,
            &[1, 0],
            &[1, 1],
            Some(FaultSpec {
                edge: e,
                extra: f.timing.clock_period(),
            }),
        );
        assert_eq!(latched, vec![true, true]);
    }

    #[test]
    fn one_fault_can_cause_multiple_errors() {
        // A single edge fault on a net feeding two registers through a
        // shared buffer corrupts both (the paper's multi-bit case, §III-A).
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let buf = b.gate(delayavf_netlist::GateKind::Buf, &[x]);
        let r1 = b.reg("r1", false);
        let r2 = b.reg("r2", false);
        b.drive(r1, buf);
        b.drive(r2, buf);
        b.output("o1", r1.q());
        b.output("o2", r2.q());
        let f = fixture(b.finish().unwrap());
        let e = edge_from(&f, x, true);
        let latched = latch_transition(
            &f,
            &[0],
            &[1],
            Some(FaultSpec {
                edge: e,
                extra: f.timing.clock_period(),
            }),
        );
        assert_eq!(latched, vec![false, false], "both registers err at once");
    }

    #[test]
    fn changed_nets_tracks_exactly_the_active_cone() {
        // Figure 2 with x toggling and y held: x, the AND output, and the
        // register D-side activity show as changed; y stays quiet.
        let (f, x) = figure2();
        let state = f.c.initial_state();
        let prev_values = settle(&f.c, &f.topo, &state, &[0, 1]);
        let mut sim = EventSim::new(&f.c, &f.topo, &f.timing);
        sim.latch_cycle(&prev_values, &state, &[1, 1], None);
        let changed = sim.changed_nets();
        assert!(changed[x.index()], "x toggles 0 -> 1");
        let y = f.c.input_nets()[1];
        assert!(!changed[y.index()], "y is held at 1");
        // A fully quiet cycle marks nothing.
        sim.latch_cycle(&prev_values, &state, &[0, 1], None);
        assert!(sim.changed_nets().iter().all(|&c| !c));
    }

    #[test]
    fn random_circuits_agree_with_cycle_sim_when_fault_free() {
        // Property: without a fault, timed latching equals zero-delay next
        // state (the design meets timing at its self-derived clock).
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut b = CircuitBuilder::new();
            let inputs = b.input_word("in", 8);
            let regs = b.reg_word("r", 8, 0);
            let mut nets: Vec<NetId> = inputs.bits().to_vec();
            nets.extend_from_slice(regs.q().bits());
            for _ in 0..60 {
                use delayavf_netlist::GateKind::*;
                let kind =
                    [And2, Or2, Nand2, Nor2, Xor2, Xnor2, Mux2, Not, Buf][rng.gen_range(0..9)];
                let pick = |rng: &mut StdRng, nets: &[NetId]| nets[rng.gen_range(0..nets.len())];
                let ins: Vec<NetId> = (0..kind.arity()).map(|_| pick(&mut rng, &nets)).collect();
                let out = b.gate(kind, &ins);
                nets.push(out);
            }
            let d: delayavf_netlist::Word = (0..8).map(|i| nets[nets.len() - 1 - i]).collect();
            b.drive_word(&regs, &d);
            b.output_word("o", &regs.q());
            let f = fixture(b.finish().unwrap());

            let prev_in = rng.gen_range(0..256u64);
            let next_in = rng.gen_range(0..256u64);
            let state: Vec<bool> = (0..8).map(|_| rng.gen()).collect();
            let prev_values = settle(&f.c, &f.topo, &state, &[prev_in]);
            // Zero-delay reference for the next cycle.
            let next_values = settle(&f.c, &f.topo, &state, &[next_in]);
            let expect: Vec<bool> =
                f.c.dffs()
                    .map(|(_, dff)| next_values[dff.d().index()])
                    .collect();
            let mut sim = EventSim::new(&f.c, &f.topo, &f.timing);
            let latched = sim.latch_cycle(&prev_values, &state, &[next_in], None);
            assert_eq!(latched, expect);
        }
    }
}
