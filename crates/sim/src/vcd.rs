//! VCD (Value Change Dump) waveform export.
//!
//! Dumps cycle-accurate waveforms of a [`crate::CycleSim`] execution for
//! inspection in GTKWave or any other VCD viewer: all primary input and
//! output ports plus every flip-flop, with same-named bits (`pc[0]`,
//! `pc[1]`, ...) merged into buses.

use std::collections::BTreeMap;
use std::io::{self, Write};

use delayavf_netlist::{Circuit, DffId};

use crate::cycle::CycleSim;

/// One dumped signal: a VCD identifier plus the bit sources.
struct Signal {
    id: String,
    name: String,
    bits: Vec<Source>,
    last: Option<Vec<bool>>,
}

/// Where a signal bit's value comes from.
enum Source {
    InputPortBit(usize, usize),
    OutputPortBit(usize, usize),
    Dff(DffId),
}

/// Streams a [`CycleSim`] execution into VCD.
///
/// # Example
///
/// ```
/// use delayavf_netlist::{CircuitBuilder, Topology};
/// use delayavf_sim::{ConstEnvironment, CycleSim, VcdWriter};
///
/// let mut b = CircuitBuilder::new();
/// let step = b.input_word("step", 4);
/// let count = b.reg_word("count", 4, 0);
/// let next = b.add(&count.q(), &step);
/// b.drive_word(&count, &next);
/// b.output_word("count", &count.q());
/// let circuit = b.finish()?;
/// let topo = Topology::new(&circuit);
///
/// let mut out = Vec::new();
/// let mut vcd = VcdWriter::new(&mut out, &circuit)?;
/// let mut sim = CycleSim::new(&circuit, &topo);
/// let mut env = ConstEnvironment::new(vec![1]);
/// for _ in 0..8 {
///     sim.step(&mut env);
///     vcd.sample(&sim)?;
/// }
/// vcd.finish()?;
/// assert!(String::from_utf8_lossy(&out).contains("$var"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct VcdWriter<'c, W: Write> {
    sink: W,
    circuit: &'c Circuit,
    signals: Vec<Signal>,
}

fn ident(mut n: usize) -> String {
    // Printable VCD identifier characters: '!'..='~'.
    let mut s = String::new();
    loop {
        s.push(char::from(b'!' + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

/// Splits `pc[3]` into (`pc`, 3); returns `None` for unindexed names.
fn split_indexed(name: &str) -> Option<(&str, usize)> {
    let open = name.rfind('[')?;
    let close = name.rfind(']')?;
    if close != name.len() - 1 || open + 1 >= close {
        return None;
    }
    let idx = name[open + 1..close].parse().ok()?;
    Some((&name[..open], idx))
}

impl<'c, W: Write> VcdWriter<'c, W> {
    /// Writes the VCD header for `circuit` and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W, circuit: &'c Circuit) -> io::Result<Self> {
        let mut signals: Vec<Signal> = Vec::new();
        for (pi, port) in circuit.input_ports().iter().enumerate() {
            signals.push(Signal {
                id: String::new(),
                name: port.name().replace('/', "."),
                bits: (0..port.width())
                    .map(|b| Source::InputPortBit(pi, b))
                    .collect(),
                last: None,
            });
        }
        for (pi, port) in circuit.output_ports().iter().enumerate() {
            signals.push(Signal {
                id: String::new(),
                name: port.name().replace('/', "."),
                bits: (0..port.width())
                    .map(|b| Source::OutputPortBit(pi, b))
                    .collect(),
                last: None,
            });
        }
        // Group flip-flops into buses by their indexed names.
        let mut buses: BTreeMap<String, Vec<(usize, DffId)>> = BTreeMap::new();
        for (id, dff) in circuit.dffs() {
            match split_indexed(dff.name()) {
                Some((base, idx)) => buses.entry(base.to_owned()).or_default().push((idx, id)),
                None => buses
                    .entry(dff.name().to_owned())
                    .or_default()
                    .push((0, id)),
            }
        }
        for (base, mut bits) in buses {
            bits.sort_unstable_by_key(|&(idx, _)| idx);
            signals.push(Signal {
                id: String::new(),
                name: base.replace('/', "."),
                bits: bits.into_iter().map(|(_, d)| Source::Dff(d)).collect(),
                last: None,
            });
        }
        for (n, sig) in signals.iter_mut().enumerate() {
            sig.id = ident(n);
        }

        writeln!(sink, "$timescale 1ns $end")?;
        writeln!(sink, "$scope module design $end")?;
        for sig in &signals {
            writeln!(
                sink,
                "$var wire {} {} {} $end",
                sig.bits.len(),
                sig.id,
                sig.name
            )?;
        }
        writeln!(sink, "$upscope $end")?;
        writeln!(sink, "$enddefinitions $end")?;
        Ok(VcdWriter {
            sink,
            circuit,
            signals,
        })
    }

    /// Records the simulator's current cycle (call once after each
    /// [`CycleSim::step`]; only changed signals are emitted).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn sample(&mut self, sim: &CycleSim<'_>) -> io::Result<()> {
        let circuit = self.circuit;
        writeln!(self.sink, "#{}", sim.cycle())?;
        for sig in &mut self.signals {
            let values: Vec<bool> = sig
                .bits
                .iter()
                .map(|src| match *src {
                    Source::InputPortBit(p, b) => (sim.last_inputs()[p] >> b) & 1 == 1,
                    Source::OutputPortBit(p, b) => (sim.last_outputs()[p] >> b) & 1 == 1,
                    Source::Dff(d) => {
                        let net = circuit.dff(d).q();
                        sim.net_values()[net.index()]
                    }
                })
                .collect();
            if sig.last.as_ref() == Some(&values) {
                continue;
            }
            if values.len() == 1 {
                writeln!(self.sink, "{}{}", u8::from(values[0]), sig.id)?;
            } else {
                let bits: String = values
                    .iter()
                    .rev()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect();
                writeln!(self.sink, "b{} {}", bits, sig.id)?;
            }
            sig.last = Some(values);
        }
        Ok(())
    }

    /// Flushes the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> io::Result<()> {
        self.sink.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ConstEnvironment;
    use delayavf_netlist::{CircuitBuilder, Topology};

    fn counter() -> Circuit {
        let mut b = CircuitBuilder::new();
        let step = b.input_word("step", 4);
        let count = b.reg_word("count", 4, 0);
        let next = b.add(&count.q(), &step);
        b.drive_word(&count, &next);
        b.output_word("count", &count.q());
        b.finish().unwrap()
    }

    #[test]
    fn header_declares_buses() {
        let c = counter();
        let mut out = Vec::new();
        let vcd = VcdWriter::new(&mut out, &c).unwrap();
        vcd.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$var wire 4"), "{text}");
        assert!(text.contains("count"), "{text}");
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn samples_emit_only_changes() {
        let c = counter();
        let topo = Topology::new(&c);
        let mut out = Vec::new();
        let mut vcd = VcdWriter::new(&mut out, &c).unwrap();
        let mut sim = CycleSim::new(&c, &topo);
        let mut env = ConstEnvironment::new(vec![1]);
        for _ in 0..4 {
            sim.step(&mut env);
            vcd.sample(&sim).unwrap();
        }
        vcd.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        // Four timestamps, counter changes each cycle.
        for t in 1..=4 {
            assert!(text.contains(&format!("#{t}")), "{text}");
        }
        // The constant `step` input appears once (first sample) and is then
        // suppressed.
        let step_changes = text
            .lines()
            .filter(|l| l.starts_with("b1000 ") || l.contains("b0001"))
            .count();
        assert!(step_changes >= 1);
    }

    #[test]
    fn identifiers_are_printable_and_unique() {
        let ids: Vec<String> = (0..300).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert!(ids
            .iter()
            .all(|i| i.bytes().all(|b| (b'!'..=b'~').contains(&b))));
    }

    #[test]
    fn indexed_names_split() {
        assert_eq!(split_indexed("pc[3]"), Some(("pc", 3)));
        assert_eq!(split_indexed("top/alu/acc[12]"), Some(("top/alu/acc", 12)));
        assert_eq!(split_indexed("halt_flag"), None);
        assert_eq!(split_indexed("weird]"), None);
    }
}
