//! Property tests for the incremental divergence-cone replay engine on
//! randomly generated circuits:
//!
//! 1. for random flips at a random boundary, [`DiffSim`] tracks a full
//!    [`CycleSim`] replay bit-for-bit, cycle by cycle — including under an
//!    output-sensitive environment, where divergence also enters through
//!    the primary inputs,
//! 2. under a closed environment the divergence set never escapes the
//!    flipped bits' transitive fan-out cone, and once it empties it stays
//!    empty.

use std::collections::HashSet;

use delayavf_netlist::{Circuit, DffId, Topology};
use delayavf_sim::testutil::{pick_flips_nonempty, random_circuit, GateSpec};
use delayavf_sim::{ConstEnvironment, CycleSim, DiffSim, Environment, GoldenTrace};
use proptest::prelude::*;

/// A stateless but output-sensitive environment: the input word is a hash
/// of the previous cycle's outputs, so faulty outputs feed divergence back
/// in through the primary inputs.
#[derive(Clone, Debug, Default)]
struct FeedbackEnvironment;

impl Environment for FeedbackEnvironment {
    fn step(&mut self, cycle: u64, prev_outputs: &[u64], inputs: &mut [u64]) {
        let mut acc = cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for (i, &o) in prev_outputs.iter().enumerate() {
            acc ^= o.rotate_left(i as u32 + 1);
        }
        if let Some(slot) = inputs.first_mut() {
            *slot = acc;
        }
    }
}

/// The transitive (multi-cycle) fan-out cone of the flipped bits, as a set
/// of flip-flops: the fixpoint of "DFFs reachable through combinational
/// logic from a cone member's Q output".
fn fanout_cone(c: &Circuit, topo: &Topology, flips: &[DffId]) -> HashSet<DffId> {
    let mut cone: HashSet<DffId> = flips.iter().copied().collect();
    let mut frontier: Vec<DffId> = flips.to_vec();
    while let Some(d) = frontier.pop() {
        for down in topo.downstream_dffs(c, c.dff(d).q()) {
            if cone.insert(down) {
                frontier.push(down);
            }
        }
    }
    cone
}

fn check_equivalence<E: Environment + Clone>(
    c: &Circuit,
    topo: &Topology,
    trace: &GoldenTrace,
    boundary: u64,
    flips: &[DffId],
    env: &E,
) {
    let mut full = CycleSim::new(c, topo);
    full.restore(
        boundary,
        &trace.state_bits_at(boundary, c.num_dffs()),
        trace.outputs_at(boundary.wrapping_sub(1)),
    );
    for &f in flips {
        full.flip_dff(f);
    }
    let mut diff = DiffSim::new(c, topo);
    diff.begin(boundary, flips, trace);
    assert_eq!(
        diff.state_bits(trace),
        full.state(),
        "state at the boundary"
    );

    let mut env_full = env.clone();
    let mut env_diff = env.clone();
    while diff.cycle() < trace.num_cycles() {
        full.step(&mut env_full);
        diff.step(&mut env_diff, trace);
        assert_eq!(diff.cycle(), full.cycle());
        assert_eq!(
            diff.state_bits(trace),
            full.state(),
            "state at cycle {}",
            diff.cycle()
        );
        assert_eq!(
            diff.outputs(),
            full.last_outputs(),
            "outputs at cycle {}",
            diff.cycle()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn diff_sim_equals_full_replay_under_output_feedback(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        boundary_sel: u16,
        flip_mask: u8,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let cycles = 8u64;
        let mut env = FeedbackEnvironment;
        let trace = GoldenTrace::record(&c, &topo, &mut env, cycles, &[]).0;
        let boundary = 1 + u64::from(boundary_sel) % (trace.num_cycles() - 1);
        let flips = pick_flips_nonempty(&c, flip_mask);
        check_equivalence(&c, &topo, &trace, boundary, &flips, &FeedbackEnvironment);
    }

    #[test]
    fn divergence_stays_inside_the_flip_fanout_cone(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        in_val: u64,
        boundary_sel: u16,
        flip_mask: u8,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let cycles = 8u64;
        let mut env = ConstEnvironment::new(vec![in_val & 0xff]);
        let trace = GoldenTrace::record(&c, &topo, &mut env.clone(), cycles, &[]).0;
        let boundary = 1 + u64::from(boundary_sel) % (trace.num_cycles() - 1);
        let flips = pick_flips_nonempty(&c, flip_mask);
        // The incremental engine is exact under the closed environment too.
        check_equivalence(&c, &topo, &trace, boundary, &flips, &env);

        let cone = fanout_cone(&c, &topo, &flips);
        let mut diff = DiffSim::new(&c, &topo);
        diff.begin(boundary, &flips, &trace);
        let mut emptied = false;
        while diff.cycle() < trace.num_cycles() {
            diff.step(&mut env, &trace);
            for &d in diff.divergence() {
                prop_assert!(
                    cone.contains(&d),
                    "bit {d:?} diverged outside the fan-out cone of {flips:?}"
                );
            }
            if emptied {
                prop_assert!(
                    diff.divergence().is_empty(),
                    "a healed run re-diverged under a closed environment"
                );
            }
            emptied |= diff.divergence().is_empty();
        }
    }
}
