//! Generative cross-engine fuzzing: every simulation engine in the crate
//! must agree bit-for-bit with every other engine that answers the same
//! question, on randomly generated netlists and randomly generated input
//! traces ([`delayavf_sim::testutil`]).
//!
//! * **Timing pair** — [`EventSim`] vs [`DeltaEventSim`]: identical latched
//!   state for random faults, including *zero-slack* extras that land the
//!   struck path exactly on the latch deadline.
//! * **Timing batch** — [`BatchDeltaSim`] vs the scalar timing engines:
//!   every non-retired lane of a lane-packed batch latches exactly what
//!   the scalar engines latch for that lane's fault, on the `u64` narrow
//!   path and the 256- and 512-lane wide-word paths; retired lanes (same-pin
//!   strikes with conflicting extras) carry golden values, retire only
//!   when a genuine conflict precedes them, and replay exactly on the
//!   scalar engine — the caller's fallback contract.
//! * **Replay trio** — [`CycleSim`] vs [`DiffSim`] vs [`BatchSim`]: lockstep
//!   state/output equivalence, cycle by cycle, for random flip scenarios
//!   replayed from a random boundary of a recorded random trace.
//!
//! The generator seeds every circuit family with constant nets and forces
//! reconvergent fan-out gates (see `testutil::GateSpec`), the two classic
//! traps for incremental engines. Each suite runs 256 cases per engine
//! pair; the vendored proptest harness is deterministic (pinned seed), so a
//! failure here reproduces identically on every machine.

use delayavf_netlist::{DffId, EdgeId, Topology};
use delayavf_sim::testutil::{pick_flips, random_circuit, GateSpec, SeqEnvironment};
use delayavf_sim::{
    settle, BatchDeltaSim, BatchSim, CycleSim, DeltaEventSim, DiffSim, EventSim, FaultSpec,
    GoldenTrace,
};
use delayavf_timing::{TechLibrary, TimingModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Timing pair: the incremental timing-aware engine latches exactly
    /// what the full event-driven simulation latches, for every sampled
    /// edge and for extras spanning zero, the edge's *exact slack* (the
    /// zero-slack latch-deadline boundary, ±1 ps) and far beyond the clock.
    #[test]
    fn delta_event_sim_matches_event_sim_including_zero_slack_edges(
        gates in prop::collection::vec(any::<GateSpec>(), 6..30),
        prev_in: u64,
        next_in: u64,
        state_bits: u8,
        edge_sels in prop::collection::vec(any::<u16>(), 1..5),
    ) {
        let c = random_circuit(6, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let state: Vec<bool> = (0..c.num_dffs())
            .map(|i| (state_bits >> (i % 8)) & 1 == 1)
            .collect();
        let prev_values = settle(&c, &topo, &state, &[prev_in & 0x3f]);
        let inputs = vec![next_in & 0x3f];

        let mut full = EventSim::new(&c, &topo, &timing);
        let mut delta = DeltaEventSim::new(&c, &topo, &timing);
        let golden = full.latch_cycle(&prev_values, &state, &inputs, None).to_vec();
        let clock = timing.clock_period();
        for &sel in &edge_sels {
            let edge = EdgeId::from_index(usize::from(sel) % topo.edges().len());
            let slack = clock.saturating_sub(timing.path_through_edge(&c, &topo, edge));
            for extra in [0, slack.saturating_sub(1), slack, slack + 1, clock / 3, 2 * clock] {
                let fault = FaultSpec { edge, extra };
                let want = full
                    .latch_cycle(&prev_values, &state, &inputs, Some(fault))
                    .to_vec();
                let (got, _) = delta.latch_cycle(0, &prev_values, &state, &inputs, fault);
                prop_assert_eq!(
                    got,
                    &want[..],
                    "latched state, edge {:?} extra {} (slack {})",
                    edge,
                    extra,
                    slack
                );
                // Both engines also agree on the derived dynamic set.
                let want_dyn: Vec<usize> =
                    (0..want.len()).filter(|&i| want[i] != golden[i]).collect();
                prop_assert!(want_dyn.iter().all(|&i| i < c.num_dffs()));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Timing batch: every lane of a lane-packed [`BatchDeltaSim`] batch —
    /// including zero-slack extras and deliberate same-pin conflicts —
    /// either latches exactly what [`EventSim`] latches for that lane's
    /// fault, or is retired with golden values and a genuine earlier
    /// conflict on its edge, in which case the scalar fallback replay
    /// ([`DeltaEventSim`]) still reproduces the full engine. Each case runs
    /// the identical fault list through the narrow `u64` path and, tiled
    /// past 64 and past 256 lanes, through the 256- and 512-lane wide-word
    /// paths.
    #[test]
    fn batch_delta_sim_matches_scalar_engines_lane_for_lane(
        gates in prop::collection::vec(any::<GateSpec>(), 6..30),
        prev_in: u64,
        next_in: u64,
        state_bits: u8,
        edge_sels in prop::collection::vec(any::<u16>(), 1..5),
    ) {
        let c = random_circuit(6, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let state: Vec<bool> = (0..c.num_dffs())
            .map(|i| (state_bits >> (i % 8)) & 1 == 1)
            .collect();
        let prev_values = settle(&c, &topo, &state, &[prev_in & 0x3f]);
        let inputs = vec![next_in & 0x3f];
        let clock = timing.clock_period();

        // Edges × zero-slack-spanning extras, flattened into one fault
        // list. Repeating each edge with several distinct extras makes
        // same-pin conflicts — and therefore lane retirement — routine
        // rather than exceptional in this suite.
        let mut faults: Vec<FaultSpec> = Vec::new();
        for &sel in &edge_sels {
            let edge = EdgeId::from_index(usize::from(sel) % topo.edges().len());
            let slack = clock.saturating_sub(timing.path_through_edge(&c, &topo, edge));
            for extra in [0, slack.saturating_sub(1), slack, slack + 1, clock / 3, 2 * clock] {
                faults.push(FaultSpec { edge, extra });
            }
        }

        let mut full = EventSim::new(&c, &topo, &timing);
        let mut delta = DeltaEventSim::new(&c, &topo, &timing);
        let golden = full.latch_cycle(&prev_values, &state, &inputs, None).to_vec();
        let wants: Vec<Vec<bool>> = faults
            .iter()
            .map(|&f| full.latch_cycle(&prev_values, &state, &inputs, Some(f)).to_vec())
            .collect();

        let mut batch = BatchDeltaSim::new(&c, &topo, &timing);
        // Narrow u64 path, then the same faults tiled past 64 lanes onto
        // the 256-lane carrier, then past 256 lanes onto the 512-lane
        // carrier; the later batches reuse the cached golden waveform
        // (same trace cycle).
        let wide_len = 65 + faults.len();
        let wide_faults: Vec<FaultSpec> =
            faults.iter().cycle().take(wide_len).copied().collect();
        let wider_len = 257 + faults.len();
        let wider_faults: Vec<FaultSpec> =
            faults.iter().cycle().take(wider_len).copied().collect();
        for (pass, fault_list) in [&faults, &wide_faults, &wider_faults]
            .into_iter()
            .enumerate()
        {
            let outcome = batch.latch_batch(0, &prev_values, &state, &inputs, fault_list);
            prop_assert_eq!(
                outcome.built_golden,
                pass == 0,
                "golden waveform is built once and cached, pass {}",
                pass
            );
            for (lane, &fault) in fault_list.iter().enumerate() {
                let want = &wants[lane % faults.len()];
                if outcome.retired.contains(&lane) {
                    // Soundness: a lane only retires behind a genuine
                    // same-edge conflict with a different extra delay.
                    prop_assert!(
                        fault_list[..lane]
                            .iter()
                            .any(|f| f.edge == fault.edge && f.extra != fault.extra),
                        "lane {} retired without a preceding conflict",
                        lane
                    );
                    prop_assert_eq!(
                        batch.lane_latched(lane),
                        &golden[..],
                        "retired lane {} carries golden values, pass {}",
                        lane,
                        pass
                    );
                    // The caller's contract: retired lanes replay on the
                    // scalar engine, which shares the golden cache.
                    let (scalar, _) =
                        delta.latch_cycle(0, &prev_values, &state, &inputs, fault);
                    prop_assert_eq!(
                        scalar,
                        &want[..],
                        "scalar fallback for retired lane {}",
                        lane
                    );
                } else {
                    prop_assert_eq!(
                        batch.lane_latched(lane),
                        &want[..],
                        "lane {} (edge {:?} extra {}), pass {}",
                        lane,
                        fault.edge,
                        fault.extra,
                        pass
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replay trio: for every flip scenario, the bit-parallel batch lane,
    /// the divergence-cone incremental replay and the full scalar replay
    /// hold identical state and identical outputs at every cycle of a
    /// random recorded trace.
    #[test]
    fn cycle_diff_and_batch_replays_lockstep_on_random_traces(
        gates in prop::collection::vec(any::<GateSpec>(), 6..30),
        rows in prop::collection::vec(any::<u64>(), 2..6),
        boundary_sel: u16,
        masks in prop::collection::vec(any::<u8>(), 1..5),
    ) {
        let c = random_circuit(6, 8, &gates);
        let topo = Topology::new(&c);
        let env = SeqEnvironment::new(rows.iter().map(|&r| vec![r & 0x3f]).collect());
        let trace = GoldenTrace::record(&c, &topo, &mut env.clone(), 8, &[]).0;
        let boundary = 1 + u64::from(boundary_sel) % (trace.num_cycles() - 1);
        let scenarios: Vec<Vec<DffId>> = masks.iter().map(|&m| pick_flips(&c, m)).collect();

        let mut batch = BatchSim::new(&c, &topo);
        batch.begin(boundary, &scenarios, &trace);
        let mut lanes: Vec<(CycleSim, DiffSim, SeqEnvironment, SeqEnvironment)> = scenarios
            .iter()
            .map(|flips| {
                let mut full = CycleSim::new(&c, &topo);
                full.restore(
                    boundary,
                    &trace.state_bits_at(boundary, c.num_dffs()),
                    trace.outputs_at(boundary - 1),
                );
                for &f in flips {
                    full.flip_dff(f);
                }
                let mut diff = DiffSim::new(&c, &topo);
                diff.begin(boundary, flips, &trace);
                (full, diff, env.clone(), env.clone())
            })
            .collect();

        for (lane, (full, diff, _, _)) in lanes.iter().enumerate() {
            prop_assert_eq!(
                diff.state_bits(&trace),
                full.state(),
                "diff vs full at the boundary, lane {}",
                lane
            );
            prop_assert_eq!(
                batch.lane_state_bits(lane, &trace),
                full.state().to_vec(),
                "batch vs full at the boundary, lane {}",
                lane
            );
        }

        while batch.cycle() < trace.num_cycles() {
            batch.step(&trace);
            let cyc = batch.cycle();
            for (lane, (full, diff, env_full, env_diff)) in lanes.iter_mut().enumerate() {
                full.step(env_full);
                diff.step(env_diff, &trace);
                prop_assert_eq!(full.cycle(), cyc);
                prop_assert_eq!(diff.cycle(), cyc);
                prop_assert_eq!(
                    diff.state_bits(&trace),
                    full.state(),
                    "diff vs full state at cycle {}, lane {}",
                    cyc,
                    lane
                );
                prop_assert_eq!(
                    batch.lane_state_bits(lane, &trace),
                    full.state().to_vec(),
                    "batch vs full state at cycle {}, lane {}",
                    cyc,
                    lane
                );
                prop_assert_eq!(
                    diff.outputs(),
                    full.last_outputs(),
                    "diff vs full outputs at cycle {}, lane {}",
                    cyc,
                    lane
                );
                prop_assert_eq!(
                    batch.lane_outputs(lane, &trace),
                    full.last_outputs().to_vec(),
                    "batch vs full outputs at cycle {}, lane {}",
                    cyc,
                    lane
                );
            }
        }
    }
}
