//! Property tests for the timing-aware event simulator on randomly
//! generated circuits:
//!
//! 1. fault-free timed latching equals zero-delay settling (the design
//!    meets timing at its self-derived clock period),
//! 2. a fault with zero extra delay changes nothing,
//! 3. a fault larger than the clock period equals "frozen edge" semantics
//!    computed by an independent zero-delay oracle.

use delayavf_netlist::{
    Circuit, CircuitBuilder, Consumer, Driver, EdgeId, GateKind, NetId, Topology, Word,
};
use delayavf_sim::{settle, EventSim, FaultSpec};
use delayavf_timing::{TechLibrary, TimingModel};
use proptest::prelude::*;

/// Specification of one random gate: kind index plus input selectors.
type GateSpec = (u8, u16, u16, u16);

fn random_circuit(n_inputs: usize, n_regs: usize, gates: &[GateSpec]) -> Circuit {
    let mut b = CircuitBuilder::new();
    let inputs = b.input_word("in", n_inputs);
    let regs = b.reg_word("r", n_regs, 0);
    let mut nets: Vec<NetId> = inputs.bits().to_vec();
    nets.extend_from_slice(regs.q().bits());
    for &(kind, i0, i1, i2) in gates {
        let kinds = [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::Xor2,
            GateKind::Xnor2,
            GateKind::Mux2,
        ];
        let k = kinds[usize::from(kind) % kinds.len()];
        let pick = |sel: u16| nets[usize::from(sel) % nets.len()];
        let ins: Vec<NetId> = [i0, i1, i2][..k.arity()].iter().map(|&s| pick(s)).collect();
        nets.push(b.gate(k, &ins));
    }
    // Feed registers from the most recently created nets.
    let d: Word = (0..n_regs).map(|i| nets[nets.len() - 1 - i]).collect();
    b.drive_word(&regs, &d);
    b.output_word("o", &regs.q());
    b.finish().expect("acyclic by construction")
}

/// Zero-delay latch with one edge frozen to `frozen_val`.
fn frozen_latch(
    c: &Circuit,
    topo: &Topology,
    state: &[bool],
    inputs: &[u64],
    edge: EdgeId,
    frozen_val: bool,
) -> Vec<bool> {
    let frozen = topo.edge(edge);
    let mut vals = vec![false; c.num_nets()];
    for (id, net) in c.nets() {
        if let Driver::Const(v) = net.driver() {
            vals[id.index()] = v;
        }
    }
    for (port, &word) in c.input_ports().iter().zip(inputs) {
        for (bit, &net) in port.nets().iter().enumerate() {
            vals[net.index()] = (word >> bit) & 1 == 1;
        }
    }
    for (id, dff) in c.dffs() {
        vals[dff.q().index()] = state[id.index()];
    }
    for &g in topo.eval_order() {
        let gate = c.gate(g);
        let mut ins = [false; 3];
        for (k, &inp) in gate.inputs().iter().enumerate() {
            let frozen_pin = matches!(
                frozen.consumer,
                Consumer::GatePin { gate: fg, pin } if fg == g && usize::from(pin) == k
            );
            ins[k] = if frozen_pin {
                frozen_val
            } else {
                vals[inp.index()]
            };
        }
        vals[gate.output().index()] = gate.kind().eval(&ins[..gate.kind().arity()]);
    }
    c.dffs()
        .map(|(id, dff)| {
            if matches!(frozen.consumer, Consumer::DffD(f) if f == id) {
                frozen_val
            } else {
                vals[dff.d().index()]
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fault_free_event_sim_equals_zero_delay_semantics(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        prev_in: u64,
        new_in: u64,
        state_bits: u8,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let state: Vec<bool> = (0..8).map(|i| (state_bits >> i) & 1 == 1).collect();
        let prev = settle(&c, &topo, &state, &[prev_in & 0xff]);
        let next = settle(&c, &topo, &state, &[new_in & 0xff]);
        let expect: Vec<bool> = c.dffs().map(|(_, d)| next[d.d().index()]).collect();
        let mut ev = EventSim::new(&c, &topo, &timing);
        let latched = ev.latch_cycle(&prev, &state, &[new_in & 0xff], None);
        prop_assert_eq!(latched, expect);
    }

    #[test]
    fn zero_extra_delay_is_harmless(
        gates in prop::collection::vec(any::<GateSpec>(), 10..40),
        new_in: u64,
        edge_sel: u16,
        state_bits: u8,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let state: Vec<bool> = (0..8).map(|i| (state_bits >> i) & 1 == 1).collect();
        let prev = settle(&c, &topo, &state, &[0]);
        let edge = EdgeId::from_index(usize::from(edge_sel) % topo.edges().len());
        let mut ev = EventSim::new(&c, &topo, &timing);
        let clean = ev.latch_cycle(&prev, &state, &[new_in & 0xff], None).to_vec();
        let faulty = ev.latch_cycle(&prev, &state, &[new_in & 0xff], Some(FaultSpec { edge, extra: 0 }));
        prop_assert_eq!(&clean[..], faulty);
    }

    #[test]
    fn huge_delay_equals_frozen_edge_oracle(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        prev_in: u64,
        new_in: u64,
        edge_sel: u16,
        state_bits: u8,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let state: Vec<bool> = (0..8).map(|i| (state_bits >> i) & 1 == 1).collect();
        let prev = settle(&c, &topo, &state, &[prev_in & 0xff]);
        let edge = EdgeId::from_index(usize::from(edge_sel) % topo.edges().len());
        let frozen_val = prev[topo.edge(edge).source.index()];
        let oracle = frozen_latch(&c, &topo, &state, &[new_in & 0xff], edge, frozen_val);
        let mut ev = EventSim::new(&c, &topo, &timing);
        let latched = ev.latch_cycle(
            &prev,
            &state,
            &[new_in & 0xff],
            Some(FaultSpec { edge, extra: timing.clock_period() * 4 }),
        );
        prop_assert_eq!(latched, oracle);
    }
}
