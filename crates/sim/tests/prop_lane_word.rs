//! Property tests for the wide lane carriers: `W256` and `W512` must
//! behave, lane by lane, exactly like the scalar `u64` reference — for the
//! bitwise algebra, the mask helpers, and packed gate evaluation
//! (`eval_lanes`). This is the lane-independence contract every batch
//! engine builds on: bit `L` of any result depends only on bit `L` of the
//! operands, regardless of carrier width.

use delayavf_netlist::GateKind;
use delayavf_sim::{eval_lanes, LaneWord, W256, W512};
use proptest::prelude::*;

/// Packs a per-lane bool vector (length `W::LANES`) into a carrier word.
fn pack<W: LaneWord>(bits: &[bool]) -> W {
    assert_eq!(bits.len(), W::LANES);
    bits.iter().enumerate().fold(
        W::ZERO,
        |acc, (lane, &b)| {
            if b {
                acc | W::lane_mask(lane)
            } else {
                acc
            }
        },
    )
}

/// Checks every `LaneWord` operation on one operand triple against the
/// per-lane scalar reference.
fn check_against_scalar<W: LaneWord>(
    a: &[bool],
    b: &[bool],
    c: &[bool],
    kind: GateKind,
    limit: usize,
) -> Result<(), TestCaseError> {
    let (wa, wb, wc) = (pack::<W>(a), pack::<W>(b), pack::<W>(c));
    // Packing round-trips through `get`.
    for (lane, &bit) in a.iter().enumerate() {
        prop_assert_eq!(wa.get(lane), bit, "get round-trip, lane {}", lane);
    }
    // The bitwise algebra is lane-wise.
    for lane in 0..W::LANES {
        prop_assert_eq!((wa & wb).get(lane), a[lane] & b[lane]);
        prop_assert_eq!((wa | wb).get(lane), a[lane] | b[lane]);
        prop_assert_eq!((wa ^ wb).get(lane), a[lane] ^ b[lane]);
        prop_assert_eq!((!wa).get(lane), !a[lane]);
    }
    // Aggregates match the scalar fold.
    prop_assert_eq!(wa.any(), a.iter().any(|&x| x));
    prop_assert_eq!(
        wa.count_ones() as usize,
        a.iter().filter(|&&x| x).count(),
        "count_ones"
    );
    // Constants and single-lane masks.
    for lane in 0..W::LANES {
        prop_assert!(!W::ZERO.get(lane));
        prop_assert!(W::ONES.get(lane));
        prop_assert_eq!(W::splat(true).get(lane), true);
        prop_assert_eq!(W::splat(false).get(lane), false);
    }
    let probe = limit.min(W::LANES.saturating_sub(1));
    for lane in 0..W::LANES {
        prop_assert_eq!(W::lane_mask(probe).get(lane), lane == probe);
    }
    // `prefix(n)` selects exactly the first n lanes (clamping past LANES).
    for n in [0, 1, limit.min(W::LANES), W::LANES, W::LANES + 7] {
        let p = W::prefix(n);
        for lane in 0..W::LANES {
            prop_assert_eq!(p.get(lane), lane < n.min(W::LANES), "prefix({})", n);
        }
    }
    // `for_each_set` visits exactly the set lanes below the limit, in
    // ascending order.
    let mut visited = Vec::new();
    wa.for_each_set(limit, |lane| visited.push(lane));
    let expect: Vec<usize> = (0..limit.min(W::LANES)).filter(|&i| a[i]).collect();
    prop_assert_eq!(visited, expect, "for_each_set limit {}", limit);
    // Packed gate evaluation is the scalar gate per lane.
    let out = eval_lanes(kind, wa, wb, wc);
    for lane in 0..W::LANES {
        prop_assert_eq!(
            out.get(lane),
            kind.eval3(a[lane], b[lane], c[lane]),
            "eval_lanes({:?}), lane {}",
            kind,
            lane
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn w256_matches_the_u64_reference_lane_by_lane(
        a in prop::collection::vec(any::<bool>(), 256..257),
        b in prop::collection::vec(any::<bool>(), 256..257),
        c in prop::collection::vec(any::<bool>(), 256..257),
        kind_idx in 0..GateKind::ALL.len(),
        limit in 0usize..257,
    ) {
        let kind = GateKind::ALL[kind_idx];
        check_against_scalar::<W256>(&a, &b, &c, kind, limit)?;
        // The u64 reference itself satisfies the same contract on the
        // first 64 lanes — pinning the reference the wide words mirror.
        check_against_scalar::<u64>(&a[..64], &b[..64], &c[..64], kind, limit.min(64))?;
    }

    #[test]
    fn w512_matches_the_u64_reference_lane_by_lane(
        a in prop::collection::vec(any::<bool>(), 512..513),
        b in prop::collection::vec(any::<bool>(), 512..513),
        c in prop::collection::vec(any::<bool>(), 512..513),
        kind_idx in 0..GateKind::ALL.len(),
        limit in 0usize..513,
    ) {
        let kind = GateKind::ALL[kind_idx];
        check_against_scalar::<W512>(&a, &b, &c, kind, limit)?;
    }

    /// Wide-word ops restricted to the low 64 lanes agree with the same
    /// ops run natively on `u64` — the cross-width lockstep property.
    #[test]
    fn wide_low_lanes_agree_with_native_u64(
        a in prop::collection::vec(any::<bool>(), 512..513),
        b in prop::collection::vec(any::<bool>(), 512..513),
        kind_idx in 0..GateKind::ALL.len(),
    ) {
        let kind = GateKind::ALL[kind_idx];
        let (na, nb) = (pack::<u64>(&a[..64]), pack::<u64>(&b[..64]));
        let (w4a, w4b) = (pack::<W256>(&a[..256]), pack::<W256>(&b[..256]));
        let (w8a, w8b) = (pack::<W512>(&a), pack::<W512>(&b));
        let narrow = eval_lanes(kind, na, nb, na ^ nb);
        let wide4 = eval_lanes(kind, w4a, w4b, w4a ^ w4b);
        let wide8 = eval_lanes(kind, w8a, w8b, w8a ^ w8b);
        for lane in 0..64 {
            prop_assert_eq!(narrow.get(lane), wide4.get(lane), "u64 vs W256, lane {}", lane);
            prop_assert_eq!(narrow.get(lane), wide8.get(lane), "u64 vs W512, lane {}", lane);
        }
    }
}
